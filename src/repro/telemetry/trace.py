"""Time-series traces of one GPU's telemetry (Figs. 11 and 25).

A :class:`TelemetryTrace` is a uniform-interval record of frequency, power,
and temperature plus kernel-start markers — what you would get from running
the vendor profiler in continuous mode next to an application.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TelemetryError

__all__ = ["TelemetryTrace"]


@dataclass(frozen=True)
class TelemetryTrace:
    """Uniformly-sampled telemetry of one GPU.

    Attributes
    ----------
    time_s:
        Sample timestamps (seconds, ascending, uniform).
    frequency_mhz, power_w, temperature_c:
        Channel samples, same length as ``time_s``.
    kernel_starts_s:
        Launch times of profiled kernels within the window (the vertical
        lines of Fig. 11).
    label:
        GPU identifier for plots/reports.
    """

    time_s: np.ndarray
    frequency_mhz: np.ndarray
    power_w: np.ndarray
    temperature_c: np.ndarray
    kernel_starts_s: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=float)
    )
    label: str = ""

    def __post_init__(self) -> None:
        n = self.time_s.shape[0]
        for name in ("frequency_mhz", "power_w", "temperature_c"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise TelemetryError(
                    f"channel {name} has {arr.shape[0] if arr.ndim else 0} samples, "
                    f"expected {n}"
                )
        if n >= 2 and not np.all(np.diff(self.time_s) > 0):
            raise TelemetryError("time_s must be strictly ascending")

    @property
    def n_samples(self) -> int:
        """Number of samples in the trace."""
        return int(self.time_s.shape[0])

    @property
    def duration_s(self) -> float:
        """Covered wall-clock duration."""
        if self.n_samples < 2:
            return 0.0
        return float(self.time_s[-1] - self.time_s[0])

    @property
    def interval_s(self) -> float:
        """Sampling interval (median of the time deltas)."""
        if self.n_samples < 2:
            raise TelemetryError("need at least two samples for an interval")
        return float(np.median(np.diff(self.time_s)))

    # ------------------------------------------------------------------

    def window(self, start_s: float, end_s: float) -> "TelemetryTrace":
        """Sub-trace covering [start_s, end_s] (the paper plots 10 s slices)."""
        if end_s <= start_s:
            raise TelemetryError(f"empty window [{start_s}, {end_s}]")
        mask = (self.time_s >= start_s) & (self.time_s <= end_s)
        if not mask.any():
            raise TelemetryError(
                f"window [{start_s}, {end_s}] contains no samples"
            )
        kmask = (self.kernel_starts_s >= start_s) & (self.kernel_starts_s <= end_s)
        return TelemetryTrace(
            time_s=self.time_s[mask].copy(),
            frequency_mhz=self.frequency_mhz[mask].copy(),
            power_w=self.power_w[mask].copy(),
            temperature_c=self.temperature_c[mask].copy(),
            kernel_starts_s=self.kernel_starts_s[kmask].copy(),
            label=self.label,
        )

    def downsample(self, factor: int) -> "TelemetryTrace":
        """Keep every ``factor``-th sample."""
        if factor < 1:
            raise TelemetryError(f"factor must be >= 1, got {factor}")
        return TelemetryTrace(
            time_s=self.time_s[::factor].copy(),
            frequency_mhz=self.frequency_mhz[::factor].copy(),
            power_w=self.power_w[::factor].copy(),
            temperature_c=self.temperature_c[::factor].copy(),
            kernel_starts_s=self.kernel_starts_s.copy(),
            label=self.label,
        )

    def summary(self) -> dict[str, float]:
        """Median / min / max per channel (for reports)."""
        out: dict[str, float] = {}
        for name in ("frequency_mhz", "power_w", "temperature_c"):
            arr = getattr(self, name)
            out[f"{name}_median"] = float(np.median(arr))
            out[f"{name}_min"] = float(arr.min())
            out[f"{name}_max"] = float(arr.max())
        return out

    def ascii_plot(self, channel: str, width: int = 72, height: int = 12) -> str:
        """Render one channel as an ASCII strip chart (terminal-friendly)."""
        arr = getattr(self, channel, None)
        if arr is None or not isinstance(arr, np.ndarray):
            raise TelemetryError(f"unknown channel {channel!r}")
        if self.n_samples < 2:
            raise TelemetryError("need at least two samples to plot")
        # Bin samples into `width` columns, then scale rows.
        bins = np.linspace(0, self.n_samples, width + 1).astype(int)
        col_vals = np.array([
            arr[lo:hi].mean() if hi > lo else np.nan
            for lo, hi in zip(bins[:-1], bins[1:])
        ])
        finite = col_vals[np.isfinite(col_vals)]
        lo, hi = float(finite.min()), float(finite.max())
        span = hi - lo if hi > lo else 1.0
        rows = []
        levels = np.clip(
            ((col_vals - lo) / span * (height - 1)).round(), 0, height - 1
        )
        for r in range(height - 1, -1, -1):
            line = "".join(
                "*" if np.isfinite(v) and v >= r else " " for v in levels
            )
            rows.append(line)
        header = f"{self.label or channel}: {lo:.1f} .. {hi:.1f}"
        return "\n".join([header] + rows)
