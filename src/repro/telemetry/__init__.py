"""Telemetry substrate: profiler-like sampling, traces, and datasets.

Mirrors the paper's measurement stack (nvprof / rocm-smi, Section III):
samples at a >= 1 ms interval, quantized sensors (integer degrees, ladder
frequencies, watt-resolution power), per-run summary records, and long-form
measurement datasets with CSV/JSON persistence.
"""

from .sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
    PAPER_METRICS,
    SensorModel,
)
from .trace import TelemetryTrace
from .recorder import TraceRecorder
from .dataset import MeasurementDataset
from .progress import CampaignProgress, ShardTiming
from .io import (
    dataset_to_csv_text,
    read_csv,
    read_trace_json,
    write_csv,
    write_trace_json,
)

__all__ = [
    "METRIC_PERFORMANCE",
    "METRIC_FREQUENCY",
    "METRIC_POWER",
    "METRIC_TEMPERATURE",
    "PAPER_METRICS",
    "SensorModel",
    "TelemetryTrace",
    "TraceRecorder",
    "MeasurementDataset",
    "CampaignProgress",
    "ShardTiming",
    "read_csv",
    "write_csv",
    "dataset_to_csv_text",
    "read_trace_json",
    "write_trace_json",
]
