"""Incremental trace recorder used by the time-stepped engine.

The engine pushes raw (true) state each control tick; the recorder applies
the sensor model, enforces the minimum sampling interval, and assembles a
:class:`~repro.telemetry.trace.TelemetryTrace` per tracked GPU.
"""

from __future__ import annotations

import numpy as np

from ..errors import TelemetryError
from .sample import SensorModel
from .trace import TelemetryTrace

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Collects sensor-filtered samples for a set of tracked GPUs.

    Parameters
    ----------
    labels:
        One label per tracked GPU (defines the track count).
    pstates_mhz:
        Frequency ladder used for sensor snapping.
    power_gain:
        Per-tracked-GPU power-sensor gain.
    sensor:
        Sensor model; defaults to the vendor-profiler defaults.
    interval_s:
        Sampling interval; must respect the sensor's 1 ms floor.
    rng:
        Randomness for sensor noise.
    """

    def __init__(
        self,
        labels: list[str],
        pstates_mhz: np.ndarray,
        power_gain: np.ndarray,
        rng: np.random.Generator,
        sensor: SensorModel | None = None,
        interval_s: float = 0.1,
    ) -> None:
        self.sensor = sensor if sensor is not None else SensorModel()
        if interval_s * 1000.0 < self.sensor.min_interval_ms:
            raise TelemetryError(
                f"interval {interval_s * 1000:.3f} ms is below the profiler "
                f"floor of {self.sensor.min_interval_ms} ms"
            )
        power_gain = np.asarray(power_gain, dtype=float)
        if power_gain.ndim != 1:
            raise TelemetryError(
                f"power_gain must be 1-D (one gain per tracked GPU), "
                f"got shape {power_gain.shape}"
            )
        if len(labels) != power_gain.shape[0]:
            raise TelemetryError(
                f"{len(labels)} labels but {power_gain.shape[0]} gain entries"
            )
        if not np.all(np.isfinite(power_gain)) or np.any(power_gain <= 0):
            raise TelemetryError(
                "power_gain entries must be finite and positive "
                "(a multiplicative sensor gain)"
            )
        self.labels = list(labels)
        self.pstates = np.asarray(pstates_mhz, dtype=float)
        self.power_gain = power_gain
        self.interval_s = interval_s
        self.rng = rng
        self._times: list[float] = []
        self._freq: list[np.ndarray] = []
        self._power: list[np.ndarray] = []
        self._temp: list[np.ndarray] = []
        self._kernel_starts: list[float] = []
        self._last_t: float | None = None

    @property
    def n_tracks(self) -> int:
        """Number of GPUs being recorded."""
        return len(self.labels)

    def push(
        self,
        time_s: float,
        frequency_mhz: np.ndarray,
        power_w: np.ndarray,
        temperature_c: np.ndarray,
    ) -> bool:
        """Offer a raw state sample; returns True if it was recorded.

        Samples arriving faster than the configured interval are dropped,
        the way a fixed-rate profiler would miss them.
        """
        if self._last_t is not None and time_s <= self._last_t:
            raise TelemetryError("samples must arrive in increasing time order")
        if self._last_t is not None and time_s - self._last_t < self.interval_s - 1e-12:
            return False
        self._last_t = time_s
        self._times.append(time_s)
        self._freq.append(
            self.sensor.read_frequency(frequency_mhz, self.pstates)
        )
        self._power.append(
            self.sensor.read_power(power_w, self.power_gain, self.rng)
        )
        self._temp.append(
            self.sensor.read_temperature(temperature_c, self.rng)
        )
        return True

    def mark_kernel_start(self, time_s: float) -> None:
        """Record a kernel launch marker (Fig. 11's vertical lines)."""
        self._kernel_starts.append(time_s)

    def traces(self) -> list[TelemetryTrace]:
        """Assemble one trace per tracked GPU."""
        if not self._times:
            raise TelemetryError("no samples were recorded")
        t = np.asarray(self._times)
        freq = np.stack(self._freq, axis=0)
        power = np.stack(self._power, axis=0)
        temp = np.stack(self._temp, axis=0)
        starts = np.asarray(self._kernel_starts)
        return [
            TelemetryTrace(
                time_s=t.copy(),
                frequency_mhz=freq[:, i].copy(),
                power_w=power[:, i].copy(),
                temperature_c=temp[:, i].copy(),
                kernel_starts_s=starts.copy(),
                label=self.labels[i],
            )
            for i in range(self.n_tracks)
        ]
