"""Campaign progress counters and per-shard timing records.

The sharded campaign executor (:mod:`repro.sim.parallel`) splits a campaign
into (day, run, GPU-shard) units of work.  Operators running multi-week
Summit-scale campaigns want to watch those units complete — and, when a
campaign is slow, to see *which* shards were slow.  :class:`CampaignProgress`
is the thread-safe sink both the serial and the parallel executors feed:
one :class:`ShardTiming` per finished shard, in completion order (which for
parallel execution is generally *not* canonical (day, run, shard) order).

Each timing also carries the shard's DVFS steady-state
:class:`~repro.gpu.dvfs.SolverStats` — how many fixed-point cells the ladder
search evaluated vs the dense grid it replaced — aggregated campaign-wide by
:attr:`CampaignProgress.solver_stats`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..gpu.dvfs import SolverStats

__all__ = ["ShardTiming", "CampaignProgress"]


@dataclass(frozen=True)
class ShardTiming:
    """Timing record for one executed campaign shard.

    Attributes
    ----------
    day, run_index:
        Campaign coordinates of the run the shard belongs to.
    shard_index, n_shards:
        Position of this shard within the run's GPU partition
        (``n_shards == 1`` means the run was not sharded).
    n_rows:
        Measurement rows (GPUs) the shard produced.
    duration_s:
        Wall-clock seconds spent simulating the shard, measured inside
        the worker that executed it.
    solver:
        DVFS steady-state solver work counters for the shard's run
        (``None`` for records produced by pre-solver-telemetry executors).
    """

    day: int
    run_index: int
    shard_index: int
    n_shards: int
    n_rows: int
    duration_s: float
    solver: SolverStats | None = None

    def describe(self) -> str:
        """One-line human-readable rendering."""
        shard = (
            f" shard {self.shard_index + 1}/{self.n_shards}"
            if self.n_shards > 1
            else ""
        )
        return (
            f"day {self.day} run {self.run_index}{shard}: "
            f"{self.n_rows} GPUs in {self.duration_s * 1e3:.1f} ms"
        )


class CampaignProgress:
    """Thread-safe progress sink for a campaign execution.

    Pass an instance to :func:`repro.sim.campaign.run_campaign` to observe
    shard completions.  ``on_shard`` (if given) is invoked with each
    :class:`ShardTiming` as it is recorded — from whatever thread recorded
    it, so keep the callback cheap and thread-safe.
    """

    def __init__(
        self, on_shard: Callable[[ShardTiming], None] | None = None
    ) -> None:
        self._lock = threading.Lock()
        self._timings: list[ShardTiming] = []
        self._total = 0
        self._began_at: float | None = None
        self.on_shard = on_shard

    # -- executor-facing API -------------------------------------------------

    def begin(self, total_shards: int) -> None:
        """Declare the plan size and start the wall clock."""
        with self._lock:
            self._total = int(total_shards)
            self._timings = []
            self._began_at = time.perf_counter()

    def record(self, timing: ShardTiming) -> None:
        """Record one finished shard (called by the executor)."""
        with self._lock:
            self._timings.append(timing)
        if self.on_shard is not None:
            self.on_shard(timing)

    # -- observer-facing API -------------------------------------------------

    @property
    def total_shards(self) -> int:
        """Shards in the campaign plan (0 before :meth:`begin`)."""
        return self._total

    @property
    def n_done(self) -> int:
        """Shards completed so far."""
        with self._lock:
            return len(self._timings)

    @property
    def rows_done(self) -> int:
        """Measurement rows produced so far."""
        with self._lock:
            return sum(t.n_rows for t in self._timings)

    @property
    def timings(self) -> tuple[ShardTiming, ...]:
        """All recorded timings, in completion order."""
        with self._lock:
            return tuple(self._timings)

    @property
    def shard_seconds(self) -> float:
        """Total worker-side compute time across finished shards.

        With N workers this can exceed :attr:`wall_seconds` by up to a
        factor of N — the ratio is the realized parallel efficiency.
        """
        with self._lock:
            return sum(t.duration_s for t in self._timings)

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds since :meth:`begin` (0.0 before it)."""
        if self._began_at is None:
            return 0.0
        return time.perf_counter() - self._began_at

    @property
    def shards_per_second(self) -> float:
        """Completed shards per wall-clock second (0.0 with no elapsed time).

        Guarded against the zero-elapsed case: querying immediately after
        :meth:`begin` (or before it) returns 0.0 rather than dividing by
        zero.
        """
        elapsed = self.wall_seconds
        if elapsed <= 0.0:
            return 0.0
        return self.n_done / elapsed

    @property
    def runs_per_second(self) -> float:
        """Completed *runs* per wall-clock second (0.0 with no elapsed time).

        A run spanning several shards counts as done once all its shards
        have reported; fractional progress inside a run is ignored.
        """
        elapsed = self.wall_seconds
        if elapsed <= 0.0:
            return 0.0
        with self._lock:
            seen: dict[tuple[int, int], int] = {}
            for t in self._timings:
                key = (t.day, t.run_index)
                seen[key] = seen.get(key, 0) + 1
            runs_done = sum(
                1 for t in self._timings
                if t.shard_index == 0 and seen[(t.day, t.run_index)] >= t.n_shards
            )
        return runs_done / elapsed

    @property
    def eta_seconds(self) -> float | None:
        """Estimated wall-clock seconds to completion.

        ``None`` until at least one shard has finished (no rate yet) or if
        no wall time has elapsed; 0.0 once everything is done.  The
        estimate assumes the remaining shards complete at the observed
        mean per-shard rate.
        """
        done = self.n_done
        rate = self.shards_per_second
        if done == 0 or rate <= 0.0:
            return None
        remaining = max(self._total - done, 0)
        return remaining / rate

    @property
    def solver_stats(self) -> SolverStats:
        """Campaign-wide DVFS solver counters, merged across finished shards."""
        merged = SolverStats()
        with self._lock:
            for timing in self._timings:
                if timing.solver is not None:
                    merged.merge(timing.solver)
        return merged

    def summary(self) -> str:
        """One-line progress summary for logs and the CLI."""
        done = self.n_done
        total = self._total
        line = (
            f"{done}/{total} shards, {self.rows_done} rows, "
            f"{self.shard_seconds:.2f} s compute / "
            f"{self.wall_seconds:.2f} s wall"
        )
        rate = self.shards_per_second
        if rate > 0.0:
            line += f", {rate:.1f} shards/s"
        eta = self.eta_seconds
        if eta is not None and done < total:
            line += f", ETA {eta:.1f} s"
        solver = self.solver_stats
        if solver.solves:
            line += (
                f", solver skipped {solver.dense_fraction_avoided:.1%} "
                "of dense fixed-point cells"
            )
        return line

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CampaignProgress({self.n_done}/{self._total} shards)"
