"""Persistence: CSV for measurement datasets, JSON for telemetry traces.

The CSV header encodes each column's dtype (``name:kind``) so a round-trip
restores numeric columns as floats/ints and identity columns as strings —
no type-guessing.  Files gzip transparently when the path ends in ``.gz``.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from pathlib import Path
from typing import IO

import numpy as np

from ..errors import DatasetError, TelemetryError
from .dataset import MeasurementDataset
from .trace import TelemetryTrace

__all__ = [
    "write_csv",
    "read_csv",
    "dataset_to_csv_text",
    "write_trace_json",
    "read_trace_json",
]

_KIND_FLOAT = "f"
_KIND_INT = "i"
_KIND_STR = "s"
_KIND_BOOL = "b"


def _kind_of(arr: np.ndarray) -> str:
    if arr.dtype == object or arr.dtype.kind in ("U", "S"):
        return _KIND_STR
    if arr.dtype.kind == "b":
        return _KIND_BOOL
    if arr.dtype.kind in ("i", "u"):
        return _KIND_INT
    if arr.dtype.kind == "f":
        return _KIND_FLOAT
    raise DatasetError(f"cannot persist column dtype {arr.dtype}")


def _open(path: Path, mode: str) -> IO:
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8",
                                newline="")
    return open(path, mode, encoding="utf-8", newline="")


def _write_csv_to(dataset: MeasurementDataset, fh: IO) -> None:
    names = dataset.column_names
    kinds = {name: _kind_of(dataset.column(name)) for name in names}
    writer = csv.writer(fh)
    writer.writerow([f"{name}:{kinds[name]}" for name in names])
    columns = [dataset.column(name) for name in names]
    for i in range(dataset.n_rows):
        writer.writerow([col[i] for col in columns])


def write_csv(dataset: MeasurementDataset, path: str | Path) -> None:
    """Write a dataset to (optionally gzipped) CSV with typed headers."""
    with _open(Path(path), "w") as fh:
        _write_csv_to(dataset, fh)


def dataset_to_csv_text(dataset: MeasurementDataset) -> str:
    """The exact CSV serialization of a dataset, as a string.

    Byte-identical to what :func:`write_csv` puts on disk (before any gzip
    layer) — the representation the golden-regression fixtures pin.
    """
    buffer = io.StringIO(newline="")
    _write_csv_to(dataset, buffer)
    return buffer.getvalue()


def read_csv(path: str | Path) -> MeasurementDataset:
    """Read a dataset written by :func:`write_csv`."""
    path = Path(path)
    with _open(path, "r") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path} is empty") from None
        names: list[str] = []
        kinds: list[str] = []
        for entry in header:
            if ":" not in entry:
                raise DatasetError(
                    f"{path} header entry {entry!r} lacks a dtype annotation"
                )
            name, kind = entry.rsplit(":", 1)
            if kind not in (_KIND_FLOAT, _KIND_INT, _KIND_STR, _KIND_BOOL):
                raise DatasetError(f"unknown column kind {kind!r} in {path}")
            names.append(name)
            kinds.append(kind)
        raw: list[list[str]] = [[] for _ in names]
        for row in reader:
            if len(row) != len(names):
                raise DatasetError(
                    f"{path}: row has {len(row)} fields, expected {len(names)}"
                )
            for i, cell in enumerate(row):
                raw[i].append(cell)
    columns: dict[str, np.ndarray] = {}
    for name, kind, cells in zip(names, kinds, raw):
        if kind == _KIND_FLOAT:
            columns[name] = np.asarray(cells, dtype=float)
        elif kind == _KIND_INT:
            columns[name] = np.asarray(cells, dtype=np.int64)
        elif kind == _KIND_BOOL:
            columns[name] = np.asarray([c == "True" for c in cells])
        else:
            columns[name] = np.asarray(cells, dtype=object)
    return MeasurementDataset(columns)


# ---------------------------------------------------------------------------
# telemetry traces <-> JSON
# ---------------------------------------------------------------------------

_TRACE_FORMAT_VERSION = 1


def write_trace_json(trace: TelemetryTrace, path: str | Path) -> None:
    """Write one telemetry trace as (optionally gzipped) JSON."""
    payload = {
        "format_version": _TRACE_FORMAT_VERSION,
        "label": trace.label,
        "time_s": trace.time_s.tolist(),
        "frequency_mhz": trace.frequency_mhz.tolist(),
        "power_w": trace.power_w.tolist(),
        "temperature_c": trace.temperature_c.tolist(),
        "kernel_starts_s": trace.kernel_starts_s.tolist(),
    }
    path = Path(path)
    text = json.dumps(payload)
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(text)
    else:
        path.write_text(text)


def read_trace_json(path: str | Path) -> TelemetryTrace:
    """Read a trace written by :func:`write_trace_json`."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        payload = json.loads(path.read_text())
    version = payload.get("format_version")
    if version != _TRACE_FORMAT_VERSION:
        raise TelemetryError(
            f"{path}: unsupported trace format version {version!r}"
        )
    try:
        return TelemetryTrace(
            time_s=np.asarray(payload["time_s"], dtype=float),
            frequency_mhz=np.asarray(payload["frequency_mhz"], dtype=float),
            power_w=np.asarray(payload["power_w"], dtype=float),
            temperature_c=np.asarray(payload["temperature_c"], dtype=float),
            kernel_starts_s=np.asarray(
                payload.get("kernel_starts_s", []), dtype=float
            ),
            label=str(payload.get("label", "")),
        )
    except KeyError as missing:
        raise TelemetryError(f"{path}: missing trace field {missing}") from None
