"""Metric names and the sensor model shared by all telemetry producers.

The paper collects four metrics per GPU (Section III): performance (kernel
or iteration duration, ms), SM/CU frequency (MHz), board power (W), and
SM/CU temperature (degC).  Real profilers quantize: temperatures are
integer degrees, frequencies snap to the p-state ladder, and power readings
carry board-to-board gain error plus per-sample noise.  The
:class:`SensorModel` centralizes that so simulated measurements and host
microbenchmarks share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require

__all__ = [
    "METRIC_PERFORMANCE",
    "METRIC_FREQUENCY",
    "METRIC_POWER",
    "METRIC_TEMPERATURE",
    "PAPER_METRICS",
    "SensorModel",
]

METRIC_PERFORMANCE = "performance_ms"
METRIC_FREQUENCY = "frequency_mhz"
METRIC_POWER = "power_w"
METRIC_TEMPERATURE = "temperature_c"

#: The four metrics of the study, in the order the paper's figures use.
PAPER_METRICS = (
    METRIC_PERFORMANCE,
    METRIC_FREQUENCY,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)


@dataclass(frozen=True)
class SensorModel:
    """Quantization and noise of the vendor telemetry path.

    Parameters
    ----------
    min_interval_ms:
        Minimum sampling interval (1 ms for nvprof/rocm-smi; the paper
        sizes kernels to exceed it).
    power_noise_w:
        Per-sample additive power noise (shunt ADC).
    temperature_noise_c:
        Per-sample additive temperature noise before integer rounding.
    power_resolution_w:
        Reporting resolution of the power sensor.
    """

    min_interval_ms: float = 1.0
    power_noise_w: float = 1.0
    temperature_noise_c: float = 0.5
    power_resolution_w: float = 1.0

    def __post_init__(self) -> None:
        require(self.min_interval_ms > 0, "min_interval_ms must be positive")
        require(self.power_noise_w >= 0, "power_noise_w must be >= 0")
        require(self.temperature_noise_c >= 0, "temperature_noise_c must be >= 0")
        require(self.power_resolution_w > 0, "power_resolution_w must be positive")

    def read_power(
        self,
        true_power_w: np.ndarray,
        gain: np.ndarray | float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Power as reported: per-board gain, sample noise, resolution."""
        p = np.asarray(true_power_w, dtype=float) * np.asarray(gain, dtype=float)
        p = p + rng.normal(0.0, self.power_noise_w, size=p.shape)
        return np.round(p / self.power_resolution_w) * self.power_resolution_w

    def read_temperature(
        self, true_temperature_c: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Temperature as reported: noisy, rounded to integer degrees."""
        t = np.asarray(true_temperature_c, dtype=float)
        return np.round(t + rng.normal(0.0, self.temperature_noise_c, size=t.shape))

    def read_frequency(
        self, true_frequency_mhz: np.ndarray, pstates_mhz: np.ndarray
    ) -> np.ndarray:
        """Frequency as reported: snapped to the nearest ladder state."""
        f = np.asarray(true_frequency_mhz, dtype=float)
        steps = np.asarray(pstates_mhz, dtype=float)
        idx = np.clip(np.searchsorted(steps, f), 0, steps.shape[0] - 1)
        below = np.clip(idx - 1, 0, steps.shape[0] - 1)
        pick_below = np.abs(steps[below] - f) <= np.abs(steps[idx] - f)
        return np.where(pick_below, steps[below], steps[idx])
