"""Long-form measurement datasets (the study's 18,800 hours of records).

A :class:`MeasurementDataset` is a minimal columnar table — a dict of
equal-length NumPy arrays — with exactly the operations the analysis suite
needs: filtering, grouping, concatenation, and derived columns.  It avoids
a pandas dependency while staying vectorized.

Conventions: one row per (GPU, run); metric columns follow
:mod:`repro.telemetry.sample` names; identity columns (``cluster``,
``workload``, ``gpu_label``, ``node_label``, ``cabinet``, ``day`` ...) are
produced by the campaign runner.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import DatasetError

__all__ = ["MeasurementDataset"]


def _as_column(values: Any) -> np.ndarray:
    arr = np.asarray(values)
    if arr.dtype.kind in ("U", "S", "O"):
        return arr.astype(object)
    return arr


class MeasurementDataset:
    """A columnar table of measurements.

    Parameters
    ----------
    columns:
        Mapping of column name to 1-D array-like; all columns must have the
        same length.  String-ish columns are stored as object arrays.
    """

    def __init__(self, columns: Mapping[str, Any]) -> None:
        if not columns:
            raise DatasetError("a dataset needs at least one column")
        data: dict[str, np.ndarray] = {}
        n = None
        for name, values in columns.items():
            arr = _as_column(values)
            if arr.ndim != 1:
                raise DatasetError(f"column {name!r} must be 1-D, got {arr.ndim}-D")
            if n is None:
                n = arr.shape[0]
            elif arr.shape[0] != n:
                raise DatasetError(
                    f"column {name!r} has {arr.shape[0]} rows, expected {n}"
                )
            data[name] = arr
        self._data = data
        self._n = int(n if n is not None else 0)

    # -- basics ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n

    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._data)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def column(self, name: str) -> np.ndarray:
        """The array backing column ``name`` (do not mutate)."""
        try:
            return self._data[name]
        except KeyError:
            raise DatasetError(
                f"unknown column {name!r}; have {self.column_names}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    # -- construction -----------------------------------------------------------

    @classmethod
    def concat(cls, parts: Sequence["MeasurementDataset"]) -> "MeasurementDataset":
        """Stack datasets with identical columns."""
        if not parts:
            raise DatasetError("cannot concat zero datasets")
        names = parts[0].column_names
        for p in parts[1:]:
            if p.column_names != names:
                raise DatasetError(
                    f"column mismatch: {names} vs {p.column_names}"
                )
        return cls({
            name: np.concatenate([p.column(name) for p in parts])
            for name in names
        })

    def with_column(self, name: str, values: Any) -> "MeasurementDataset":
        """A copy with column ``name`` added or replaced."""
        arr = _as_column(values)
        if arr.shape[0] != self._n:
            raise DatasetError(
                f"new column {name!r} has {arr.shape[0]} rows, expected {self._n}"
            )
        data = dict(self._data)
        data[name] = arr
        return MeasurementDataset(data)

    # -- selection ---------------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "MeasurementDataset":
        """Rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n,):
            raise DatasetError(
                f"mask must have shape ({self._n},), got {mask.shape}"
            )
        return MeasurementDataset({k: v[mask] for k, v in self._data.items()})

    def where(self, **equals: Any) -> "MeasurementDataset":
        """Rows where every ``column == value`` condition holds."""
        mask = np.ones(self._n, dtype=bool)
        for name, value in equals.items():
            mask &= self.column(name) == value
        return self.filter(mask)

    def sort_by(self, name: str) -> "MeasurementDataset":
        """Rows sorted ascending by column ``name`` (stable)."""
        order = np.argsort(self.column(name), kind="stable")
        return MeasurementDataset({k: v[order] for k, v in self._data.items()})

    # -- grouping ---------------------------------------------------------------

    def unique(self, name: str) -> np.ndarray:
        """Sorted unique values of a column."""
        return np.unique(self.column(name))

    def groupby(self, name: str) -> Iterator[tuple[Any, "MeasurementDataset"]]:
        """Iterate ``(value, subset)`` over groups of column ``name``."""
        col = self.column(name)
        for value in np.unique(col):
            yield value, self.filter(col == value)

    def group_reduce(
        self,
        key: str,
        value: str,
        reducer: Callable[[np.ndarray], float] = np.median,
    ) -> dict[Any, float]:
        """Reduce one column per group, e.g. median power per cabinet."""
        out: dict[Any, float] = {}
        col = self.column(key)
        values = self.column(value)
        for group in np.unique(col):
            out[group] = float(reducer(values[col == group]))
        return out

    def per_gpu_median(self, value: str, gpu_key: str = "gpu_index") -> "MeasurementDataset":
        """Collapse runs to one row per GPU with the median of ``value``.

        The paper's box plots use per-GPU medians to suppress one-off
        transients (Section III).  All identity columns that are constant
        within a GPU group are carried through; varying ones are dropped.
        """
        keys = self.column(gpu_key)
        uniq, first_index, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        values = self.column(value)

        medians = np.array([
            np.median(values[inverse == gi]) for gi in range(uniq.shape[0])
        ])
        out: dict[str, np.ndarray] = {}
        for name in self.column_names:
            if name == value:
                continue
            col = self._data[name]
            representative = col[first_index]
            # Keep the column only if it is constant within every group.
            if bool(np.all(col == representative[inverse])):
                out[name] = representative
        out[value] = medians
        return MeasurementDataset(out)

    # -- export ---------------------------------------------------------------

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialize as a list of row dicts (small datasets only)."""
        names = self.column_names
        return [
            {name: self._data[name][i] for name in names}
            for i in range(self._n)
        ]

    def head(self, n: int = 5) -> "MeasurementDataset":
        """The first ``n`` rows."""
        return MeasurementDataset({k: v[:n] for k, v in self._data.items()})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MeasurementDataset(rows={self._n}, "
            f"columns={self.column_names})"
        )
