"""Opt-in, zero-perturbation observability for the simulator itself.

The paper's contribution is 18,800+ hours of telemetry *about* telemetry;
this subpackage gives the simulator the same treatment: where does a
campaign's wall clock go, how does solver work distribute across shards,
and can a finished run be audited for reproducibility without re-running
it?  Five pieces:

* :mod:`repro.obs.tracer` — a hierarchical span tracer
  (campaign → day → shard → run → solve) plus low-overhead counters,
  activated per-thread so the sharded executors can collect per-shard
  observations and merge them deterministically;
* :mod:`repro.obs.export` — JSONL event sink and Chrome-trace/Perfetto
  export, so campaign timelines are viewable in a browser;
* :mod:`repro.obs.manifest` — machine-readable campaign manifests (config
  digest, RNG label roots, solver mode, result digest) with a JSON schema,
  enabling reproducibility audits without re-execution;
* :mod:`repro.obs.metrics` — the DCGM-shaped fleet half: a typed metric
  registry (per-GPU gauges, fleet histograms, counters), ring-buffer
  sliding windows, Prometheus-style text exposition, and the thread-local
  :class:`~repro.obs.metrics.FleetMonitor` the campaign executors merge
  in canonical plan order;
* :mod:`repro.obs.health` — online anomaly detection over the monitor's
  run stream: typed health events with hysteresis, per-GPU grades, and
  fleet health reports with topology rollups;
* :mod:`repro.obs.timeline` — the unified flight recorder: one
  schema-versioned, byte-stable event stream spanning campaign, sim,
  health, sched, and service layers, ordered by a monotone logical clock
  (no wall time) and merged across shards in canonical plan order;
* :mod:`repro.obs.replay` — the timeline replayer behind ``repro
  replay``: reconstructs fleet health grades, scheduler occupancy, and
  counter totals at any logical timestamp, and re-derives report digests
  from the log alone (``--check``).

Hard guarantees (pinned by ``tests/obs/``): with tracing enabled, campaign
outputs are **bit-identical** to untraced runs — the tracer never draws
randomness and never touches a float that feeds a measurement; with
tracing disabled, the hooks reduce to a thread-local ``None`` check.
"""

from .tracer import (
    NONDETERMINISTIC_COUNTER_PREFIXES,
    SpanRecord,
    Tracer,
    activate,
    active_tracer,
)
from .export import write_chrome_trace, write_events_jsonl
from .manifest import (
    MANIFEST_SCHEMA,
    CampaignManifest,
    Manifest,
    build_campaign_manifest,
    campaign_config_from_manifest,
    read_manifest,
    validate_manifest,
)
from .metrics import (
    DEFAULT_HISTOGRAM_EDGES,
    FleetMonitor,
    FleetRun,
    MetricsRegistry,
    MonitorConfig,
    RunSample,
    SlidingWindow,
    activate_monitor,
    active_monitor,
    render_prometheus,
)
from .timeline import (
    TIMELINE_LAYERS,
    TIMELINE_SCHEMA_VERSION,
    TimelineError,
    TimelineEvent,
    TimelineRecorder,
    activate_recorder,
    active_recorder,
    canonical_digest,
    read_timeline,
    timeline_lines,
    validate_timeline_event,
    write_timeline,
)

#: Names served lazily from :mod:`repro.obs.health` (PEP 562).  Health
#: pulls in :mod:`repro.core` — whose package init reaches back through
#: sim/telemetry into :mod:`repro.gpu.dvfs`, which imports *this* package
#: for its hook primitives — so importing it eagerly here would deadlock
#: the import graph whenever ``repro.gpu`` loads first.  The hook-side
#: modules (tracer, metrics) stay eager and dependency-light.
_HEALTH_EXPORTS = (
    "GRADES",
    "HEALTH_REPORT_SCHEMA",
    "FleetHealthReport",
    "HealthEvent",
    "HealthEventKind",
    "HealthPolicy",
    "HealthTracker",
    "analyze_fleet_health",
    "build_health_report",
    "validate_health_report",
    "write_health_events",
)

#: Names served lazily from :mod:`repro.obs.replay` — the replayer's
#: ``--check`` mode rebuilds scheduling reports, so it reaches into
#: :mod:`repro.sched` and must not load with the hook-side modules.
_REPLAY_EXPORTS = (
    "ReplayCheck",
    "TimelineReplayer",
    "load_replayer",
)


def __getattr__(name: str):
    if name in _HEALTH_EXPORTS:
        from . import health

        return getattr(health, name)
    if name in _REPLAY_EXPORTS:
        from . import replay

        return getattr(replay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(
        set(globals()) | set(_HEALTH_EXPORTS) | set(_REPLAY_EXPORTS)
    )


__all__ = [
    *_HEALTH_EXPORTS,
    *_REPLAY_EXPORTS,
    "DEFAULT_HISTOGRAM_EDGES",
    "FleetMonitor",
    "FleetRun",
    "MetricsRegistry",
    "MonitorConfig",
    "RunSample",
    "SlidingWindow",
    "activate_monitor",
    "active_monitor",
    "render_prometheus",
    "SpanRecord",
    "Tracer",
    "activate",
    "active_tracer",
    "NONDETERMINISTIC_COUNTER_PREFIXES",
    "write_chrome_trace",
    "write_events_jsonl",
    "TIMELINE_LAYERS",
    "TIMELINE_SCHEMA_VERSION",
    "TimelineError",
    "TimelineEvent",
    "TimelineRecorder",
    "activate_recorder",
    "active_recorder",
    "canonical_digest",
    "read_timeline",
    "timeline_lines",
    "validate_timeline_event",
    "write_timeline",
    "CampaignManifest",
    "Manifest",
    "MANIFEST_SCHEMA",
    "build_campaign_manifest",
    "campaign_config_from_manifest",
    "read_manifest",
    "validate_manifest",
]
