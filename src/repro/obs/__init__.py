"""Opt-in, zero-perturbation observability for the simulator itself.

The paper's contribution is 18,800+ hours of telemetry *about* telemetry;
this subpackage gives the simulator the same treatment: where does a
campaign's wall clock go, how does solver work distribute across shards,
and can a finished run be audited for reproducibility without re-running
it?  Three pieces:

* :mod:`repro.obs.tracer` — a hierarchical span tracer
  (campaign → day → shard → run → solve) plus low-overhead counters,
  activated per-thread so the sharded executors can collect per-shard
  observations and merge them deterministically;
* :mod:`repro.obs.export` — JSONL event sink and Chrome-trace/Perfetto
  export, so campaign timelines are viewable in a browser;
* :mod:`repro.obs.manifest` — machine-readable campaign manifests (config
  digest, RNG label roots, solver mode, result digest) with a JSON schema,
  enabling reproducibility audits without re-execution.

Hard guarantees (pinned by ``tests/obs/``): with tracing enabled, campaign
outputs are **bit-identical** to untraced runs — the tracer never draws
randomness and never touches a float that feeds a measurement; with
tracing disabled, the hooks reduce to a thread-local ``None`` check.
"""

from .tracer import (
    NONDETERMINISTIC_COUNTER_PREFIXES,
    SpanRecord,
    Tracer,
    activate,
    active_tracer,
)
from .export import write_chrome_trace, write_events_jsonl
from .manifest import (
    MANIFEST_SCHEMA,
    CampaignManifest,
    Manifest,
    build_campaign_manifest,
    campaign_config_from_manifest,
    read_manifest,
    validate_manifest,
)

__all__ = [
    "SpanRecord",
    "Tracer",
    "activate",
    "active_tracer",
    "NONDETERMINISTIC_COUNTER_PREFIXES",
    "write_chrome_trace",
    "write_events_jsonl",
    "CampaignManifest",
    "Manifest",
    "MANIFEST_SCHEMA",
    "build_campaign_manifest",
    "campaign_config_from_manifest",
    "read_manifest",
    "validate_manifest",
]
