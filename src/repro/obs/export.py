"""Trace sinks: JSONL events and Chrome-trace/Perfetto export.

Two serializations of the same :class:`~repro.obs.tracer.Tracer` contents:

* :func:`write_events_jsonl` — one JSON object per line (``span`` events
  followed by ``counter`` events), greppable and streamable;
* :func:`write_chrome_trace` — the Chrome trace-event format (an object
  with a ``traceEvents`` array of complete ``"X"`` events), loadable
  directly in https://ui.perfetto.dev or ``chrome://tracing`` so a
  campaign's timeline is viewable in a browser.  Tracks map to thread
  rows; nesting within a track is inferred from time containment, which
  is how the tracer expresses span hierarchy.
"""

from __future__ import annotations

import json
from pathlib import Path

from .tracer import Tracer

__all__ = ["write_chrome_trace", "write_events_jsonl"]


def write_events_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write the tracer's spans and counters as JSON Lines.

    Span lines carry ``{"event": "span", name, category, track, start_s,
    duration_s, args}``; after all spans, one ``{"event": "counter",
    name, value}`` line per counter, sorted by name.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for record in tracer.spans:
            fh.write(json.dumps({
                "event": "span",
                "name": record.name,
                "category": record.category,
                "track": record.track,
                "start_s": record.start_s,
                "duration_s": record.duration_s,
                "args": dict(record.args),
            }, sort_keys=True) + "\n")
        for name, value in sorted(tracer.counters.items()):
            fh.write(json.dumps(
                {"event": "counter", "name": name, "value": value},
                sort_keys=True,
            ) + "\n")
    return path


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the tracer as a Chrome trace-event JSON file.

    Every span becomes a complete (``"ph": "X"``) event with microsecond
    timestamps relative to the earliest span, ``pid`` 1, and one ``tid``
    per distinct track (tracks sorted lexically, so day/run/shard rows
    appear in campaign order).  Counter totals are attached as a single
    metadata-style instant event at the end of the timeline.
    """
    path = Path(path)
    spans = tracer.spans
    origin = min((s.start_s for s in spans), default=0.0)
    tracks = sorted({s.track for s in spans})
    tids = {track: i for i, track in enumerate(tracks)}
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": tids[track],
            "name": "thread_name",
            "args": {"name": track},
        }
        for track in tracks
    ]
    end_us = 0.0
    for s in spans:
        ts_us = (s.start_s - origin) * 1e6
        dur_us = s.duration_s * 1e6
        end_us = max(end_us, ts_us + dur_us)
        events.append({
            "ph": "X",
            "pid": 1,
            "tid": tids[s.track],
            "name": s.name,
            "cat": s.category,
            "ts": ts_us,
            "dur": dur_us,
            "args": dict(s.args),
        })
    if tracer.counters:
        events.append({
            "ph": "i",
            "pid": 1,
            "tid": 0,
            "name": "counters",
            "s": "g",
            "ts": end_us,
            "args": {k: v for k, v in sorted(tracer.counters.items())},
        })
    path.write_text(
        json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}),
        encoding="utf-8",
    )
    return path
