"""Streaming fleet metrics: typed registry, ring windows, and the monitor.

This is the DCGM-shaped half of the observability layer.  Where
:mod:`repro.obs.tracer` answers "where did the *wall clock* go",
:mod:`repro.obs.metrics` answers "what did the *fleet* do over simulated
time": per-GPU gauges (last frequency / power / temperature / perf
deviation / throttle residency), fleet-wide histograms, and ring-buffer
sliding-window aggregates — everything a dashboard scrapes from a real
cluster's telemetry daemon.

The design constraints are the tracer's, verbatim:

* **Zero perturbation.**  Hooks only *read* already-computed arrays; no
  RNG draws, no float that feeds a measurement.  Golden campaign fixtures
  pass byte-for-byte with monitoring on.
* **Unmeasurable overhead when disabled.**  Hook sites call
  :func:`active_monitor` (a thread-local attribute read) and branch on
  ``None``.
* **Deterministic merging.**  The campaign executors give every shard its
  own :class:`FleetMonitor` and fold the payloads back in canonical plan
  order, so the merged sample stream, counter totals, and every derived
  statistic are invariant to worker count and backend.

Fleet-level aggregation (perf deviation from the fleet median, sliding
windows, gauges) deliberately happens in :meth:`FleetMonitor.finalize`
over the *merged* stream: a shard only sees its slice of a run, and a
"fleet median" computed per shard would depend on the shard shape.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..config import require
from ..errors import AnalysisError

__all__ = [
    "DEFAULT_HISTOGRAM_EDGES",
    "FleetMonitor",
    "FleetRun",
    "MetricsRegistry",
    "MonitorConfig",
    "RunSample",
    "SlidingWindow",
    "activate_monitor",
    "active_monitor",
    "render_prometheus",
]

#: Default histogram bucket upper bounds (``le``) per metric family.  Fixed
#: and config-independent so histograms from any two monitors of the same
#: campaign merge bucket-for-bucket.  Values beyond the last bound land in
#: the implicit ``+Inf`` bucket.
DEFAULT_HISTOGRAM_EDGES: dict[str, tuple[float, ...]] = {
    "frequency_mhz": tuple(float(v) for v in range(600, 2401, 60)),
    "power_w": tuple(float(v) for v in range(40, 561, 20)),
    "temperature_c": tuple(float(v) for v in range(20, 111, 3)),
    "perf_deviation": tuple(round(0.80 + 0.025 * i, 3) for i in range(33)),
    # Service request latency: roughly-geometric bounds from 1 ms to 60 s,
    # wide enough to cover a cache hit and a cold full-fleet campaign.
    "latency_s": (
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
        0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    ),
}


def _edges_for(name: str) -> tuple[float, ...]:
    """Bucket bounds for a metric name, matched by family suffix."""
    for family, edges in DEFAULT_HISTOGRAM_EDGES.items():
        if name == family or name.endswith(f"_{family}") or name.endswith(family):
            return edges
    raise AnalysisError(
        f"no default histogram edges for {name!r}; pass edges= explicitly"
    )


@dataclass(frozen=True)
class MonitorConfig:
    """Tunables of the metrics pipeline.

    Parameters
    ----------
    window_runs:
        Ring-buffer depth (in completed runs) of the sliding-window
        aggregators.  Part of the *analysis*, not of the execution: any
        value produces byte-identical campaign outputs.
    """

    window_runs: int = 4

    def __post_init__(self) -> None:
        require(
            isinstance(self.window_runs, int) and self.window_runs >= 1,
            f"window_runs must be an int >= 1, got {self.window_runs!r}",
        )


@dataclass(frozen=True)
class RunSample:
    """What one :func:`~repro.sim.run.simulate_run` call reported.

    One sample per executed shard; shards of the same (day, run) are
    re-assembled into a :class:`FleetRun` by :meth:`FleetMonitor.iter_runs`
    after the canonical-order merge.  Arrays are the run's *reported*
    measurements — the exact values that land in the result dataset.
    """

    day: int
    run_index: int
    gpu_indices: np.ndarray = field(repr=False)
    performance_ms: np.ndarray = field(repr=False)
    frequency_mhz: np.ndarray = field(repr=False)
    power_w: np.ndarray = field(repr=False)
    temperature_c: np.ndarray = field(repr=False)
    power_capped: np.ndarray = field(repr=False)
    thermally_capped: np.ndarray = field(repr=False)

    @property
    def n(self) -> int:
        """GPUs covered by this sample."""
        return int(self.gpu_indices.shape[0])


@dataclass(frozen=True)
class FleetRun:
    """One complete (day, run) with every shard's GPUs concatenated.

    ``gpu_indices`` ascends (plan order is node-ascending within a run),
    so fleet-level statistics — the run median, deviation fences — are
    well-defined and identical for every executor layout.
    """

    day: int
    run_index: int
    gpu_indices: np.ndarray = field(repr=False)
    performance_ms: np.ndarray = field(repr=False)
    frequency_mhz: np.ndarray = field(repr=False)
    power_w: np.ndarray = field(repr=False)
    temperature_c: np.ndarray = field(repr=False)
    power_capped: np.ndarray = field(repr=False)
    thermally_capped: np.ndarray = field(repr=False)

    @property
    def n(self) -> int:
        """GPUs measured in this run."""
        return int(self.gpu_indices.shape[0])


# ---------------------------------------------------------------------------
# sliding windows
# ---------------------------------------------------------------------------


class SlidingWindow:
    """Ring buffer over the last ``capacity`` pushes of ``n_series`` series.

    Backing store is one ``(n_series, capacity)`` array; each series keeps
    its own write position and fill count, so partially-covered fleets
    (``coverage < 1``) advance only the GPUs a run actually observed.
    Statistics are NaN for series with no observations yet.
    """

    def __init__(self, n_series: int, capacity: int) -> None:
        require(n_series >= 1, f"n_series must be >= 1, got {n_series}")
        require(capacity >= 1, f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._buffer = np.full((int(n_series), self.capacity), np.nan)
        self._pos = np.zeros(int(n_series), dtype=np.int64)
        self._count = np.zeros(int(n_series), dtype=np.int64)

    @property
    def n_series(self) -> int:
        """Number of parallel series."""
        return self._buffer.shape[0]

    @property
    def counts(self) -> np.ndarray:
        """Observations currently buffered per series (<= capacity)."""
        return self._count.copy()

    def push(self, values: np.ndarray, indices: np.ndarray | None = None) -> None:
        """Append one observation per (selected) series."""
        values = np.asarray(values, dtype=float).ravel()
        if indices is None:
            indices = np.arange(self.n_series)
        else:
            indices = np.asarray(indices).ravel()
        if values.shape[0] != indices.shape[0]:
            raise AnalysisError(
                f"push got {values.shape[0]} values for {indices.shape[0]} series"
            )
        pos = self._pos[indices]
        self._buffer[indices, pos] = values
        self._pos[indices] = (pos + 1) % self.capacity
        self._count[indices] = np.minimum(self._count[indices] + 1, self.capacity)

    def median(self) -> np.ndarray:
        """Per-series median over the buffered window (NaN if empty)."""
        out = np.full(self.n_series, np.nan)
        rows = np.flatnonzero(self._count > 0)
        if rows.size:
            out[rows] = np.nanmedian(self._buffer[rows], axis=1)
        return out

    def mean(self) -> np.ndarray:
        """Per-series mean over the buffered window (NaN if empty)."""
        out = np.full(self.n_series, np.nan)
        rows = np.flatnonzero(self._count > 0)
        if rows.size:
            out[rows] = np.nanmean(self._buffer[rows], axis=1)
        return out

    def series_stats(self) -> dict[str, np.ndarray]:
        """Per-series window statistics: mean/p5/p50/p95/iqr arrays."""
        n = self.n_series
        out = {
            key: np.full(n, np.nan) for key in ("mean", "p5", "p50", "p95", "iqr")
        }
        rows = np.flatnonzero(self._count > 0)
        if rows.size:
            block = self._buffer[rows]
            out["mean"][rows] = np.nanmean(block, axis=1)
            p5, q1, p50, q3, p95 = np.nanpercentile(
                block, [5, 25, 50, 75, 95], axis=1
            )
            out["p5"][rows] = p5
            out["p50"][rows] = p50
            out["p95"][rows] = p95
            out["iqr"][rows] = q3 - q1
        return out

    def pooled_stats(self) -> dict[str, float]:
        """Statistics over *all* buffered observations of every series.

        The fleet-wide "per window" aggregate: mean, p5/p50/p95, IQR, and
        the pooled observation count.  NaN statistics with nothing
        buffered.
        """
        pooled = self._buffer[np.isfinite(self._buffer)]
        if pooled.size == 0:
            return {
                "mean": float("nan"), "p5": float("nan"), "p50": float("nan"),
                "p95": float("nan"), "iqr": float("nan"), "n": 0.0,
            }
        p5, q1, p50, q3, p95 = (
            float(v) for v in np.percentile(pooled, [5, 25, 50, 75, 95])
        )
        return {
            "mean": float(pooled.mean()),
            "p5": p5,
            "p50": p50,
            "p95": p95,
            "iqr": q3 - q1,
            "n": float(pooled.size),
        }


# ---------------------------------------------------------------------------
# typed metric registry
# ---------------------------------------------------------------------------


class _Histogram:
    """Fixed-bucket histogram with an implicit ``+Inf`` overflow bucket."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if len(bounds) == 0 or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise AnalysisError("histogram bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.count = 0
        self.sum = 0.0

    def observe(self, values: np.ndarray) -> None:
        x = np.asarray(values, dtype=float).ravel()
        # bucket i holds values <= bounds[i]; past-the-end is +Inf.
        idx = np.searchsorted(self.bounds, x, side="left")
        np.add.at(self.bucket_counts, idx, 1)
        self.count += int(x.shape[0])
        self.sum += float(x.sum())


class MetricsRegistry:
    """Typed metric store: counters, per-GPU gauge vectors, histograms.

    Counters accumulate (ints stay exact under any merge order); gauges
    are set whole-vector at finalize time (last write wins); histograms
    have fixed, name-derived bucket bounds so any two registries observing
    the same campaign merge bucket-for-bucket.  ``help`` strings ride
    along for the Prometheus exposition.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, tuple[np.ndarray, tuple[str, ...] | None]] = {}
        self._histograms: dict[str, _Histogram] = {}
        self._help: dict[str, str] = {}

    # -- writing -------------------------------------------------------------

    def inc(self, name: str, value: int | float = 1, help: str = "") -> None:
        """Increment a counter."""
        self._counters[name] = self._counters.get(name, 0) + value
        if help:
            self._help.setdefault(name, help)

    def set_gauge(
        self,
        name: str,
        values: np.ndarray | float,
        labels: tuple[str, ...] | None = None,
        help: str = "",
    ) -> None:
        """Set a gauge: a scalar, or one value per GPU with ``labels``."""
        arr = np.atleast_1d(np.asarray(values, dtype=float))
        if labels is not None and len(labels) != arr.shape[0]:
            raise AnalysisError(
                f"gauge {name!r}: {arr.shape[0]} values, {len(labels)} labels"
            )
        self._gauges[name] = (arr, tuple(labels) if labels is not None else None)
        if help:
            self._help.setdefault(name, help)

    def observe(
        self,
        name: str,
        values: np.ndarray,
        edges: tuple[float, ...] | None = None,
        help: str = "",
    ) -> None:
        """Fold observations into the named histogram."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram(
                edges if edges is not None else _edges_for(name)
            )
            if help:
                self._help.setdefault(name, help)
        self._histograms[name].observe(values)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int | float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int | float]:
        """All counters, sorted by name."""
        return dict(sorted(self._counters.items()))

    def gauge(self, name: str) -> np.ndarray:
        """Value array of a gauge."""
        try:
            return self._gauges[name][0]
        except KeyError:
            raise AnalysisError(f"unknown gauge {name!r}") from None

    def gauge_labels(self, name: str) -> tuple[str, ...] | None:
        """Per-entry labels of a gauge (None for scalar gauges)."""
        return self._gauges[name][1]

    def histogram(self, name: str) -> dict[str, Any]:
        """Histogram snapshot: bounds, per-bucket counts, count, sum."""
        try:
            hist = self._histograms[name]
        except KeyError:
            raise AnalysisError(f"unknown histogram {name!r}") from None
        return {
            "bounds": hist.bounds,
            "bucket_counts": tuple(int(c) for c in hist.bucket_counts),
            "count": hist.count,
            "sum": hist.sum,
        }

    def metric_names(self) -> dict[str, str]:
        """Every registered metric name -> kind (counter/gauge/histogram)."""
        names: dict[str, str] = {}
        for name in self._counters:
            names[name] = "counter"
        for name in self._gauges:
            names[name] = "gauge"
        for name in self._histograms:
            names[name] = "histogram"
        return dict(sorted(names.items()))

    # -- merging -------------------------------------------------------------

    def to_payload(self) -> tuple[dict, dict, dict]:
        """Picklable snapshot of counters + histograms (+ help strings).

        Gauges are deliberately absent: they are derived at finalize time
        on the merged stream, never inside shards.
        """
        histograms = {
            name: (hist.bounds, tuple(int(c) for c in hist.bucket_counts),
                   hist.count, hist.sum)
            for name, hist in self._histograms.items()
        }
        return dict(self._counters), histograms, dict(self._help)

    def merge_payload(self, payload: tuple[dict, dict, dict]) -> None:
        """Fold a shard registry payload in: counters and buckets sum."""
        counters, histograms, help_strings = payload
        for name, value in sorted(counters.items()):
            self.inc(name, value)
        for name in sorted(histograms):
            bounds, bucket_counts, count, total = histograms[name]
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram(bounds)
            elif hist.bounds != tuple(bounds):
                raise AnalysisError(
                    f"histogram {name!r} bucket bounds differ across shards"
                )
            hist.bucket_counts += np.asarray(bucket_counts, dtype=np.int64)
            hist.count += count
            hist.sum += total
        for name, text in help_strings.items():
            self._help.setdefault(name, text)

    def help_for(self, name: str) -> str:
        """Help string registered for a metric ("" if none)."""
        return self._help.get(name, "")


# ---------------------------------------------------------------------------
# the monitor
# ---------------------------------------------------------------------------


class FleetMonitor:
    """Collects fleet telemetry for one observed execution.

    Mirrors :class:`~repro.obs.tracer.Tracer`'s lifecycle: passive until
    code runs under :func:`activate_monitor`; campaign executors create
    one short-lived monitor per shard and fold the payloads into the
    campaign monitor in canonical plan order, after which
    :meth:`finalize` derives the fleet-level registry (gauges, deviation
    histograms, sliding-window series) from the merged sample stream.

    Not thread-safe by design — activation is per-thread and each
    concurrently-executing shard gets its own instance.
    """

    def __init__(self, config: MonitorConfig | None = None) -> None:
        self.config = config if config is not None else MonitorConfig()
        self.registry = MetricsRegistry()
        self.samples: list[RunSample] = []
        #: Per-metric list of one pooled-window statistics dict per
        #: completed run (populated by :meth:`finalize`).
        self.window_series: dict[str, list[dict[str, float]]] = {}
        self.gpu_labels: tuple[str, ...] | None = None
        self._finalized = False

    # -- hook-facing API (called from instrumented simulator code) ----------

    def observe_run(
        self,
        *,
        day: int,
        run_index: int,
        gpu_indices: np.ndarray,
        performance_ms: np.ndarray,
        frequency_mhz: np.ndarray,
        power_w: np.ndarray,
        temperature_c: np.ndarray,
        power_capped: np.ndarray,
        thermally_capped: np.ndarray,
    ) -> None:
        """Record one finished run (shard): the reported measurement arrays."""
        self.samples.append(
            RunSample(
                day=int(day),
                run_index=int(run_index),
                gpu_indices=np.asarray(gpu_indices).copy(),
                performance_ms=performance_ms,
                frequency_mhz=frequency_mhz,
                power_w=power_w,
                temperature_c=temperature_c,
                power_capped=power_capped,
                thermally_capped=thermally_capped,
            )
        )
        n = int(np.asarray(gpu_indices).shape[0])
        self.registry.inc(
            "monitor_run_samples_total", 1,
            help="simulate_run calls observed (one per executed shard)",
        )
        self.registry.inc(
            "monitor_gpu_samples_total", n,
            help="per-GPU measurement samples observed",
        )

    def observe_solve(
        self, power_capped: np.ndarray, thermally_capped: np.ndarray
    ) -> None:
        """Record one DVFS steady-state solve's throttle outcome."""
        self.registry.inc(
            "solver_solves_total", 1,
            help="DVFS steady-state solves observed",
        )
        self.registry.inc(
            "solver_gpus_power_capped_total",
            int(np.count_nonzero(power_capped)),
            help="per-solve GPU count that settled power-capped",
        )
        self.registry.inc(
            "solver_gpus_thermally_capped_total",
            int(np.count_nonzero(thermally_capped)),
            help="per-solve GPU count that settled thermally capped",
        )

    def observe_engine_step(
        self,
        frequency_mhz: np.ndarray,
        power_w: np.ndarray,
        temperature_c: np.ndarray,
    ) -> None:
        """Record one transient-engine integration step's instantaneous state."""
        self.registry.inc(
            "engine_steps_total", 1, help="transient engine steps observed"
        )
        self.registry.observe(
            "engine_frequency_mhz", frequency_mhz,
            help="instantaneous SM frequency at engine steps",
        )
        self.registry.observe(
            "engine_power_w", power_w,
            help="instantaneous board power at engine steps",
        )
        self.registry.observe(
            "engine_temperature_c", temperature_c,
            help="instantaneous GPU temperature at engine steps",
        )

    # -- merging ------------------------------------------------------------

    def to_payload(self) -> tuple[tuple[RunSample, ...], tuple]:
        """Picklable snapshot: ``(samples, registry payload)``."""
        return tuple(self.samples), self.registry.to_payload()

    def merge_payload(
        self, payload: tuple[tuple[RunSample, ...], tuple]
    ) -> None:
        """Fold a shard payload in.

        Samples are appended in the order given — callers iterate payloads
        in canonical plan order, which is what makes every statistic
        derived from the stream independent of the worker layout.
        """
        samples, registry_payload = payload
        self.samples.extend(samples)
        self.registry.merge_payload(registry_payload)

    # -- the merged run stream ----------------------------------------------

    def iter_runs(self) -> Iterator[FleetRun]:
        """Complete runs, in campaign order, shards concatenated.

        Consecutive samples sharing (day, run_index) are one run split
        across shards; plan order guarantees they are adjacent and in
        ascending GPU order.
        """
        group: list[RunSample] = []
        for sample in self.samples:
            if group and (
                sample.day != group[0].day
                or sample.run_index != group[0].run_index
            ):
                yield self._assemble(group)
                group = []
            group.append(sample)
        if group:
            yield self._assemble(group)

    @staticmethod
    def _assemble(group: list[RunSample]) -> FleetRun:
        if len(group) == 1:
            s = group[0]
            return FleetRun(
                day=s.day, run_index=s.run_index, gpu_indices=s.gpu_indices,
                performance_ms=s.performance_ms, frequency_mhz=s.frequency_mhz,
                power_w=s.power_w, temperature_c=s.temperature_c,
                power_capped=s.power_capped,
                thermally_capped=s.thermally_capped,
            )
        return FleetRun(
            day=group[0].day,
            run_index=group[0].run_index,
            gpu_indices=np.concatenate([s.gpu_indices for s in group]),
            performance_ms=np.concatenate([s.performance_ms for s in group]),
            frequency_mhz=np.concatenate([s.frequency_mhz for s in group]),
            power_w=np.concatenate([s.power_w for s in group]),
            temperature_c=np.concatenate([s.temperature_c for s in group]),
            power_capped=np.concatenate([s.power_capped for s in group]),
            thermally_capped=np.concatenate(
                [s.thermally_capped for s in group]
            ),
        )

    @property
    def n_runs(self) -> int:
        """Complete runs in the merged stream."""
        return sum(1 for _ in self.iter_runs())

    # -- finalize ------------------------------------------------------------

    def finalize(self, gpu_labels: tuple[str, ...]) -> None:
        """Derive the fleet-level registry from the merged sample stream.

        Called once by the campaign executor after the canonical-order
        merge (idempotent).  Populates per-GPU gauges (last observed
        value and throttle residency), fleet histograms (including perf
        deviation from each run's fleet median), and the per-window
        sliding aggregates in :attr:`window_series`.
        """
        if self._finalized:
            return
        self._finalized = True
        self.gpu_labels = tuple(gpu_labels)
        n = len(self.gpu_labels)
        window = self.config.window_runs

        last = {
            "frequency_mhz": np.full(n, np.nan),
            "power_w": np.full(n, np.nan),
            "temperature_c": np.full(n, np.nan),
            "perf_deviation": np.full(n, np.nan),
        }
        windows = {name: SlidingWindow(n, window) for name in last}
        self.window_series = {name: [] for name in last}
        observed = np.zeros(n, dtype=np.int64)
        throttled = np.zeros(n, dtype=np.int64)
        n_runs = 0

        for run in self.iter_runs():
            n_runs += 1
            idx = run.gpu_indices
            if idx.shape[0] and int(idx.max()) >= n:
                raise AnalysisError(
                    f"run day={run.day} references GPU {int(idx.max())} but "
                    f"only {n} labels were given to finalize()"
                )
            med = float(np.median(run.performance_ms))
            if med <= 0.0:
                raise AnalysisError(
                    "cannot normalize perf deviation: non-positive run median"
                )
            values = {
                "frequency_mhz": run.frequency_mhz,
                "power_w": run.power_w,
                "temperature_c": run.temperature_c,
                "perf_deviation": run.performance_ms / med,
            }
            for name, arr in values.items():
                last[name][idx] = arr
                self.registry.observe(f"fleet_{name}", arr)
                windows[name].push(arr, idx)
                stats = windows[name].pooled_stats()
                stats["day"] = float(run.day)
                stats["run_index"] = float(run.run_index)
                self.window_series[name].append(stats)
            observed[idx] += 1
            throttled[idx] += (run.power_capped | run.thermally_capped).astype(
                np.int64
            )

        self.registry.inc(
            "monitor_runs_total", n_runs, help="complete runs in the stream"
        )
        gauge_help = {
            "frequency_mhz": "last reported SM frequency per GPU",
            "power_w": "last reported board power per GPU",
            "temperature_c": "last reported temperature per GPU",
            "perf_deviation": "last perf deviation from the run median per GPU",
        }
        for name, arr in last.items():
            self.registry.set_gauge(
                f"gpu_{name}", arr, labels=self.gpu_labels,
                help=gauge_help[name],
            )
        residency = np.full(n, np.nan)
        seen = observed > 0
        residency[seen] = throttled[seen] / observed[seen]
        self.registry.set_gauge(
            "gpu_throttle_residency", residency, labels=self.gpu_labels,
            help="fraction of observed runs the GPU settled capped "
                 "(power or thermal)",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FleetMonitor({len(self.samples)} samples, "
            f"{len(self.registry.metric_names())} metrics)"
        )


# ---------------------------------------------------------------------------
# Prometheus-style text exposition
# ---------------------------------------------------------------------------


def _fmt(value: float) -> str:
    """Exposition float formatting: shortest exact round-trip."""
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    source: "MetricsRegistry | FleetMonitor", namespace: str = "repro"
) -> str:
    """Render a registry (or a monitor's registry) as Prometheus text.

    Counters become ``<ns>_<name>``; per-GPU gauges emit one sample per
    labelled GPU (NaN entries — never-observed GPUs — are skipped);
    histograms emit cumulative ``_bucket{le=...}`` samples plus ``_sum``
    and ``_count``, Prometheus-style.  Output ordering is the registry's
    sorted metric order, so two registries with equal contents render to
    equal text (the equivalence tests compare exactly this).

    The exposition always ends with a trailing newline — the text format
    requires a final line feed, including for a registry with no metrics
    (or counters only), where the old code returned an unterminated (or
    empty) string that some scrapers reject.
    """
    registry = source.registry if isinstance(source, FleetMonitor) else source
    lines: list[str] = []
    names = registry.metric_names()
    for name, kind in names.items():
        full = f"{namespace}_{name}"
        help_text = registry.help_for(name)
        if help_text:
            lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} {kind}")
        if kind == "counter":
            lines.append(f"{full} {_fmt(float(registry.counter(name)))}")
        elif kind == "gauge":
            values = registry.gauge(name)
            labels = registry.gauge_labels(name)
            if labels is None:
                lines.append(f"{full} {_fmt(float(values[0]))}")
            else:
                for label, value in zip(labels, values):
                    if value != value:  # NaN: GPU never observed
                        continue
                    lines.append(f'{full}{{gpu="{label}"}} {_fmt(float(value))}')
        else:
            hist = registry.histogram(name)
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["bucket_counts"]):
                cumulative += count
                lines.append(
                    f'{full}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{full}_bucket{{le="+Inf"}} {hist["count"]}')
            lines.append(f"{full}_sum {_fmt(hist['sum'])}")
            lines.append(f"{full}_count {hist['count']}")
    return "".join(f"{line}\n" for line in lines) or "\n"


# ---------------------------------------------------------------------------
# per-thread activation
# ---------------------------------------------------------------------------

_STATE = threading.local()


def active_monitor() -> FleetMonitor | None:
    """The monitor active on *this* thread, or ``None`` (monitoring off).

    The single hook primitive, exactly like
    :func:`~repro.obs.tracer.active_tracer`: instrumented code does
    ``m = active_monitor()`` and branches on ``None``.  Thread-locality
    lets the thread-backend executor run shards concurrently, each under
    its own monitor.
    """
    return getattr(_STATE, "monitor", None)


@contextmanager
def activate_monitor(monitor: FleetMonitor) -> Iterator[FleetMonitor]:
    """Make ``monitor`` the active monitor on this thread for the block.

    Nestable: the previous monitor (if any) is restored on exit.
    """
    previous = getattr(_STATE, "monitor", None)
    _STATE.monitor = monitor
    try:
        yield monitor
    finally:
        _STATE.monitor = previous
