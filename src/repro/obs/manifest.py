"""Machine-readable campaign manifests for reproducibility audits.

Every campaign run with a manifest sink attached emits one
:class:`CampaignManifest`: the exact :class:`~repro.sim.campaign.CampaignConfig`
(plus its digest), the cluster identity, the RNG label hierarchy roots
every stream derives from, the steady-state solver mode, the shard plan
shape, the campaign-wide :class:`~repro.gpu.dvfs.SolverStats` totals, and
a digest of the canonical CSV serialization of the result.

The point is auditability *without re-execution*: two manifests with equal
``config_digest``, ``rng`` roots, solver mode, and cluster identity claim
the same campaign, and their ``result.digest_blake2b`` fields either agree
(reproduction verified) or pinpoint a divergence — no campaign re-run, no
fixture comparison.  ``campaign_config_from_manifest`` reconstructs the
exact :class:`~repro.sim.campaign.CampaignConfig` from a manifest entry.

Manifests validate against :data:`MANIFEST_SCHEMA`, a JSON-Schema-style
document checked by the dependency-free :func:`validate_manifest` (the
container image carries no ``jsonschema`` package; the subset validator
covers the object/array/scalar structure the schema uses).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ..config import config_from_dict, config_to_dict
from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - types only, avoids import cycles
    from ..cluster.cluster import Cluster
    from ..gpu.dvfs import SolverStats
    from ..sim.campaign import CampaignConfig
    from ..sim.parallel import ParallelConfig
    from ..telemetry.dataset import MeasurementDataset
    from ..workloads.base import Workload

__all__ = [
    "MANIFEST_SCHEMA",
    "SCHEMA_VERSION",
    "CampaignManifest",
    "Manifest",
    "build_campaign_manifest",
    "campaign_config_from_manifest",
    "read_manifest",
    "validate_manifest",
]

#: Version of the manifest document layout; bump on breaking changes.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CampaignManifest:
    """Everything needed to audit one campaign without re-running it.

    The nested dicts are deliberately plain (JSON-able scalars only) so an
    entry round-trips through :meth:`to_dict` / JSON unchanged.
    """

    cluster: dict[str, Any]
    workload: dict[str, Any]
    config: dict[str, Any]
    config_digest: str
    rng: dict[str, Any]
    solver: dict[str, Any]
    plan: dict[str, Any]
    result: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """The JSON-able document form of this entry."""
        return {
            "cluster": dict(self.cluster),
            "workload": dict(self.workload),
            "config": dict(self.config),
            "config_digest": self.config_digest,
            "rng": dict(self.rng),
            "solver": dict(self.solver),
            "plan": dict(self.plan),
            "result": dict(self.result),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignManifest":
        """Rebuild an entry from its document form."""
        return cls(
            cluster=dict(data["cluster"]),
            workload=dict(data["workload"]),
            config=dict(data["config"]),
            config_digest=str(data["config_digest"]),
            rng=dict(data["rng"]),
            solver=dict(data["solver"]),
            plan=dict(data["plan"]),
            result=dict(data["result"]),
        )


@dataclass
class Manifest:
    """A manifest file in the making: one entry per executed campaign.

    Pass an instance to :func:`repro.api.run_campaign` (or any facade
    function that runs campaigns — ``screen`` and ``sweep`` append several
    entries) and :meth:`write` it when done.
    """

    campaigns: list[CampaignManifest] = field(default_factory=list)

    def add(self, entry: CampaignManifest) -> None:
        """Append one campaign entry."""
        self.campaigns.append(entry)

    def to_dict(self) -> dict[str, Any]:
        """The complete JSON-able manifest document."""
        from .. import __version__

        return {
            "schema_version": SCHEMA_VERSION,
            "package_version": __version__,
            "campaigns": [entry.to_dict() for entry in self.campaigns],
        }

    def write(self, path: str | Path) -> Path:
        """Validate and write the manifest document as JSON."""
        doc = self.to_dict()
        validate_manifest(doc)
        path = Path(path)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True),
                        encoding="utf-8")
        return path


def read_manifest(path: str | Path) -> dict[str, Any]:
    """Load and validate a manifest document written by :meth:`Manifest.write`."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    validate_manifest(doc)
    return doc


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def build_campaign_manifest(
    cluster: "Cluster",
    workload: "Workload",
    config: "CampaignConfig",
    parallel: "ParallelConfig",
    n_shards: int,
    dataset: "MeasurementDataset",
    solver_stats: "SolverStats",
) -> CampaignManifest:
    """Assemble the manifest entry for one finished campaign.

    Called by :func:`repro.sim.parallel.execute_campaign` after the merge;
    the entry is a pure function of inputs that are themselves
    deterministic, so serial and parallel executions of the same campaign
    produce identical entries (including the result digest).
    """
    from ..telemetry.io import dataset_to_csv_text

    config_dict = config_to_dict(config)
    csv_text = dataset_to_csv_text(dataset)
    return CampaignManifest(
        cluster={
            "name": cluster.name,
            "seed": cluster.seed,
            "gpu_name": cluster.spec.name,
            "n_gpus": cluster.n_gpus,
            "n_nodes": cluster.n_nodes,
            "cooling": cluster.cooling.kind,
            "admin_access": cluster.admin_access,
            "run_noise_sigma": cluster.run_noise_sigma,
        },
        workload={
            "name": workload.name,
            "n_gpus": workload.n_gpus,
            "performance_metric": workload.performance_metric,
        },
        config=config_dict,
        config_digest=_digest(json.dumps(config_dict, sort_keys=True)),
        rng={
            # The complete label hierarchy every stream of the campaign
            # derives from (see repro.rng and repro.sim.run.run_rng_label).
            "master_seed": cluster.seed,
            "root_label": f"cluster-{cluster.name}",
            "derived_seed": cluster.rng_factory.seed,
            "day_label_format": "campaign-day-{day}",
            "run_label_format": "run-{workload}-day-{day}-idx-{run}",
            "shard_stream_format": "shard-{shard}-of-{n_shards}",
        },
        solver={
            "mode": cluster.fleet.controller.solver,
            "solves": solver_stats.solves,
            "batches": solver_stats.batches,
            "columns_evaluated": solver_stats.columns_evaluated,
            "dense_cells": solver_stats.dense_cells,
            "fixed_point_iterations": solver_stats.fixed_point_iterations,
        },
        plan={
            "n_shards": n_shards,
            "max_gpus_per_shard": parallel.max_gpus_per_shard,
        },
        result={
            "n_rows": dataset.n_rows,
            "columns": dataset.column_names,
            "digest_blake2b": _digest(csv_text),
        },
    )


def campaign_config_from_manifest(
    entry: CampaignManifest | Mapping[str, Any],
) -> "CampaignConfig":
    """Reconstruct the exact :class:`CampaignConfig` a manifest entry records.

    Accepts either a :class:`CampaignManifest` or its document (dict) form.
    The reconstruction is validated against the recorded ``config_digest``
    so a hand-edited manifest fails loudly instead of auditing the wrong
    campaign.
    """
    from ..sim.campaign import CampaignConfig

    if isinstance(entry, CampaignManifest):
        config_dict = dict(entry.config)
        digest = entry.config_digest
    else:
        config_dict = dict(entry["config"])
        digest = str(entry["config_digest"])
    recomputed = _digest(json.dumps(config_dict, sort_keys=True))
    if recomputed != digest:
        raise ConfigError(
            f"manifest config digest mismatch: recorded {digest}, "
            f"recomputed {recomputed} — the config block was altered"
        )
    return config_from_dict(CampaignConfig, config_dict)


# ---------------------------------------------------------------------------
# schema + dependency-free validation
# ---------------------------------------------------------------------------

_SOLVER_BLOCK = {
    "type": "object",
    "required": ["mode", "solves", "columns_evaluated", "dense_cells",
                 "fixed_point_iterations"],
    "properties": {
        "mode": {"type": "string", "enum": ["ladder", "fleet", "grid"]},
        "batches": {"type": "integer"},
        "solves": {"type": "integer"},
        "columns_evaluated": {"type": "integer"},
        "dense_cells": {"type": "integer"},
        "fixed_point_iterations": {"type": "integer"},
    },
}

#: JSON-Schema-style description of the manifest document.
MANIFEST_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["schema_version", "package_version", "campaigns"],
    "properties": {
        "schema_version": {"type": "integer"},
        "package_version": {"type": "string"},
        "campaigns": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["cluster", "workload", "config", "config_digest",
                             "rng", "solver", "plan", "result"],
                "properties": {
                    "cluster": {
                        "type": "object",
                        "required": ["name", "seed", "gpu_name", "n_gpus",
                                     "n_nodes", "cooling", "admin_access",
                                     "run_noise_sigma"],
                        "properties": {
                            "name": {"type": "string"},
                            "seed": {"type": "integer"},
                            "gpu_name": {"type": "string"},
                            "n_gpus": {"type": "integer"},
                            "n_nodes": {"type": "integer"},
                            "cooling": {"type": "string"},
                            "admin_access": {"type": "boolean"},
                            "run_noise_sigma": {"type": "number"},
                        },
                    },
                    "workload": {
                        "type": "object",
                        "required": ["name", "n_gpus", "performance_metric"],
                        "properties": {
                            "name": {"type": "string"},
                            "n_gpus": {"type": "integer"},
                            "performance_metric": {"type": "string"},
                        },
                    },
                    "config": {
                        "type": "object",
                        "required": ["days", "runs_per_day", "coverage",
                                     "power_limit_w"],
                        "properties": {
                            "days": {"type": "integer"},
                            "runs_per_day": {"type": "integer"},
                            "coverage": {"type": "number"},
                            "power_limit_w": {"type": ["number", "null"]},
                        },
                    },
                    "config_digest": {"type": "string"},
                    "rng": {
                        "type": "object",
                        "required": ["master_seed", "root_label",
                                     "derived_seed", "day_label_format",
                                     "run_label_format",
                                     "shard_stream_format"],
                        "properties": {
                            "master_seed": {"type": "integer"},
                            "root_label": {"type": "string"},
                            "derived_seed": {"type": "integer"},
                            "day_label_format": {"type": "string"},
                            "run_label_format": {"type": "string"},
                            "shard_stream_format": {"type": "string"},
                        },
                    },
                    "solver": _SOLVER_BLOCK,
                    "plan": {
                        "type": "object",
                        "required": ["n_shards", "max_gpus_per_shard"],
                        "properties": {
                            "n_shards": {"type": "integer"},
                            "max_gpus_per_shard": {
                                "type": ["integer", "null"]
                            },
                        },
                    },
                    "result": {
                        "type": "object",
                        "required": ["n_rows", "columns", "digest_blake2b"],
                        "properties": {
                            "n_rows": {"type": "integer"},
                            "columns": {
                                "type": "array",
                                "items": {"type": "string"},
                            },
                            "digest_blake2b": {"type": "string"},
                        },
                    },
                },
            },
        },
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; JSON distinguishes them.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_manifest(doc: Any, schema: Mapping[str, Any] | None = None) -> None:
    """Validate a manifest document against :data:`MANIFEST_SCHEMA`.

    Raises :class:`~repro.errors.ConfigError` naming the offending JSON
    path on the first violation.  Supports the schema subset the manifest
    uses: ``type`` (including type unions), ``required``, ``properties``,
    ``items``, and ``enum``.
    """
    _validate_node(doc, schema if schema is not None else MANIFEST_SCHEMA, "$")


def _validate_node(value: Any, schema: Mapping[str, Any], path: str) -> None:
    types = schema.get("type")
    if types is not None:
        allowed = types if isinstance(types, list) else [types]
        if not any(_TYPE_CHECKS[t](value) for t in allowed):
            raise ConfigError(
                f"manifest invalid at {path}: expected {'/'.join(allowed)}, "
                f"got {type(value).__name__}"
            )
    enum = schema.get("enum")
    if enum is not None and value not in enum:
        raise ConfigError(
            f"manifest invalid at {path}: {value!r} not in {enum}"
        )
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise ConfigError(
                    f"manifest invalid at {path}: missing required key {key!r}"
                )
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _validate_node(value[key], sub, f"{path}.{key}")
    if isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for i, element in enumerate(value):
                _validate_node(element, items, f"{path}[{i}]")
