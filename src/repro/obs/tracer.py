"""Hierarchical span tracer and low-overhead counters.

Design constraints (they shape everything here):

* **Zero perturbation.**  The tracer only ever *observes*: it reads clocks
  and increments Python integers.  It never draws from an RNG, never
  touches a float that feeds a measurement, and instrumented code paths
  are structurally identical with tracing on or off — which is why golden
  campaign fixtures pass byte-for-byte under ``--trace``.
* **Unmeasurable overhead when disabled.**  Hook sites call
  :func:`active_tracer` (a thread-local attribute read) and branch on
  ``None``; no object is allocated, no string is formatted.
* **Deterministic merging.**  The sharded campaign executors
  (:mod:`repro.sim.parallel`) give every shard its *own* tracer — in the
  worker that executes it — and merge the per-shard payloads into the
  campaign tracer in canonical plan order, exactly like result merging.
  Counter totals and span structure are therefore identical between
  serial and parallel executions of the same campaign; only wall-clock
  timestamps (which are observations, not results) differ.

Counters are namespaced with dots.  Most are execution-invariant —
``solver.*``, ``run.*``, ``campaign.*`` count work the physics performs,
which the executor layout cannot change.  Counters under the prefixes in
:data:`NONDETERMINISTIC_COUNTER_PREFIXES` (per-process memoization hits
such as ``cache.*``, see :meth:`repro.cluster.cluster.Cluster.fleet_slice`)
legitimately depend on how shards were scheduled across workers;
:meth:`Tracer.deterministic_counters` filters them for equivalence checks.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "NONDETERMINISTIC_COUNTER_PREFIXES",
    "SpanRecord",
    "Tracer",
    "activate",
    "active_tracer",
]

#: Counter namespaces whose totals legitimately vary with worker layout
#: (per-process caches warm differently depending on which worker executed
#: which shard).  Everything else must merge to identical totals.
NONDETERMINISTIC_COUNTER_PREFIXES = ("cache.",)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named, timed interval on a track.

    Attributes
    ----------
    name, category:
        What the span covers (``"campaign"``, ``"shard"``, ``"run"``,
        ``"solve"``, ...) and its coarse grouping for trace viewers.
    track:
        Timeline row the span belongs to (``"campaign"`` for the
        root, ``"day-000/run-000/shard-00"`` for shard-local spans).
        Within one track, hierarchy is expressed by time containment —
        exactly how Chrome-trace/Perfetto nest complete events.
    start_s:
        Wall-clock start (epoch seconds, ``time.time``-based) so spans
        recorded in different worker processes share one timeline.
    duration_s:
        Span length measured with ``time.perf_counter`` (monotonic,
        high-resolution).
    args:
        Sorted ``(key, value)`` pairs of JSON-able span attributes.
    """

    name: str
    category: str
    track: str
    start_s: float
    duration_s: float
    args: tuple[tuple[str, Any], ...] = ()

    @property
    def end_s(self) -> float:
        """Wall-clock end of the span (epoch seconds)."""
        return self.start_s + self.duration_s


class Tracer:
    """Collects spans and counters for one observed execution.

    A tracer is *passive* until code runs under :func:`activate`; the
    instrumentation hooks throughout the simulator then report into it.
    Campaign executors additionally create one short-lived tracer per
    shard (each on its own ``track``) and fold the results back with
    :meth:`merge_payload` in canonical order.

    Not thread-safe by design: activation is per-thread, and each
    concurrently-executing shard gets its own instance.  Merging happens
    on a single thread after execution.
    """

    def __init__(self, track: str = "campaign") -> None:
        self.track = track
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, int | float] = {}

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(
        self, name: str, category: str = "campaign", **args: Any
    ) -> Iterator[None]:
        """Record a span around the enclosed block (on this tracer's track)."""
        start = time.time()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record_span(
                name,
                category=category,
                track=self.track,
                start_s=start,
                duration_s=time.perf_counter() - t0,
                **args,
            )

    def record_span(
        self,
        name: str,
        *,
        category: str,
        track: str,
        start_s: float,
        duration_s: float,
        **args: Any,
    ) -> None:
        """Record an already-timed span (used for synthesized spans)."""
        self.spans.append(
            SpanRecord(
                name=name,
                category=category,
                track=track,
                start_s=start_s,
                duration_s=duration_s,
                args=tuple(sorted(args.items())),
            )
        )

    def add(self, counter: str, value: int | float = 1) -> None:
        """Increment a namespaced counter."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def gauge(self, counter: str, value: int | float) -> None:
        """Set a counter to an absolute value (last write wins on merge)."""
        self.counters[counter] = value

    # -- merging ------------------------------------------------------------

    def to_payload(self) -> tuple[tuple[SpanRecord, ...], dict[str, int | float]]:
        """A picklable snapshot: ``(spans, counters)``, plain tuples/dicts.

        This is what travels back from pool workers; it contains no locks,
        generators, or open resources.
        """
        return tuple(self.spans), dict(self.counters)

    def merge_payload(
        self, payload: tuple[tuple[SpanRecord, ...], dict[str, int | float]]
    ) -> None:
        """Fold a shard payload into this tracer.

        Spans are appended in the order given (callers iterate payloads in
        canonical plan order); counters are summed.  Calling this in the
        same order for any worker layout yields identical span sequences
        and counter totals.
        """
        spans, counters = payload
        self.spans.extend(spans)
        for name, value in sorted(counters.items()):
            self.add(name, value)

    # -- introspection ------------------------------------------------------

    def deterministic_counters(self) -> dict[str, int | float]:
        """Counters whose totals are invariant to worker count and backend."""
        return {
            name: value
            for name, value in sorted(self.counters.items())
            if not name.startswith(NONDETERMINISTIC_COUNTER_PREFIXES)
        }

    def span_index(self) -> dict[tuple[str, str], int]:
        """Multiset of ``(track, name)`` span keys — the structural skeleton.

        Two executions of the same campaign (any worker count) produce the
        same index; only timestamps inside the records differ.
        """
        index: dict[tuple[str, str], int] = {}
        for record in self.spans:
            key = (record.track, record.name)
            index[key] = index.get(key, 0) + 1
        return index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(track={self.track!r}, {len(self.spans)} spans, "
            f"{len(self.counters)} counters)"
        )


# ---------------------------------------------------------------------------
# per-thread activation
# ---------------------------------------------------------------------------

_STATE = threading.local()


def active_tracer() -> Tracer | None:
    """The tracer active on *this* thread, or ``None`` (tracing disabled).

    This is the single hook primitive: instrumented code does
    ``t = active_tracer()`` and branches on ``None``.  Thread-locality is
    load-bearing — the thread-backend campaign executor runs shards
    concurrently, each under its own tracer, without cross-talk.
    """
    return getattr(_STATE, "tracer", None)


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the active tracer on this thread for the block.

    Nestable: the previous tracer (if any) is restored on exit, so a
    shard tracer can be activated inside a campaign-level activation.
    """
    previous = getattr(_STATE, "tracer", None)
    _STATE.tracer = tracer
    try:
        yield tracer
    finally:
        _STATE.tracer = previous
