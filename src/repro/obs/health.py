"""Online fleet health classification: typed events, grades, reports.

The anomaly-detection half of the monitoring pipeline.  A
:class:`HealthTracker` consumes the merged run stream of a
:class:`~repro.obs.metrics.FleetMonitor` (or synthetic runs in tests) and
classifies every GPU against the fleet, using the exact statistics the
paper's operators used — Tukey fences over per-GPU medians
(:func:`~repro.core.outliers.flag_outlier_values`,
:func:`~repro.core.boxstats.tukey_fences`) — applied *incrementally* over
ring-buffer sliding windows instead of a finished dataset.

Event semantics (all computed over the last ``window_runs`` runs):

* ``CHRONIC_SLOW_OUTLIER`` — the GPU's window-median perf deviation sits
  above the fleet's upper Tukey fence (the paper's "sick but not dead"
  slow GPUs, Section V).
* ``THERMAL_RUNAWAY`` — the GPU's window-median temperature *residual*
  (vs the run's fleet median) is both a fence outlier and above an
  absolute margin (hot-runner defects, Fig. 22).
* ``STUCK_THROTTLE`` — near-permanent cap residency *and* a window-median
  frequency materially below the fleet's (a healthy fleet is routinely
  power-capped, so residency alone is not a defect signal).
* ``DEFECT_DRIFT`` — the GPU's deviation drifted a ratio above its own
  first-window baseline without (yet) crossing the fleet fence.
* ``RECOVERED`` — an open condition cleared and stayed clear.

Hysteresis: a condition must hold for ``open_after`` consecutive evaluated
runs to open (emit), and be absent for ``close_after`` consecutive runs to
close — transient throttles and single noisy runs do not flap events.

Determinism: runs are evaluated in campaign order and, within a run,
conditions in a fixed order and GPUs in ascending index order — the event
stream is bit-identical for any executor layout (pinned by
``tests/obs/test_monitor_equivalence.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from ..config import require, require_in_range
from ..errors import AnalysisError
from ..core.boxstats import tukey_fences
from ..core.outliers import OutlierAccumulator, flag_outlier_values
from .manifest import validate_manifest
from .metrics import FleetMonitor, SlidingWindow
from .timeline import active_recorder

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..cluster.topology import Topology

__all__ = [
    "GRADES",
    "HEALTH_REPORT_SCHEMA",
    "FleetHealthReport",
    "HealthEvent",
    "HealthEventKind",
    "HealthPolicy",
    "HealthTracker",
    "analyze_fleet_health",
    "build_health_report",
    "validate_health_report",
    "write_health_events",
]


class HealthEventKind(str, Enum):
    """Typed health-event kinds emitted by the tracker."""

    THERMAL_RUNAWAY = "THERMAL_RUNAWAY"
    STUCK_THROTTLE = "STUCK_THROTTLE"
    CHRONIC_SLOW_OUTLIER = "CHRONIC_SLOW_OUTLIER"
    DEFECT_DRIFT = "DEFECT_DRIFT"
    RECOVERED = "RECOVERED"


#: Condition kinds, in the fixed order they are evaluated each run (the
#: event stream's determinism depends on this order never varying).
_CONDITION_KINDS = (
    HealthEventKind.THERMAL_RUNAWAY,
    HealthEventKind.STUCK_THROTTLE,
    HealthEventKind.CHRONIC_SLOW_OUTLIER,
    HealthEventKind.DEFECT_DRIFT,
)

#: Health grades, worst-last; rollups report the worst grade per group.
GRADES = ("ok", "watch", "degraded", "critical")

#: Grade while a condition of this kind is open.
_GRADE_OF_OPEN = {
    HealthEventKind.THERMAL_RUNAWAY: "critical",
    HealthEventKind.STUCK_THROTTLE: "degraded",
    HealthEventKind.CHRONIC_SLOW_OUTLIER: "degraded",
    HealthEventKind.DEFECT_DRIFT: "watch",
}


@dataclass(frozen=True)
class HealthEvent:
    """One emitted health transition.

    ``value`` is the offending window statistic, ``threshold`` the limit
    it crossed (for ``RECOVERED``: the statistic and threshold of the
    condition that cleared, with the kind in ``details``).
    """

    kind: HealthEventKind
    gpu_index: int
    gpu_label: str
    day: int
    run_index: int
    value: float
    threshold: float
    details: tuple[tuple[str, Any], ...] = ()

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view (one line of the event log)."""
        return {
            "kind": self.kind.value,
            "gpu_index": self.gpu_index,
            "gpu_label": self.gpu_label,
            "day": self.day,
            "run_index": self.run_index,
            "value": self.value,
            "threshold": self.threshold,
            "details": dict(self.details),
        }


@dataclass(frozen=True)
class HealthPolicy:
    """Detection thresholds and hysteresis of the health tracker.

    Parameters
    ----------
    window_runs:
        Sliding-window depth in runs.
    min_window_runs:
        Runs a GPU must have in its window before it is evaluated.
    min_fleet:
        Minimum evaluable GPUs before fleet fences are computed at all.
    open_after, close_after:
        Hysteresis: consecutive condition-true runs to open an event,
        consecutive condition-false runs to close (``RECOVERED``).
    thermal_min_residual_c:
        Absolute floor (degC above the fleet median) for
        ``THERMAL_RUNAWAY`` — fence outliers within this margin are noise.
    stuck_residency:
        Window cap-residency at or above which a GPU is throttle-stuck...
    stuck_frequency_margin:
        ...provided its window-median frequency is also this fraction
        below the fleet's window median.
    drift_ratio:
        ``DEFECT_DRIFT`` when window-median deviation exceeds the GPU's
        own baseline times this ratio.
    """

    window_runs: int = 4
    min_window_runs: int = 2
    min_fleet: int = 8
    open_after: int = 2
    close_after: int = 2
    thermal_min_residual_c: float = 5.0
    stuck_residency: float = 0.9
    stuck_frequency_margin: float = 0.04
    drift_ratio: float = 1.05

    def __post_init__(self) -> None:
        require(
            isinstance(self.window_runs, int) and self.window_runs >= 1,
            f"window_runs must be an int >= 1, got {self.window_runs!r}",
        )
        require(
            isinstance(self.min_window_runs, int)
            and 1 <= self.min_window_runs <= self.window_runs,
            "min_window_runs must be an int in [1, window_runs], "
            f"got {self.min_window_runs!r}",
        )
        require(self.min_fleet >= 4, "min_fleet must be >= 4")
        require(self.open_after >= 1, "open_after must be >= 1")
        require(self.close_after >= 1, "close_after must be >= 1")
        require(
            self.thermal_min_residual_c >= 0.0,
            "thermal_min_residual_c must be >= 0",
        )
        require_in_range(self.stuck_residency, 0.0, 1.0, "stuck_residency")
        require_in_range(
            self.stuck_frequency_margin, 0.0, 1.0, "stuck_frequency_margin"
        )
        require(self.drift_ratio > 1.0, "drift_ratio must be > 1")

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "window_runs": self.window_runs,
            "min_window_runs": self.min_window_runs,
            "min_fleet": self.min_fleet,
            "open_after": self.open_after,
            "close_after": self.close_after,
            "thermal_min_residual_c": self.thermal_min_residual_c,
            "stuck_residency": self.stuck_residency,
            "stuck_frequency_margin": self.stuck_frequency_margin,
            "drift_ratio": self.drift_ratio,
        }


class HealthTracker:
    """Incremental per-GPU health classifier over a run stream.

    Feed :meth:`observe_run` one complete run at a time (campaign order).
    Events accumulate in :attr:`events`; :meth:`grades` gives the current
    per-GPU classification.  All state lives in fixed-size ring buffers
    and integer streak arrays — memory is O(n_gpus * window_runs)
    regardless of campaign length.
    """

    def __init__(
        self,
        gpu_labels: Iterable[str],
        policy: HealthPolicy | None = None,
    ) -> None:
        self.gpu_labels = tuple(str(label) for label in gpu_labels)
        n = len(self.gpu_labels)
        require(n >= 1, "HealthTracker needs at least one GPU label")
        self.policy = policy if policy is not None else HealthPolicy()
        w = self.policy.window_runs
        self._dev = SlidingWindow(n, w)
        self._resid = SlidingWindow(n, w)
        self._freq = SlidingWindow(n, w)
        self._throttle = SlidingWindow(n, w)
        self._baseline = np.full(n, np.nan)
        self._streak_true = {
            kind: np.zeros(n, dtype=np.int64) for kind in _CONDITION_KINDS
        }
        self._streak_false = {
            kind: np.zeros(n, dtype=np.int64) for kind in _CONDITION_KINDS
        }
        self._open = {
            kind: np.zeros(n, dtype=bool) for kind in _CONDITION_KINDS
        }
        self._ever_flagged = np.zeros(n, dtype=bool)
        #: Fleet outlier reports accumulated window-by-window — the
        #: streaming twin of :func:`~repro.core.outliers.persistent_outliers`.
        self.outlier_accumulator = OutlierAccumulator()
        self.events: list[HealthEvent] = []
        self.runs_observed = 0

    @property
    def n_gpus(self) -> int:
        """GPUs tracked."""
        return len(self.gpu_labels)

    # -- ingestion -----------------------------------------------------------

    def observe_run(
        self,
        *,
        day: int,
        run_index: int,
        gpu_indices: np.ndarray,
        performance_ms: np.ndarray,
        frequency_mhz: np.ndarray,
        temperature_c: np.ndarray,
        power_capped: np.ndarray,
        thermally_capped: np.ndarray,
    ) -> list[HealthEvent]:
        """Ingest one complete run and return the events it emitted."""
        idx = np.asarray(gpu_indices).ravel()
        if idx.shape[0] == 0:
            return []
        if int(idx.max()) >= self.n_gpus:
            raise AnalysisError(
                f"run references GPU {int(idx.max())} but tracker has "
                f"{self.n_gpus} labels"
            )
        perf = np.asarray(performance_ms, dtype=float).ravel()
        med = float(np.median(perf))
        if med <= 0.0:
            raise AnalysisError("run median performance must be positive")
        temp = np.asarray(temperature_c, dtype=float).ravel()
        capped = (
            np.asarray(power_capped, dtype=bool)
            | np.asarray(thermally_capped, dtype=bool)
        )
        self._dev.push(perf / med, idx)
        self._resid.push(temp - float(np.median(temp)), idx)
        self._freq.push(np.asarray(frequency_mhz, dtype=float).ravel(), idx)
        self._throttle.push(capped.astype(float), idx)
        self.runs_observed += 1
        return self._evaluate(int(day), int(run_index), idx)

    def observe_monitor(self, monitor: FleetMonitor) -> list[HealthEvent]:
        """Ingest every complete run of a merged monitor, in order."""
        emitted: list[HealthEvent] = []
        for run in monitor.iter_runs():
            emitted.extend(
                self.observe_run(
                    day=run.day,
                    run_index=run.run_index,
                    gpu_indices=run.gpu_indices,
                    performance_ms=run.performance_ms,
                    frequency_mhz=run.frequency_mhz,
                    temperature_c=run.temperature_c,
                    power_capped=run.power_capped,
                    thermally_capped=run.thermally_capped,
                )
            )
        return emitted

    # -- detection -----------------------------------------------------------

    def _evaluate(
        self, day: int, run_index: int, idx: np.ndarray
    ) -> list[HealthEvent]:
        p = self.policy
        n = self.n_gpus
        counts = self._dev.counts
        valid = counts >= p.min_window_runs
        if int(valid.sum()) < p.min_fleet:
            return []
        labels = np.asarray(self.gpu_labels, dtype=object)

        dev_med = self._dev.median()
        resid_med = self._resid.median()
        freq_med = self._freq.median()
        residency = self._throttle.mean()

        # Chronic slow: fleet Tukey fence over window-median deviations —
        # the streaming form of flag_outlier_gpus, window by window.
        report = flag_outlier_values(
            dev_med[valid], labels[valid], metric="perf_deviation"
        )
        self.outlier_accumulator.add(report)
        chronic = valid & (dev_med > report.stats.fence_hi)

        # Thermal runaway: residual fence + absolute margin.
        _, _, _, _, resid_hi = tukey_fences(resid_med[valid])
        thermal_floor = max(resid_hi, p.thermal_min_residual_c)
        thermal = valid & (resid_med > thermal_floor)

        # Stuck throttle: capped nearly always *and* materially slow clocks.
        fleet_freq = float(np.median(freq_med[valid]))
        freq_floor = fleet_freq * (1.0 - p.stuck_frequency_margin)
        stuck = valid & (residency >= p.stuck_residency) & (freq_med < freq_floor)

        # Drift vs own baseline (first full window), short of the fence.
        full = counts >= p.window_runs
        fresh = full & np.isnan(self._baseline)
        self._baseline[fresh] = dev_med[fresh]
        has_base = ~np.isnan(self._baseline)
        drift_limit = np.where(has_base, self._baseline * p.drift_ratio, np.inf)
        drift = valid & has_base & (dev_med > drift_limit) & ~chronic

        observed = np.zeros(n, dtype=bool)
        observed[idx] = True
        conditions = {
            HealthEventKind.THERMAL_RUNAWAY: (
                thermal, resid_med, np.full(n, thermal_floor)
            ),
            HealthEventKind.STUCK_THROTTLE: (
                stuck, residency, np.full(n, p.stuck_residency)
            ),
            HealthEventKind.CHRONIC_SLOW_OUTLIER: (
                chronic, dev_med, np.full(n, report.stats.fence_hi)
            ),
            HealthEventKind.DEFECT_DRIFT: (drift, dev_med, drift_limit),
        }
        emitted: list[HealthEvent] = []
        for kind in _CONDITION_KINDS:
            mask, values, thresholds = conditions[kind]
            s_true = self._streak_true[kind]
            s_false = self._streak_false[kind]
            hit = observed & mask
            miss = observed & ~mask
            s_true[hit] += 1
            s_false[hit] = 0
            s_false[miss] += 1
            s_true[miss] = 0
            is_open = self._open[kind]
            opening = np.flatnonzero(
                hit & ~is_open & (s_true >= p.open_after)
            )
            for g in opening:
                is_open[g] = True
                self._ever_flagged[g] = True
                emitted.append(
                    HealthEvent(
                        kind=kind,
                        gpu_index=int(g),
                        gpu_label=self.gpu_labels[g],
                        day=day,
                        run_index=run_index,
                        value=float(values[g]),
                        threshold=float(thresholds[g]),
                        details=(("streak", int(s_true[g])),),
                    )
                )
            closing = np.flatnonzero(
                miss & is_open & (s_false >= p.close_after)
            )
            for g in closing:
                is_open[g] = False
                emitted.append(
                    HealthEvent(
                        kind=HealthEventKind.RECOVERED,
                        gpu_index=int(g),
                        gpu_label=self.gpu_labels[g],
                        day=day,
                        run_index=run_index,
                        value=float(values[g]),
                        threshold=float(thresholds[g]),
                        details=(("cleared", kind.value),),
                    )
                )
        self.events.extend(emitted)
        recorder = active_recorder()
        if recorder is not None:
            for event in emitted:
                recorder.record(
                    "health",
                    event.kind.value,
                    event.gpu_label,
                    gpu_index=event.gpu_index,
                    day=event.day,
                    run_index=event.run_index,
                    value=event.value,
                    threshold=event.threshold,
                    **dict(event.details),
                )
        return emitted

    # -- classification ------------------------------------------------------

    def open_conditions(self, gpu_index: int) -> tuple[HealthEventKind, ...]:
        """Conditions currently open for one GPU, in evaluation order."""
        return tuple(
            kind for kind in _CONDITION_KINDS if self._open[kind][gpu_index]
        )

    def grades(self) -> tuple[str, ...]:
        """Current per-GPU health grade (see :data:`GRADES`)."""
        out = []
        for g in range(self.n_gpus):
            grade = "ok"
            for kind in _CONDITION_KINDS:
                if self._open[kind][g]:
                    candidate = _GRADE_OF_OPEN[kind]
                    if GRADES.index(candidate) > GRADES.index(grade):
                        grade = candidate
            if grade == "ok" and self._ever_flagged[g]:
                grade = "watch"  # recovered once: keep an eye on it
            out.append(grade)
        return tuple(out)


# ---------------------------------------------------------------------------
# fleet health report
# ---------------------------------------------------------------------------

#: JSON schema of :meth:`FleetHealthReport.to_dict`, validated with the
#: same dependency-free validator the campaign manifests use.
HEALTH_REPORT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "schema_version", "cluster", "n_gpus", "runs_observed", "policy",
        "grade_counts", "gpus", "nodes", "events_total", "events_by_kind",
    ],
    "properties": {
        "schema_version": {"type": "integer"},
        "cluster": {"type": "string"},
        "n_gpus": {"type": "integer"},
        "runs_observed": {"type": "integer"},
        "policy": {"type": "object"},
        "grade_counts": {
            "type": "object",
            "required": list(GRADES),
            "properties": {grade: {"type": "integer"} for grade in GRADES},
        },
        "gpus": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "gpu_label", "gpu_index", "node_label", "grade",
                    "open_conditions", "events",
                ],
                "properties": {
                    "gpu_label": {"type": "string"},
                    "gpu_index": {"type": "integer"},
                    "node_label": {"type": "string"},
                    "grade": {"type": "string", "enum": list(GRADES)},
                    "open_conditions": {
                        "type": "array", "items": {"type": "string"},
                    },
                    "events": {"type": "integer"},
                },
            },
        },
        "nodes": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["node_label", "worst", "grade_counts"],
                "properties": {
                    "node_label": {"type": "string"},
                    "worst": {"type": "string", "enum": list(GRADES)},
                    "grade_counts": {"type": "object"},
                },
            },
        },
        "rows": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["row_label", "worst", "grade_counts"],
            },
        },
        "events_total": {"type": "integer"},
        "events_by_kind": {"type": "object"},
    },
}


def validate_health_report(doc: dict[str, Any]) -> None:
    """Validate a health-report document against its schema (raises)."""
    validate_manifest(doc, HEALTH_REPORT_SCHEMA)


@dataclass(frozen=True)
class FleetHealthReport:
    """Fleet health snapshot: per-GPU grades plus topology rollups.

    ``gpus`` lists only non-``ok`` GPUs (a Summit-scale fleet is mostly
    healthy; the report stays proportional to the *problem*, not the
    fleet).  ``nodes`` and ``rows`` roll grades up by
    :class:`~repro.cluster.topology.Topology` groups, again only where
    something is wrong.
    """

    cluster: str
    n_gpus: int
    runs_observed: int
    policy: HealthPolicy
    grades: tuple[str, ...]
    gpu_entries: tuple[dict[str, Any], ...]
    node_entries: tuple[dict[str, Any], ...]
    row_entries: tuple[dict[str, Any], ...]
    events_total: int
    events_by_kind: dict[str, int]

    def grade_counts(self) -> dict[str, int]:
        """Fleet-wide GPU count per grade."""
        counts = {grade: 0 for grade in GRADES}
        for grade in self.grades:
            counts[grade] += 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable view conforming to :data:`HEALTH_REPORT_SCHEMA`."""
        doc = {
            "schema_version": 1,
            "cluster": self.cluster,
            "n_gpus": self.n_gpus,
            "runs_observed": self.runs_observed,
            "policy": self.policy.as_dict(),
            "grade_counts": self.grade_counts(),
            "gpus": [dict(entry) for entry in self.gpu_entries],
            "nodes": [dict(entry) for entry in self.node_entries],
            "events_total": self.events_total,
            "events_by_kind": dict(self.events_by_kind),
        }
        if self.row_entries:
            doc["rows"] = [dict(entry) for entry in self.row_entries]
        return doc

    def write_json(self, path: str | Path) -> None:
        """Write the validated JSON document."""
        doc = self.to_dict()
        validate_health_report(doc)
        Path(path).write_text(json.dumps(doc, indent=2) + "\n")

    def render(self) -> str:
        """Terminal table: grade summary, then one row per unhealthy GPU."""
        counts = self.grade_counts()
        lines = [
            f"fleet health: {self.cluster} — {self.n_gpus} GPUs, "
            f"{self.runs_observed} runs",
            "  " + "  ".join(
                f"{grade}={counts[grade]}" for grade in GRADES
            ),
        ]
        if self.events_total:
            by_kind = ", ".join(
                f"{kind}: {count}"
                for kind, count in sorted(self.events_by_kind.items())
            )
            lines.append(f"  events: {self.events_total} ({by_kind})")
        if not self.gpu_entries:
            lines.append("  all GPUs healthy")
            return "\n".join(lines) + "\n"
        header = f"  {'gpu':<20} {'node':<14} {'grade':<9} conditions"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for entry in self.gpu_entries:
            conds = ",".join(entry["open_conditions"]) or "-"
            lines.append(
                f"  {entry['gpu_label']:<20} {entry['node_label']:<14} "
                f"{entry['grade']:<9} {conds}"
            )
        return "\n".join(lines) + "\n"


def _rollup(
    group_of_gpu: np.ndarray,
    group_labels: tuple[str, ...],
    grades: tuple[str, ...],
    label_key: str,
) -> tuple[dict[str, Any], ...]:
    """Worst-grade + counts per topology group, unhealthy groups only."""
    entries = []
    for group_index, group_label in enumerate(group_labels):
        member_grades = [
            grades[g] for g in np.flatnonzero(group_of_gpu == group_index)
        ]
        if not member_grades or all(g == "ok" for g in member_grades):
            continue
        counts: dict[str, int] = {}
        for grade in member_grades:
            counts[grade] = counts.get(grade, 0) + 1
        worst = max(member_grades, key=GRADES.index)
        entries.append(
            {label_key: group_label, "worst": worst, "grade_counts": counts}
        )
    return tuple(entries)


def build_health_report(
    tracker: HealthTracker,
    topology: "Topology",
) -> FleetHealthReport:
    """Assemble the fleet report from a tracker and the machine topology."""
    if tracker.n_gpus != topology.n_gpus:
        raise AnalysisError(
            f"tracker has {tracker.n_gpus} GPUs, topology {topology.n_gpus}"
        )
    grades = tracker.grades()
    node_of_gpu = topology.node_of_gpu
    events_per_gpu: dict[int, int] = {}
    events_by_kind: dict[str, int] = {}
    for event in tracker.events:
        events_per_gpu[event.gpu_index] = (
            events_per_gpu.get(event.gpu_index, 0) + 1
        )
        events_by_kind[event.kind.value] = (
            events_by_kind.get(event.kind.value, 0) + 1
        )
    gpu_entries = tuple(
        {
            "gpu_label": tracker.gpu_labels[g],
            "gpu_index": int(g),
            "node_label": topology.node_labels[node_of_gpu[g]],
            "grade": grades[g],
            "open_conditions": [
                kind.value for kind in tracker.open_conditions(g)
            ],
            "events": events_per_gpu.get(g, 0),
        }
        for g in range(tracker.n_gpus)
        if grades[g] != "ok"
    )
    node_entries = _rollup(
        node_of_gpu, topology.node_labels, grades, "node_label"
    )
    row_entries: tuple[dict[str, Any], ...] = ()
    if topology.has_grid and topology.row_labels is not None:
        row_entries = _rollup(
            topology.row_of_gpu, topology.row_labels, grades, "row_label"
        )
    return FleetHealthReport(
        cluster=topology.cluster_name,
        n_gpus=tracker.n_gpus,
        runs_observed=tracker.runs_observed,
        policy=tracker.policy,
        grades=grades,
        gpu_entries=gpu_entries,
        node_entries=node_entries,
        row_entries=row_entries,
        events_total=len(tracker.events),
        events_by_kind=events_by_kind,
    )


def analyze_fleet_health(
    monitor: FleetMonitor,
    topology: "Topology",
    policy: HealthPolicy | None = None,
) -> tuple[HealthTracker, FleetHealthReport]:
    """Run the health tracker over a merged monitor's run stream.

    The one-call entry point behind ``repro monitor`` and
    :func:`repro.api.monitor_fleet`: builds a tracker for the topology,
    replays the monitor's complete runs in campaign order, and returns
    the tracker (events, open conditions) plus the assembled report.
    """
    tracker = HealthTracker(topology.gpu_labels, policy=policy)
    tracker.observe_monitor(monitor)
    return tracker, build_health_report(tracker, topology)


def write_health_events(
    events: Iterable[HealthEvent], path: str | Path
) -> None:
    """Write health events as JSON Lines (one event object per line)."""
    with open(path, "w", encoding="utf-8") as sink:
        for event in events:
            json.dump(event.as_dict(), sink, separators=(",", ":"))
            sink.write("\n")
