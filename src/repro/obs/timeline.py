"""Unified flight recorder: one byte-stable event timeline across layers.

The timeline is the fourth observability surface next to tracing
(:mod:`repro.obs.tracer`), monitoring (:mod:`repro.obs.metrics`) and health
(:mod:`repro.obs.health`).  Every layer of the stack appends typed events to
one canonical stream:

* ``campaign`` — campaign lifecycle and shard plan (``repro.sim.parallel``)
* ``sim`` — per-run solver outcomes (``repro.sim.run``)
* ``health`` — anomaly open/close transitions (``repro.obs.health``)
* ``sched`` — job submit/start/finish dispatch (``repro.sched.engine``)
* ``service`` — request admission and coalescing (``repro.service``)
* ``chaos`` — fault-injection declarations and scorecards (``repro.chaos``)

Events carry **no wall-clock timestamps**.  Ordering is a monotone logical
clock (``seq``) assigned after shard payloads are merged in canonical plan
order, so a recorded timeline is byte-identical at any worker count and
across repeated invocations with the same seed — the same guarantee the
tracer and monitor already provide for spans and metrics.

Hook protocol mirrors the tracer: hot paths call :func:`active_recorder`
(a thread-local lookup returning ``None`` when recording is off) and only
pay for event construction when a recorder is activated via
:func:`activate_recorder`.
"""

from __future__ import annotations

import hashlib
import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "TIMELINE_LAYERS",
    "TimelineError",
    "TimelineEvent",
    "TimelineRecorder",
    "active_recorder",
    "activate_recorder",
    "canonical_digest",
    "measurement_digest",
    "timeline_lines",
    "write_timeline",
    "read_timeline",
    "validate_timeline_event",
]

TIMELINE_SCHEMA_VERSION = 1

#: Layers allowed in ``TimelineEvent.layer``, in stack order.
TIMELINE_LAYERS = ("campaign", "sim", "health", "sched", "service", "chaos")


class TimelineError(ValueError):
    """Raised for malformed timelines or events."""


def canonical_json(doc: Any) -> str:
    """The canonical JSON encoding used for every timeline line."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def canonical_digest(text: str) -> str:
    """Short stable digest of ``text`` (blake2b-128 hexdigest)."""
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def measurement_digest(*arrays: Any) -> str:
    """Digest of raw measurement arrays (bit-exact, dtype-preserving)."""
    h = hashlib.blake2b(digest_size=16)
    for arr in arrays:
        h.update(arr.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class TimelineEvent:
    """One record on the unified timeline.

    ``seq`` is the monotone logical clock — assigned when shard payloads are
    merged in plan order, not when the event was recorded.  ``entity`` names
    the subject (a gpu label, job id, request digest, cluster name, ...) and
    ``payload`` holds the layer-specific typed fields.
    """

    seq: int
    layer: str
    kind: str
    entity: str
    payload: tuple[tuple[str, Any], ...] = ()

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view (one line of the serialized timeline)."""
        return {
            "seq": self.seq,
            "layer": self.layer,
            "kind": self.kind,
            "entity": self.entity,
            "payload": dict(self.payload),
        }

    def value(self, key: str, default: Any = None) -> Any:
        """The payload entry named ``key``, or ``default`` when absent."""
        for name, val in self.payload:
            if name == key:
                return val
        return default


def _freeze_payload(payload: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(payload.items()))


class TimelineRecorder:
    """Collects timeline events; merge-friendly and optionally streaming.

    In the default (buffered) mode events accumulate in memory; shard-local
    recorders ship their buffers back via :meth:`to_payload` and the
    campaign-level recorder folds them in plan order with
    :meth:`merge_payload`.  Long-lived processes (the service) can instead
    pass ``stream`` — an open text file — to write each event line
    immediately without retaining it.
    """

    def __init__(self, *, stream: Any | None = None) -> None:
        self._events: list[tuple[str, str, str, tuple[tuple[str, Any], ...]]] = []
        self._stream = stream
        self._next_seq = 0
        if stream is not None:
            stream.write(canonical_json(_header_doc()) + "\n")
            stream.flush()

    # -- recording -------------------------------------------------------------

    def record(self, layer: str, kind: str, entity: str, **payload: Any) -> int:
        """Append one event; returns its provisional sequence number."""
        if layer not in TIMELINE_LAYERS:
            raise TimelineError(
                f"unknown layer {layer!r}; expected one of {TIMELINE_LAYERS}"
            )
        event = (layer, kind, entity, _freeze_payload(payload))
        seq = self._next_seq
        self._next_seq += 1
        if self._stream is not None:
            line = canonical_json(
                TimelineEvent(seq, *event).as_dict()
            )
            self._stream.write(line + "\n")
            self._stream.flush()
        else:
            self._events.append(event)
        return seq

    @property
    def n_events(self) -> int:
        return self._next_seq

    def events(self) -> tuple[TimelineEvent, ...]:
        """Buffered events with final sequence numbers assigned in order."""
        return tuple(
            TimelineEvent(seq, layer, kind, entity, payload)
            for seq, (layer, kind, entity, payload) in enumerate(self._events)
        )

    # -- shard merge protocol (mirrors Tracer/MetricsRegistry) ----------------

    def to_payload(self) -> tuple[tuple[str, str, str, tuple], ...]:
        """Picklable snapshot of buffered events for cross-process merge."""
        return tuple(self._events)

    def merge_payload(
        self, payload: Iterable[tuple[str, str, str, tuple]]
    ) -> None:
        """Fold a shard payload in, preserving the given (plan) order."""
        for layer, kind, entity, event_payload in payload:
            self._events.append((layer, kind, entity, tuple(event_payload)))
            self._next_seq += 1

    def digest(self) -> str:
        """Digest over the canonical serialized timeline."""
        return canonical_digest("\n".join(timeline_lines(self)))


# -- thread-local activation (same pattern as tracer/metrics) ------------------

_STATE = threading.local()


def active_recorder() -> TimelineRecorder | None:
    """The recorder activated on this thread, or ``None``.

    Hot paths call this once per event site; when recording is off it is a
    single attribute lookup.
    """
    return getattr(_STATE, "recorder", None)


@contextmanager
def activate_recorder(recorder: TimelineRecorder | None) -> Iterator[None]:
    """Make ``recorder`` the active recorder for this thread (nestable)."""
    previous = getattr(_STATE, "recorder", None)
    _STATE.recorder = recorder
    try:
        yield
    finally:
        _STATE.recorder = previous


# -- serialization -------------------------------------------------------------


def _header_doc() -> dict[str, Any]:
    return {"schema_version": TIMELINE_SCHEMA_VERSION, "stream": "repro.timeline"}


def timeline_lines(recorder: TimelineRecorder) -> list[str]:
    """Canonical JSONL lines: one header line, then one line per event."""
    lines = [canonical_json(_header_doc())]
    lines.extend(canonical_json(event.as_dict()) for event in recorder.events())
    return lines


def write_timeline(recorder: TimelineRecorder, path: Any) -> int:
    """Write the timeline as JSON Lines; returns the number of events."""
    lines = timeline_lines(recorder)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines) - 1


def validate_timeline_event(doc: Mapping[str, Any]) -> None:
    """Validate one parsed event line (dependency-free, like manifests)."""
    if not isinstance(doc, Mapping):
        raise TimelineError(f"event must be an object, got {type(doc).__name__}")
    for key, typ in (("seq", int), ("layer", str), ("kind", str), ("entity", str)):
        if key not in doc:
            raise TimelineError(f"event missing required key {key!r}")
        if not isinstance(doc[key], typ) or isinstance(doc[key], bool):
            raise TimelineError(
                f"event key {key!r} must be {typ.__name__}, "
                f"got {type(doc[key]).__name__}"
            )
    if doc["layer"] not in TIMELINE_LAYERS:
        raise TimelineError(f"unknown layer {doc['layer']!r}")
    if doc["seq"] < 0:
        raise TimelineError("seq must be non-negative")
    if not isinstance(doc.get("payload", {}), Mapping):
        raise TimelineError("payload must be an object")


def read_timeline(path: Any) -> tuple[dict[str, Any], tuple[TimelineEvent, ...]]:
    """Parse a timeline file; returns ``(header, events)``.

    Validates the header schema version and every event line; events must be
    in strictly increasing ``seq`` order.
    """
    with open(path, "r", encoding="utf-8") as fh:
        raw_lines = [line for line in fh.read().splitlines() if line]
    if not raw_lines:
        raise TimelineError(f"empty timeline file: {path}")
    try:
        header = json.loads(raw_lines[0])
    except json.JSONDecodeError as exc:
        raise TimelineError(f"malformed timeline header: {exc}") from exc
    if not isinstance(header, dict) or "schema_version" not in header:
        raise TimelineError("timeline header missing schema_version")
    if header["schema_version"] != TIMELINE_SCHEMA_VERSION:
        raise TimelineError(
            f"unsupported timeline schema_version {header['schema_version']!r}; "
            f"this reader handles {TIMELINE_SCHEMA_VERSION}"
        )
    events: list[TimelineEvent] = []
    expected_seq = 0
    for lineno, line in enumerate(raw_lines[1:], start=2):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TimelineError(f"line {lineno}: malformed JSON: {exc}") from exc
        validate_timeline_event(doc)
        if doc["seq"] != expected_seq:
            raise TimelineError(
                f"line {lineno}: seq {doc['seq']} out of order "
                f"(expected {expected_seq})"
            )
        expected_seq += 1
        events.append(
            TimelineEvent(
                seq=doc["seq"],
                layer=doc["layer"],
                kind=doc["kind"],
                entity=doc["entity"],
                payload=_freeze_payload(doc.get("payload", {})),
            )
        )
    return header, tuple(events)


def events_digest(events: Sequence[TimelineEvent]) -> str:
    """Digest of already-sequenced events (for ``repro replay`` output)."""
    lines = [canonical_json(_header_doc())]
    lines.extend(canonical_json(event.as_dict()) for event in events)
    return canonical_digest("\n".join(lines))
