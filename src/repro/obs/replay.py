"""Replay a recorded flight-recorder timeline: forensics after the fact.

A timeline written by :mod:`repro.obs.timeline` is a complete, byte-stable
account of what the fleet did — which runs solved, which GPUs opened and
closed health conditions, which jobs queued, started and finished, which
requests the service admitted.  :class:`TimelineReplayer` streams those
events back and reconstructs the derived state at any logical timestamp:

* fleet health grades (open conditions + recovered-watch hysteresis),
* scheduler queue depth and GPU occupancy,
* per-layer event counters.

``check()`` is the assertion mode: it re-derives the final
:class:`~repro.obs.health.FleetHealthReport` grade counts and the
scheduling-report digest *from the log alone* and compares them against the
summary events the producer recorded — if the log and the reports disagree,
one of them is lying, and replay tells you which claim broke.

Backed by ``repro replay`` (summarize / ``--at`` / ``--grep`` /
``--check``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .timeline import (
    TIMELINE_LAYERS,
    TimelineError,
    TimelineEvent,
    canonical_digest,
    read_timeline,
)

__all__ = [
    "ReplayCheck",
    "TimelineReplayer",
    "load_replayer",
]


@dataclass(frozen=True)
class ReplayCheck:
    """One ``--check`` verdict: a re-derived value vs the recorded claim."""

    name: str
    ok: bool
    expected: Any
    actual: Any

    def render(self) -> str:
        """One-line terminal verdict: ``[ok]``/``[FAIL]`` plus the claim."""
        mark = "ok" if self.ok else "FAIL"
        line = f"[{mark}] {self.name}"
        if not self.ok:
            line += f": expected {self.expected!r}, got {self.actual!r}"
        return line


@dataclass
class _HealthState:
    """Open-condition tracking mirrored from ``HealthTracker`` semantics."""

    open_by_gpu: dict[str, set[str]] = field(default_factory=dict)
    ever_flagged: set[str] = field(default_factory=set)

    def apply(self, event: TimelineEvent) -> None:
        if event.kind in ("health_report",):
            return
        conditions = self.open_by_gpu.setdefault(event.entity, set())
        if event.kind == "RECOVERED":
            conditions.discard(event.value("cleared"))
        else:
            conditions.add(event.kind)
            self.ever_flagged.add(event.entity)

    def grades(self) -> dict[str, str]:
        """Grade per GPU that ever appeared in a health event."""
        from .health import _GRADE_OF_OPEN, GRADES, HealthEventKind

        grade_of_open = {
            kind.value: grade for kind, grade in _GRADE_OF_OPEN.items()
        }
        grades: dict[str, str] = {}
        for label in sorted(self.open_by_gpu):
            grade = "ok"
            for kind in self.open_by_gpu[label]:
                candidate = grade_of_open[kind]
                if GRADES.index(candidate) > GRADES.index(grade):
                    grade = candidate
            if grade == "ok" and label in self.ever_flagged:
                grade = "watch"  # recovered once: keep an eye on it
            grades[label] = grade
        return grades

    def grade_counts(self, fleet_gpus: int) -> dict[str, int]:
        from .health import GRADES

        counts = {grade: 0 for grade in GRADES}
        for grade in self.grades().values():
            counts[grade] += 1
        counts["ok"] += fleet_gpus - sum(counts.values())
        return counts


@dataclass
class _SchedState:
    """Queue/occupancy bookkeeping replayed from submit/start/finish."""

    queued: set[int] = field(default_factory=set)
    running: dict[int, int] = field(default_factory=dict)
    finished: set[int] = field(default_factory=set)
    occupied_gpus: int = 0
    backfill_starts: int = 0

    def apply(self, event: TimelineEvent) -> None:
        if event.kind == "submit":
            self.queued.add(event.value("job"))
        elif event.kind == "start":
            job = event.value("job")
            self.queued.discard(job)
            n_gpus = len(event.value("gpus", ()))
            self.running[job] = n_gpus
            self.occupied_gpus += n_gpus
            if event.value("backfilled"):
                self.backfill_starts += 1
        elif event.kind == "finish":
            job = event.value("job")
            self.occupied_gpus -= self.running.pop(job, 0)
            self.finished.add(job)


class TimelineReplayer:
    """Stream timeline events and reconstruct derived state.

    Construct from in-memory events or via :func:`load_replayer` for a
    recorded file.  All queries are logical-clock based: ``seq`` bounds are
    inclusive, matching the monotone event numbering of the recorder.
    """

    def __init__(self, events: Sequence[TimelineEvent]) -> None:
        self.events = tuple(events)

    # -- queries ---------------------------------------------------------------

    def counters(self, up_to: int | None = None) -> dict[str, int]:
        """Event totals keyed ``layer.kind``, up to logical time ``up_to``."""
        totals: dict[str, int] = {}
        for event in self._slice(up_to):
            key = f"{event.layer}.{event.kind}"
            totals[key] = totals.get(key, 0) + 1
        return dict(sorted(totals.items()))

    def state_at(self, seq: int | None = None) -> dict[str, Any]:
        """Reconstructed fleet state after applying events through ``seq``."""
        health = _HealthState()
        sched = _SchedState()
        runs = rows = 0
        last_seq = -1
        for event in self._slice(seq):
            last_seq = event.seq
            if event.layer == "health":
                health.apply(event)
            elif event.layer == "sched":
                sched.apply(event)
            elif event.layer == "sim" and event.kind == "run":
                runs += 1
            elif event.kind == "campaign_end":
                rows = event.value("rows", rows)
        return {
            "seq": last_seq,
            "counters": self.counters(seq),
            "campaign": {"runs_observed": runs, "rows": rows},
            "health": {
                "grades": health.grades(),
                "open_conditions": {
                    label: sorted(conditions)
                    for label, conditions in sorted(health.open_by_gpu.items())
                    if conditions
                },
            },
            "sched": {
                "queued": len(sched.queued),
                "running": len(sched.running),
                "finished": len(sched.finished),
                "occupied_gpus": sched.occupied_gpus,
                "backfill_starts": sched.backfill_starts,
            },
        }

    def summarize(self) -> dict[str, Any]:
        """Whole-timeline summary: final state plus per-layer totals."""
        summary = self.state_at(None)
        summary["n_events"] = len(self.events)
        layers: dict[str, int] = {}
        for event in self.events:
            layers[event.layer] = layers.get(event.layer, 0) + 1
        summary["layers"] = dict(sorted(layers.items()))
        return summary

    def grep(self, needle: str) -> tuple[TimelineEvent, ...]:
        """Events whose entity or kind contains ``needle``."""
        return tuple(
            event
            for event in self.events
            if needle in event.entity or needle in event.kind
        )

    def layer(self, name: str) -> tuple[TimelineEvent, ...]:
        """Events of one timeline layer; unknown names raise.

        Backs ``repro replay --layer``; raising on unknown names (rather
        than returning an empty tuple) catches typos like ``helth``.
        """
        if name not in TIMELINE_LAYERS:
            raise TimelineError(
                f"unknown layer {name!r}; expected one of {TIMELINE_LAYERS}"
            )
        return tuple(event for event in self.events if event.layer == name)

    # -- assertion mode --------------------------------------------------------

    def check(self) -> list[ReplayCheck]:
        """Re-derive the recorded summary claims from the event stream.

        Every summary event found on the timeline is verified:

        * ``campaign_end`` — the run-event count must equal the recorded
          shard count (one run event per shard, recorded independently).
        * ``health_report`` — fleet grade counts re-derived from the raw
          open/close transitions must equal the report's grade counts.
        * ``sched_report`` — job records rebuilt from submit/start/finish
          events must re-produce the scheduling report digest bit-for-bit.
        * ``chaos_scorecard`` — detection claims (detected/missed/false
          positives/latencies) re-derived from the fault declarations and
          raw health events must equal the recorded scorecard claims.
        """
        checks: list[ReplayCheck] = []
        run_events = sum(
            1 for e in self.events if e.layer == "sim" and e.kind == "run"
        )
        for event in self.events:
            if event.kind == "campaign_end":
                expected = event.value("n_shards")
                checks.append(
                    ReplayCheck(
                        name=f"campaign_end@{event.seq}: run events == shards",
                        ok=run_events == expected,
                        expected=expected,
                        actual=run_events,
                    )
                )
            elif event.kind == "health_report":
                checks.append(self._check_health_report(event))
            elif event.kind == "sched_report":
                checks.append(self._check_sched_report(event))
            elif event.kind == "chaos_scorecard":
                checks.append(self._check_chaos_scorecard(event))
        return checks

    def _check_health_report(self, report_event: TimelineEvent) -> ReplayCheck:
        health = _HealthState()
        for event in self.events:
            if event.seq >= report_event.seq:
                break
            if event.layer == "health":
                health.apply(event)
        expected = report_event.value("grade_counts")
        actual = health.grade_counts(int(report_event.value("fleet_gpus")))
        return ReplayCheck(
            name=f"health_report@{report_event.seq}: grade counts",
            ok=actual == expected,
            expected=expected,
            actual=actual,
        )

    def _check_sched_report(self, report_event: TimelineEvent) -> ReplayCheck:
        expected = report_event.value("digest")
        try:
            report = self._rebuild_scheduling_report(report_event)
            actual = canonical_digest(report.to_json())
        except (TimelineError, KeyError, ValueError) as exc:
            return ReplayCheck(
                name=f"sched_report@{report_event.seq}: report digest",
                ok=False,
                expected=expected,
                actual=f"rebuild failed: {exc}",
            )
        return ReplayCheck(
            name=f"sched_report@{report_event.seq}: report digest",
            ok=actual == expected,
            expected=expected,
            actual=actual,
        )

    def _check_chaos_scorecard(self, report_event: TimelineEvent) -> ReplayCheck:
        """Re-derive detection claims from fault declarations + health events.

        The scorecard event records what the scoring harness claimed it
        detected; the ``fault_onset`` declarations plus the raw health
        opens earlier on the same timeline are enough to re-derive every
        one of those claims independently.
        """
        # Deferred: obs must stay importable without the chaos stack.
        from ..chaos.score import derive_detection

        open_kinds = (
            "THERMAL_RUNAWAY", "STUCK_THROTTLE", "CHRONIC_SLOW_OUTLIER",
            "DEFECT_DRIFT",
        )
        faults_meta = []
        observations = []
        for event in self.events:
            if event.seq >= report_event.seq:
                break
            if event.layer == "chaos" and event.kind == "fault_onset":
                faults_meta.append(
                    {
                        "label": event.entity,
                        "kind": event.value("fault_kind"),
                        "detectable": event.value("detectable"),
                        "onset_day": event.value("onset_day"),
                        "nodes": event.value("nodes"),
                    }
                )
            elif event.layer == "health" and event.kind in open_kinds:
                observations.append((event.value("day"), event.entity))
        derived = derive_detection(faults_meta, observations)
        expected = {
            "detected": report_event.value("detected"),
            "missed": report_event.value("missed"),
            "false_positives": report_event.value("false_positives"),
            "latency_days": dict(report_event.value("latency_days", {})),
        }
        actual = {
            "detected": derived["detected"],
            "missed": derived["missed"],
            "false_positives": derived["false_positives"],
            "latency_days": derived["latency_days"],
        }
        return ReplayCheck(
            name=f"chaos_scorecard@{report_event.seq}: detection claims",
            ok=actual == expected,
            expected=expected,
            actual=actual,
        )

    def _rebuild_scheduling_report(self, report_event: TimelineEvent):
        """Rebuild the SchedulingReport from the sched events alone.

        Start events carry the exact (unrounded) record floats, so the
        reconstructed :class:`~repro.sched.engine.JobRecord` tuple — and
        therefore the report's canonical JSON — matches the producer's
        bit-for-bit.
        """
        # Deferred: obs must stay importable without the sched stack.
        from ..sched.engine import JobRecord, ScheduleOutcome
        from ..sched.report import build_scheduling_report

        submits: dict[int, TimelineEvent] = {}
        starts: dict[int, TimelineEvent] = {}
        finishes: dict[int, TimelineEvent] = {}
        backfilled_starts = 0
        for event in self.events:
            if event.seq >= report_event.seq or event.layer != "sched":
                continue
            if event.kind == "submit":
                submits[event.value("job")] = event
            elif event.kind == "start":
                starts[event.value("job")] = event
                if event.value("backfilled"):
                    backfilled_starts += 1
            elif event.kind == "finish":
                finishes[event.value("job")] = event
        if set(submits) != set(starts) or set(submits) != set(finishes):
            raise TimelineError(
                "incomplete sched timeline: every job needs "
                "submit, start, and finish events"
            )
        records = []
        for job_id in sorted(submits):
            submit, start, finish = (
                submits[job_id], starts[job_id], finishes[job_id],
            )
            records.append(
                JobRecord(
                    job_id=job_id,
                    workload_name=submit.value("workload"),
                    n_gpus=submit.value("n_gpus"),
                    work_units=submit.value("work_units"),
                    submit_time_s=submit.value("t"),
                    start_time_s=start.value("t"),
                    finish_time_s=finish.value("t"),
                    node_indices=tuple(start.value("nodes")),
                    gpu_indices=tuple(start.value("gpus")),
                    runtime_s=start.value("runtime_s"),
                    energy_j=start.value("energy_j"),
                    gang_imbalance=start.value("gang_imbalance"),
                    slow_assigned=start.value("slow_assigned"),
                )
            )
        # The report consumes events only for the backfill count; one
        # synthetic start per backfilled job reproduces it exactly.
        events = tuple(
            {"event": "start", "backfilled": True}
            for _ in range(backfilled_starts)
        )
        return build_scheduling_report(
            report_event.value("cluster"),
            ScheduleOutcome(
                policy_name=report_event.value("policy", {}).get("name", ""),
                records=tuple(records),
                events=events,
            ),
            dict(report_event.value("policy", {})),
            int(report_event.value("fleet_gpus")),
            trace_seed=report_event.value("trace_seed"),
        )

    # -- internals -------------------------------------------------------------

    def _slice(self, up_to: int | None) -> Iterable[TimelineEvent]:
        if up_to is None:
            return self.events
        return (event for event in self.events if event.seq <= up_to)


def load_replayer(path: Any) -> TimelineReplayer:
    """Read a timeline file (validating it) and wrap it in a replayer."""
    _, events = read_timeline(path)
    return TimelineReplayer(events)
