"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by library code derive from :class:`ReproError` so that
callers can catch everything from this package with a single ``except``
clause while still letting programming errors (``TypeError`` etc.) surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class SimulationError(ReproError):
    """The simulation engine entered an invalid state."""


class AllocationError(ReproError):
    """A job allocation request could not be satisfied."""


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class TelemetryError(ReproError):
    """Telemetry recording or trace manipulation failed."""


class DatasetError(ReproError):
    """A measurement dataset is malformed or an I/O round-trip failed."""


class ServiceError(ReproError):
    """The fleet service could not process a request."""


class ServiceSaturated(ServiceError):
    """The service's bounded work queue is full (HTTP 429/503 territory)."""


class DeadlineExceeded(ServiceError):
    """A request's deadline expired before its result was ready."""
