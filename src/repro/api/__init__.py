"""The stable public facade — ``import repro.api`` and stop there.

Everything a user of this package is supported in calling lives here, with
keyword-only signatures that can grow without breaking callers:

* :func:`load_preset` / :func:`load_workload` (+ the ``list_*`` helpers) —
  construct the paper's clusters and applications by name;
* :func:`run_campaign` — the measurement campaign, optionally parallel,
  traced, monitored, and manifest-audited (see :mod:`repro.obs`);
* :func:`characterize` — campaign + the paper's full analysis;
* :func:`monitor_fleet` — campaign with the streaming metrics pipeline and
  online health detection attached (grades, typed health events);
* :func:`screen` — maintenance triage across applications (Section VII);
* :func:`sweep` — the power-limit sweep on admin-access clusters (Fig. 22);
* :func:`project` — scaled-normal projection to larger fleets (Sec. IV-D);
* :func:`schedule` — the batch-queue simulator under a placement policy
  (Section VII end to end), plus the placement analyses
  :func:`slow_assignment_probability` / :func:`node_variability_scores` /
  :func:`plan_placements`;
* :func:`chaos` — declarative fault injection: run a named incident
  scenario end-to-end (injection → detection → scheduler reaction) and
  score the response against a no-fault baseline (:mod:`repro.chaos`).

Result types (:class:`CharacterizationResult`, :class:`ScreenReport`,
:class:`SweepReport`, :class:`ProjectionReport`, plus the re-exported
:class:`ClusterReport` et al.) are frozen dataclasses — inspect fields, do
not mutate.

Every verb also accepts a typed request object (:mod:`repro.api.requests`):
build a frozen :class:`CharacterizeRequest` (or Screen/Sweep/Schedule/
Monitor/Chaos variant), round-trip it through JSON, and pass it as
``characterize(request=...)`` or dispatch by kind via
:func:`execute_request`.  The HTTP service (:mod:`repro.service`) and the
CLI deserialize to these exact objects, so Python, CLI, and wire callers
share one validated surface; :func:`request_digest` is the coalescing and
cache key used throughout.

Anything importable from deeper modules (``repro.sim``, ``repro.core``, …)
remains reachable but is *not* covered by the facade's stability promise;
the legacy top-level re-exports (``from repro import longhorn``) were
removed in 2.0 and now raise :class:`ImportError` naming the replacement.
"""

from __future__ import annotations

import json
from contextlib import ExitStack
from dataclasses import dataclass

from ..cluster import get_preset, list_presets
from ..cluster.cluster import Cluster
from ..core import (
    VariabilitySuite,
    flag_outlier_gpus,
    metric_boxstats,
    persistent_outliers,
    project_variation,
)
from ..core.boxstats import BoxStats
from ..core.outliers import OutlierReport
from ..errors import ConfigError
from ..gpu.dvfs import (
    SOLVER_ENV_VAR,
    SOLVER_FLEET,
    SOLVER_GRID,
    SOLVER_LADDER,
    default_solver,
    solver_scope,
)
from .requests import (
    EXECUTION_FIELDS,
    REQUEST_KINDS,
    REQUEST_SCHEMA_VERSION,
    ChaosRequest,
    CharacterizeRequest,
    MonitorRequest,
    ScheduleRequest,
    ScreenRequest,
    SweepRequest,
    request_digest,
    request_from_dict,
    request_from_json,
)
from ..chaos import (
    CHAOS_SCORECARD_SCHEMA,
    ChaosRunResult,
    Scenario,
    get_scenario,
    list_scenarios,
    render_scorecard,
    validate_scorecard,
)
from ..chaos.score import score_scenario as _score_scenario
from ..core.suite import ClusterReport
from ..core.classify import ApplicationClass, classify_workload
from ..core.scheduler import PlacementPlan
from ..core.scheduler import node_variability_scores as _node_variability_scores
from ..core.scheduler import plan_placements as _plan_placements
from ..core.scheduler import (
    slow_assignment_probability as _slow_assignment_probability,
)
from ..obs import (
    FleetMonitor,
    Manifest,
    MonitorConfig,
    TimelineEvent,
    TimelineRecorder,
    Tracer,
    activate,
    activate_recorder,
    active_monitor,
    canonical_digest,
    read_manifest,
    read_timeline,
    render_prometheus,
    validate_manifest,
    write_chrome_trace,
    write_events_jsonl,
    write_timeline,
)
from ..obs.replay import ReplayCheck, TimelineReplayer, load_replayer
from ..obs.health import (
    FleetHealthReport,
    HealthEvent,
    HealthEventKind,
    HealthPolicy,
    HealthTracker,
    analyze_fleet_health,
    validate_health_report,
    write_health_events,
)
from ..sched import (
    ENGINE_MODES,
    POLICY_NAMES,
    BackfillPolicy,
    EnergyCappedPolicy,
    FifoPolicy,
    HealthAwarePolicy,
    Job,
    JobRecord,
    PlacementPolicy,
    ScheduleOutcome,
    SchedulingReport,
    TraceConfig,
    VariabilityAwarePolicy,
    build_scheduling_report,
    generate_trace,
    node_grades_from_gpu_grades,
    node_power_watts,
    run_schedule,
    validate_scheduling_report,
    write_event_log,
)
from ..sim.campaign import CampaignConfig
from ..sim.campaign import run_campaign as _run_campaign
from ..sim.parallel import ParallelConfig
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.progress import CampaignProgress
from ..telemetry.sample import METRIC_PERFORMANCE
from ..workloads import get_workload, list_workloads
from ..workloads.base import Workload

__all__ = [
    # constructors / registries
    "load_preset",
    "load_workload",
    "list_presets",
    "list_workloads",
    # verbs
    "run_campaign",
    "characterize",
    "monitor_fleet",
    "screen",
    "sweep",
    "project",
    "schedule",
    "chaos",
    # fault injection / incident scenarios
    "ChaosRunResult",
    "Scenario",
    "CHAOS_SCORECARD_SCHEMA",
    "get_scenario",
    "list_scenarios",
    "render_scorecard",
    "validate_scorecard",
    # scheduling analysis (Section VII)
    "slow_assignment_probability",
    "node_variability_scores",
    "plan_placements",
    "PlacementPlan",
    "classify_workload",
    "ApplicationClass",
    # batch-queue scheduling
    "SchedulingResult",
    "SchedulingReport",
    "ScheduleOutcome",
    "JobRecord",
    "Job",
    "TraceConfig",
    "generate_trace",
    "PlacementPolicy",
    "FifoPolicy",
    "BackfillPolicy",
    "VariabilityAwarePolicy",
    "HealthAwarePolicy",
    "EnergyCappedPolicy",
    "node_power_watts",
    "POLICY_NAMES",
    "ENGINE_MODES",
    "validate_scheduling_report",
    "write_event_log",
    # domain types
    "Cluster",
    "Workload",
    # result types
    "CharacterizationResult",
    "MonitoringResult",
    "ScreenReport",
    "WorkloadScreen",
    "SweepPoint",
    "SweepReport",
    "ProjectionReport",
    "ClusterReport",
    "OutlierReport",
    "BoxStats",
    "MeasurementDataset",
    # configuration
    "CampaignConfig",
    "ParallelConfig",
    "CampaignProgress",
    # observability
    "Tracer",
    "Manifest",
    "read_manifest",
    "validate_manifest",
    "write_chrome_trace",
    "write_events_jsonl",
    # flight recorder / replay
    "TimelineEvent",
    "TimelineRecorder",
    "TimelineReplayer",
    "ReplayCheck",
    "activate_recorder",
    "canonical_digest",
    "load_replayer",
    "read_timeline",
    "write_timeline",
    # monitoring / fleet health
    "FleetMonitor",
    "MonitorConfig",
    "active_monitor",
    "render_prometheus",
    "FleetHealthReport",
    "HealthEvent",
    "HealthEventKind",
    "HealthPolicy",
    "HealthTracker",
    "analyze_fleet_health",
    "validate_health_report",
    "write_health_events",
    # steady-state solver selection
    "SOLVER_LADDER",
    "SOLVER_FLEET",
    "SOLVER_GRID",
    "SOLVER_ENV_VAR",
    "default_solver",
    "solver_scope",
    # typed request objects (one validated surface: CLI, Python, HTTP)
    "REQUEST_SCHEMA_VERSION",
    "REQUEST_KINDS",
    "EXECUTION_FIELDS",
    "CharacterizeRequest",
    "ScreenRequest",
    "SweepRequest",
    "ScheduleRequest",
    "MonitorRequest",
    "ChaosRequest",
    "request_from_dict",
    "request_from_json",
    "request_digest",
    "execute_request",
]


# ---------------------------------------------------------------------------
# constructors
# ---------------------------------------------------------------------------


def load_preset(name: str, *, seed: int = 0, scale: float = 1.0) -> Cluster:
    """Build one of the paper's cluster presets by (case-insensitive) name.

    See :func:`list_presets` for the available names.  ``scale`` shrinks
    the machine proportionally for quick looks; ``seed`` selects the
    silicon lottery / defect draw (the same seed is the same machine,
    always).
    """
    return get_preset(name, seed=seed, scale=scale)


def load_workload(name: str) -> Workload:
    """Look up one of the paper's workloads by name (see :func:`list_workloads`)."""
    return get_workload(name)


# ---------------------------------------------------------------------------
# request plumbing (shared by the verbs below)
# ---------------------------------------------------------------------------


def _require_request_only(verb: str, **built) -> None:
    """Reject mixing ``request=`` with already-constructed objects."""
    clashes = [name for name, value in built.items() if value is not None]
    if clashes:
        raise ConfigError(
            f"{verb}() takes either request= or the constructed "
            f"{'/'.join(sorted(built))} arguments, not both "
            f"(got request= plus {clashes})"
        )


def _require_built(verb: str, **built) -> None:
    """Reject calls that provided neither a request nor the built objects."""
    missing = [name for name, value in built.items() if value is None]
    if missing:
        raise ConfigError(
            f"{verb}() needs either request= or {'/'.join(sorted(built))}; "
            f"missing {missing}"
        )


# ---------------------------------------------------------------------------
# campaign
# ---------------------------------------------------------------------------


def run_campaign(
    *,
    cluster: Cluster,
    workload: Workload,
    config: CampaignConfig | None = None,
    workers: int | None = None,
    parallel: ParallelConfig | None = None,
    progress: CampaignProgress | None = None,
    tracer: Tracer | None = None,
    manifest: Manifest | None = None,
    monitor: FleetMonitor | None = None,
    timeline: TimelineRecorder | None = None,
) -> MeasurementDataset:
    """Execute a measurement campaign; returns the long-form table.

    Identical to :func:`repro.sim.campaign.run_campaign` but fully
    keyword-only.  The result is bit-identical for any ``workers`` value
    and with or without ``tracer``/``manifest``/``monitor``/``timeline``
    attached.
    """
    return _run_campaign(
        cluster,
        workload,
        config,
        workers=workers,
        parallel=parallel,
        progress=progress,
        tracer=tracer,
        manifest=manifest,
        monitor=monitor,
        timeline=timeline,
    )


# ---------------------------------------------------------------------------
# characterize
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CharacterizationResult:
    """A campaign and the paper's full analysis of it."""

    report: ClusterReport
    dataset: MeasurementDataset


def characterize(
    *,
    request: CharacterizeRequest | None = None,
    cluster: Cluster | None = None,
    workload: Workload | None = None,
    config: CampaignConfig | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    manifest: Manifest | None = None,
    timeline: TimelineRecorder | None = None,
) -> CharacterizationResult:
    """Measure a cluster and compute every analysis the paper performs.

    The report side is exactly :meth:`VariabilitySuite.characterize
    <repro.core.suite.VariabilitySuite.characterize>`; the raw dataset is
    returned alongside so callers can archive or re-analyze it.

    Pass either a :class:`~repro.api.requests.CharacterizeRequest` (the
    wire surface shared with the CLI and :mod:`repro.service`) or the
    constructed ``cluster``/``workload``/``config`` objects — not both.
    """
    solver = None
    if request is not None:
        _require_request_only(
            "characterize", cluster=cluster, workload=workload,
            config=config, workers=workers,
        )
        cluster = load_preset(
            request.cluster, seed=request.seed, scale=request.scale
        )
        workload = load_workload(request.workload)
        config = CampaignConfig(
            days=request.days,
            runs_per_day=request.runs_per_day,
            coverage=request.coverage,
            power_limit_w=request.power_limit_w,
        )
        workers = request.workers
        solver = request.solver
    _require_built("characterize", cluster=cluster, workload=workload)
    config = config if config is not None else CampaignConfig()
    with solver_scope(solver):
        dataset = run_campaign(
            cluster=cluster,
            workload=workload,
            config=config,
            workers=workers,
            tracer=tracer,
            manifest=manifest,
            timeline=timeline,
        )
        suite = VariabilitySuite(cluster, config, workers=workers)
        return CharacterizationResult(
            report=suite.analyze(dataset), dataset=dataset
        )


# ---------------------------------------------------------------------------
# monitor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MonitoringResult:
    """A monitored campaign: the measurement plus its health analysis.

    ``dataset`` is byte-identical to the same campaign run unmonitored.
    ``monitor`` holds the merged metrics stream (gauges, histograms,
    counters — render with :func:`render_prometheus`); ``tracker`` carries
    the per-GPU detector state and the full ordered ``events`` stream;
    ``report`` is the fleet-health rollup (per-GPU grades, node/row
    aggregation, schema-validated ``to_dict()``).
    """

    dataset: MeasurementDataset
    monitor: FleetMonitor
    tracker: HealthTracker
    report: FleetHealthReport

    @property
    def events(self) -> tuple[HealthEvent, ...]:
        """The ordered health-event stream (invariant to ``workers=``)."""
        return tuple(self.tracker.events)


def monitor_fleet(
    *,
    request: MonitorRequest | None = None,
    cluster: Cluster | None = None,
    workload: Workload | None = None,
    config: CampaignConfig | None = None,
    workers: int | None = None,
    parallel: ParallelConfig | None = None,
    policy: HealthPolicy | None = None,
    monitor_config: MonitorConfig | None = None,
    progress: CampaignProgress | None = None,
    tracer: Tracer | None = None,
    manifest: Manifest | None = None,
    timeline: TimelineRecorder | None = None,
) -> MonitoringResult:
    """Run a campaign with the streaming metrics + health pipeline attached.

    The campaign executes exactly as :func:`run_campaign` — the monitor
    hooks only read values already computed, so the returned dataset is
    byte-identical to an unmonitored run.  Shard metric payloads are merged
    in canonical plan order, then the online health detector replays the
    merged run stream: the event sequence and registry totals are therefore
    identical for any ``workers`` value.

    Pass either a :class:`~repro.api.requests.MonitorRequest` (its
    ``window`` feeds both the metrics pipeline and the health detector) or
    the constructed objects — not both.
    """
    solver = None
    if request is not None:
        _require_request_only(
            "monitor_fleet", cluster=cluster, workload=workload,
            config=config, workers=workers, policy=policy,
            monitor_config=monitor_config,
        )
        cluster = load_preset(
            request.cluster, seed=request.seed, scale=request.scale
        )
        workload = load_workload(request.workload)
        config = CampaignConfig(
            days=request.days,
            runs_per_day=request.runs_per_day,
            coverage=request.coverage,
        )
        workers = request.workers
        policy = HealthPolicy(window_runs=request.window)
        monitor_config = MonitorConfig(window_runs=request.window)
        solver = request.solver
    _require_built("monitor_fleet", cluster=cluster, workload=workload)
    monitor = FleetMonitor(monitor_config)
    with solver_scope(solver):
        dataset = run_campaign(
            cluster=cluster,
            workload=workload,
            config=config,
            workers=workers,
            parallel=parallel,
            progress=progress,
            tracer=tracer,
            manifest=manifest,
            monitor=monitor,
            timeline=timeline,
        )
    # Health analysis replays the merged monitor stream on this thread, so
    # activating the recorder here captures every transition in the same
    # deterministic order the tracker emits them — after the campaign's own
    # events, independent of worker count.
    with activate_recorder(timeline):
        tracker, report = analyze_fleet_health(
            monitor, cluster.topology, policy=policy
        )
    if timeline is not None:
        report_doc = report.to_dict()
        timeline.record(
            "health",
            "health_report",
            cluster.name,
            fleet_gpus=cluster.topology.n_gpus,
            runs_observed=tracker.runs_observed,
            events_total=len(tracker.events),
            grade_counts=report.grade_counts(),
            digest=canonical_digest(
                json.dumps(report_doc, sort_keys=True, separators=(",", ":"))
            ),
        )
    return MonitoringResult(
        dataset=dataset, monitor=monitor, tracker=tracker, report=report
    )


# ---------------------------------------------------------------------------
# screen
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadScreen:
    """Outlier flags for one application."""

    workload: str
    outliers: OutlierReport


@dataclass(frozen=True)
class ScreenReport:
    """Cross-application maintenance triage (the paper's Takeaway 6).

    ``confirmed`` holds the node labels flagged by at least
    ``min_confirmations`` applications — the actionable maintenance list.
    """

    screens: tuple[WorkloadScreen, ...]
    confirmed: tuple[str, ...]
    min_confirmations: int


def screen(
    *,
    request: ScreenRequest | None = None,
    cluster: Cluster | None = None,
    workloads: tuple[Workload, ...] | list[Workload] | None = None,
    config: CampaignConfig | None = None,
    min_confirmations: int = 2,
    workers: int | None = None,
    tracer: Tracer | None = None,
    manifest: Manifest | None = None,
    timeline: TimelineRecorder | None = None,
) -> ScreenReport:
    """Flag outlier GPUs per application, confirm across applications.

    Pass either a :class:`~repro.api.requests.ScreenRequest` (workloads by
    name) or the constructed objects — not both.
    """
    solver = None
    if request is not None:
        _require_request_only(
            "screen", cluster=cluster, workloads=workloads, config=config,
            workers=workers,
        )
        cluster = load_preset(
            request.cluster, seed=request.seed, scale=request.scale
        )
        workloads = [load_workload(name) for name in request.workloads]
        config = CampaignConfig(days=request.days)
        min_confirmations = request.min_confirmations
        workers = request.workers
        solver = request.solver
    _require_built("screen", cluster=cluster, workloads=workloads)
    config = config if config is not None else CampaignConfig(days=3)
    screens: list[WorkloadScreen] = []
    reports: list[OutlierReport] = []
    with solver_scope(solver):
        for workload in workloads:
            dataset = run_campaign(
                cluster=cluster,
                workload=workload,
                config=config,
                workers=workers,
                tracer=tracer,
                manifest=manifest,
                timeline=timeline,
            )
            report = flag_outlier_gpus(dataset, METRIC_PERFORMANCE)
            screens.append(
                WorkloadScreen(workload=workload.name, outliers=report)
            )
            reports.append(report)
    confirmed = persistent_outliers(
        reports, min_occurrences=min(min_confirmations, len(reports))
    )
    return ScreenReport(
        screens=tuple(screens),
        confirmed=tuple(sorted(confirmed)),
        min_confirmations=min_confirmations,
    )


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One power limit's distribution over (GPU, run) measurements."""

    power_limit_w: float
    stats: BoxStats


@dataclass(frozen=True)
class SweepReport:
    """The Fig.-22 power-limit sweep: one :class:`SweepPoint` per limit."""

    cluster: str
    workload: str
    runs_per_limit: int
    points: tuple[SweepPoint, ...]


def sweep(
    *,
    request: SweepRequest | None = None,
    cluster: Cluster | None = None,
    power_limits_w: tuple[float, ...] | list[float] | None = None,
    workload: Workload | None = None,
    runs: int = 6,
    workers: int | None = None,
    tracer: Tracer | None = None,
    manifest: Manifest | None = None,
    timeline: TimelineRecorder | None = None,
) -> SweepReport:
    """Sweep administrative power limits and report the spread at each.

    Requires an admin-access cluster (only CloudLab in the paper).  Each
    limit runs a one-day, ``runs``-per-day campaign — one manifest entry
    per limit when ``manifest`` is attached.

    Pass either a :class:`~repro.api.requests.SweepRequest` or the
    constructed objects — not both.
    """
    solver = None
    if request is not None:
        _require_request_only(
            "sweep", cluster=cluster, power_limits_w=power_limits_w,
            workload=workload, workers=workers,
        )
        cluster = load_preset(
            request.cluster, seed=request.seed, scale=request.scale
        )
        power_limits_w = request.power_limits_w
        workload = load_workload(request.workload)
        runs = request.runs
        workers = request.workers
        solver = request.solver
    _require_built("sweep", cluster=cluster, power_limits_w=power_limits_w)
    workload = workload if workload is not None else get_workload("sgemm")
    points: list[SweepPoint] = []
    with solver_scope(solver):
        for limit in power_limits_w:
            dataset = run_campaign(
                cluster=cluster,
                workload=workload,
                config=CampaignConfig(
                    days=1, runs_per_day=runs, power_limit_w=float(limit)
                ),
                workers=workers,
                tracer=tracer,
                manifest=manifest,
                timeline=timeline,
            )
            stats = BoxStats.from_values(dataset.column(METRIC_PERFORMANCE))
            points.append(SweepPoint(power_limit_w=float(limit), stats=stats))
    return SweepReport(
        cluster=cluster.name,
        workload=workload.name,
        runs_per_limit=runs,
        points=tuple(points),
    )


# ---------------------------------------------------------------------------
# project
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProjectionReport:
    """Measured variation plus its scaled-normal projection (Section IV-D)."""

    cluster: str
    n_gpus_measured: int
    target_n_gpus: int
    measured_variation: float
    projected_variation: float


def project(
    *,
    cluster: Cluster,
    target_n_gpus: int,
    workload: Workload | None = None,
    config: CampaignConfig | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    manifest: Manifest | None = None,
    timeline: TimelineRecorder | None = None,
) -> ProjectionReport:
    """Measure a cluster, then project its variation to a larger fleet."""
    workload = workload if workload is not None else get_workload("sgemm")
    config = config if config is not None else CampaignConfig(days=5)
    dataset = run_campaign(
        cluster=cluster,
        workload=workload,
        config=config,
        workers=workers,
        tracer=tracer,
        manifest=manifest,
        timeline=timeline,
    )
    measured = metric_boxstats(dataset, METRIC_PERFORMANCE)
    med = dataset.per_gpu_median(METRIC_PERFORMANCE)
    projected = project_variation(med[METRIC_PERFORMANCE], target_n_gpus)
    return ProjectionReport(
        cluster=cluster.name,
        n_gpus_measured=cluster.n_gpus,
        target_n_gpus=target_n_gpus,
        measured_variation=measured.variation,
        projected_variation=projected,
    )


# ---------------------------------------------------------------------------
# scheduling analysis (Section VII)
# ---------------------------------------------------------------------------


def slow_assignment_probability(
    *,
    dataset: MeasurementDataset,
    n_gpus: int = 1,
    slow_threshold: float = 0.06,
    metric: str = METRIC_PERFORMANCE,
    fast_percentile: float = 2.0,
) -> float:
    """Probability a random batch job draws at least one slow GPU.

    Keyword-only facade over
    :func:`repro.core.scheduler.slow_assignment_probability` — the paper's
    18% (single-GPU, Longhorn) / 40-50% (4-GPU) user-impact numbers.
    """
    return _slow_assignment_probability(
        dataset,
        n_gpus=n_gpus,
        slow_threshold=slow_threshold,
        metric=metric,
        fast_percentile=fast_percentile,
    )


def node_variability_scores(
    *,
    dataset: MeasurementDataset,
    metric: str = METRIC_PERFORMANCE,
) -> dict[str, float]:
    """Per-node variability score (worst member median over fleet median).

    Keyword-only facade over
    :func:`repro.core.scheduler.node_variability_scores`.
    """
    return _node_variability_scores(dataset, metric=metric)


def plan_placements(
    *,
    dataset: MeasurementDataset,
    workloads: tuple[Workload, ...] | list[Workload],
    metric: str = METRIC_PERFORMANCE,
) -> PlacementPlan:
    """Variability-aware workload-to-node assignment (Section VII).

    Keyword-only facade over
    :func:`repro.core.scheduler.plan_placements`.
    """
    return _plan_placements(dataset, list(workloads), metric=metric)


# ---------------------------------------------------------------------------
# schedule
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchedulingResult:
    """A batch-queue scheduling run: report, records, and event log.

    ``report`` is the schema-validated summary
    (:class:`~repro.sched.SchedulingReport`); ``outcome`` carries the
    per-job :class:`~repro.sched.JobRecord` tuple and the canonical event
    stream; ``profile`` is the characterization dataset behind a
    variability- or health-aware policy (``None`` for the naive ones).
    """

    report: SchedulingReport
    outcome: ScheduleOutcome
    profile: MeasurementDataset | None

    @property
    def records(self) -> tuple[JobRecord, ...]:
        """Per-job records in job-id order."""
        return self.outcome.records

    @property
    def events(self) -> tuple[dict[str, object], ...]:
        """The run's event stream, in processing order."""
        return self.outcome.events


#: Default fraction of the fleet's total power-cap budget granted to the
#: energy-capped policy when no explicit ``power_budget_w`` is given —
#: the middle of the paper's §VII power-limit sweep.
DEFAULT_POWER_BUDGET_FRACTION = 0.6


def _build_policy(
    policy: str | PlacementPolicy,
    cluster: Cluster,
    *,
    profile_workload: Workload | None,
    profile_config: CampaignConfig | None,
    workers: int | None,
    tracer: Tracer | None,
    manifest: Manifest | None,
    power_budget_w: float | None = None,
) -> tuple[PlacementPolicy, MeasurementDataset | None]:
    """Construct a named policy, profiling the fleet when the policy needs it."""
    if isinstance(policy, PlacementPolicy):
        return policy, None
    name = str(policy).lower()
    if name == "fifo":
        return FifoPolicy(), None
    if name == "backfill":
        return BackfillPolicy(), None
    if name == "energy-capped":
        fleet = cluster.fleet_for_day(0)
        node_power = node_power_watts(
            fleet.power_cap_w(None),
            cluster.topology.node_of_gpu,
            cluster.topology.n_nodes,
        )
        budget = (
            float(power_budget_w)
            if power_budget_w is not None
            else float(node_power.sum()) * DEFAULT_POWER_BUDGET_FRACTION
        )
        return (
            EnergyCappedPolicy(
                node_power,
                power_budget_w=budget,
                gpus_per_node=cluster.topology.gpus_per_node,
            ),
            None,
        )
    workload = (
        profile_workload
        if profile_workload is not None
        else get_workload("sgemm")
    )
    config = (
        profile_config if profile_config is not None else CampaignConfig(days=3)
    )
    if name == "variability-aware":
        dataset = run_campaign(
            cluster=cluster,
            workload=workload,
            config=config,
            workers=workers,
            tracer=tracer,
            manifest=manifest,
        )
        scores = _node_variability_scores(dataset)
        # Nodes the campaign never reached (coverage < 1) carry no
        # information; rank them with the worst profiled node.
        fallback = max(scores.values())
        ordered = [
            scores.get(label, fallback)
            for label in cluster.topology.node_labels
        ]
        return VariabilityAwarePolicy(ordered), dataset
    if name == "health-aware":
        monitored = monitor_fleet(
            cluster=cluster,
            workload=workload,
            config=config,
            workers=workers,
            tracer=tracer,
            manifest=manifest,
        )
        grades = node_grades_from_gpu_grades(
            monitored.tracker.grades(),
            cluster.topology.node_of_gpu,
            cluster.topology.n_nodes,
        )
        return HealthAwarePolicy(grades), monitored.dataset
    raise ConfigError(
        f"unknown policy {policy!r}; known: {list(POLICY_NAMES)}"
    )


def schedule(
    *,
    request: ScheduleRequest | None = None,
    cluster: Cluster | None = None,
    policy: str | PlacementPolicy = "fifo",
    trace: TraceConfig | tuple[Job, ...] | list[Job] | None = None,
    engine: str = "auto",
    power_budget_w: float | None = None,
    profile_workload: Workload | None = None,
    profile_config: CampaignConfig | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    manifest: Manifest | None = None,
    timeline: TimelineRecorder | None = None,
) -> SchedulingResult:
    """Run a job trace through the batch-queue simulator under one policy.

    Parameters
    ----------
    request:
        A :class:`~repro.api.requests.ScheduleRequest` carrying every
        field below in wire-primitive form (trace parameters instead of a
        :class:`~repro.sched.TraceConfig`, preset name instead of a
        :class:`Cluster`).  Mutually exclusive with the constructed
        arguments.
    cluster:
        The simulated machine.
    policy:
        A name from :data:`~repro.sched.POLICY_NAMES` or a constructed
        :class:`~repro.sched.PlacementPolicy`.  The variability- and
        health-aware policies first profile the fleet with a
        characterization campaign (``profile_workload`` /
        ``profile_config``, defaulting to a 3-day sgemm campaign).  The
        ``"energy-capped"`` policy needs no profiling: it ranks nodes by
        their day-0 power-cap draw and admits jobs against
        ``power_budget_w``.
    trace:
        A :class:`~repro.sched.TraceConfig` (generated deterministically),
        an explicit job tuple, or ``None`` for the default trace.
    engine:
        One of :data:`~repro.sched.ENGINE_MODES` — ``"auto"`` (default)
        uses the indexed near-linear dispatch path whenever the policy
        supports it, ``"indexed"`` / ``"reference"`` force one path.
        Both produce byte-identical event logs and reports.
    power_budget_w:
        Fleet-wide power budget for the ``"energy-capped"`` policy, in
        watts.  ``None`` defaults to 60% of the fleet's summed power-cap
        draw (the middle of the paper's power-limit sweep).  Ignored for
        other policies.
    workers:
        Worker processes for the profiling campaign only — the queue
        engine itself is serial.  The event log and report are
        byte-identical for every value.
    tracer, manifest:
        Optional observability sinks: ``sched.*`` counters and a run span
        land on the tracer; the profiling campaign (when any) appends its
        usual manifest entry.
    timeline:
        Optional :class:`~repro.obs.TimelineRecorder`: the dispatch
        sequence (submit/start/finish per job, with exact record floats)
        plus a ``sched_report`` digest event land on the unified flight
        recorder — enough for ``repro replay --check`` to re-derive the
        report from the log alone.

    Same ``cluster`` seed + same ``trace`` + same ``policy`` ⇒
    byte-identical event log and report, under either engine.
    """
    solver = None
    if request is not None:
        _require_request_only(
            "schedule", cluster=cluster, trace=trace,
            profile_workload=profile_workload, profile_config=profile_config,
            workers=workers, power_budget_w=power_budget_w,
        )
        cluster = load_preset(
            request.cluster, seed=request.seed, scale=request.scale
        )
        policy = request.policy
        trace = TraceConfig(
            n_jobs=request.n_jobs,
            arrival_rate_per_hour=request.arrival_rate_per_hour,
            seed=request.trace_seed,
            diurnal_amplitude=request.diurnal_amplitude,
            peak_hour=request.peak_hour,
            day_of_week_weights=request.day_of_week_weights,
        )
        engine = request.engine
        power_budget_w = request.power_budget_w
        profile_config = CampaignConfig(days=request.profile_days)
        workers = request.workers
        solver = request.solver
    _require_built("schedule", cluster=cluster)
    with solver_scope(solver):
        return _schedule_built(
            cluster=cluster, policy=policy, trace=trace, engine=engine,
            power_budget_w=power_budget_w, profile_workload=profile_workload,
            profile_config=profile_config, workers=workers, tracer=tracer,
            manifest=manifest, timeline=timeline,
        )


def _schedule_built(
    *,
    cluster: Cluster,
    policy: str | PlacementPolicy,
    trace: TraceConfig | tuple[Job, ...] | list[Job] | None,
    engine: str,
    power_budget_w: float | None,
    profile_workload: Workload | None,
    profile_config: CampaignConfig | None,
    workers: int | None,
    tracer: Tracer | None,
    manifest: Manifest | None,
    timeline: TimelineRecorder | None = None,
) -> SchedulingResult:
    """The constructed-objects body of :func:`schedule`."""
    if trace is None:
        trace = TraceConfig()
    if isinstance(trace, TraceConfig):
        trace_seed: int | None = trace.seed
        jobs = generate_trace(trace)
    else:
        trace_seed = None
        jobs = tuple(trace)
    built, profile = _build_policy(
        policy,
        cluster,
        profile_workload=profile_workload,
        profile_config=profile_config,
        workers=workers,
        tracer=tracer,
        manifest=manifest,
        power_budget_w=power_budget_w,
    )
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(activate(tracer))
        if timeline is not None:
            stack.enter_context(activate_recorder(timeline))
        outcome = run_schedule(cluster, jobs, built, engine=engine)
    report = build_scheduling_report(
        cluster.name,
        outcome,
        built.describe(),
        cluster.topology.n_gpus,
        trace_seed=trace_seed,
    )
    if timeline is not None:
        # The claim the replayer's --check verifies: rebuilt records must
        # reproduce this exact canonical-JSON digest.
        timeline.record(
            "sched",
            "sched_report",
            cluster.name,
            cluster=cluster.name,
            policy=built.describe(),
            fleet_gpus=cluster.topology.n_gpus,
            trace_seed=trace_seed,
            n_jobs=len(jobs),
            digest=canonical_digest(report.to_json()),
        )
    return SchedulingResult(report=report, outcome=outcome, profile=profile)


# ---------------------------------------------------------------------------
# chaos (fault injection + mitigation scorecards)
# ---------------------------------------------------------------------------


def chaos(
    *,
    request: ChaosRequest | None = None,
    scenario: Scenario | str | None = None,
    cluster: str = "longhorn",
    workload: str = "sgemm",
    seed: int = 0,
    scale: float = 1.0,
    days: int = 10,
    runs_per_day: int = 2,
    n_jobs: int = 40,
    trace_seed: int = 0,
    workers: int | None = None,
    solver: str | None = None,
    tracer: Tracer | None = None,
    manifest: Manifest | None = None,
    timeline: TimelineRecorder | None = None,
) -> ChaosRunResult:
    """Run one incident scenario end-to-end and score the response.

    Injects the scenario's faults into a fresh preset cluster, runs a
    monitored campaign (online health detection included), reacts with a
    health-aware scheduling pass, and runs an identical *no-fault twin*
    as the baseline — the returned
    :class:`~repro.chaos.ChaosRunResult.scorecard` quantifies detection
    latency, misses, false positives, and the scheduling/energy cost of
    the incident, validated against
    :data:`~repro.chaos.CHAOS_SCORECARD_SCHEMA`.

    Parameters
    ----------
    request:
        A :class:`~repro.api.requests.ChaosRequest` carrying every field
        below in wire-primitive form.  Mutually exclusive with the
        constructed arguments.
    scenario:
        A catalog name (see :func:`list_scenarios`) or a constructed
        :class:`~repro.chaos.Scenario`.
    cluster, workload, seed, scale:
        Preset machine and application, as everywhere on the facade.
    days, runs_per_day:
        Campaign shape for both the faulted run and the baseline twin.
    n_jobs, trace_seed:
        Job trace for the health-aware scheduling reaction.
    workers, solver:
        Execution-only knobs; the scorecard is byte-identical for every
        combination (same guarantee as every campaign output).
    tracer, manifest, timeline:
        Observability sinks.  The timeline receives the *faulted* run's
        flight log — scenario/fault declarations, campaign, health,
        scheduling, and the final ``chaos_scorecard`` claims — which
        ``repro replay --check`` can re-verify from the log alone.  The
        baseline twin is never recorded.
    """
    if request is not None:
        _require_request_only("chaos", scenario=scenario, workers=workers)
        scenario = request.scenario
        cluster = request.cluster
        workload = request.workload
        seed = request.seed
        scale = request.scale
        days = request.days
        runs_per_day = request.runs_per_day
        n_jobs = request.n_jobs
        trace_seed = request.trace_seed
        workers = request.workers
        solver = request.solver
    _require_built("chaos", scenario=scenario)
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    return _score_scenario(
        scenario,
        cluster_name=cluster,
        seed=seed,
        scale=scale,
        workload_name=workload,
        days=days,
        runs_per_day=runs_per_day,
        n_jobs=n_jobs,
        trace_seed=trace_seed,
        workers=workers,
        solver=solver,
        tracer=tracer,
        manifest=manifest,
        timeline=timeline,
    )


# ---------------------------------------------------------------------------
# request execution (the service layer's single entry point)
# ---------------------------------------------------------------------------


def execute_request(
    request,
    *,
    tracer: Tracer | None = None,
    manifest: Manifest | None = None,
    timeline: TimelineRecorder | None = None,
):
    """Execute any typed request and return its verb's result object.

    The dispatch table behind the HTTP service and any batch driver: a
    :class:`~repro.api.requests.CharacterizeRequest` yields a
    :class:`CharacterizationResult`, a ``ScreenRequest`` a
    :class:`ScreenReport`, a ``SweepRequest`` a :class:`SweepReport`, a
    ``ScheduleRequest`` a :class:`SchedulingResult`, a ``MonitorRequest``
    a :class:`MonitoringResult`, and a ``ChaosRequest`` a
    :class:`~repro.chaos.ChaosRunResult` — exactly what the
    corresponding facade verb returns for the same parameters, bit for
    bit.  Unknown request types raise :class:`~repro.errors.ConfigError`.
    """
    kind = getattr(request, "kind", None)
    verb = _REQUEST_VERBS.get(kind)
    if verb is None or not isinstance(request, REQUEST_KINDS.get(kind, ())):
        raise ConfigError(
            f"execute_request() needs one of the repro.api request types, "
            f"got {type(request).__name__!r}"
        )
    return verb(
        request=request, tracer=tracer, manifest=manifest, timeline=timeline
    )


#: kind -> facade verb, resolved after all verbs are defined.
_REQUEST_VERBS = {
    "characterize": characterize,
    "screen": screen,
    "sweep": sweep,
    "schedule": schedule,
    "monitor": monitor_fleet,
    "chaos": chaos,
}
