"""Typed, versioned request objects — one validated surface for every caller.

The six verbs the fleet serves — ``characterize``, ``screen``, ``sweep``,
``schedule``, ``monitor``, ``chaos`` — each have a frozen request dataclass
here.  The
CLI builds them from flags, Python callers construct them directly (or keep
using the keyword paths on :mod:`repro.api`), and the HTTP service
(:mod:`repro.service`) deserializes its JSON bodies to *the exact same
objects*, so validation, defaulting, and the work-identity digest live in
one place.

Wire format
-----------
``to_dict()`` emits plain JSON-able types plus a ``kind`` discriminator;
``request_from_dict`` / ``request_from_json`` rebuild the right class,
rejecting unknown keys, bad types, and unsupported ``schema_version``
values loudly (:class:`~repro.errors.ConfigError`).  ``schema_version`` is
pinned at :data:`REQUEST_SCHEMA_VERSION` — bump it when a field changes
meaning, and teach ``from_dict`` the migration.

Work identity
-------------
:func:`request_digest` hashes the canonical dict *minus* the
execution-only fields (``workers``, ``solver``, ``deadline_s``): those
select how fast the answer arrives, never what the answer is (campaign
outputs are bit-identical across workers and solvers), so two requests
differing only there coalesce onto one computation in the service's
batcher.  Any field that changes the result — preset, seed, scale, days,
policy, … — changes the digest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from ..config import config_from_dict, config_to_dict, require
from ..errors import ConfigError

__all__ = [
    "REQUEST_SCHEMA_VERSION",
    "EXECUTION_FIELDS",
    "REQUEST_KINDS",
    "CharacterizeRequest",
    "ScreenRequest",
    "SweepRequest",
    "ScheduleRequest",
    "MonitorRequest",
    "ChaosRequest",
    "request_from_dict",
    "request_from_json",
    "request_digest",
]

#: Version of the request wire schema.  Serialized requests carry it; the
#: deserializer rejects documents from a different version.
REQUEST_SCHEMA_VERSION = 1

#: Fields that select *how* a request executes, never *what* it computes.
#: Excluded from :func:`request_digest` so requests differing only here
#: share one coalesced computation (outputs are bit-identical by the
#: parallel- and solver-equivalence guarantees).
EXECUTION_FIELDS = frozenset({"workers", "solver", "deadline_s"})

_SOLVERS = (None, "ladder", "fleet", "grid")


class _RequestBase:
    """Shared behaviour of every request dataclass (wire + validation)."""

    #: The wire discriminator; each concrete class pins its own.
    kind: str = ""

    def _validate_common(self) -> None:
        require(
            isinstance(self.schema_version, int)
            and not isinstance(self.schema_version, bool)
            and self.schema_version == REQUEST_SCHEMA_VERSION,
            f"schema_version must be {REQUEST_SCHEMA_VERSION}, "
            f"got {self.schema_version!r}",
        )
        require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an integer, got {self.seed!r}",
        )
        require(0 < self.scale <= 1, "scale must be in (0, 1]")
        require(
            isinstance(self.cluster, str) and bool(self.cluster),
            f"cluster must be a non-empty preset name, got {self.cluster!r}",
        )
        require(
            self.workers is None or (
                isinstance(self.workers, int) and self.workers >= 1
            ),
            f"workers must be None or an int >= 1, got {self.workers!r}",
        )
        require(
            self.solver in _SOLVERS,
            f"solver must be one of {_SOLVERS[1:]} or None, "
            f"got {self.solver!r}",
        )
        require(
            self.deadline_s is None or self.deadline_s > 0,
            f"deadline_s must be None or > 0, got {self.deadline_s!r}",
        )

    def to_dict(self) -> dict:
        """The request as plain JSON-able types plus a ``kind`` field."""
        out = config_to_dict(self)
        out["kind"] = self.kind
        return out

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "_RequestBase":
        """Rebuild a request of this class from :meth:`to_dict` output.

        Unknown keys, a mismatched ``kind``, and foreign schema versions
        all raise :class:`~repro.errors.ConfigError`.
        """
        payload = dict(data)
        kind = payload.pop("kind", cls.kind)
        require(
            kind == cls.kind,
            f"kind {kind!r} does not match {cls.__name__} ({cls.kind!r})",
        )
        return config_from_dict(cls, payload)

    @classmethod
    def from_json(cls, text: str) -> "_RequestBase":
        """Rebuild a request of this class from :meth:`to_json` output."""
        return cls.from_dict(_loads(text))


def _loads(text: str) -> dict:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigError(
            f"request must be a JSON object, got {type(data).__name__}"
        )
    return data


@dataclass(frozen=True)
class CharacterizeRequest(_RequestBase):
    """Run a measurement campaign plus the paper's full analysis.

    Mirrors ``repro characterize`` / :func:`repro.api.characterize`; all
    fields are wire-primitive (preset and workload by *name*).
    """

    cluster: str = "longhorn"
    workload: str = "sgemm"
    seed: int = 0
    scale: float = 1.0
    days: int = 7
    runs_per_day: int = 1
    coverage: float = 1.0
    power_limit_w: float | None = None
    workers: int | None = None
    solver: str | None = None
    deadline_s: float | None = None
    schema_version: int = REQUEST_SCHEMA_VERSION

    kind = "characterize"

    def __post_init__(self) -> None:
        self._validate_common()
        require(
            isinstance(self.workload, str) and bool(self.workload),
            f"workload must be a non-empty name, got {self.workload!r}",
        )


@dataclass(frozen=True)
class ScreenRequest(_RequestBase):
    """Maintenance triage: flag outliers across applications (Takeaway 6).

    Mirrors ``repro screen`` / :func:`repro.api.screen`.
    """

    cluster: str = "longhorn"
    workloads: tuple[str, ...] = ("sgemm", "resnet50")
    seed: int = 0
    scale: float = 1.0
    days: int = 3
    min_confirmations: int = 2
    workers: int | None = None
    solver: str | None = None
    deadline_s: float | None = None
    schema_version: int = REQUEST_SCHEMA_VERSION

    kind = "screen"

    def __post_init__(self) -> None:
        self._validate_common()
        require(
            len(self.workloads) >= 1
            and all(isinstance(w, str) and w for w in self.workloads),
            f"workloads must name at least one application, "
            f"got {self.workloads!r}",
        )
        require(
            isinstance(self.min_confirmations, int)
            and self.min_confirmations >= 1,
            f"min_confirmations must be an int >= 1, "
            f"got {self.min_confirmations!r}",
        )


@dataclass(frozen=True)
class SweepRequest(_RequestBase):
    """The Fig.-22 power-limit sweep on an admin-access cluster.

    Mirrors ``repro sweep`` / :func:`repro.api.sweep`.
    """

    cluster: str = "cloudlab"
    workload: str = "sgemm"
    power_limits_w: tuple[float, ...] = (300.0, 250.0, 200.0, 150.0, 100.0)
    seed: int = 0
    scale: float = 1.0
    runs: int = 6
    workers: int | None = None
    solver: str | None = None
    deadline_s: float | None = None
    schema_version: int = REQUEST_SCHEMA_VERSION

    kind = "sweep"

    def __post_init__(self) -> None:
        self._validate_common()
        require(
            len(self.power_limits_w) >= 1
            and all(float(x) > 0 for x in self.power_limits_w),
            f"power_limits_w must hold positive watt limits, "
            f"got {self.power_limits_w!r}",
        )
        require(
            isinstance(self.runs, int) and self.runs >= 1,
            f"runs must be an int >= 1, got {self.runs!r}",
        )


@dataclass(frozen=True)
class ScheduleRequest(_RequestBase):
    """Batch-queue simulation under a placement policy (Section VII).

    Mirrors ``repro sched`` / :func:`repro.api.schedule`; the trace fields
    map 1:1 onto :class:`repro.sched.TraceConfig`.
    """

    cluster: str = "longhorn"
    policy: str = "fifo"
    seed: int = 0
    scale: float = 1.0
    n_jobs: int = 100
    trace_seed: int = 0
    arrival_rate_per_hour: float = 120.0
    diurnal_amplitude: float = 0.0
    peak_hour: float = 14.0
    day_of_week_weights: tuple[float, ...] | None = None
    engine: str = "auto"
    power_budget_w: float | None = None
    profile_days: int = 3
    workers: int | None = None
    solver: str | None = None
    deadline_s: float | None = None
    schema_version: int = REQUEST_SCHEMA_VERSION

    kind = "schedule"

    def __post_init__(self) -> None:
        self._validate_common()
        require(
            isinstance(self.n_jobs, int) and self.n_jobs >= 1,
            f"n_jobs must be an int >= 1, got {self.n_jobs!r}",
        )
        require(
            isinstance(self.trace_seed, int)
            and not isinstance(self.trace_seed, bool),
            f"trace_seed must be an integer, got {self.trace_seed!r}",
        )
        require(
            self.engine in ("auto", "indexed", "reference"),
            f"engine must be auto/indexed/reference, got {self.engine!r}",
        )
        require(
            isinstance(self.profile_days, int) and self.profile_days >= 1,
            f"profile_days must be an int >= 1, got {self.profile_days!r}",
        )


@dataclass(frozen=True)
class ChaosRequest(_RequestBase):
    """Run one incident scenario end-to-end and emit a mitigation scorecard.

    Mirrors ``repro chaos`` / :func:`repro.api.chaos`; ``scenario`` names
    an entry of the :data:`repro.chaos.SCENARIOS` catalog.
    """

    scenario: str = "pump-degradation"
    cluster: str = "longhorn"
    workload: str = "sgemm"
    seed: int = 0
    scale: float = 1.0
    days: int = 10
    runs_per_day: int = 2
    n_jobs: int = 40
    trace_seed: int = 0
    workers: int | None = None
    solver: str | None = None
    deadline_s: float | None = None
    schema_version: int = REQUEST_SCHEMA_VERSION

    kind = "chaos"

    def __post_init__(self) -> None:
        self._validate_common()
        require(
            isinstance(self.scenario, str) and bool(self.scenario),
            f"scenario must be a non-empty name, got {self.scenario!r}",
        )
        require(
            isinstance(self.workload, str) and bool(self.workload),
            f"workload must be a non-empty name, got {self.workload!r}",
        )
        require(
            isinstance(self.days, int) and self.days >= 1,
            f"days must be an int >= 1, got {self.days!r}",
        )
        require(
            isinstance(self.runs_per_day, int) and self.runs_per_day >= 1,
            f"runs_per_day must be an int >= 1, got {self.runs_per_day!r}",
        )
        require(
            isinstance(self.n_jobs, int) and self.n_jobs >= 1,
            f"n_jobs must be an int >= 1, got {self.n_jobs!r}",
        )
        require(
            isinstance(self.trace_seed, int)
            and not isinstance(self.trace_seed, bool),
            f"trace_seed must be an integer, got {self.trace_seed!r}",
        )


@dataclass(frozen=True)
class MonitorRequest(_RequestBase):
    """Campaign with streaming metrics and online health detection.

    Mirrors ``repro monitor`` / :func:`repro.api.monitor_fleet`;
    ``window`` feeds both the metrics pipeline and the health detector.
    """

    cluster: str = "longhorn"
    workload: str = "sgemm"
    seed: int = 0
    scale: float = 1.0
    days: int = 7
    runs_per_day: int = 1
    coverage: float = 1.0
    window: int = 4
    workers: int | None = None
    solver: str | None = None
    deadline_s: float | None = None
    schema_version: int = REQUEST_SCHEMA_VERSION

    kind = "monitor"

    def __post_init__(self) -> None:
        self._validate_common()
        require(
            isinstance(self.workload, str) and bool(self.workload),
            f"workload must be a non-empty name, got {self.workload!r}",
        )
        require(
            isinstance(self.window, int) and self.window >= 1,
            f"window must be an int >= 1, got {self.window!r}",
        )


#: ``kind`` discriminator -> request class, for wire dispatch.
REQUEST_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        CharacterizeRequest,
        ScreenRequest,
        SweepRequest,
        ScheduleRequest,
        MonitorRequest,
        ChaosRequest,
    )
}


def request_from_dict(data: dict) -> _RequestBase:
    """Rebuild any request from its :meth:`~_RequestBase.to_dict` form.

    Dispatches on the ``kind`` discriminator; unknown kinds, unknown keys,
    and foreign schema versions raise :class:`~repro.errors.ConfigError`.
    """
    if not isinstance(data, dict):
        raise ConfigError(
            f"request must be a JSON object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    cls = REQUEST_KINDS.get(kind)
    if cls is None:
        raise ConfigError(
            f"unknown request kind {kind!r}; known: {sorted(REQUEST_KINDS)}"
        )
    return cls.from_dict(data)


def request_from_json(text: str) -> _RequestBase:
    """Rebuild any request from its :meth:`~_RequestBase.to_json` form."""
    return request_from_dict(_loads(text))


def request_digest(request: _RequestBase) -> str:
    """Hex digest of the request's *work identity*.

    The canonical dict minus :data:`EXECUTION_FIELDS`, hashed with
    BLAKE2b — the coalescing/caching key of the service layer.  Equal
    digests guarantee byte-identical results; every result-affecting
    field (preset, seed, scale, days, policy, …) perturbs it.
    """
    if not dataclasses.is_dataclass(request):
        raise ConfigError(
            f"expected a request dataclass, got {type(request).__name__}"
        )
    doc = request.to_dict()
    for field in EXECUTION_FIELDS:
        doc.pop(field, None)
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()
