"""The one-stop :class:`VariabilitySuite` — periodic fleet benchmarking.

Section VII: "our results motivate systematic benchmarking across nodes to
provide an early-warning for system administrators".  The suite packages the
whole workflow: run a campaign, compute every analysis the paper performs,
and produce a report an operator can act on.  On a real cluster the
campaign step would be replaced by ingesting real profiler output into a
:class:`~repro.telemetry.dataset.MeasurementDataset`; everything downstream
is measurement-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.cluster import Cluster
from ..errors import AnalysisError
from ..sim.campaign import CampaignConfig, run_campaign
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.sample import (
    METRIC_PERFORMANCE,
    METRIC_POWER,
)
from ..workloads.base import Workload
from .boxstats import BoxStats
from .correlation import CorrelationPair, paper_correlation_pairs
from .outliers import OutlierReport, flag_outlier_gpus, worst_performers
from .report import render_cluster_report
from .sampling import coverage_margin, required_sample_size
from .scheduler import slow_assignment_probability
from .variability import variability_table

__all__ = ["ClusterReport", "VariabilitySuite"]


@dataclass(frozen=True)
class ClusterReport:
    """Everything the paper reports for one (cluster, workload) pair."""

    cluster_name: str
    workload_name: str
    n_gpus_observed: int
    n_runs: int
    metrics: dict[str, BoxStats]
    correlations: dict[str, CorrelationPair]
    performance_outliers: OutlierReport
    maintenance_candidates: list[tuple[str, float]]
    slow_assignment_single: float
    slow_assignment_node: float
    power_cv: float
    recommended_sample_size: int
    sampling_margin: float

    @property
    def performance_variation(self) -> float:
        """The headline number: fleet performance variation."""
        return self.metrics[METRIC_PERFORMANCE].variation

    def render(self) -> str:
        """Plain-text rendering (see :mod:`repro.core.report`)."""
        return render_cluster_report(self)


class VariabilitySuite:
    """Run-and-analyze harness for one cluster.

    Parameters
    ----------
    cluster:
        The machine to characterize.
    campaign:
        Measurement-campaign shape (days, coverage, runs per day).
    workers:
        Campaign worker processes (``None`` = serial).  Measurement
        results are bit-identical either way; see
        :mod:`repro.sim.parallel`.
    """

    def __init__(
        self,
        cluster: Cluster,
        campaign: CampaignConfig | None = None,
        workers: int | None = None,
    ) -> None:
        self.cluster = cluster
        self.campaign = campaign if campaign is not None else CampaignConfig()
        self.workers = workers

    def measure(self, workload: Workload) -> MeasurementDataset:
        """Run the measurement campaign for one workload."""
        return run_campaign(
            self.cluster, workload, self.campaign, workers=self.workers
        )

    def analyze(
        self,
        dataset: MeasurementDataset,
        maintenance_k: int = 5,
    ) -> ClusterReport:
        """Compute the full analysis over a measurement table."""
        if dataset.n_rows == 0:
            raise AnalysisError("empty dataset")
        metrics = variability_table(dataset)
        correlations = paper_correlation_pairs(dataset)
        perf_outliers = flag_outlier_gpus(dataset, METRIC_PERFORMANCE)
        candidates = worst_performers(
            dataset, METRIC_PERFORMANCE, k=maintenance_k
        )
        single = slow_assignment_probability(dataset, n_gpus=1)
        node_width = self.cluster.topology.gpus_per_node
        node = slow_assignment_probability(dataset, n_gpus=node_width)

        power = dataset.column(METRIC_POWER)
        cv = float(power.std() / power.mean())
        n_observed = int(np.unique(dataset.column("gpu_index")).shape[0])
        recommended = required_sample_size(
            cv, population=self.cluster.n_gpus
        )
        margin = coverage_margin(
            cv, n_observed, population=self.cluster.n_gpus
        )

        workload_name = str(dataset.column("workload")[0])
        n_runs = int(
            np.unique(
                dataset.column("day") * 10_000 + dataset.column("run")
            ).shape[0]
        )
        return ClusterReport(
            cluster_name=self.cluster.name,
            workload_name=workload_name,
            n_gpus_observed=n_observed,
            n_runs=n_runs,
            metrics=metrics,
            correlations=correlations,
            performance_outliers=perf_outliers,
            maintenance_candidates=candidates,
            slow_assignment_single=single,
            slow_assignment_node=node,
            power_cv=cv,
            recommended_sample_size=recommended,
            sampling_margin=margin,
        )

    def characterize(self, workload: Workload) -> ClusterReport:
        """Measure and analyze in one step."""
        return self.analyze(self.measure(workload))
