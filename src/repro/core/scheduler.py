"""Variability-aware scheduling (the mitigation the paper calls for).

Two capabilities from Section VII:

* **User impact**: the probability a batch job is handed a slow GPU — 18%
  for single-GPU jobs on Longhorn, 9% on Summit, and 40-50% for 4-GPU jobs
  on Longhorn, because one slow member drags a bulk-synchronous job.
* **Application-aware placement**: "assign medium- and high-compute
  intensity workloads on nodes with less variation [while] memory-bound
  applications can be run on higher-variation nodes without incurring
  significant performance loss."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.sample import METRIC_PERFORMANCE
from ..workloads.base import Workload
from .classify import classify_workload, expected_performance_sensitivity

__all__ = [
    "slow_assignment_probability",
    "node_variability_scores",
    "PlacementPlan",
    "plan_placements",
]


def slow_assignment_probability(
    dataset: MeasurementDataset,
    n_gpus: int = 1,
    slow_threshold: float = 0.06,
    metric: str = METRIC_PERFORMANCE,
    fast_percentile: float = 2.0,
) -> float:
    """Probability a random job draws at least one slow GPU.

    A GPU is *slow* when its per-GPU median runtime exceeds the fast
    baseline (a low percentile of the fleet, approximating "the fastest
    GPUs") by more than ``slow_threshold`` — the paper's "6-7% slower than
    the fastest GPUs".  Single-GPU jobs draw one GPU uniformly; multi-GPU
    jobs draw ``n_gpus`` co-located GPUs from one node, so the per-node
    composition matters.
    """
    if n_gpus < 1:
        raise AnalysisError("n_gpus must be >= 1")
    if not 0.0 <= fast_percentile <= 50.0:
        raise AnalysisError("fast_percentile must be in [0, 50]")
    med = dataset.per_gpu_median(metric)
    values = med.column(metric)
    fast = np.percentile(values, fast_percentile)
    slow = values > fast * (1.0 + slow_threshold)
    if n_gpus == 1:
        return float(slow.mean())

    if "node_label" not in med:
        raise AnalysisError("multi-GPU impact needs a node_label column")
    nodes = med.column("node_label")
    probs: list[float] = []
    for node in np.unique(nodes):
        members = slow[nodes == node]
        width = members.shape[0]
        if width < n_gpus:
            continue
        if n_gpus == width:
            probs.append(float(members.any()))
        else:
            # Hypergeometric: P(no slow GPU among n_gpus of width).
            n_fast = int((~members).sum())
            p_clean = 1.0
            for j in range(n_gpus):
                p_clean *= max(0, n_fast - j) / (width - j)
            probs.append(1.0 - p_clean)
    if not probs:
        raise AnalysisError(
            f"no node is wide enough for {n_gpus}-GPU jobs"
        )
    return float(np.mean(probs))


def node_variability_scores(
    dataset: MeasurementDataset,
    metric: str = METRIC_PERFORMANCE,
) -> dict[str, float]:
    """Per-node variability score: worst member median over node median.

    A score of 1.0 means the node's GPUs perform identically; larger means
    a bulk-synchronous job on this node pays the difference.
    """
    med = dataset.per_gpu_median(metric)
    if "node_label" not in med:
        raise AnalysisError("dataset needs node_label for node scoring")
    values = med.column(metric)
    nodes = med.column("node_label")
    fleet_median = np.median(values)
    scores: dict[str, float] = {}
    for node in np.unique(nodes):
        member_values = values[nodes == node]
        scores[str(node)] = float(member_values.max() / fleet_median)
    return scores


@dataclass(frozen=True)
class PlacementPlan:
    """Assignment of workloads to nodes plus the expected benefit."""

    assignments: dict[str, str]          # workload name -> node label
    expected_slowdowns: dict[str, float]  # vs a fleet-median node
    baseline_slowdowns: dict[str, float]  # random placement expectation


def plan_placements(
    dataset: MeasurementDataset,
    workloads: list[Workload],
    metric: str = METRIC_PERFORMANCE,
) -> PlacementPlan:
    """Place workloads on nodes, variability-aware (Section VII).

    Greedy by performance sensitivity: the most variability-sensitive
    workload gets the lowest-variability node.  The expected slowdown of a
    placement is ``1 + sensitivity * (score - 1)``; the baseline is random
    placement (the mean score).
    """
    if not workloads:
        raise AnalysisError("need at least one workload to place")
    scores = node_variability_scores(dataset, metric)
    if len(scores) < len(workloads):
        raise AnalysisError(
            f"{len(workloads)} workloads but only {len(scores)} nodes"
        )
    nodes_sorted = sorted(scores, key=scores.get)
    mean_score = float(np.mean(list(scores.values())))

    ranked = sorted(
        workloads,
        key=lambda w: expected_performance_sensitivity(classify_workload(w)),
        reverse=True,
    )
    assignments: dict[str, str] = {}
    expected: dict[str, float] = {}
    baseline: dict[str, float] = {}
    for workload, node in zip(ranked, nodes_sorted):
        sens = expected_performance_sensitivity(classify_workload(workload))
        assignments[workload.name] = node
        expected[workload.name] = 1.0 + sens * (scores[node] - 1.0)
        baseline[workload.name] = 1.0 + sens * (mean_score - 1.0)
    return PlacementPlan(
        assignments=assignments,
        expected_slowdowns=expected,
        baseline_slowdowns=baseline,
    )
