"""Correlation analysis between the study's metrics (the scatter figures).

The paper quotes Pearson coefficients between metric pairs on every
cluster (Figs. 3, 5, 7, 10, 13, 15): performance/frequency is strongly
negative on NVIDIA clusters under compute loads, performance/temperature is
weakly positive only on air-cooled machines, and power decouples entirely
on Summit.  Spearman rank correlation is provided as well because several
relationships (thermal throttling onsets) are monotone but not linear.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.sample import PAPER_METRICS

__all__ = ["pearson", "spearman", "CorrelationPair", "correlation_matrix",
           "paper_correlation_pairs"]


def _check(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape:
        raise AnalysisError(f"length mismatch: {x.shape[0]} vs {y.shape[0]}")
    if x.shape[0] < 3:
        raise AnalysisError("need at least 3 points for a correlation")
    finite = np.isfinite(x) & np.isfinite(y)
    x, y = x[finite], y[finite]
    if x.shape[0] < 3:
        raise AnalysisError("fewer than 3 finite point pairs")
    return x, y


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (the paper's rho)."""
    x, y = _check(x, y)
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (average ranks for ties)."""
    x, y = _check(x, y)
    return pearson(_rank(x), _rank(y))


def _rank(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.shape[0])
    ranks[order] = np.arange(1, values.shape[0] + 1, dtype=float)
    # Average tied ranks.
    uniq, inverse, counts = np.unique(
        values, return_inverse=True, return_counts=True
    )
    if uniq.shape[0] != values.shape[0]:
        sums = np.zeros(uniq.shape[0])
        np.add.at(sums, inverse, ranks)
        ranks = (sums / counts)[inverse]
    return ranks


@dataclass(frozen=True)
class CorrelationPair:
    """One metric pair's correlation, as quoted in the paper's captions."""

    metric_x: str
    metric_y: str
    rho: float
    rho_spearman: float
    n: int

    def describe(self) -> str:
        """Qualitative strength label used in reports."""
        a = abs(self.rho)
        if a >= 0.8:
            strength = "strong"
        elif a >= 0.5:
            strength = "moderate"
        elif a >= 0.25:
            strength = "weak"
        else:
            strength = "negligible"
        sign = "negative" if self.rho < 0 else "positive"
        return f"{strength} {sign}"


def correlation_matrix(
    dataset: MeasurementDataset,
    metrics: tuple[str, ...] = PAPER_METRICS,
) -> dict[tuple[str, str], CorrelationPair]:
    """All pairwise correlations between the given metric columns.

    Computed over run-level rows (the scatter plots use every observation,
    not per-GPU medians).
    """
    present = [m for m in metrics if m in dataset]
    if len(present) < 2:
        raise AnalysisError(
            f"need at least two metric columns, found {present}"
        )
    out: dict[tuple[str, str], CorrelationPair] = {}
    for i, mx in enumerate(present):
        for my in present[i + 1:]:
            x = dataset.column(mx)
            y = dataset.column(my)
            out[(mx, my)] = CorrelationPair(
                metric_x=mx,
                metric_y=my,
                rho=pearson(x, y),
                rho_spearman=spearman(x, y),
                n=x.shape[0],
            )
    return out


def paper_correlation_pairs(
    dataset: MeasurementDataset,
) -> dict[str, CorrelationPair]:
    """The four pairings the paper's scatter figures report, by short name."""
    matrix = correlation_matrix(dataset)

    def get(a: str, b: str) -> CorrelationPair:
        return matrix.get((a, b)) or matrix[(b, a)]

    return {
        "perf_vs_frequency": get("performance_ms", "frequency_mhz"),
        "perf_vs_power": get("performance_ms", "power_w"),
        "perf_vs_temperature": get("performance_ms", "temperature_c"),
        "power_vs_temperature": get("power_w", "temperature_c"),
    }
