"""Application classification from profiler counters (Section VII).

"Metrics like FU utilization, DRAM utilization, and memory stalls can be
used by operators to classify applications and modify schedulers to assign
medium- and high-compute intensity workloads on nodes with less variation."

The rules below reproduce the paper's categorization of its own workloads:
SGEMM and ResNet-50 are compute-intensive, BERT is balanced, LAMMPS is
memory-bandwidth-bound, PageRank is memory-latency-bound (irregular).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import require_in_range
from ..workloads.base import Workload

__all__ = ["ApplicationClass", "CounterProfile", "classify_counters",
           "classify_workload", "expected_performance_sensitivity"]


class ApplicationClass(enum.Enum):
    """Placement-relevant application categories."""

    COMPUTE_BOUND = "compute-bound"
    BALANCED = "balanced"
    MEMORY_BANDWIDTH_BOUND = "memory-bandwidth-bound"
    MEMORY_LATENCY_BOUND = "memory-latency-bound"


@dataclass(frozen=True)
class CounterProfile:
    """The profiler counters the classification consumes.

    ``fu_utilization`` uses nvprof's 0-10 scale; the rest are fractions.
    """

    fu_utilization: float
    dram_utilization: float
    mem_stall_frac: float

    def __post_init__(self) -> None:
        require_in_range(self.fu_utilization, 0.0, 10.0, "fu_utilization")
        require_in_range(self.dram_utilization, 0.0, 1.0, "dram_utilization")
        require_in_range(self.mem_stall_frac, 0.0, 1.0, "mem_stall_frac")


def classify_counters(profile: CounterProfile) -> ApplicationClass:
    """Classify an application from its profiler counters.

    Decision order matters: heavy memory-dependency stalls identify
    irregular (latency-bound) codes even when DRAM utilization is modest
    — exactly PageRank's signature (61% stalls, low DRAM utilization).
    """
    if profile.mem_stall_frac >= 0.45:
        return ApplicationClass.MEMORY_LATENCY_BOUND
    if profile.dram_utilization >= 0.60:
        return ApplicationClass.MEMORY_BANDWIDTH_BOUND
    if profile.fu_utilization >= 5.0:
        return ApplicationClass.COMPUTE_BOUND
    return ApplicationClass.BALANCED


def classify_workload(workload: Workload) -> ApplicationClass:
    """Classify one of this package's workload models."""
    return classify_counters(
        CounterProfile(
            fu_utilization=workload.fu_utilization,
            dram_utilization=workload.dram_utilization_profile,
            mem_stall_frac=workload.mem_stall_frac,
        )
    )


def expected_performance_sensitivity(app_class: ApplicationClass) -> float:
    """Relative performance sensitivity to GPU variability, by class.

    A unitless weight used by the placement planner: how much of the
    fleet's frequency spread an application of this class converts into
    runtime spread.  Compute-bound work converts ~all of it (SGEMM: 9%
    runtime vs 11% frequency variation); memory-bound work converts almost
    none (LAMMPS/PageRank: ~1%).
    """
    return {
        ApplicationClass.COMPUTE_BOUND: 1.0,
        ApplicationClass.BALANCED: 0.55,
        ApplicationClass.MEMORY_BANDWIDTH_BOUND: 0.08,
        ApplicationClass.MEMORY_LATENCY_BOUND: 0.08,
    }[app_class]
