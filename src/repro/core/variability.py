"""Fleet variability summaries over measurement datasets.

The entry points mirror how the paper presents its data: per-metric box
statistics (Figs. 2, 4, 6, 9, 12, 14, 16-19), grouped box plots by cabinet
or row (same figures' x-axes), and median-normalized performance (Fig. 1).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import AnalysisError
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.sample import METRIC_PERFORMANCE, PAPER_METRICS
from .boxstats import BoxStats

__all__ = [
    "metric_boxstats",
    "grouped_boxstats",
    "variability_table",
    "normalized_performance",
]


def _values(
    dataset: MeasurementDataset, metric: str, per_gpu_median: bool
) -> np.ndarray:
    if per_gpu_median:
        return dataset.per_gpu_median(metric).column(metric)
    return dataset.column(metric)


def metric_boxstats(
    dataset: MeasurementDataset,
    metric: str,
    per_gpu_median: bool = True,
) -> BoxStats:
    """Box statistics of one metric across the fleet.

    ``per_gpu_median=True`` collapses repeated runs to each GPU's median
    first (Section III: "we use the median of each measurement to avoid
    one-off outliers"); pass ``False`` to treat every run as a point, the
    way the scatter plots do.
    """
    return BoxStats.from_values(_values(dataset, metric, per_gpu_median))


def grouped_boxstats(
    dataset: MeasurementDataset,
    metric: str,
    group: str,
    per_gpu_median: bool = True,
) -> dict[Any, BoxStats]:
    """Box statistics of a metric per group (cabinet, row, weekday...).

    Groups with fewer than 3 observations are skipped — a box plot of two
    points is noise.
    """
    out: dict[Any, BoxStats] = {}
    for value, subset in dataset.groupby(group):
        values = _values(subset, metric, per_gpu_median)
        if values.shape[0] >= 3:
            out[value] = BoxStats.from_values(values)
    if not out:
        raise AnalysisError(
            f"no group of {group!r} had enough observations for box stats"
        )
    return out


def variability_table(
    dataset: MeasurementDataset,
    metrics: tuple[str, ...] = PAPER_METRICS,
    per_gpu_median: bool = True,
) -> dict[str, BoxStats]:
    """Box statistics for each of the paper's four metrics."""
    return {
        metric: metric_boxstats(dataset, metric, per_gpu_median)
        for metric in metrics
        if metric in dataset
    }


def normalized_performance(
    dataset: MeasurementDataset,
    metric: str = METRIC_PERFORMANCE,
    per_gpu_median: bool = True,
) -> np.ndarray:
    """Per-GPU performance normalized to a median of 1.0 (Fig. 1)."""
    values = _values(dataset, metric, per_gpu_median)
    median = np.median(values)
    if median <= 0:
        raise AnalysisError("performance median must be positive to normalize")
    return values / median
