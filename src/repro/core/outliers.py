"""Outlier flagging — the operator-facing early-warning capability.

The paper's study "helped TACC's operators identify and perform targeted
maintenance on problematic nodes" (Section VII).  The functions here turn a
measurement table into exactly that: per-GPU outlier flags under the Tukey
fences, per-node counts across all four metrics (the Appendix-B row-H
breakdown), persistence of outliers across applications (Takeaway 6), and
a ranked worst-performer list for maintenance tickets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.sample import METRIC_PERFORMANCE, PAPER_METRICS
from .boxstats import BoxStats

__all__ = [
    "OutlierReport",
    "OutlierAccumulator",
    "flag_outlier_gpus",
    "flag_outlier_values",
    "persistent_outliers",
    "node_outlier_counts",
    "worst_performers",
]


@dataclass(frozen=True)
class OutlierReport:
    """Outliers of one metric across the fleet."""

    metric: str
    stats: BoxStats
    gpu_labels: tuple[str, ...]        # flagged GPUs (sorted)
    node_labels: tuple[str, ...]       # their nodes (unique, sorted)
    high_side: tuple[str, ...]         # GPUs above the upper fence
    low_side: tuple[str, ...]          # GPUs below the lower fence

    @property
    def n_outlier_gpus(self) -> int:
        """Number of flagged GPUs."""
        return len(self.gpu_labels)


def flag_outlier_values(
    values: np.ndarray,
    gpu_labels: np.ndarray,
    node_labels: np.ndarray | None = None,
    metric: str = METRIC_PERFORMANCE,
) -> OutlierReport:
    """Flag outliers over plain per-GPU arrays — the streaming entry point.

    Unlike :func:`flag_outlier_gpus` this needs no measurement table: any
    producer holding one value per GPU (a sliding-window median, a single
    day's summary, live telemetry) can call it directly.  The fence math is
    :class:`~repro.core.boxstats.BoxStats` (one fence definition repo-wide).
    """
    values = np.asarray(values, dtype=float).ravel()
    labels = np.asarray(gpu_labels, dtype=object).ravel()
    if values.shape[0] != labels.shape[0]:
        raise AnalysisError(
            f"values ({values.shape[0]}) and gpu_labels ({labels.shape[0]}) "
            "must have one entry per GPU"
        )
    stats = BoxStats.from_values(values)
    mask = stats.outlier_mask(values)
    if node_labels is not None:
        nodes = np.asarray(node_labels, dtype=object).ravel()
        if nodes.shape[0] != labels.shape[0]:
            raise AnalysisError("node_labels must match gpu_labels in length")
    else:
        nodes = np.asarray(
            [lbl.rsplit("-", 1)[0] for lbl in labels], dtype=object
        )
    high = labels[mask & (values > stats.fence_hi)]
    low = labels[mask & (values < stats.fence_lo)]
    return OutlierReport(
        metric=metric,
        stats=stats,
        gpu_labels=tuple(sorted(labels[mask])),
        node_labels=tuple(sorted(set(nodes[mask]))),
        high_side=tuple(sorted(high)),
        low_side=tuple(sorted(low)),
    )


def flag_outlier_gpus(
    dataset: MeasurementDataset,
    metric: str = METRIC_PERFORMANCE,
) -> OutlierReport:
    """Flag GPUs whose per-GPU median falls outside the fleet's fences."""
    med = dataset.per_gpu_median(metric)
    if "gpu_label" not in med:
        raise AnalysisError("dataset needs a gpu_label column for flagging")
    return flag_outlier_values(
        med.column(metric),
        med.column("gpu_label"),
        med.column("node_label") if "node_label" in med else None,
        metric=metric,
    )


class OutlierAccumulator:
    """Incremental cross-report outlier persistence counter.

    The batch API (:func:`persistent_outliers`) needs every report in hand
    at once; this accumulator is its streaming twin — feed it one report
    (or a bare label iterable) at a time as windows complete, and ask for
    the persistent set whenever an operator looks.
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._n_reports = 0

    @property
    def n_reports(self) -> int:
        """How many reports have been folded in."""
        return self._n_reports

    def add(self, report) -> None:
        """Fold in one :class:`OutlierReport` or iterable of GPU labels."""
        labels = (
            report.gpu_labels if isinstance(report, OutlierReport) else report
        )
        for label in labels:
            self._counts[str(label)] = self._counts.get(str(label), 0) + 1
        self._n_reports += 1

    def counts(self) -> dict[str, int]:
        """Occurrence count per flagged GPU label (sorted by label)."""
        return dict(sorted(self._counts.items()))

    def persistent(self, min_occurrences: int = 2) -> dict[str, int]:
        """GPUs flagged at least ``min_occurrences`` times so far."""
        if min_occurrences < 1:
            raise AnalysisError("min_occurrences must be >= 1")
        return {
            label: count
            for label, count in sorted(self._counts.items())
            if count >= min_occurrences
        }


def persistent_outliers(
    reports: list[OutlierReport],
    min_occurrences: int = 2,
) -> dict[str, int]:
    """GPUs flagged in at least ``min_occurrences`` reports.

    Feeding the same cluster's ResNet and BERT reports reproduces
    Takeaway 6 ("BERT's and ResNet-50's outlier nodes are the same"); a GPU
    that keeps appearing is a maintenance candidate, not a transient.
    """
    if min_occurrences < 1:
        raise AnalysisError("min_occurrences must be >= 1")
    acc = OutlierAccumulator()
    for report in reports:
        acc.add(report)
    return acc.persistent(min_occurrences)


def node_outlier_counts(
    dataset: MeasurementDataset,
    metrics: tuple[str, ...] = PAPER_METRICS,
) -> dict[str, dict[str, int]]:
    """Outlier-GPU count per node, per metric (the Appendix-B breakdown).

    Returns ``{node_label: {metric: count}}`` including only nodes with at
    least one outlier in some metric.
    """
    per_node: dict[str, dict[str, int]] = {}
    for metric in metrics:
        if metric not in dataset:
            continue
        report = flag_outlier_gpus(dataset, metric)
        med = dataset.per_gpu_median(metric)
        labels = med.column("gpu_label")
        nodes = med.column("node_label")
        node_of = dict(zip(labels, nodes))
        for gpu in report.gpu_labels:
            node = node_of[gpu]
            per_node.setdefault(node, {})[metric] = (
                per_node.get(node, {}).get(metric, 0) + 1
            )
    return dict(sorted(per_node.items()))


def worst_performers(
    dataset: MeasurementDataset,
    metric: str = METRIC_PERFORMANCE,
    k: int = 10,
    higher_is_worse: bool = True,
) -> list[tuple[str, float]]:
    """The ``k`` worst GPUs by per-GPU median, with their values.

    Durations are worse when higher; pass ``higher_is_worse=False`` for
    frequency-like metrics.
    """
    if k < 1:
        raise AnalysisError("k must be >= 1")
    med = dataset.per_gpu_median(metric)
    values = med.column(metric)
    labels = med.column("gpu_label")
    order = np.argsort(values)
    if higher_is_worse:
        order = order[::-1]
    picked = order[:k]
    return [(str(labels[i]), float(values[i])) for i in picked]
