"""Cluster-size projection via the scaled-normal model (Section IV-D).

To separate cluster-size effects from genuine differences, the paper fits a
normal distribution to Longhorn's per-GPU performance and asks what
whisker-to-whisker variation a Summit-sized sample from that distribution
would show: 9.4%, versus the 8% actually measured on Summit — evidence that
"cluster size may impact the severity of variability".

The quartiles of a normal are size-invariant, but the paper's *range*
statistic (most extreme observations inside the Tukey fences) grows with
sample count until it saturates at the fences; that growth is what this
module computes, both analytically and by Monte Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from ..errors import AnalysisError
from .boxstats import WHISKER_FACTOR, tukey_fences

__all__ = ["NormalFit", "fit_normal", "expected_whisker_span", "project_variation"]

#: Quartile z-score of the standard normal.
_Z_Q3 = 0.6744897501960817


@dataclass(frozen=True)
class NormalFit:
    """A robust normal fit (median / IQR based, outlier-resistant)."""

    mean: float
    std: float
    n: int


def fit_normal(values: np.ndarray) -> NormalFit:
    """Fit a normal via median and IQR (robust to the outlier tail)."""
    x = np.asarray(values, dtype=float).ravel()
    x = x[np.isfinite(x)]
    if x.shape[0] < 8:
        raise AnalysisError("need at least 8 observations to fit")
    q1, med, q3 = np.percentile(x, [25, 50, 75])
    std = (q3 - q1) / (2.0 * _Z_Q3)
    if std <= 0:
        raise AnalysisError("degenerate sample: IQR is zero")
    return NormalFit(mean=float(med), std=float(std), n=int(x.shape[0]))


def _phi(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def expected_whisker_span(n: int) -> float:
    """E[span of the in-fence extremes] of n standard normal samples.

    The paper's *range* statistic is the most extreme observation inside
    the Tukey fences (at ``z = +-z_q3 * (1 + 2 * 1.5) = +-2.698`` for a
    normal), so the expected span is twice the Blom-position quantile of
    the normal *truncated to the fences*: it grows with n and saturates at
    the fence span as the fences fill up.
    """
    if n < 2:
        raise AnalysisError("need n >= 2 for a span")
    fence = _Z_Q3 * (1.0 + 2.0 * WHISKER_FACTOR)  # z_q3 + 1.5 * (2 z_q3)
    p_in = _phi(fence) - _phi(-fence)
    m = max(2.0, n * p_in)  # expected in-fence count
    blom = (m - 0.375) / (m + 0.25)
    target = _phi(-fence) + blom * p_in
    expected_max = math.sqrt(2.0) * _erfinv(2.0 * target - 1.0)
    return 2.0 * min(expected_max, fence)


def _erfinv(y: float) -> float:
    a = 0.147
    ln_term = math.log(1.0 - y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    x = math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), y
    )
    for _ in range(2):
        err = math.erf(x) - y
        x -= err / (2.0 / math.sqrt(math.pi) * math.exp(-x * x))
    return x


def project_variation(
    values: np.ndarray,
    target_n: int,
    method: str = "analytic",
    rng: np.random.Generator | None = None,
    mc_trials: int = 200,
) -> float:
    """Projected whisker-range variation of a ``target_n``-GPU cluster.

    Parameters
    ----------
    values:
        Per-GPU performance medians of the measured (smaller) cluster.
    target_n:
        Size of the hypothetical cluster.
    method:
        ``"analytic"`` (Blom approximation) or ``"montecarlo"``.
    rng, mc_trials:
        Monte Carlo settings (``montecarlo`` only).
    """
    if target_n < 2:
        raise AnalysisError("target_n must be >= 2")
    fit = fit_normal(values)
    if method == "analytic":
        span = expected_whisker_span(target_n) * fit.std
        return span / fit.mean
    if method == "montecarlo":
        if rng is None:
            rng = np.random.default_rng(0)
        spans = np.empty(mc_trials)
        for trial in range(mc_trials):
            x = rng.normal(fit.mean, fit.std, size=target_n)
            _, med, _, fence_lo, fence_hi = tukey_fences(x)
            inside = x[(x >= fence_lo) & (x <= fence_hi)]
            spans[trial] = (inside.max() - inside.min()) / med
        return float(spans.mean())
    raise AnalysisError(f"unknown projection method {method!r}")
