"""Day-of-week analysis (Section VI-A, Figs. 20-21).

The paper repeats its campaigns across weeks and groups by weekday to show
the variability is not transient: performance variation is flat across the
week even though the *number of power outliers* swings by day (more on
Mondays/Wednesdays/Fridays on Summit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.facility import WEEKDAY_NAMES
from ..errors import AnalysisError
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.sample import METRIC_PERFORMANCE, METRIC_POWER
from .boxstats import BoxStats

__all__ = ["WeekdayStats", "day_of_week_stats", "weekday_consistency"]


@dataclass(frozen=True)
class WeekdayStats:
    """One weekday's box statistics and outlier census."""

    weekday: str
    performance: BoxStats
    power: BoxStats
    n_power_outliers: int
    n_performance_outliers: int


def day_of_week_stats(
    dataset: MeasurementDataset,
    performance_metric: str = METRIC_PERFORMANCE,
    power_metric: str = METRIC_POWER,
) -> dict[str, WeekdayStats]:
    """Box statistics per weekday (Monday-first ordering preserved)."""
    if "weekday" not in dataset:
        raise AnalysisError("dataset needs a weekday column (campaign output)")
    out: dict[str, WeekdayStats] = {}
    for weekday in WEEKDAY_NAMES:
        subset = dataset.where(weekday=weekday)
        if subset.n_rows < 3:
            continue
        perf = BoxStats.from_values(subset.column(performance_metric))
        power = BoxStats.from_values(subset.column(power_metric))
        out[weekday] = WeekdayStats(
            weekday=weekday,
            performance=perf,
            power=power,
            n_power_outliers=power.n_outliers,
            n_performance_outliers=perf.n_outliers,
        )
    if not out:
        raise AnalysisError("no weekday had enough observations")
    return out


def weekday_consistency(
    stats: dict[str, WeekdayStats],
) -> dict[str, float]:
    """How stable the study is across the week (Takeaway 9 check).

    Returns:

    ``median_drift``
        Max relative deviation of daily performance medians from their
        overall mean — near zero when the phenomenon is persistent.
    ``variation_spread``
        Max minus min of the daily performance variations.
    ``outlier_imbalance``
        Ratio of the busiest to the quietest day by power-outlier count
        (>= 1; large values mean outliers concentrate on specific days).
    """
    if not stats:
        raise AnalysisError("empty weekday statistics")
    medians = np.array([s.performance.median for s in stats.values()])
    variations = np.array([s.performance.variation for s in stats.values()])
    outliers = np.array([s.n_power_outliers for s in stats.values()], dtype=float)
    mean_median = medians.mean()
    quietest = outliers.min()
    return {
        "median_drift": float(np.abs(medians - mean_median).max() / mean_median),
        "variation_spread": float(variations.max() - variations.min()),
        "outlier_imbalance": float(
            outliers.max() / quietest if quietest > 0 else np.inf
        ),
    }
