"""Plain-text report rendering for terminals and logs.

Benchmarks and examples print through these helpers so the reproduced
figures are readable without a plotting stack: ASCII box-plot rows, aligned
metric tables, and the full cluster report the operator workflow produces.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from .boxstats import BoxStats

__all__ = ["ascii_box_row", "ascii_histogram", "format_boxstats_table",
           "render_cluster_report"]


def ascii_box_row(
    stats: BoxStats,
    lo: float,
    hi: float,
    width: int = 48,
) -> str:
    """One box-and-whisker rendered as text on the [lo, hi] axis.

    ``|`` marks the whiskers, ``=`` the box, ``#`` the median::

        ----|====#=======|------
    """
    if hi <= lo:
        raise ValueError(f"need hi > lo, got [{lo}, {hi}]")

    def pos(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return int(round(np.clip(frac, 0.0, 1.0) * (width - 1)))

    cells = ["-"] * width
    for a, b in ((pos(stats.whisker_lo), pos(stats.q1)),
                 (pos(stats.q3), pos(stats.whisker_hi))):
        for i in range(min(a, b), max(a, b) + 1):
            cells[i] = "-"
    for i in range(pos(stats.q1), pos(stats.q3) + 1):
        cells[i] = "="
    cells[pos(stats.whisker_lo)] = "|"
    cells[pos(stats.whisker_hi)] = "|"
    cells[pos(stats.median)] = "#"
    return "".join(cells)


def ascii_histogram(
    values,
    bins: int = 12,
    width: int = 50,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal ASCII histogram (the Fig.-1 distributions, in text)."""
    x = np.asarray(values, dtype=float).ravel()
    x = x[np.isfinite(x)]
    if x.shape[0] == 0:
        raise ValueError("nothing to histogram")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be positive")
    counts, edges = np.histogram(x, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = []
    fmt = value_format.format
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{fmt(lo):>10} .. {fmt(hi):>10} |{bar:<{width}}| {count}")
    return "\n".join(lines)


def format_boxstats_table(
    rows: Mapping[Any, BoxStats],
    value_format: str = "{:.1f}",
    label_header: str = "group",
) -> str:
    """Aligned table of box statistics, one row per group.

    Columns: group, n, median, Q1, Q3, whiskers, variation, outliers —
    everything a paper box-plot figure encodes.
    """
    if not rows:
        raise ValueError("no rows to format")
    header = (
        f"{label_header:<18} {'n':>6} {'median':>10} {'q1':>10} {'q3':>10} "
        f"{'whisk_lo':>10} {'whisk_hi':>10} {'variation':>9} {'outl':>5}"
    )
    lines = [header, "-" * len(header)]
    for label, stats in rows.items():
        fmt = value_format.format
        lines.append(
            f"{str(label):<18} {stats.n:>6d} {fmt(stats.median):>10} "
            f"{fmt(stats.q1):>10} {fmt(stats.q3):>10} "
            f"{fmt(stats.whisker_lo):>10} {fmt(stats.whisker_hi):>10} "
            f"{stats.variation:>8.1%} {stats.n_outliers:>5d}"
        )
    return "\n".join(lines)


def render_cluster_report(report: "ClusterReport") -> str:  # noqa: F821
    """Render a :class:`~repro.core.suite.ClusterReport` as text."""
    lines: list[str] = []
    lines.append(f"=== Variability report: {report.cluster_name} "
                 f"({report.workload_name}) ===")
    lines.append(
        f"GPUs observed: {report.n_gpus_observed}, runs: {report.n_runs}"
    )
    lines.append("")
    lines.append("Per-metric fleet statistics (per-GPU medians):")
    lines.append(format_boxstats_table(report.metrics, label_header="metric"))
    lines.append("")
    lines.append("Correlations (run-level):")
    for name, pair in report.correlations.items():
        lines.append(
            f"  {name:<24} rho={pair.rho:+.2f} "
            f"(spearman {pair.rho_spearman:+.2f}, {pair.describe()})"
        )
    lines.append("")
    lines.append(
        f"Performance outliers: {report.performance_outliers.n_outlier_gpus} GPUs "
        f"on nodes {list(report.performance_outliers.node_labels)[:8]}"
    )
    lines.append(
        f"Slow-assignment probability (1 GPU): "
        f"{report.slow_assignment_single:.0%}; "
        f"(node-wide): {report.slow_assignment_node:.0%}"
    )
    lines.append(
        f"Sampling: cv={report.power_cv:.3f}, recommended sample "
        f"{report.recommended_sample_size}, measured {report.n_gpus_observed} "
        f"({report.sampling_margin:.1f}x margin)"
    )
    if report.maintenance_candidates:
        lines.append("Maintenance candidates (worst performers):")
        for label, value in report.maintenance_candidates:
            lines.append(f"  {label:<24} {value:.1f} ms")
    return "\n".join(lines)
