"""Statistical sample-size methodology (Section III; Scogland et al., ICPE'14).

The paper computes "the recommended sample size (number of GPUs) for each
cluster to obtain lambda = 0.5% accuracy for average power within a 95%
confidence interval" and observes that measuring >90% of every cluster puts
it 2.9x above the worst-case recommendation.

The machinery is the classic mean-estimation bound: to estimate a mean
within a relative margin ``lambda`` at confidence ``c`` given coefficient
of variation ``cv``::

    n0 = (z_c * cv / lambda)**2

with the finite-population correction ``n = n0 / (1 + (n0 - 1) / N)``.
"""

from __future__ import annotations

import math

from ..config import require
from ..errors import AnalysisError

__all__ = [
    "z_score",
    "required_sample_size",
    "achieved_accuracy",
    "coverage_margin",
]

#: Default relative accuracy target (lambda) from the paper.
DEFAULT_ACCURACY = 0.005
#: Default confidence level from the paper.
DEFAULT_CONFIDENCE = 0.95


def z_score(confidence: float) -> float:
    """Two-sided standard-normal critical value for a confidence level.

    Uses the inverse error function, so no lookup tables:
    ``z = sqrt(2) * erfinv(confidence)``.
    """
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    return math.sqrt(2.0) * _erfinv(confidence)


def _erfinv(y: float) -> float:
    """Inverse error function (Winitzki's approximation + Newton polish)."""
    if not -1.0 < y < 1.0:
        raise AnalysisError(f"erfinv domain is (-1, 1), got {y}")
    a = 0.147
    ln_term = math.log(1.0 - y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    x = math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), y
    )
    # Two Newton iterations against erf(x) push the error below 1e-12.
    for _ in range(2):
        err = math.erf(x) - y
        x -= err / (2.0 / math.sqrt(math.pi) * math.exp(-x * x))
    return x


def required_sample_size(
    cv: float,
    accuracy: float = DEFAULT_ACCURACY,
    confidence: float = DEFAULT_CONFIDENCE,
    population: int | None = None,
) -> int:
    """GPUs to sample for the target accuracy.

    Parameters
    ----------
    cv:
        Coefficient of variation (std / mean) of the metric — average
        power in the paper's usage.
    accuracy:
        Relative margin of error (lambda = 0.005 in the paper).
    confidence:
        Confidence level (0.95 in the paper).
    population:
        Cluster size for the finite-population correction; ``None`` means
        an effectively infinite fleet.
    """
    require(cv >= 0, "cv must be >= 0")
    require(accuracy > 0, "accuracy must be positive")
    if cv == 0.0:
        return 1
    z = z_score(confidence)
    n0 = (z * cv / accuracy) ** 2
    if population is not None:
        require(population >= 1, "population must be >= 1")
        n0 = n0 / (1.0 + (n0 - 1.0) / population)
        n0 = min(n0, population)
    return max(1, math.ceil(n0))


def achieved_accuracy(
    cv: float,
    n_sampled: int,
    confidence: float = DEFAULT_CONFIDENCE,
    population: int | None = None,
) -> float:
    """Relative margin of error achieved by a sample of ``n_sampled`` GPUs."""
    require(cv >= 0, "cv must be >= 0")
    require(n_sampled >= 1, "n_sampled must be >= 1")
    z = z_score(confidence)
    if population is not None and population > 1:
        if n_sampled > population:
            raise AnalysisError(
                f"sampled {n_sampled} from a population of {population}"
            )
        fpc = math.sqrt((population - n_sampled) / (population - 1))
    else:
        fpc = 1.0
    return z * cv / math.sqrt(n_sampled) * fpc


def coverage_margin(
    cv: float,
    n_sampled: int,
    accuracy: float = DEFAULT_ACCURACY,
    confidence: float = DEFAULT_CONFIDENCE,
    population: int | None = None,
) -> float:
    """How many times larger the sample is than the recommendation.

    The paper reports 2.9x over the worst-case recommendation across its
    clusters (Section III).
    """
    needed = required_sample_size(cv, accuracy, confidence, population)
    return n_sampled / needed
