"""Per-GPU repeatability across independent runs (Fig. 8).

The paper validates that its fleet-level findings are not transient by
measuring how much a *single* GPU varies across runs: the median per-GPU
variation is 0.44% on Longhorn, 0.12% on Summit, and 6.06% on Corona —
so "ill-performing GPUs are consistently ill-performing".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.sample import METRIC_PERFORMANCE
from .boxstats import BoxStats

__all__ = ["per_gpu_repeatability", "repeatability_summary", "RepeatabilitySummary"]


def per_gpu_repeatability(
    dataset: MeasurementDataset,
    metric: str = METRIC_PERFORMANCE,
    gpu_key: str = "gpu_index",
    min_runs: int = 2,
) -> MeasurementDataset:
    """Across-run variation per GPU: ``(max - min) / median`` of its runs.

    Returns a dataset with one row per GPU carrying ``gpu_label`` (when
    present), ``n_runs``, and ``repeat_variation``.  GPUs with fewer than
    ``min_runs`` observations are dropped.
    """
    if min_runs < 2:
        raise AnalysisError("min_runs must be >= 2")
    keys = dataset.column(gpu_key)
    values = dataset.column(metric)
    uniq, first_index, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )

    rows_idx: list[int] = []
    variation: list[float] = []
    n_runs: list[int] = []
    for gi in range(uniq.shape[0]):
        v = values[inverse == gi]
        if v.shape[0] < min_runs:
            continue
        med = np.median(v)
        if med == 0:
            raise AnalysisError("zero median makes repeat variation undefined")
        rows_idx.append(int(first_index[gi]))
        variation.append(float((v.max() - v.min()) / med))
        n_runs.append(int(v.shape[0]))
    if not variation:
        raise AnalysisError(
            f"no GPU had at least {min_runs} runs of {metric!r}"
        )

    columns: dict[str, np.ndarray] = {
        gpu_key: keys[rows_idx],
        "n_runs": np.asarray(n_runs, dtype=np.int64),
        "repeat_variation": np.asarray(variation),
    }
    for carry in ("gpu_label", "node_label", "cabinet", "cluster", "workload"):
        if carry in dataset:
            columns[carry] = dataset.column(carry)[rows_idx]
    return MeasurementDataset(columns)


@dataclass(frozen=True)
class RepeatabilitySummary:
    """Fleet distribution of per-GPU across-run variation."""

    stats: BoxStats
    median_variation: float
    worst_gpu_label: str
    worst_variation: float
    #: Whether the worst repeat-variation GPUs coincide with the slowest
    #: GPUs (the paper found they do *not* — Section IV-D).
    worst_overlaps_slowest: bool


def repeatability_summary(
    dataset: MeasurementDataset,
    metric: str = METRIC_PERFORMANCE,
    top_k: int = 10,
) -> RepeatabilitySummary:
    """Summarize per-GPU repeatability and its relation to slowness."""
    rep = per_gpu_repeatability(dataset, metric)
    variation = rep.column("repeat_variation")
    stats = BoxStats.from_values(variation)
    worst_idx = int(np.argmax(variation))
    labels = (
        rep.column("gpu_label")
        if "gpu_label" in rep
        else rep.column("gpu_index").astype(str)
    )

    med = dataset.per_gpu_median(metric)
    slow_order = np.argsort(med.column(metric))[::-1][:top_k]
    slow_labels = set(
        (med.column("gpu_label") if "gpu_label" in med
         else med.column("gpu_index").astype(str))[slow_order]
    )
    noisy_order = np.argsort(variation)[::-1][:top_k]
    noisy_labels = set(labels[noisy_order])

    return RepeatabilitySummary(
        stats=stats,
        median_variation=stats.median,
        worst_gpu_label=str(labels[worst_idx]),
        worst_variation=float(variation[worst_idx]),
        worst_overlaps_slowest=bool(noisy_labels & slow_labels),
    )
