"""The variability characterization suite — the paper's methodology.

Everything in this subpackage operates on plain measurement tables
(:class:`~repro.telemetry.dataset.MeasurementDataset`), so it applies
unchanged to *real* cluster telemetry: box/IQR statistics with the paper's
variability definition, correlation analysis, outlier flagging and
cross-application persistence, per-GPU repeatability, statistical sample
sizing, cluster-size projection, application classification, scheduling
recommendations, day-of-week analysis, and plain-text reporting.
"""

from .boxstats import BoxStats, tukey_fences
from .variability import (
    grouped_boxstats,
    metric_boxstats,
    normalized_performance,
    variability_table,
)
from .correlation import CorrelationPair, correlation_matrix, pearson, spearman
from .outliers import (
    OutlierAccumulator,
    OutlierReport,
    flag_outlier_gpus,
    flag_outlier_values,
    node_outlier_counts,
    persistent_outliers,
    worst_performers,
)
from .repeatability import per_gpu_repeatability, repeatability_summary
from .sampling import (
    achieved_accuracy,
    coverage_margin,
    required_sample_size,
)
from .projection import fit_normal, project_variation
from .classify import (
    ApplicationClass,
    classify_counters,
    classify_workload,
)
from .scheduler import (
    PlacementPlan,
    node_variability_scores,
    plan_placements,
    slow_assignment_probability,
)
from .daily import day_of_week_stats, weekday_consistency
from .report import ascii_box_row, format_boxstats_table, render_cluster_report
from .suite import ClusterReport, VariabilitySuite

__all__ = [
    "BoxStats",
    "tukey_fences",
    "metric_boxstats",
    "grouped_boxstats",
    "variability_table",
    "normalized_performance",
    "pearson",
    "spearman",
    "CorrelationPair",
    "correlation_matrix",
    "OutlierReport",
    "OutlierAccumulator",
    "flag_outlier_gpus",
    "flag_outlier_values",
    "persistent_outliers",
    "node_outlier_counts",
    "worst_performers",
    "per_gpu_repeatability",
    "repeatability_summary",
    "required_sample_size",
    "achieved_accuracy",
    "coverage_margin",
    "fit_normal",
    "project_variation",
    "ApplicationClass",
    "classify_workload",
    "classify_counters",
    "node_variability_scores",
    "slow_assignment_probability",
    "PlacementPlan",
    "plan_placements",
    "day_of_week_stats",
    "weekday_consistency",
    "ascii_box_row",
    "format_boxstats_table",
    "render_cluster_report",
    "VariabilitySuite",
    "ClusterReport",
]
