"""Box-and-whisker statistics with the paper's exact definitions.

Section III ("IQR & Variability"): the box spans Q1..Q3, whiskers sit at
Q1 - 1.5 IQR and Q3 + 1.5 IQR, *range* is the difference between the most
extreme observations inside the whisker fences, *variation* is
``range / median``, and points outside the fences are outliers — excluded
from the variance calculation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError

__all__ = ["BoxStats", "WHISKER_FACTOR", "tukey_fences"]

#: Tukey whisker multiplier used throughout the paper.
WHISKER_FACTOR = 1.5


def tukey_fences(values: np.ndarray) -> tuple[float, float, float, float, float]:
    """Quartiles and whisker fences of a finite 1-D sample.

    Returns ``(q1, median, q3, fence_lo, fence_hi)`` with the fences at
    ``q1 - 1.5 IQR`` / ``q3 + 1.5 IQR``.  This is the single home of the
    paper's fence arithmetic; :class:`BoxStats`, the outlier flaggers, the
    Monte Carlo projection, and the streaming health monitor all call it
    rather than re-deriving the expression.
    """
    x = np.asarray(values, dtype=float).ravel()
    if x.shape[0] == 0:
        raise AnalysisError("cannot compute fences of an empty sample")
    q1, median, q3 = (float(v) for v in np.percentile(x, [25, 50, 75]))
    iqr = q3 - q1
    return q1, median, q3, q1 - WHISKER_FACTOR * iqr, q3 + WHISKER_FACTOR * iqr


@dataclass(frozen=True)
class BoxStats:
    """Summary of one metric's distribution, the paper's way.

    Attributes
    ----------
    q1, median, q3:
        Quartiles.
    iqr:
        ``q3 - q1``.
    fence_lo, fence_hi:
        Theoretical whisker positions ``q1 - 1.5 IQR`` / ``q3 + 1.5 IQR``.
    whisker_lo, whisker_hi:
        Most extreme observations inside the fences (where a box plot
        actually draws its whiskers).
    range:
        ``whisker_hi - whisker_lo``.
    variation:
        ``range / median`` — the paper's headline variability number.
    n, n_outliers:
        Total observations and how many fall outside the fences.
    """

    q1: float
    median: float
    q3: float
    iqr: float
    fence_lo: float
    fence_hi: float
    whisker_lo: float
    whisker_hi: float
    range: float
    variation: float
    n: int
    n_outliers: int

    @classmethod
    def from_values(cls, values: np.ndarray) -> "BoxStats":
        """Compute box statistics over a 1-D sample."""
        x = np.asarray(values, dtype=float).ravel()
        x = x[np.isfinite(x)]
        if x.shape[0] == 0:
            raise AnalysisError("cannot compute box statistics of an empty sample")
        q1, median, q3, fence_lo, fence_hi = tukey_fences(x)
        iqr = q3 - q1
        inside = x[(x >= fence_lo) & (x <= fence_hi)]
        # At least the quartiles are always inside the fences.
        whisker_lo = float(inside.min())
        whisker_hi = float(inside.max())
        span = whisker_hi - whisker_lo
        if median == 0.0:
            raise AnalysisError(
                "variation is undefined for a zero median; check the metric"
            )
        return cls(
            q1=q1,
            median=median,
            q3=q3,
            iqr=iqr,
            fence_lo=fence_lo,
            fence_hi=fence_hi,
            whisker_lo=whisker_lo,
            whisker_hi=whisker_hi,
            range=span,
            variation=span / median,
            n=int(x.shape[0]),
            n_outliers=int(x.shape[0] - inside.shape[0]),
        )

    def outlier_mask(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of observations outside this box's fences."""
        x = np.asarray(values, dtype=float)
        return (x < self.fence_lo) | (x > self.fence_hi)

    def contains(self, value: float) -> bool:
        """Whether a value falls inside the whisker fences."""
        return self.fence_lo <= value <= self.fence_hi

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (for reports and serialization)."""
        return {
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "iqr": self.iqr,
            "whisker_lo": self.whisker_lo,
            "whisker_hi": self.whisker_hi,
            "range": self.range,
            "variation": self.variation,
            "n": float(self.n),
            "n_outliers": float(self.n_outliers),
        }
