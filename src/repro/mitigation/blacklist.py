"""Blacklisting and maintenance policies (Section VII).

"Cluster operators can use our study to improve the cluster's operation and
help develop strategies for better maintenance ... Performing periodic
variability benchmarking can help automate this."

A blacklist policy turns outlier reports into a drain list, and the
evaluation quantifies the operational trade the paper implies but does not
measure: how much capacity you give up versus how much scheduler-visible
variability and slow-assignment risk you remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require
from ..core.boxstats import BoxStats
from ..core.outliers import OutlierReport, persistent_outliers
from ..core.scheduler import slow_assignment_probability
from ..errors import AnalysisError
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.sample import METRIC_PERFORMANCE

__all__ = [
    "BlacklistPolicy",
    "BlacklistOutcome",
    "build_blacklist",
    "evaluate_blacklist",
]


@dataclass(frozen=True)
class BlacklistPolicy:
    """When does a flagged GPU get drained?

    Parameters
    ----------
    min_confirmations:
        Reports (distinct applications / campaigns) that must flag a GPU
        before it is drained — guards against transients, per the paper's
        repeatability analysis (Fig. 8).
    min_slowdown:
        Additional requirement: the GPU's median must exceed the fleet
        median by this fraction (drains performance outliers, not sensor
        glitches).
    drain_whole_node:
        Whether one bad GPU drains its entire node (exclusive-node
        schedulers cannot allocate around a dead GPU).
    """

    min_confirmations: int = 2
    min_slowdown: float = 0.05
    drain_whole_node: bool = True

    def __post_init__(self) -> None:
        require(self.min_confirmations >= 1, "min_confirmations must be >= 1")
        require(self.min_slowdown >= 0, "min_slowdown must be >= 0")


@dataclass(frozen=True)
class BlacklistOutcome:
    """Before/after comparison of a blacklist application."""

    drained_gpus: tuple[str, ...]
    drained_nodes: tuple[str, ...]
    capacity_lost: float             # fraction of the fleet drained
    variation_before: float
    variation_after: float
    worst_before: float              # worst median / fleet median
    worst_after: float
    slow_assignment_before: float
    slow_assignment_after: float


def build_blacklist(
    reports: list[OutlierReport],
    dataset: MeasurementDataset,
    policy: BlacklistPolicy | None = None,
    metric: str = METRIC_PERFORMANCE,
) -> tuple[str, ...]:
    """GPU labels to drain under ``policy``.

    ``reports`` are outlier reports from (ideally several) applications on
    the same cluster; ``dataset`` supplies the medians for the slowdown
    check.
    """
    if not reports:
        raise AnalysisError("need at least one outlier report")
    policy = policy if policy is not None else BlacklistPolicy()
    confirmed = persistent_outliers(
        reports, min_occurrences=min(policy.min_confirmations, len(reports))
    )

    med = dataset.per_gpu_median(metric)
    labels = med.column("gpu_label")
    values = med.column(metric)
    fleet_median = float(np.median(values))
    by_label = dict(zip(labels, values))

    drained = [
        gpu
        for gpu in confirmed
        if gpu in by_label
        and by_label[gpu] > fleet_median * (1.0 + policy.min_slowdown)
    ]
    return tuple(sorted(drained))


def evaluate_blacklist(
    dataset: MeasurementDataset,
    drained_gpus: tuple[str, ...],
    policy: BlacklistPolicy | None = None,
    metric: str = METRIC_PERFORMANCE,
    job_width: int = 1,
) -> BlacklistOutcome:
    """Quantify what draining ``drained_gpus`` buys and costs.

    ``job_width`` sets the slow-assignment probe (1 for single-GPU jobs,
    the node width for bulk-synchronous jobs).
    """
    policy = policy if policy is not None else BlacklistPolicy()
    labels = dataset.column("gpu_label")
    if policy.drain_whole_node:
        if "node_label" not in dataset:
            raise AnalysisError("drain_whole_node needs a node_label column")
        nodes = dataset.column("node_label")
        bad_nodes = {
            node
            for gpu, node in zip(labels, nodes)
            if gpu in set(drained_gpus)
        }
        keep = ~np.isin(nodes, sorted(bad_nodes))
        drained_nodes = tuple(sorted(bad_nodes))
    else:
        keep = ~np.isin(labels, drained_gpus)
        drained_nodes = ()

    before_med = dataset.per_gpu_median(metric)
    n_before = before_med.n_rows
    after = dataset.filter(keep)
    if after.n_rows == 0:
        raise AnalysisError("the blacklist drained the whole fleet")
    after_med = after.per_gpu_median(metric)

    def stats(med_ds):
        values = med_ds.column(metric)
        box = BoxStats.from_values(values)
        return box.variation, float(values.max() / np.median(values))

    var_before, worst_before = stats(before_med)
    var_after, worst_after = stats(after_med)

    return BlacklistOutcome(
        drained_gpus=tuple(sorted(drained_gpus)),
        drained_nodes=drained_nodes,
        capacity_lost=1.0 - after_med.n_rows / n_before,
        variation_before=var_before,
        variation_after=var_after,
        worst_before=worst_before,
        worst_after=worst_after,
        slow_assignment_before=slow_assignment_probability(
            dataset, n_gpus=job_width, metric=metric
        ),
        slow_assignment_after=slow_assignment_probability(
            after, n_gpus=job_width, metric=metric
        ),
    )
