"""Variability-aware load balancing for bulk-synchronous jobs (Section VII).

The paper shows that 4-GPU training runs "as fast as the slowest GPU"
(Section V-A): a node with one sick member loses the whole difference every
iteration.  CPU-land solved this with dynamic load balancing [32, 33]; here
is the GPU-data-parallel version: shard each iteration's batch
proportionally to the members' measured speeds, so everyone finishes
together.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require
from ..errors import AnalysisError

__all__ = [
    "ShardingPlan",
    "weighted_shards",
    "bulk_synchronous_time_ms",
    "evaluate_sharding",
]


@dataclass(frozen=True)
class ShardingPlan:
    """Batch split across the members of one job."""

    shards: np.ndarray               # items per GPU, sums to the batch
    speeds: np.ndarray               # measured items/ms per GPU

    @property
    def batch_size(self) -> int:
        """Total items per iteration."""
        return int(self.shards.sum())

    @property
    def n_gpus(self) -> int:
        """Job width."""
        return int(self.shards.shape[0])


def weighted_shards(
    speeds: np.ndarray,
    batch_size: int,
    min_per_gpu: int = 1,
) -> ShardingPlan:
    """Split a batch proportionally to measured per-GPU speeds.

    Uses largest-remainder rounding so the shards are integers that sum
    exactly to ``batch_size``; every GPU keeps at least ``min_per_gpu``
    (a zero shard would idle a device the job still synchronizes with).
    """
    speeds = np.asarray(speeds, dtype=float)
    if speeds.ndim != 1 or speeds.shape[0] == 0:
        raise AnalysisError("speeds must be a non-empty 1-D array")
    if np.any(speeds <= 0):
        raise AnalysisError("speeds must be positive")
    require(batch_size >= speeds.shape[0] * min_per_gpu,
            "batch too small for the job width")

    ideal = speeds / speeds.sum() * batch_size
    floors = np.maximum(np.floor(ideal).astype(int), min_per_gpu)
    # Largest-remainder distribution of the leftover items.
    remaining = batch_size - int(floors.sum())
    if remaining > 0:
        order = np.argsort(ideal - np.floor(ideal))[::-1]
        floors[order[:remaining]] += 1
    elif remaining < 0:
        # min_per_gpu floors overshot: take back from the largest shards.
        order = np.argsort(floors)[::-1]
        for i in order:
            if remaining == 0:
                break
            take = min(floors[i] - min_per_gpu, -remaining)
            floors[i] -= take
            remaining += take
        if remaining != 0:
            raise AnalysisError("cannot satisfy min_per_gpu with this batch")
    return ShardingPlan(shards=floors, speeds=speeds)


def bulk_synchronous_time_ms(plan: ShardingPlan) -> float:
    """Iteration time of a sharded bulk-synchronous step: max over members."""
    return float((plan.shards / plan.speeds).max())


def evaluate_sharding(
    speeds: np.ndarray,
    batch_size: int,
) -> dict[str, float]:
    """Uniform vs weighted sharding on one job's members.

    Returns iteration times for both strategies, the speedup, and the
    efficiency (achieved throughput over the sum of member throughputs —
    1.0 means no synchronization waste at all).
    """
    speeds = np.asarray(speeds, dtype=float)
    n = speeds.shape[0]
    if batch_size % n:
        raise AnalysisError(
            f"uniform baseline needs batch {batch_size} divisible by {n}"
        )
    uniform = ShardingPlan(
        shards=np.full(n, batch_size // n, dtype=int), speeds=speeds
    )
    weighted = weighted_shards(speeds, batch_size)

    t_uniform = bulk_synchronous_time_ms(uniform)
    t_weighted = bulk_synchronous_time_ms(weighted)
    ideal = batch_size / speeds.sum()
    return {
        "uniform_ms": t_uniform,
        "weighted_ms": t_weighted,
        "speedup": t_uniform / t_weighted,
        "uniform_efficiency": ideal / t_uniform,
        "weighted_efficiency": ideal / t_weighted,
    }
