"""Mitigation strategies the paper proposes (Section VII), implemented.

The paper closes by sketching what operators and system designers should
build on top of variability characterization.  This subpackage implements
those sketches so they can be evaluated quantitatively:

* :mod:`repro.mitigation.blacklist` — "Blacklisting, Maintenance":
  flag-and-drain policies with their capacity/variability trade-off.
* :mod:`repro.mitigation.load_balance` — "dynamic load balancing": weighted
  sharding for bulk-synchronous jobs so stragglers stop gating iterations.
* :mod:`repro.mitigation.global_power` — "New Hardware and System Design":
  a global power manager that re-allocates a facility budget across GPUs to
  equalize their settled frequencies instead of capping each at its TDP.
"""

from .blacklist import (
    BlacklistPolicy,
    BlacklistOutcome,
    build_blacklist,
    evaluate_blacklist,
)
from .load_balance import (
    ShardingPlan,
    bulk_synchronous_time_ms,
    evaluate_sharding,
    weighted_shards,
)
from .global_power import (
    PowerAllocation,
    allocate_equal_frequency,
    allocate_uniform,
    evaluate_allocation,
)

__all__ = [
    "BlacklistPolicy",
    "BlacklistOutcome",
    "build_blacklist",
    "evaluate_blacklist",
    "ShardingPlan",
    "weighted_shards",
    "bulk_synchronous_time_ms",
    "evaluate_sharding",
    "PowerAllocation",
    "allocate_equal_frequency",
    "allocate_uniform",
    "evaluate_allocation",
]
