"""Global power management across a GPU fleet (Section VII).

"Using this information, we can develop techniques for global power
management that can enable optimal PM decisions across accelerators and
further reduce performance variability."

Today every GPU manages itself against its own TDP, so a facility budget of
``n x TDP`` buys a 8-9% frequency spread.  A *global* manager can instead
pick one fleet-wide frequency target and give each die exactly the power
*it* needs to hold that clock — fast silicon donates headroom to slow
silicon.  Because the settled power is convex in frequency, equalizing
frequencies at a fixed total budget is the variance-minimizing allocation
for compute-bound work.

The implementation reuses the DVFS fixed-point grid: ``P[i, k]`` is die
``i``'s settled power at ladder level ``k``, so the equal-frequency
allocation under budget ``B`` is simply the largest ``k`` with
``sum_i P[i, k] <= B`` (and every die within its board limit), with caps
``P[:, k]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require
from ..errors import AnalysisError
from ..gpu.device import GPUFleet
from ..workloads.base import Workload

__all__ = [
    "PowerAllocation",
    "allocate_uniform",
    "allocate_equal_frequency",
    "evaluate_allocation",
]

#: Watts of slack added to each GPU's cap above its predicted need, so
#: sensor noise does not immediately re-throttle the allocation.
_CAP_MARGIN_W = 1.5


@dataclass(frozen=True)
class PowerAllocation:
    """A per-GPU power-cap assignment under a facility budget."""

    strategy: str
    caps_w: np.ndarray
    total_budget_w: float
    #: Fleet frequency target (MHz) for equal-frequency allocations;
    #: ``None`` for strategies without one.
    target_frequency_mhz: float | None = None

    @property
    def n(self) -> int:
        """Fleet size."""
        return int(self.caps_w.shape[0])

    @property
    def allocated_w(self) -> float:
        """Sum of the granted caps."""
        return float(self.caps_w.sum())


def allocate_uniform(fleet: GPUFleet, total_budget_w: float) -> PowerAllocation:
    """Today's de-facto policy: everyone gets the same cap.

    The cap is the smaller of the fair share and the SKU TDP (a budget
    above ``n x TDP`` cannot be spent).
    """
    require(total_budget_w > 0, "total_budget_w must be positive")
    share = min(total_budget_w / fleet.n, fleet.spec.tdp_w)
    return PowerAllocation(
        strategy="uniform",
        caps_w=np.full(fleet.n, share),
        total_budget_w=total_budget_w,
    )


def allocate_equal_frequency(
    fleet: GPUFleet,
    workload: Workload,
    total_budget_w: float,
) -> PowerAllocation:
    """Give each die the power it needs to hold one fleet-wide clock.

    Finds the highest ladder level whose fleet-total settled power fits the
    budget (with every die also inside its own board limit), then caps each
    die just above its individual need at that level.
    """
    require(total_budget_w > 0, "total_budget_w must be positive")
    spec = fleet.spec
    act, dram = workload.steady_load(
        spec.f_max_mhz, spec.compute_throughput, spec.mem_bandwidth_gbs
    )
    p_grid, _ = fleet.controller.power_grid(
        act, dram, fleet.throughput_efficiency()
    )
    board_limit = fleet.power_cap_w()  # TDP x any power-delivery defect
    steps = spec.pstate_array()

    # A die's own ceiling: the highest level it can hold within its board
    # limit and any SICK_SLOW boost cap.  Defective dies do not gate the
    # healthy fleet — they simply saturate at their own ceiling while the
    # global target keeps rising (they are just as slow under per-GPU TDP
    # management, so the comparison stays fair).
    per_die_ok = (
        (p_grid <= board_limit[:, None])
        & (steps[None, :] <= fleet.frequency_cap_mhz()[:, None])
    )
    if not per_die_ok[:, 0].all():
        raise AnalysisError(
            "some die cannot hold even the lowest ladder level"
        )
    k = p_grid.shape[1]
    max_level = k - 1 - np.argmax(per_die_ok[:, ::-1], axis=1)

    rows = np.arange(fleet.n)
    level = None
    for candidate in range(k):
        effective = np.minimum(candidate, max_level)
        total = p_grid[rows, effective].sum()
        if total <= total_budget_w:
            level = candidate
        else:
            break
    if level is None:
        raise AnalysisError(
            f"budget {total_budget_w:.0f} W cannot hold the fleet at even "
            "the lowest ladder level"
        )
    effective = np.minimum(level, max_level)
    caps = np.minimum(p_grid[rows, effective] + _CAP_MARGIN_W, board_limit)
    return PowerAllocation(
        strategy="equal-frequency",
        caps_w=caps,
        total_budget_w=total_budget_w,
        target_frequency_mhz=float(steps[level]),
    )


def evaluate_allocation(
    fleet: GPUFleet,
    workload: Workload,
    allocation: PowerAllocation,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """Settled-fleet metrics under an allocation (compute-bound probe).

    Returns the unit-time variation (whisker range / median), the median
    and worst unit times, the realized total power, and the frequency
    spread — the quantities a global power manager is judged on.
    """
    from ..core.boxstats import BoxStats  # local import: core sits above

    spec = fleet.spec
    act, dram = workload.steady_load(
        spec.f_max_mhz, spec.compute_throughput, spec.mem_bandwidth_gbs
    )
    eff = fleet.throughput_efficiency()
    op = fleet.controller.solve_steady(
        act, dram, eff,
        power_cap_w=np.minimum(allocation.caps_w, fleet.power_cap_w()),
        f_cap_mhz=fleet.frequency_cap_mhz(),
        rng=rng,
    )
    unit_ms = workload.unit_time_ms(
        op.f_effective_mhz, spec.compute_throughput,
        fleet.memory_bandwidth_gbs(), eff,
    )
    stats = BoxStats.from_values(unit_ms)
    return {
        "variation": stats.variation,
        "median_ms": stats.median,
        "worst_ms": float(unit_ms.max()),
        "total_power_w": float(op.power_w.sum()),
        "frequency_spread_mhz": float(np.ptp(op.f_effective_mhz)),
        "median_frequency_mhz": float(np.median(op.f_effective_mhz)),
    }
