"""Scheduling metrics, the schema-validated report, and the event log.

The metrics are the user-facing half of Section VII: what queue waits,
completion times, and slow-assignment odds a policy actually delivers on a
variable fleet.  Reports serialize with sorted keys and canonically rounded
floats so the same run always produces the same bytes — the CI diffs them
directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..obs.manifest import validate_manifest
from .engine import JobRecord, ScheduleOutcome, event_log_lines

__all__ = [
    "SCHEDULING_REPORT_SCHEMA",
    "SchedulingReport",
    "build_scheduling_report",
    "validate_scheduling_report",
    "write_event_log",
]

#: Schema version stamped into every report.
SCHEMA_VERSION = 1

_METRIC_KEYS = (
    "n_jobs",
    "makespan_s",
    "utilization",
    "jct_p50_s",
    "jct_p95_s",
    "wait_p50_s",
    "wait_p95_s",
    "runtime_total_s",
    "energy_total_j",
    "slow_assignment_rate",
    "straggler_slowdown_p50",
    "straggler_slowdown_p95",
    "backfill_starts",
)

#: Structure of a serialized scheduling report (validated by
#: :func:`validate_scheduling_report` via the dependency-free validator in
#: :mod:`repro.obs.manifest`).
SCHEDULING_REPORT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "schema_version", "cluster", "policy", "trace_seed",
        "metrics", "jobs",
    ],
    "properties": {
        "schema_version": {"type": "integer"},
        "cluster": {"type": "string"},
        "policy": {
            "type": "object",
            "required": ["name", "backfill"],
            "properties": {
                "name": {"type": "string"},
                "backfill": {"type": "boolean"},
            },
        },
        "trace_seed": {"type": ["integer", "null"]},
        "metrics": {
            "type": "object",
            "required": list(_METRIC_KEYS),
            "properties": {
                **{key: {"type": "number"} for key in _METRIC_KEYS},
                "n_jobs": {"type": "integer"},
                "backfill_starts": {"type": "integer"},
            },
        },
        "jobs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "job_id", "workload", "n_gpus", "submit_s", "start_s",
                    "finish_s", "wait_s", "jct_s", "nodes", "gpus",
                    "energy_j", "gang_imbalance", "slow_assigned",
                ],
                "properties": {
                    "job_id": {"type": "integer"},
                    "workload": {"type": "string"},
                    "n_gpus": {"type": "integer"},
                    "submit_s": {"type": "number"},
                    "start_s": {"type": "number"},
                    "finish_s": {"type": "number"},
                    "wait_s": {"type": "number"},
                    "jct_s": {"type": "number"},
                    "nodes": {"type": "array", "items": {"type": "integer"}},
                    "gpus": {"type": "array", "items": {"type": "integer"}},
                    "energy_j": {"type": "number"},
                    "gang_imbalance": {"type": "number"},
                    "slow_assigned": {"type": "boolean"},
                },
            },
        },
    },
}


def _round(value: float) -> float:
    """Canonical float rounding for byte-stable reports."""
    return round(float(value), 6)


def _job_entry(record: JobRecord) -> dict[str, Any]:
    return {
        "job_id": record.job_id,
        "workload": record.workload_name,
        "n_gpus": record.n_gpus,
        "submit_s": _round(record.submit_time_s),
        "start_s": _round(record.start_time_s),
        "finish_s": _round(record.finish_time_s),
        "wait_s": _round(record.wait_time_s),
        "jct_s": _round(record.jct_s),
        "nodes": list(record.node_indices),
        "gpus": list(record.gpu_indices),
        "energy_j": _round(record.energy_j),
        "gang_imbalance": _round(record.gang_imbalance),
        "slow_assigned": record.slow_assigned,
    }


@dataclass(frozen=True)
class SchedulingReport:
    """Metrics and per-job outcomes of one scheduling run.

    ``metrics`` carries the summary statistics (:data:`_METRIC_KEYS`);
    ``jobs`` the per-job entries in job-id order.  ``to_dict`` output
    validates against :data:`SCHEDULING_REPORT_SCHEMA`.
    """

    cluster: str
    policy: dict[str, Any]
    trace_seed: int | None
    metrics: dict[str, float | int]
    jobs: tuple[dict[str, Any], ...]

    def to_dict(self) -> dict[str, Any]:
        """Schema-shaped plain-dict form (JSON-ready)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "cluster": self.cluster,
            "policy": dict(self.policy),
            "trace_seed": self.trace_seed,
            "metrics": dict(self.metrics),
            "jobs": [dict(job) for job in self.jobs],
        }

    def to_json(self) -> str:
        """Canonical JSON serialization (sorted keys, no spaces)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def write_json(self, path: str | Path) -> None:
        """Write the canonical JSON document to ``path``."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        m = self.metrics
        lines = [
            f"scheduling report: {self.cluster}  "
            f"policy={self.policy.get('name')}",
            f"  jobs={m['n_jobs']}  makespan={m['makespan_s']:.0f}s  "
            f"utilization={m['utilization']:.3f}",
            f"  JCT p50={m['jct_p50_s']:.1f}s p95={m['jct_p95_s']:.1f}s  "
            f"wait p50={m['wait_p50_s']:.1f}s p95={m['wait_p95_s']:.1f}s",
            f"  slow-assignment rate={m['slow_assignment_rate']:.3f}  "
            f"straggler slowdown p95={m['straggler_slowdown_p95']:.4f}",
            f"  energy={m['energy_total_j'] / 1e6:.2f} MJ  "
            f"backfill starts={m['backfill_starts']}",
        ]
        return "\n".join(lines)


def build_scheduling_report(
    cluster_name: str,
    outcome: ScheduleOutcome,
    policy_describe: dict[str, Any],
    n_fleet_gpus: int,
    trace_seed: int | None = None,
) -> SchedulingReport:
    """Assemble the schema-validated report from a finished run."""
    records = outcome.records
    jct = np.asarray([r.jct_s for r in records])
    wait = np.asarray([r.wait_time_s for r in records])
    imbalance = np.asarray([r.gang_imbalance for r in records])
    makespan = outcome.makespan_s
    busy_gpu_s = float(sum(r.n_gpus * r.runtime_s for r in records))
    backfills = sum(
        1
        for event in outcome.events
        if event.get("event") == "start" and event.get("backfilled")
    )
    metrics: dict[str, float | int] = {
        "n_jobs": len(records),
        "makespan_s": _round(makespan),
        "utilization": _round(
            busy_gpu_s / (n_fleet_gpus * makespan) if makespan > 0 else 0.0
        ),
        "jct_p50_s": _round(np.percentile(jct, 50)),
        "jct_p95_s": _round(np.percentile(jct, 95)),
        "wait_p50_s": _round(np.percentile(wait, 50)),
        "wait_p95_s": _round(np.percentile(wait, 95)),
        "runtime_total_s": _round(sum(r.runtime_s for r in records)),
        "energy_total_j": _round(sum(r.energy_j for r in records)),
        "slow_assignment_rate": _round(
            sum(1 for r in records if r.slow_assigned) / len(records)
        ),
        "straggler_slowdown_p50": _round(np.percentile(imbalance, 50)),
        "straggler_slowdown_p95": _round(np.percentile(imbalance, 95)),
        "backfill_starts": backfills,
    }
    report = SchedulingReport(
        cluster=cluster_name,
        policy=dict(policy_describe),
        trace_seed=trace_seed,
        metrics=metrics,
        jobs=tuple(_job_entry(r) for r in records),
    )
    validate_scheduling_report(report.to_dict())
    return report


def validate_scheduling_report(doc: dict[str, Any]) -> None:
    """Validate a report document against the schema (raises on violation)."""
    validate_manifest(doc, SCHEDULING_REPORT_SCHEMA)


def write_event_log(outcome: ScheduleOutcome, path: str | Path) -> None:
    """Write the run's canonical JSON Lines event log to ``path``."""
    Path(path).write_text(
        "\n".join(event_log_lines(outcome.events)) + "\n", encoding="utf-8"
    )
