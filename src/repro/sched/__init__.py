"""Batch-queue scheduling simulator over the variable fleet.

The paper's Section VII argues that naive batch scheduling on a variable
fleet hands users slow GPUs often enough to matter (18% of single-GPU
jobs; 40-50% of 4-GPU jobs on Longhorn) and that variability-aware
placement recovers most of the loss.  This package closes that loop end to
end on the simulated machine:

* :mod:`repro.sched.trace` — seeded Poisson job traces over the five
  paper applications, gangs of 1/2/4/8 GPUs;
* :mod:`repro.sched.policies` — pluggable placement policies, from the
  naive random baseline to variability- and health-aware ranking;
* :mod:`repro.sched.engine` — the serial discrete-event queue engine
  (submit → queue → place → run → complete) with bulk-synchronous gang
  pricing from :mod:`repro.sim.job`, in two byte-identical flavors: the
  reference scan loop and the indexed near-linear path;
* :mod:`repro.sched.index` — the incremental structures behind the
  indexed path (order-keyed segment trees, per-gang-size blocked
  queues);
* :mod:`repro.sched.report` — schema-validated metrics reports and
  byte-stable JSON Lines event logs.

Same seed + same policy ⇒ byte-identical event log and report, regardless
of worker counts anywhere in the stack.  Reach it through
:func:`repro.api.schedule` or ``repro sched``.
"""

from .engine import (
    ENGINE_MODES,
    FAST_PERCENTILE,
    SLOW_THRESHOLD,
    JobRecord,
    ScheduleOutcome,
    event_log_lines,
    run_schedule,
)
from .index import OrderedFreeIndex, SizeBucketQueue
from .policies import (
    POLICY_NAMES,
    SENSITIVITY_THRESHOLD,
    BackfillPolicy,
    EnergyCappedPolicy,
    FifoPolicy,
    HealthAwarePolicy,
    PlacementPolicy,
    PowerBudgetAdmission,
    RandomRankingSpec,
    StaticRankingSpec,
    VariabilityAwarePolicy,
    node_grades_from_gpu_grades,
    node_power_watts,
)
from .report import (
    SCHEDULING_REPORT_SCHEMA,
    SchedulingReport,
    build_scheduling_report,
    validate_scheduling_report,
    write_event_log,
)
from .trace import Job, TraceConfig, arrival_rate_multiplier, generate_trace

__all__ = [
    "Job",
    "TraceConfig",
    "generate_trace",
    "arrival_rate_multiplier",
    "PlacementPolicy",
    "FifoPolicy",
    "BackfillPolicy",
    "VariabilityAwarePolicy",
    "HealthAwarePolicy",
    "EnergyCappedPolicy",
    "PowerBudgetAdmission",
    "StaticRankingSpec",
    "RandomRankingSpec",
    "node_grades_from_gpu_grades",
    "node_power_watts",
    "POLICY_NAMES",
    "SENSITIVITY_THRESHOLD",
    "JobRecord",
    "ScheduleOutcome",
    "run_schedule",
    "event_log_lines",
    "ENGINE_MODES",
    "SLOW_THRESHOLD",
    "FAST_PERCENTILE",
    "OrderedFreeIndex",
    "SizeBucketQueue",
    "SchedulingReport",
    "SCHEDULING_REPORT_SCHEMA",
    "build_scheduling_report",
    "validate_scheduling_report",
    "write_event_log",
]
