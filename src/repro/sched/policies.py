"""Pluggable placement policies: from the paper's naive baseline up.

A policy answers one question: *given the queue and the current free
state, in what order should nodes be offered to this job?*  The engine
(:mod:`repro.sched.engine`) walks the returned preference order and takes
free GPUs until the gang is satisfied, so a policy never has to reason
about free lists — only about ranking.

Five built-ins:

* :class:`FifoPolicy` — the naive batch scheduler of Section VII: strict
  submission order, uniformly random node choice.  This is the scheduler
  that hands users a slow GPU 18% of the time (40-50% for 4-GPU jobs).
* :class:`BackfillPolicy` — the same random placement, but jobs behind a
  blocked queue head may start when they fit (EASY-style backfill).
* :class:`VariabilityAwarePolicy` — the mitigation the paper calls for:
  steer variability-*sensitive* (compute-bound) jobs onto low-variation
  nodes and let memory-bound jobs absorb the high-variation ones, using
  :func:`~repro.core.scheduler.node_variability_scores` from a
  characterization campaign and
  :func:`~repro.core.classify.classify_workload` for the sensitivity.
* :class:`HealthAwarePolicy` — consult online fleet-health grades
  (:mod:`repro.obs.health`) and keep jobs off nodes carrying degraded or
  critical GPUs whenever capacity allows.
* :class:`EnergyCappedPolicy` — the paper's §VII power-limit sweep turned
  into a capacity knob: pack jobs onto the lowest-power nodes first and
  admit work only while the fleet's reserved wattage stays under a
  budget (:class:`PowerBudgetAdmission`).

Every ranking is deterministic given the policy's seeded stream and
inputs; ties break by ascending node index.

Indexed rankings
----------------

The indexed engine (``run_schedule(engine="indexed")``) never walks a
full preference order per attempt; instead it asks a policy to
*describe* its ranking via :meth:`PlacementPolicy.indexed_ranking`:

* :class:`StaticRankingSpec` — the order is fixed for the whole trace
  (possibly one order per job class).  The engine builds one
  order-keyed index per distinct order and resolves placements in
  O(log n); such policies consume no randomness, so futile placement
  attempts can be skipped entirely.
* :class:`RandomRankingSpec` — the order is drawn from the policy
  stream per attempt (fifo's permutation, health-aware's shuffle).  The
  engine still draws at every point the reference engine would — the
  stream must stay byte-compatible — but resolves each drawn ranking
  with one vectorized scan instead of a Python loop.
* ``None`` — the policy's ranking is opaque (a user subclass overrode
  :meth:`~PlacementPolicy.rank_nodes`); the engine falls back to the
  reference dispatch path, which calls ``rank_nodes`` exactly as PR 5
  shipped it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..config import require
from ..core.classify import classify_workload, expected_performance_sensitivity
from ..errors import ConfigError
from ..obs.health import GRADES
from ..workloads.base import Workload

__all__ = [
    "PlacementPolicy",
    "FifoPolicy",
    "BackfillPolicy",
    "VariabilityAwarePolicy",
    "HealthAwarePolicy",
    "EnergyCappedPolicy",
    "PowerBudgetAdmission",
    "StaticRankingSpec",
    "RandomRankingSpec",
    "node_grades_from_gpu_grades",
    "node_power_watts",
    "POLICY_NAMES",
    "SENSITIVITY_THRESHOLD",
]

#: Sensitivity at or above which a job is steered to low-variation nodes.
SENSITIVITY_THRESHOLD = 0.5


@dataclass(frozen=True)
class StaticRankingSpec:
    """A trace-constant ranking: one fixed order per job class.

    ``orders`` holds the distinct preference orders (each a permutation
    of node indices); ``order_index_of(workload, n_gpus)`` says which one
    a job uses.  Static rankings consume no policy randomness.
    """

    orders: tuple[np.ndarray, ...]
    order_index_of: Callable[[Workload, int], int]


@dataclass(frozen=True)
class RandomRankingSpec:
    """A per-attempt ranking drawn from the policy stream.

    ``draw(rng)`` must consume exactly the randomness the policy's
    :meth:`~PlacementPolicy.rank_nodes` would — the indexed engine calls
    it at every legacy attempt point to keep the stream byte-compatible.
    """

    draw: Callable[[np.random.Generator], np.ndarray]


class PowerBudgetAdmission:
    """Fleet power budget enforced by worst-case per-GPU reservation.

    Every placed gang reserves ``n_gpus * gpu_reserve_w`` watts (the
    node's power cap — the §VII knob) until it finishes; a job is
    admitted only while the reservation fits under ``budget_w``.
    Reservations are a pure function of the placement/finish sequence,
    so both engine paths agree byte-for-byte no matter when job pricing
    happens.
    """

    def __init__(self, budget_w: float, gpu_reserve_w: float) -> None:
        budget_w = float(budget_w)
        gpu_reserve_w = float(gpu_reserve_w)
        require(np.isfinite(budget_w) and budget_w > 0,
                "power budget must be positive and finite")
        require(np.isfinite(gpu_reserve_w) and gpu_reserve_w > 0,
                "per-GPU power reservation must be positive and finite")
        self.budget_w = budget_w
        self.gpu_reserve_w = gpu_reserve_w
        self.committed_w = 0.0
        self._reserved: dict[int, float] = {}

    def reset(self) -> None:
        """Drop all reservations (the engine calls this per schedule)."""
        self.committed_w = 0.0
        self._reserved.clear()

    def can_admit(self, n_gpus: int) -> bool:
        """Whether a gang of ``n_gpus`` fits under the budget right now."""
        return (
            self.committed_w + n_gpus * self.gpu_reserve_w
            <= self.budget_w
        )

    def max_admissible_gpus(self) -> int:
        """Widest gang the remaining budget admits (floor at 0)."""
        head = self.budget_w - self.committed_w
        if head <= 0:
            return 0
        return int(head / self.gpu_reserve_w)

    def commit(self, job_id: int, n_gpus: int) -> None:
        """Reserve a placed gang's wattage until :meth:`release`."""
        watts = n_gpus * self.gpu_reserve_w
        self._reserved[job_id] = watts
        self.committed_w += watts

    def release(self, job_id: int) -> None:
        """Return a finished gang's reservation to the budget."""
        self.committed_w -= self._reserved.pop(job_id)

    def describe(self) -> dict[str, float]:
        """Report-facing summary of the budget configuration."""
        return {
            "power_budget_w": self.budget_w,
            "gpu_reserve_w": self.gpu_reserve_w,
        }


class PlacementPolicy(ABC):
    """Ranking interface the queue engine consumes.

    Attributes
    ----------
    name:
        Stable identifier (lands in reports and event logs).
    backfill:
        Whether jobs behind a blocked queue head may be placed when they
        fit (the queue *discipline* half of a scheduling policy).
    """

    name: str = "abstract"
    backfill: bool = False
    #: Optional admission gate consulted before any placement attempt
    #: (``None`` disables gating — placements depend on capacity alone).
    admission: PowerBudgetAdmission | None = None

    @abstractmethod
    def rank_nodes(
        self,
        workload: Workload,
        n_gpus: int,
        free_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Node indices in descending preference for this job.

        Parameters
        ----------
        workload:
            The job's application profile.
        n_gpus:
            The job's gang width.
        free_counts:
            Free GPUs per node (ascending node index).
        rng:
            The scheduler's seeded policy stream — the only randomness a
            policy may use.
        """

    def indexed_ranking(
        self, n_nodes: int
    ) -> StaticRankingSpec | RandomRankingSpec | None:
        """Describe this ranking for the indexed engine, if possible.

        Returns ``None`` when the ranking is opaque — including when a
        subclass overrides :meth:`rank_nodes` — which routes the policy
        through the reference dispatch path.
        """
        return None

    def describe(self) -> dict[str, object]:
        """Report-facing summary of the policy configuration."""
        return {"name": self.name, "backfill": self.backfill}


class FifoPolicy(PlacementPolicy):
    """Strict FIFO with uniformly random node choice (the naive baseline)."""

    name = "fifo"
    backfill = False

    def rank_nodes(self, workload, n_gpus, free_counts, rng):
        """Uniformly random permutation of every node."""
        return rng.permutation(free_counts.shape[0])

    def indexed_ranking(self, n_nodes):
        """One uniform permutation per attempt (the exact legacy draw)."""
        if type(self).rank_nodes is not FifoPolicy.rank_nodes:
            return None
        return RandomRankingSpec(draw=lambda rng: rng.permutation(n_nodes))


class BackfillPolicy(FifoPolicy):
    """Random placement plus EASY-style backfill behind a blocked head."""

    name = "backfill"
    backfill = True


class VariabilityAwarePolicy(PlacementPolicy):
    """Section VII's mitigation: match job sensitivity to node variation.

    Parameters
    ----------
    node_scores:
        Per-node variability score, ascending node index — the output of
        :func:`~repro.core.scheduler.node_variability_scores` mapped onto
        the topology (1.0 = the node's worst GPU matches the fleet
        median; larger = a gang on this node pays the difference).
    backfill:
        Optional queue discipline; off by default so comparisons against
        :class:`FifoPolicy` isolate the placement effect.
    """

    name = "variability-aware"

    def __init__(self, node_scores: np.ndarray, backfill: bool = False) -> None:
        scores = np.asarray(node_scores, dtype=float)
        if scores.ndim != 1 or scores.shape[0] < 1:
            raise ConfigError("node_scores must be a 1-D per-node array")
        require(bool(np.all(np.isfinite(scores))),
                "node_scores must be finite")
        self.node_scores = scores
        self.backfill = bool(backfill)

    def rank_nodes(self, workload, n_gpus, free_counts, rng):
        """Low-variation nodes first for sensitive jobs, last otherwise."""
        if free_counts.shape[0] != self.node_scores.shape[0]:
            raise ConfigError(
                f"policy scored {self.node_scores.shape[0]} nodes but the "
                f"machine has {free_counts.shape[0]}"
            )
        sensitivity = expected_performance_sensitivity(
            classify_workload(workload)
        )
        key = (
            self.node_scores
            if sensitivity >= SENSITIVITY_THRESHOLD
            else -self.node_scores
        )
        return np.argsort(key, kind="stable")

    def indexed_ranking(self, n_nodes):
        """Two trace-constant orders, selected by workload sensitivity."""
        if type(self).rank_nodes is not VariabilityAwarePolicy.rank_nodes:
            return None
        if n_nodes != self.node_scores.shape[0]:
            raise ConfigError(
                f"policy scored {self.node_scores.shape[0]} nodes but the "
                f"machine has {n_nodes}"
            )
        orders = (
            np.argsort(self.node_scores, kind="stable"),
            np.argsort(-self.node_scores, kind="stable"),
        )

        def order_index_of(workload, n_gpus):
            sensitivity = expected_performance_sensitivity(
                classify_workload(workload)
            )
            return 0 if sensitivity >= SENSITIVITY_THRESHOLD else 1

        return StaticRankingSpec(orders=orders, order_index_of=order_index_of)

    def describe(self):
        """Report-facing summary of the policy configuration."""
        return {
            "name": self.name,
            "backfill": self.backfill,
            "score_min": float(self.node_scores.min()),
            "score_max": float(self.node_scores.max()),
        }


class HealthAwarePolicy(PlacementPolicy):
    """Avoid nodes whose members grade degraded or critical.

    Parameters
    ----------
    node_grades:
        Worst member grade per node (ascending node index), drawn from
        :data:`~repro.obs.health.GRADES`.  Build it from a
        :class:`~repro.obs.health.HealthTracker` via
        :func:`node_grades_from_gpu_grades`.
    backfill:
        Optional queue discipline (off by default, as above).

    Unhealthy nodes are ranked strictly last rather than excluded, so a
    mostly-sick fleet degrades to the naive baseline instead of starving
    the queue.
    """

    name = "health-aware"

    def __init__(self, node_grades: tuple[str, ...] | list[str],
                 backfill: bool = False) -> None:
        unknown = sorted(set(node_grades) - set(GRADES))
        if unknown:
            raise ConfigError(f"unknown health grades: {unknown}")
        if len(node_grades) < 1:
            raise ConfigError("node_grades must cover at least one node")
        self.node_grades = tuple(node_grades)
        self._rank = np.asarray(
            [GRADES.index(g) for g in node_grades], dtype=np.int64
        )
        self.backfill = bool(backfill)

    def rank_nodes(self, workload, n_gpus, free_counts, rng):
        """Healthy nodes first (shuffled within a grade), sick ones last."""
        if free_counts.shape[0] != self._rank.shape[0]:
            raise ConfigError(
                f"policy graded {self._rank.shape[0]} nodes but the "
                f"machine has {free_counts.shape[0]}"
            )
        shuffle = rng.permutation(self._rank.shape[0])
        return shuffle[np.argsort(self._rank[shuffle], kind="stable")]

    def indexed_ranking(self, n_nodes):
        """Grade-ordered ranking, reshuffled within grades per attempt."""
        if type(self).rank_nodes is not HealthAwarePolicy.rank_nodes:
            return None
        if n_nodes != self._rank.shape[0]:
            raise ConfigError(
                f"policy graded {self._rank.shape[0]} nodes but the "
                f"machine has {n_nodes}"
            )
        rank = self._rank

        def draw(rng):
            shuffle = rng.permutation(n_nodes)
            return shuffle[np.argsort(rank[shuffle], kind="stable")]

        return RandomRankingSpec(draw=draw)

    def describe(self):
        """Report-facing summary of the policy configuration."""
        counts = {grade: 0 for grade in GRADES}
        for grade in self.node_grades:
            counts[grade] += 1
        return {
            "name": self.name,
            "backfill": self.backfill,
            "node_grade_counts": counts,
        }


class EnergyCappedPolicy(PlacementPolicy):
    """§VII's power-limit sweep as a scheduling capacity knob.

    Ranks nodes by estimated worst-case power draw, cheapest first, so
    load packs onto the most efficient chassis — and gates admission
    against a fleet power budget through
    :class:`PowerBudgetAdmission`: a gang starts only while the fleet's
    reserved wattage (every running GPU counted at the reservation cap)
    stays under ``power_budget_w``.

    Parameters
    ----------
    node_power_w:
        Estimated worst-case power per node (ascending node index), in
        watts — e.g. :func:`node_power_watts` over the fleet's power
        caps.
    power_budget_w:
        Fleet-wide budget in watts.
    gpu_reserve_w:
        Per-GPU reservation charged while a gang runs.  Defaults to the
        machine's worst per-GPU draw implied by ``node_power_w`` (a
        conservative cap, so the true draw never exceeds the budget).
    gpus_per_node:
        Chassis width used to derive the default ``gpu_reserve_w``.
    backfill:
        Optional queue discipline; on by default — budget-blocked heads
        would otherwise idle capacity the budget still admits.
    """

    name = "energy-capped"

    def __init__(
        self,
        node_power_w: np.ndarray,
        power_budget_w: float,
        *,
        gpu_reserve_w: float | None = None,
        gpus_per_node: int = 1,
        backfill: bool = True,
    ) -> None:
        power = np.asarray(node_power_w, dtype=float)
        if power.ndim != 1 or power.shape[0] < 1:
            raise ConfigError("node_power_w must be a 1-D per-node array")
        require(bool(np.all(np.isfinite(power)) and np.all(power > 0)),
                "node_power_w must be positive and finite")
        require(gpus_per_node >= 1, "gpus_per_node must be >= 1")
        self.node_power_w = power
        if gpu_reserve_w is None:
            gpu_reserve_w = float(power.max()) / int(gpus_per_node)
        self.admission = PowerBudgetAdmission(
            budget_w=power_budget_w, gpu_reserve_w=gpu_reserve_w
        )
        self.backfill = bool(backfill)

    def rank_nodes(self, workload, n_gpus, free_counts, rng):
        """Lowest-power nodes first; ties break by ascending index."""
        if free_counts.shape[0] != self.node_power_w.shape[0]:
            raise ConfigError(
                f"policy priced {self.node_power_w.shape[0]} nodes but the "
                f"machine has {free_counts.shape[0]}"
            )
        return np.argsort(self.node_power_w, kind="stable")

    def indexed_ranking(self, n_nodes):
        """One trace-constant cheapest-first order."""
        if type(self).rank_nodes is not EnergyCappedPolicy.rank_nodes:
            return None
        if n_nodes != self.node_power_w.shape[0]:
            raise ConfigError(
                f"policy priced {self.node_power_w.shape[0]} nodes but the "
                f"machine has {n_nodes}"
            )
        order = np.argsort(self.node_power_w, kind="stable")
        return StaticRankingSpec(
            orders=(order,), order_index_of=lambda workload, n_gpus: 0
        )

    def describe(self):
        """Report-facing summary of the policy configuration."""
        return {
            "name": self.name,
            "backfill": self.backfill,
            "node_power_min_w": float(self.node_power_w.min()),
            "node_power_max_w": float(self.node_power_w.max()),
            **self.admission.describe(),
        }


def node_power_watts(
    gpu_power_w: np.ndarray,
    node_of_gpu: np.ndarray,
    n_nodes: int,
) -> np.ndarray:
    """Sum per-GPU worst-case power into per-node totals.

    Feed it a fleet's power caps (``fleet.power_cap_w``) to price each
    chassis for :class:`EnergyCappedPolicy`.
    """
    power = np.asarray(gpu_power_w, dtype=float)
    require(bool(np.all(np.isfinite(power)) and np.all(power > 0)),
            "gpu_power_w must be positive and finite")
    out = np.zeros(int(n_nodes), dtype=float)
    np.add.at(out, np.asarray(node_of_gpu, dtype=np.int64), power)
    return out


def node_grades_from_gpu_grades(
    gpu_grades: tuple[str, ...],
    node_of_gpu: np.ndarray,
    n_nodes: int,
) -> tuple[str, ...]:
    """Worst member grade per node, for :class:`HealthAwarePolicy`."""
    worst = np.zeros(n_nodes, dtype=np.int64)
    for gpu, grade in enumerate(gpu_grades):
        node = int(node_of_gpu[gpu])
        worst[node] = max(worst[node], GRADES.index(grade))
    return tuple(GRADES[r] for r in worst)


#: The built-in policy names `repro sched --policy` accepts.
POLICY_NAMES = (
    "fifo",
    "backfill",
    "variability-aware",
    "health-aware",
    "energy-capped",
)
