"""Pluggable placement policies: from the paper's naive baseline up.

A policy answers one question: *given the queue and the current free
state, in what order should nodes be offered to this job?*  The engine
(:mod:`repro.sched.engine`) walks the returned preference order and takes
free GPUs until the gang is satisfied, so a policy never has to reason
about free lists — only about ranking.

Four built-ins:

* :class:`FifoPolicy` — the naive batch scheduler of Section VII: strict
  submission order, uniformly random node choice.  This is the scheduler
  that hands users a slow GPU 18% of the time (40-50% for 4-GPU jobs).
* :class:`BackfillPolicy` — the same random placement, but jobs behind a
  blocked queue head may start when they fit (EASY-style backfill).
* :class:`VariabilityAwarePolicy` — the mitigation the paper calls for:
  steer variability-*sensitive* (compute-bound) jobs onto low-variation
  nodes and let memory-bound jobs absorb the high-variation ones, using
  :func:`~repro.core.scheduler.node_variability_scores` from a
  characterization campaign and
  :func:`~repro.core.classify.classify_workload` for the sensitivity.
* :class:`HealthAwarePolicy` — consult online fleet-health grades
  (:mod:`repro.obs.health`) and keep jobs off nodes carrying degraded or
  critical GPUs whenever capacity allows.

Every ranking is deterministic given the policy's seeded stream and
inputs; ties break by ascending node index.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..config import require
from ..core.classify import classify_workload, expected_performance_sensitivity
from ..errors import ConfigError
from ..obs.health import GRADES
from ..workloads.base import Workload

__all__ = [
    "PlacementPolicy",
    "FifoPolicy",
    "BackfillPolicy",
    "VariabilityAwarePolicy",
    "HealthAwarePolicy",
    "node_grades_from_gpu_grades",
    "POLICY_NAMES",
    "SENSITIVITY_THRESHOLD",
]

#: Sensitivity at or above which a job is steered to low-variation nodes.
SENSITIVITY_THRESHOLD = 0.5


class PlacementPolicy(ABC):
    """Ranking interface the queue engine consumes.

    Attributes
    ----------
    name:
        Stable identifier (lands in reports and event logs).
    backfill:
        Whether jobs behind a blocked queue head may be placed when they
        fit (the queue *discipline* half of a scheduling policy).
    """

    name: str = "abstract"
    backfill: bool = False

    @abstractmethod
    def rank_nodes(
        self,
        workload: Workload,
        n_gpus: int,
        free_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Node indices in descending preference for this job.

        Parameters
        ----------
        workload:
            The job's application profile.
        n_gpus:
            The job's gang width.
        free_counts:
            Free GPUs per node (ascending node index).
        rng:
            The scheduler's seeded policy stream — the only randomness a
            policy may use.
        """

    def describe(self) -> dict[str, object]:
        """Report-facing summary of the policy configuration."""
        return {"name": self.name, "backfill": self.backfill}


class FifoPolicy(PlacementPolicy):
    """Strict FIFO with uniformly random node choice (the naive baseline)."""

    name = "fifo"
    backfill = False

    def rank_nodes(self, workload, n_gpus, free_counts, rng):
        """Uniformly random permutation of every node."""
        return rng.permutation(free_counts.shape[0])


class BackfillPolicy(FifoPolicy):
    """Random placement plus EASY-style backfill behind a blocked head."""

    name = "backfill"
    backfill = True


class VariabilityAwarePolicy(PlacementPolicy):
    """Section VII's mitigation: match job sensitivity to node variation.

    Parameters
    ----------
    node_scores:
        Per-node variability score, ascending node index — the output of
        :func:`~repro.core.scheduler.node_variability_scores` mapped onto
        the topology (1.0 = the node's worst GPU matches the fleet
        median; larger = a gang on this node pays the difference).
    backfill:
        Optional queue discipline; off by default so comparisons against
        :class:`FifoPolicy` isolate the placement effect.
    """

    name = "variability-aware"

    def __init__(self, node_scores: np.ndarray, backfill: bool = False) -> None:
        scores = np.asarray(node_scores, dtype=float)
        if scores.ndim != 1 or scores.shape[0] < 1:
            raise ConfigError("node_scores must be a 1-D per-node array")
        require(bool(np.all(np.isfinite(scores))),
                "node_scores must be finite")
        self.node_scores = scores
        self.backfill = bool(backfill)

    def rank_nodes(self, workload, n_gpus, free_counts, rng):
        """Low-variation nodes first for sensitive jobs, last otherwise."""
        if free_counts.shape[0] != self.node_scores.shape[0]:
            raise ConfigError(
                f"policy scored {self.node_scores.shape[0]} nodes but the "
                f"machine has {free_counts.shape[0]}"
            )
        sensitivity = expected_performance_sensitivity(
            classify_workload(workload)
        )
        key = (
            self.node_scores
            if sensitivity >= SENSITIVITY_THRESHOLD
            else -self.node_scores
        )
        return np.argsort(key, kind="stable")

    def describe(self):
        """Report-facing summary of the policy configuration."""
        return {
            "name": self.name,
            "backfill": self.backfill,
            "score_min": float(self.node_scores.min()),
            "score_max": float(self.node_scores.max()),
        }


class HealthAwarePolicy(PlacementPolicy):
    """Avoid nodes whose members grade degraded or critical.

    Parameters
    ----------
    node_grades:
        Worst member grade per node (ascending node index), drawn from
        :data:`~repro.obs.health.GRADES`.  Build it from a
        :class:`~repro.obs.health.HealthTracker` via
        :func:`node_grades_from_gpu_grades`.
    backfill:
        Optional queue discipline (off by default, as above).

    Unhealthy nodes are ranked strictly last rather than excluded, so a
    mostly-sick fleet degrades to the naive baseline instead of starving
    the queue.
    """

    name = "health-aware"

    def __init__(self, node_grades: tuple[str, ...] | list[str],
                 backfill: bool = False) -> None:
        unknown = sorted(set(node_grades) - set(GRADES))
        if unknown:
            raise ConfigError(f"unknown health grades: {unknown}")
        if len(node_grades) < 1:
            raise ConfigError("node_grades must cover at least one node")
        self.node_grades = tuple(node_grades)
        self._rank = np.asarray(
            [GRADES.index(g) for g in node_grades], dtype=np.int64
        )
        self.backfill = bool(backfill)

    def rank_nodes(self, workload, n_gpus, free_counts, rng):
        """Healthy nodes first (shuffled within a grade), sick ones last."""
        if free_counts.shape[0] != self._rank.shape[0]:
            raise ConfigError(
                f"policy graded {self._rank.shape[0]} nodes but the "
                f"machine has {free_counts.shape[0]}"
            )
        shuffle = rng.permutation(self._rank.shape[0])
        return shuffle[np.argsort(self._rank[shuffle], kind="stable")]

    def describe(self):
        """Report-facing summary of the policy configuration."""
        counts = {grade: 0 for grade in GRADES}
        for grade in self.node_grades:
            counts[grade] += 1
        return {
            "name": self.name,
            "backfill": self.backfill,
            "node_grade_counts": counts,
        }


def node_grades_from_gpu_grades(
    gpu_grades: tuple[str, ...],
    node_of_gpu: np.ndarray,
    n_nodes: int,
) -> tuple[str, ...]:
    """Worst member grade per node, for :class:`HealthAwarePolicy`."""
    worst = np.zeros(n_nodes, dtype=np.int64)
    for gpu, grade in enumerate(gpu_grades):
        node = int(node_of_gpu[gpu])
        worst[node] = max(worst[node], GRADES.index(grade))
    return tuple(GRADES[r] for r in worst)


#: The built-in policy names `repro sched --policy` accepts.
POLICY_NAMES = ("fifo", "backfill", "variability-aware", "health-aware")
