"""Seeded job-trace generation for the batch-queue simulator.

A trace is the workload a scheduler faces: jobs arriving by a Poisson
process, each a gang of 1/2/4/8 GPUs running one of the five paper
applications (Table II) for a drawn amount of work.  Every draw derives
from the trace seed through :class:`~repro.rng.RngFactory` labels, so a
trace is a pure function of its configuration — the property that lets
two policies be compared on *exactly* the same offered load, and lets the
CI assert byte-identical event logs across invocations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require
from ..errors import ConfigError
from ..rng import RngFactory

__all__ = ["Job", "TraceConfig", "generate_trace"]

#: The five paper applications, as scheduler-facing names.
PAPER_WORKLOAD_NAMES = ("sgemm", "resnet50", "bert", "lammps", "pagerank")


@dataclass(frozen=True)
class Job:
    """One submitted job: when, what, and how wide.

    ``work_units`` scales runtime linearly (workload units the job
    executes); ``job_id`` keys the job's private random stream, so its
    intrinsic draws are identical under every placement policy.
    """

    job_id: int
    submit_time_s: float
    workload_name: str
    n_gpus: int
    work_units: int

    def __post_init__(self) -> None:
        require(self.job_id >= 0, "job_id must be >= 0")
        require(self.submit_time_s >= 0.0, "submit_time_s must be >= 0")
        require(self.n_gpus >= 1, "n_gpus must be >= 1")
        require(self.work_units >= 1, "work_units must be >= 1")


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a generated job trace.

    Parameters
    ----------
    n_jobs:
        Jobs in the trace.
    arrival_rate_per_hour:
        Poisson arrival rate (jobs per hour of simulated time).
    gang_sizes, gang_weights:
        Job widths and their relative draw weights.  The paper's user
        impact analysis covers 1- to 4-GPU jobs; 8-GPU gangs span two
        4-GPU nodes and exercise the multi-node allocator.
    workload_names, workload_weights:
        Applications and their draw weights — a compute/memory-bound mix
        by default, which is what gives variability-aware placement
        something to trade.
    work_units_range:
        Inclusive ``(lo, hi)`` bounds of the per-job work draw.
    seed:
        Trace master seed.
    """

    n_jobs: int = 100
    arrival_rate_per_hour: float = 120.0
    gang_sizes: tuple[int, ...] = (1, 2, 4, 8)
    gang_weights: tuple[float, ...] = (0.45, 0.25, 0.20, 0.10)
    workload_names: tuple[str, ...] = PAPER_WORKLOAD_NAMES
    workload_weights: tuple[float, ...] = (0.30, 0.25, 0.15, 0.15, 0.15)
    work_units_range: tuple[int, int] = (40, 160)
    seed: int = 0

    def __post_init__(self) -> None:
        require(
            isinstance(self.n_jobs, int) and not isinstance(self.n_jobs, bool)
            and self.n_jobs >= 1,
            f"n_jobs must be an integer >= 1, got {self.n_jobs!r}",
        )
        require(self.arrival_rate_per_hour > 0,
                "arrival_rate_per_hour must be positive")
        if len(self.gang_sizes) != len(self.gang_weights):
            raise ConfigError("gang_sizes and gang_weights lengths differ")
        if len(self.workload_names) != len(self.workload_weights):
            raise ConfigError(
                "workload_names and workload_weights lengths differ"
            )
        require(all(k >= 1 for k in self.gang_sizes),
                "gang sizes must be >= 1")
        require(all(w >= 0 for w in self.gang_weights)
                and sum(self.gang_weights) > 0,
                "gang_weights must be non-negative and sum > 0")
        require(all(w >= 0 for w in self.workload_weights)
                and sum(self.workload_weights) > 0,
                "workload_weights must be non-negative and sum > 0")
        lo, hi = self.work_units_range
        require(1 <= lo <= hi, "work_units_range must satisfy 1 <= lo <= hi")


def generate_trace(config: TraceConfig | None = None) -> tuple[Job, ...]:
    """Generate the deterministic job trace described by ``config``.

    Arrival times are cumulative exponential interarrivals; widths,
    applications, and work amounts are independent weighted draws.  The
    same configuration always yields the identical trace, independent of
    anything else the process has done.
    """
    config = config if config is not None else TraceConfig()
    factory = RngFactory(config.seed).child("sched-trace")
    arrivals_rng = factory.generator("arrivals")
    shape_rng = factory.generator("shape")

    mean_gap_s = 3600.0 / config.arrival_rate_per_hour
    gaps = arrivals_rng.exponential(mean_gap_s, size=config.n_jobs)
    submit_times = np.cumsum(gaps)

    gang_p = np.asarray(config.gang_weights, dtype=float)
    gang_p = gang_p / gang_p.sum()
    widths = shape_rng.choice(
        np.asarray(config.gang_sizes, dtype=np.int64),
        size=config.n_jobs,
        p=gang_p,
    )
    wl_p = np.asarray(config.workload_weights, dtype=float)
    wl_p = wl_p / wl_p.sum()
    workloads = shape_rng.choice(
        np.asarray(config.workload_names, dtype=object),
        size=config.n_jobs,
        p=wl_p,
    )
    lo, hi = config.work_units_range
    units = shape_rng.integers(lo, hi + 1, size=config.n_jobs)

    return tuple(
        Job(
            job_id=i,
            submit_time_s=float(submit_times[i]),
            workload_name=str(workloads[i]),
            n_gpus=int(widths[i]),
            work_units=int(units[i]),
        )
        for i in range(config.n_jobs)
    )
