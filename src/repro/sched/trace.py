"""Seeded job-trace generation for the batch-queue simulator.

A trace is the workload a scheduler faces: jobs arriving by a Poisson
process, each a gang of 1/2/4/8 GPUs running one of the five paper
applications (Table II) for a drawn amount of work.  Every draw derives
from the trace seed through :class:`~repro.rng.RngFactory` labels, so a
trace is a pure function of its configuration — the property that lets
two policies be compared on *exactly* the same offered load, and lets the
CI assert byte-identical event logs across invocations.

Week-long traces are not flat: production machines see diurnal swells
(submissions peak in working hours) and quieter weekends — the same
day-of-week structure the facility model's coolant offsets follow
(:data:`~repro.cluster.facility.WEEKDAY_NAMES`, Monday-first).
:class:`TraceConfig` models both with an inhomogeneous Poisson arrival
rate

``rate(t) = base · (1 + A·cos(2π·(hour(t) − peak_hour)/24)) · w[weekday(t)]``

sampled exactly by time rescaling: unit-rate exponential gaps are pushed
through the inverse cumulative hazard, whose per-day masses are closed
form (the cosine integrates to zero over any full day) and whose
within-day inversion is a deterministic vectorized bisection.  The flat
configuration (zero amplitude, no weekday weights) takes the original
cumulative-gap path untouched, so existing traces stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require
from ..errors import ConfigError
from ..rng import RngFactory

__all__ = [
    "Job",
    "TraceConfig",
    "generate_trace",
    "arrival_rate_multiplier",
]

_SECONDS_PER_DAY = 86_400.0
_SECONDS_PER_HOUR = 3_600.0

#: The five paper applications, as scheduler-facing names.
PAPER_WORKLOAD_NAMES = ("sgemm", "resnet50", "bert", "lammps", "pagerank")


@dataclass(frozen=True)
class Job:
    """One submitted job: when, what, and how wide.

    ``work_units`` scales runtime linearly (workload units the job
    executes); ``job_id`` keys the job's private random stream, so its
    intrinsic draws are identical under every placement policy.
    """

    job_id: int
    submit_time_s: float
    workload_name: str
    n_gpus: int
    work_units: int

    def __post_init__(self) -> None:
        require(self.job_id >= 0, "job_id must be >= 0")
        require(self.submit_time_s >= 0.0, "submit_time_s must be >= 0")
        require(self.n_gpus >= 1, "n_gpus must be >= 1")
        require(self.work_units >= 1, "work_units must be >= 1")


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a generated job trace.

    Parameters
    ----------
    n_jobs:
        Jobs in the trace.
    arrival_rate_per_hour:
        Poisson arrival rate (jobs per hour of simulated time).
    gang_sizes, gang_weights:
        Job widths and their relative draw weights.  The paper's user
        impact analysis covers 1- to 4-GPU jobs; 8-GPU gangs span two
        4-GPU nodes and exercise the multi-node allocator.
    workload_names, workload_weights:
        Applications and their draw weights — a compute/memory-bound mix
        by default, which is what gives variability-aware placement
        something to trade.
    work_units_range:
        Inclusive ``(lo, hi)`` bounds of the per-job work draw.
    seed:
        Trace master seed.
    diurnal_amplitude:
        Relative swing of the within-day arrival rate, in ``[0, 1)``.
        ``0`` (default) keeps arrivals time-homogeneous; ``0.5`` makes
        the peak hour 3× the trough.
    peak_hour:
        Hour of day (0–24) at which the diurnal rate peaks.
    day_of_week_weights:
        Optional per-weekday rate multipliers, Monday-first, 7 positive
        entries (e.g. quieter weekends).  ``None`` (default) keeps every
        day equal.
    """

    n_jobs: int = 100
    arrival_rate_per_hour: float = 120.0
    gang_sizes: tuple[int, ...] = (1, 2, 4, 8)
    gang_weights: tuple[float, ...] = (0.45, 0.25, 0.20, 0.10)
    workload_names: tuple[str, ...] = PAPER_WORKLOAD_NAMES
    workload_weights: tuple[float, ...] = (0.30, 0.25, 0.15, 0.15, 0.15)
    work_units_range: tuple[int, int] = (40, 160)
    seed: int = 0
    diurnal_amplitude: float = 0.0
    peak_hour: float = 14.0
    day_of_week_weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        require(
            isinstance(self.n_jobs, int) and not isinstance(self.n_jobs, bool)
            and self.n_jobs >= 1,
            f"n_jobs must be an integer >= 1, got {self.n_jobs!r}",
        )
        require(self.arrival_rate_per_hour > 0,
                "arrival_rate_per_hour must be positive")
        if len(self.gang_sizes) != len(self.gang_weights):
            raise ConfigError("gang_sizes and gang_weights lengths differ")
        if len(self.workload_names) != len(self.workload_weights):
            raise ConfigError(
                "workload_names and workload_weights lengths differ"
            )
        require(all(k >= 1 for k in self.gang_sizes),
                "gang sizes must be >= 1")
        require(all(w >= 0 for w in self.gang_weights)
                and sum(self.gang_weights) > 0,
                "gang_weights must be non-negative and sum > 0")
        require(all(w >= 0 for w in self.workload_weights)
                and sum(self.workload_weights) > 0,
                "workload_weights must be non-negative and sum > 0")
        lo, hi = self.work_units_range
        require(1 <= lo <= hi, "work_units_range must satisfy 1 <= lo <= hi")
        require(0.0 <= self.diurnal_amplitude < 1.0,
                "diurnal_amplitude must be in [0, 1)")
        require(0.0 <= self.peak_hour < 24.0,
                "peak_hour must be in [0, 24)")
        if self.day_of_week_weights is not None:
            if len(self.day_of_week_weights) != 7:
                raise ConfigError(
                    "day_of_week_weights needs exactly 7 entries "
                    "(Monday-first)"
                )
            require(
                all(np.isfinite(w) and w > 0
                    for w in self.day_of_week_weights),
                "day_of_week_weights must be positive and finite",
            )

    @property
    def is_flat(self) -> bool:
        """Whether the arrival rate is time-homogeneous."""
        return (
            self.diurnal_amplitude == 0.0
            and self.day_of_week_weights is None
        )


def arrival_rate_multiplier(
    times_s: np.ndarray,
    *,
    diurnal_amplitude: float = 0.0,
    peak_hour: float = 14.0,
    day_of_week_weights: tuple[float, ...] | None = None,
) -> np.ndarray:
    """Relative arrival rate at each simulated time (1.0 = base rate)."""
    times_s = np.asarray(times_s, dtype=float)
    phase = (
        2.0 * np.pi
        * (times_s - peak_hour * _SECONDS_PER_HOUR)
        / _SECONDS_PER_DAY
    )
    multiplier = 1.0 + diurnal_amplitude * np.cos(phase)
    if day_of_week_weights is not None:
        weights = np.asarray(day_of_week_weights, dtype=float)
        weekday = (times_s // _SECONDS_PER_DAY).astype(np.int64) % 7
        multiplier = multiplier * weights[weekday]
    return multiplier


def _invert_cumulative_hazard(
    targets: np.ndarray,
    amplitude: float,
    peak_hour: float,
    weights: np.ndarray,
) -> np.ndarray:
    """Map cumulative-hazard values (seconds of base-rate time) to times.

    The cosine term integrates to zero over any whole day, so day ``d``
    carries exactly ``weights[d % 7] * 86400`` of hazard — day selection
    is a ``searchsorted`` over closed-form cumulative masses.  Within the
    day the local equation ``tau + A·C·(sin θ(tau) − sin θ(0)) = target``
    is strictly increasing (``A < 1``), solved by vectorized bisection to
    float64 convergence.  No randomness: times are a pure function of the
    drawn hazards.
    """
    top = float(targets[-1])
    week_mass = float(weights.sum()) * _SECONDS_PER_DAY
    n_weeks = int(np.ceil(top / week_mass)) + 1
    day_masses = np.tile(weights, n_weeks) * _SECONDS_PER_DAY
    day_starts = np.concatenate(([0.0], np.cumsum(day_masses)))
    day = np.searchsorted(day_starts, targets, side="right") - 1
    local = (targets - day_starts[day]) / weights[day % 7]
    if amplitude == 0.0:
        return day * _SECONDS_PER_DAY + local

    circle = 2.0 * np.pi / _SECONDS_PER_DAY
    sin_scale = amplitude / circle

    def local_hazard(tau: np.ndarray) -> np.ndarray:
        # theta(tau) measured from the day's own midnight: day boundaries
        # are whole days, so the peak sits at the same phase every day.
        theta0 = -peak_hour * _SECONDS_PER_HOUR * circle
        return tau + sin_scale * (
            np.sin(tau * circle + theta0) - np.sin(theta0)
        )

    lo = np.zeros_like(local)
    hi = np.full_like(local, _SECONDS_PER_DAY)
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        below = local_hazard(mid) < local
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
    return day * _SECONDS_PER_DAY + 0.5 * (lo + hi)


def generate_trace(config: TraceConfig | None = None) -> tuple[Job, ...]:
    """Generate the deterministic job trace described by ``config``.

    Arrival times are cumulative exponential interarrivals (time-rescaled
    through the diurnal/weekday profile when one is configured); widths,
    applications, and work amounts are independent weighted draws.  The
    same configuration always yields the identical trace, independent of
    anything else the process has done.
    """
    config = config if config is not None else TraceConfig()
    factory = RngFactory(config.seed).child("sched-trace")
    arrivals_rng = factory.generator("arrivals")
    shape_rng = factory.generator("shape")

    mean_gap_s = 3600.0 / config.arrival_rate_per_hour
    gaps = arrivals_rng.exponential(mean_gap_s, size=config.n_jobs)
    submit_times = np.cumsum(gaps)
    if not config.is_flat:
        # The cumulative gaps are the arrivals of a base-rate process;
        # pushing them through the inverse cumulative hazard yields the
        # inhomogeneous process without touching any other draw.
        weights = (
            np.asarray(config.day_of_week_weights, dtype=float)
            if config.day_of_week_weights is not None
            else np.ones(7)
        )
        submit_times = _invert_cumulative_hazard(
            submit_times,
            config.diurnal_amplitude,
            config.peak_hour,
            weights,
        )

    gang_p = np.asarray(config.gang_weights, dtype=float)
    gang_p = gang_p / gang_p.sum()
    widths = shape_rng.choice(
        np.asarray(config.gang_sizes, dtype=np.int64),
        size=config.n_jobs,
        p=gang_p,
    )
    wl_p = np.asarray(config.workload_weights, dtype=float)
    wl_p = wl_p / wl_p.sum()
    workloads = shape_rng.choice(
        np.asarray(config.workload_names, dtype=object),
        size=config.n_jobs,
        p=wl_p,
    )
    lo, hi = config.work_units_range
    units = shape_rng.integers(lo, hi + 1, size=config.n_jobs)

    return tuple(
        Job(
            job_id=i,
            submit_time_s=float(submit_times[i]),
            workload_name=str(workloads[i]),
            n_gpus=int(widths[i]),
            work_units=int(units[i]),
        )
        for i in range(config.n_jobs)
    )
