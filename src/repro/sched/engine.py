"""Deterministic discrete-event batch-queue engine.

One serial event loop drives a whole scheduling run: jobs are submitted
from a seeded trace, queued, placed by a pluggable policy over a
:class:`~repro.cluster.allocator.FreeListAllocator`, priced on their
granted GPUs by :func:`~repro.sim.job.sample_job_runtime` (bulk-synchronous
gang semantics — the slowest member gates the job), and their completions
return capacity to the free list.

Determinism is structural, not incidental:

* the event queue orders by ``(time, kind, seq)`` with completions ahead
  of submissions at equal times, so processing order is a pure function of
  the trace;
* every random draw comes from a labeled :class:`~repro.rng.RngFactory`
  stream — one policy stream, one private stream *per job* keyed by job
  id, so a job's intrinsic draws are identical under every policy;
* the engine itself is serial.  The only parallelism in the stack (the
  profiling campaign feeding variability-aware placement) is already
  bit-identical across worker counts, so the same seed and policy yield a
  byte-identical event log no matter how the run was configured.

Two dispatch paths produce that same log:

* the **reference** path — the PR 5 loop, kept verbatim: rank every node
  per attempt, rebuild free counts, scan the wait queue head-first.  It
  is the semantic definition, and the fallback for custom policies whose
  ranking the engine cannot see into.
* the **indexed** path — the same decisions through incremental
  structures: O(1) fit checks from the allocator's free-count buckets,
  static policy orders resolved through
  :class:`~repro.sched.index.OrderedFreeIndex` segment trees, random
  policy draws resolved with one vectorized scan, a per-gang-size
  blocked-queue index instead of head rescans, and per-round batched job
  pricing through :func:`~repro.sim.job.sample_job_runtimes`.  Policies
  describe their ranking via
  :meth:`~repro.sched.policies.PlacementPolicy.indexed_ranking`;
  ``docs/SCHEDULING.md`` carries the byte-stability argument.
"""

from __future__ import annotations

import contextlib
import heapq
import json
from collections import deque
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..cluster.allocator import FreeListAllocator, GangAllocation
from ..cluster.cluster import Cluster
from ..errors import SimulationError
from ..obs.timeline import active_recorder
from ..obs.tracer import active_tracer
from ..sim.job import (
    JobPricingRequest,
    reference_unit_times,
    sample_job_runtime,
    sample_job_runtimes,
)
from ..workloads import get_workload
from .index import OrderedFreeIndex, SizeBucketQueue, resolve_with_ranking
from .policies import PlacementPolicy, StaticRankingSpec
from .trace import Job

__all__ = [
    "JobRecord",
    "ScheduleOutcome",
    "run_schedule",
    "event_log_lines",
    "ENGINE_MODES",
    "SLOW_THRESHOLD",
    "FAST_PERCENTILE",
]

#: Fractional slowdown over the fast baseline that marks a GPU as slow —
#: the paper's "6-7% slower than the fastest GPUs".
SLOW_THRESHOLD = 0.06

#: Percentile of the fleet's reference times taken as the fast baseline.
FAST_PERCENTILE = 2.0

#: Dispatch paths ``run_schedule(engine=...)`` accepts.  ``auto`` uses the
#: indexed path whenever the policy's ranking is indexable and falls back
#: to the reference loop otherwise; both produce byte-identical logs.
ENGINE_MODES = ("auto", "indexed", "reference")

_EVT_FINISH = 0  # completions release capacity before equal-time arrivals
_EVT_SUBMIT = 1

#: Day length used to map simulated time onto facility days.
_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class JobRecord:
    """Everything one job experienced, from submission to completion."""

    job_id: int
    workload_name: str
    n_gpus: int
    work_units: int
    submit_time_s: float
    start_time_s: float
    finish_time_s: float
    node_indices: tuple[int, ...]
    gpu_indices: tuple[int, ...]
    runtime_s: float
    energy_j: float
    gang_imbalance: float
    slow_assigned: bool

    @property
    def wait_time_s(self) -> float:
        """Time spent queued before the gang was granted."""
        return self.start_time_s - self.submit_time_s

    @property
    def jct_s(self) -> float:
        """Job completion time: submission to completion."""
        return self.finish_time_s - self.submit_time_s


@dataclass(frozen=True)
class ScheduleOutcome:
    """A completed scheduling run: per-job records plus the event log."""

    policy_name: str
    records: tuple[JobRecord, ...]
    events: tuple[dict[str, object], ...]

    @cached_property
    def makespan_s(self) -> float:
        """First submission to last completion (computed once, cached)."""
        if not self.records:
            return 0.0
        return max(r.finish_time_s for r in self.records) - min(
            r.submit_time_s for r in self.records
        )


def _round(value: float) -> float:
    """Canonical float rounding for byte-stable event logs."""
    return round(float(value), 6)


def event_log_lines(events: tuple[dict[str, object], ...]) -> list[str]:
    """Serialize events as canonical JSON Lines (sorted keys, no spaces)."""
    return [
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        for event in events
    ]


def _plan_requests(
    job: Job,
    ranked: np.ndarray,
    allocator: FreeListAllocator,
) -> list[tuple[int, int]] | None:
    """Node requests satisfying the gang in policy preference order.

    Jobs that fit in one chassis require a single node (gang co-location);
    wider gangs greedily take capacity across the ranked nodes.  Returns
    ``None`` when the job cannot start now.
    """
    free = allocator.free_counts()
    if int(free.sum()) < job.n_gpus:
        return None
    per_node = allocator.topology.gpus_per_node
    if job.n_gpus <= per_node:
        for node in ranked.tolist():
            if int(free[node]) >= job.n_gpus:
                return [(int(node), job.n_gpus)]
        return None
    requests: list[tuple[int, int]] = []
    remaining = job.n_gpus
    for node in ranked.tolist():
        take = min(int(free[node]), remaining)
        if take > 0:
            requests.append((int(node), take))
            remaining -= take
        if remaining == 0:
            return requests
    return None


def _validate_jobs(cluster: Cluster, jobs: tuple[Job, ...],
                   policy: PlacementPolicy) -> None:
    """Shared entry checks: widths fit the machine and the power budget."""
    if not jobs:
        raise SimulationError("a scheduling run needs at least one job")
    n_fleet = cluster.topology.n_gpus
    for job in jobs:
        if job.n_gpus > n_fleet:
            raise SimulationError(
                f"job {job.job_id} wants {job.n_gpus} GPUs but the "
                f"machine has {n_fleet}"
            )
    admission = policy.admission
    if admission is not None:
        admission.reset()
        widest = max(job.n_gpus for job in jobs)
        if not admission.can_admit(widest):
            raise SimulationError(
                f"a {widest}-GPU job can never start under a "
                f"{admission.budget_w:.0f} W budget at "
                f"{admission.gpu_reserve_w:.0f} W per GPU"
            )


def _workload_table(jobs: tuple[Job, ...]) -> dict[str, object]:
    return {
        name: get_workload(name)
        for name in sorted({job.workload_name for job in jobs})
    }


def run_schedule(
    cluster: Cluster,
    jobs: tuple[Job, ...],
    policy: PlacementPolicy,
    *,
    engine: str = "auto",
) -> ScheduleOutcome:
    """Run the full trace through the queue under one placement policy.

    Parameters
    ----------
    cluster:
        The simulated machine (topology, physics, seeded streams).
    jobs:
        The offered load — typically :func:`~repro.sched.generate_trace`.
    policy:
        A constructed :class:`~repro.sched.PlacementPolicy`; its
        ``backfill`` flag selects the queue discipline.
    engine:
        Dispatch path: ``"auto"`` (default) takes the indexed near-linear
        path whenever the policy's ranking is indexable, ``"indexed"``
        asks for it explicitly, ``"reference"`` forces the PR 5 scan
        loop.  All paths emit byte-identical event logs; policies with an
        opaque (overridden) ranking always run on the reference path.

    Returns the per-job records and the canonical event log.  Emits
    ``sched.*`` counters and a run span on the active tracer, if any.
    """
    if engine not in ENGINE_MODES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {ENGINE_MODES}"
        )
    _validate_jobs(cluster, jobs, policy)
    spec = None
    if engine != "reference":
        spec = policy.indexed_ranking(cluster.topology.n_nodes)
    if spec is None:
        outcome = _run_reference(cluster, jobs, policy)
    else:
        outcome = _run_indexed(cluster, jobs, policy, spec)
    recorder = active_recorder()
    if recorder is not None:
        _record_timeline(cluster, policy, jobs, outcome, recorder)
    return outcome


def _record_timeline(
    cluster: Cluster,
    policy: PlacementPolicy,
    jobs: tuple[Job, ...],
    outcome: ScheduleOutcome,
    recorder,
) -> None:
    """Append the run to the unified flight recorder.

    Recorded post-hoc from the outcome — whose event log is byte-identical
    across engines — rather than inside the dispatch loops, so both paths
    share one emission order by construction.  Start events carry the
    *exact* (unrounded) record floats, letting a replayer rebuild every
    :class:`JobRecord` bit-for-bit and re-derive the scheduling-report
    digest from the timeline alone.
    """
    recorder.record(
        "sched",
        "sched_begin",
        cluster.name,
        policy=policy.name,
        backfill=policy.backfill,
        n_jobs=len(jobs),
        fleet_gpus=cluster.topology.n_gpus,
    )
    by_id = {record.job_id: record for record in outcome.records}
    for event in outcome.events:
        job_id = event["job"]
        record = by_id[job_id]
        entity = f"job-{job_id}"
        if event["event"] == "submit":
            recorder.record(
                "sched",
                "submit",
                entity,
                job=int(job_id),
                t=float(record.submit_time_s),
                workload=record.workload_name,
                n_gpus=int(record.n_gpus),
                work_units=int(record.work_units),
            )
        elif event["event"] == "start":
            recorder.record(
                "sched",
                "start",
                entity,
                job=int(job_id),
                t=float(record.start_time_s),
                nodes=[int(n) for n in record.node_indices],
                gpus=[int(g) for g in record.gpu_indices],
                backfilled=bool(event["backfilled"]),
                runtime_s=float(record.runtime_s),
                energy_j=float(record.energy_j),
                gang_imbalance=float(record.gang_imbalance),
                slow_assigned=bool(record.slow_assigned),
            )
        else:
            recorder.record(
                "sched",
                "finish",
                entity,
                job=int(job_id),
                t=float(record.finish_time_s),
            )


def _run_reference(
    cluster: Cluster,
    jobs: tuple[Job, ...],
    policy: PlacementPolicy,
) -> ScheduleOutcome:
    """The PR 5 dispatch loop: rank-every-node, head-rescan wait queue."""
    allocator = FreeListAllocator(cluster.topology)
    policy_rng = cluster.rng_factory.child("sched-policy").generator(
        policy.name
    )
    workloads = _workload_table(jobs)
    admission = policy.admission
    reference_cache: dict[tuple[str, int], tuple[np.ndarray, float]] = {}

    def slow_reference(name: str, day: int) -> tuple[np.ndarray, float]:
        key = (name, day)
        if key not in reference_cache:
            ref = reference_unit_times(cluster, workloads[name], day=day)
            fast = float(np.percentile(ref, FAST_PERCENTILE))
            reference_cache[key] = (ref, fast * (1.0 + SLOW_THRESHOLD))
        return reference_cache[key]

    heap: list[tuple[float, int, int, int]] = []
    seq = 0
    for job in jobs:
        heapq.heappush(heap, (job.submit_time_s, _EVT_SUBMIT, seq, job.job_id))
        seq += 1

    by_id = {job.job_id: job for job in jobs}
    queue: list[int] = []
    running: dict[int, GangAllocation] = {}
    records: list[JobRecord] = []
    events: list[dict[str, object]] = []
    tracer = active_tracer()

    def emit(event: dict[str, object]) -> None:
        events.append(event)

    def try_dispatch(now: float) -> None:
        nonlocal seq
        index = 0
        while index < len(queue):
            job = by_id[queue[index]]
            if tracer is not None:
                tracer.add("sched.dispatch_attempts")
            if admission is not None and not admission.can_admit(job.n_gpus):
                if not policy.backfill:
                    return
                index += 1
                continue
            workload = workloads[job.workload_name]
            ranked = policy.rank_nodes(
                workload, job.n_gpus, allocator.free_counts(), policy_rng
            )
            requests = _plan_requests(job, ranked, allocator)
            if requests is None:
                if not policy.backfill:
                    return
                index += 1
                continue
            allocation = allocator.allocate(requests)
            running[job.job_id] = allocation
            if admission is not None:
                admission.commit(job.job_id, job.n_gpus)
            backfilled = index > 0
            queue.pop(index)
            day = int(now // _SECONDS_PER_DAY)
            job_rng = cluster.rng_factory.child(
                f"sched-job-{job.job_id}"
            ).generator("run")
            perf = sample_job_runtime(
                cluster,
                workload,
                allocation.gpu_indices,
                day=day,
                work_units=job.work_units,
                rng=job_rng,
            )
            ref, threshold = slow_reference(job.workload_name, day)
            slow = bool(ref[allocation.gpu_indices].max() > threshold)
            finish_t = now + perf.runtime_s
            record = JobRecord(
                job_id=job.job_id,
                workload_name=job.workload_name,
                n_gpus=job.n_gpus,
                work_units=job.work_units,
                submit_time_s=job.submit_time_s,
                start_time_s=now,
                finish_time_s=finish_t,
                node_indices=tuple(allocation.node_indices.tolist()),
                gpu_indices=tuple(allocation.gpu_indices.tolist()),
                runtime_s=perf.runtime_s,
                energy_j=perf.energy_j,
                gang_imbalance=perf.gang_imbalance,
                slow_assigned=slow,
            )
            records.append(record)
            emit(
                {
                    "event": "start",
                    "t": _round(now),
                    "job": job.job_id,
                    "nodes": record.node_indices,
                    "gpus": record.gpu_indices,
                    "backfilled": backfilled,
                }
            )
            if tracer is not None:
                tracer.add("sched.placements")
                if backfilled:
                    tracer.add("sched.backfills")
                if slow:
                    tracer.add("sched.slow_assignments")
            heapq.heappush(heap, (finish_t, _EVT_FINISH, seq, job.job_id))
            seq += 1
            # restart the scan: freeing nothing, but the head may now be
            # deeper in the queue after the pop
            if not policy.backfill:
                index = 0

    span = (
        tracer.span(
            "schedule", category="sched", policy=policy.name,
            n_jobs=len(jobs),
        )
        if tracer is not None
        else contextlib.nullcontext()
    )
    with span:
        while heap:
            now, kind, _, job_id = heapq.heappop(heap)
            if kind == _EVT_SUBMIT:
                job = by_id[job_id]
                queue.append(job_id)
                emit(
                    {
                        "event": "submit",
                        "t": _round(now),
                        "job": job_id,
                        "workload": job.workload_name,
                        "n_gpus": job.n_gpus,
                        "work_units": job.work_units,
                    }
                )
                if tracer is not None:
                    tracer.add("sched.submitted")
            else:
                allocation = running.pop(job_id)
                allocator.free(allocation)
                if admission is not None:
                    admission.release(job_id)
                emit({"event": "finish", "t": _round(now), "job": job_id})
                if tracer is not None:
                    tracer.add("sched.completed")
            try_dispatch(now)

    if queue or running:
        raise SimulationError(
            f"scheduling run ended with {len(queue)} queued and "
            f"{len(running)} running jobs"
        )
    records.sort(key=lambda r: r.job_id)
    return ScheduleOutcome(
        policy_name=policy.name,
        records=tuple(records),
        events=tuple(events),
    )


def _run_indexed(
    cluster: Cluster,
    jobs: tuple[Job, ...],
    policy: PlacementPolicy,
    spec,
) -> ScheduleOutcome:
    """The near-linear dispatch path.

    Decision-for-decision equal to :func:`_run_reference`:

    * fit checks come from the allocator's O(1) free-count buckets — the
      fit predicate ("any node with ≥k free" / "≥k free in total") never
      depends on the preference order, only the chosen nodes do;
    * static rankings resolve through one segment tree per distinct
      order, and futile attempts are skipped outright (static policies
      consume no randomness, so skipping leaves no stream trace);
    * random rankings are still drawn at every reference attempt point —
      stream parity — but each drawn order resolves in one vectorized
      scan;
    * placements of one dispatch round are priced in a single
      :func:`~repro.sim.job.sample_job_runtimes` batch.  Finish-event
      heap entries use sequence numbers reserved at placement time, and
      the heap orders by ``(time, kind, seq)``, so deferring the push to
      the end of the round cannot reorder anything.
    """
    allocator = FreeListAllocator(cluster.topology)
    policy_rng = cluster.rng_factory.child("sched-policy").generator(
        policy.name
    )
    workloads = _workload_table(jobs)
    admission = policy.admission
    per_node = allocator.topology.gpus_per_node
    counts_view = allocator.free_counts_view()
    reference_cache: dict[tuple[str, int], tuple[np.ndarray, float]] = {}

    def slow_reference(name: str, day: int) -> tuple[np.ndarray, float]:
        # Same table as the reference path; all solver modes are
        # bit-identical and "fleet" settles the machine in one call.
        key = (name, day)
        if key not in reference_cache:
            ref = reference_unit_times(
                cluster, workloads[name], day=day, solver="fleet"
            )
            fast = float(np.percentile(ref, FAST_PERCENTILE))
            reference_cache[key] = (ref, fast * (1.0 + SLOW_THRESHOLD))
        return reference_cache[key]

    heap: list[tuple[float, int, int, int]] = []
    seq = 0
    for job in jobs:
        heapq.heappush(heap, (job.submit_time_s, _EVT_SUBMIT, seq, job.job_id))
        seq += 1

    by_id = {job.job_id: job for job in jobs}
    running: dict[int, GangAllocation] = {}
    records: list[JobRecord] = []
    events: list[dict[str, object]] = []
    tracer = active_tracer()

    static = isinstance(spec, StaticRankingSpec)
    if static:
        trees = [
            OrderedFreeIndex(order, allocator.free_counts())
            for order in spec.orders
        ]
        for tree in trees:
            allocator.add_listener(tree.update)
        order_cache: dict[tuple[str, int], int] = {}

        def tree_of(job: Job) -> OrderedFreeIndex:
            key = (job.workload_name, job.n_gpus)
            which = order_cache.get(key)
            if which is None:
                which = spec.order_index_of(
                    workloads[job.workload_name], job.n_gpus
                )
                order_cache[key] = which
            return trees[which]

    # Wait-queue representation: random rankings must walk every queued
    # job at reference draw points, so they keep the flat list; static
    # non-backfill only ever consults the head; static backfill uses the
    # per-gang-size index so a free event wakes only widths that now fit.
    use_buckets = static and policy.backfill
    bucket_queue = SizeBucketQueue() if use_buckets else None
    flat_queue: deque[int] | list[int] = deque() if static else []
    arrival = 0

    def capacity_fits(k: int) -> bool:
        if k <= per_node:
            return allocator.n_nodes_with_at_least(k) > 0
        return allocator.n_free >= k

    def fits(k: int) -> bool:
        if admission is not None and not admission.can_admit(k):
            return False
        return capacity_fits(k)

    def plan_static(job: Job) -> list[tuple[int, int]] | None:
        tree = tree_of(job)
        if job.n_gpus <= per_node:
            node = tree.first_at_least(job.n_gpus)
            if node < 0:
                return None
            return [(node, job.n_gpus)]
        return tree.take_prefix(job.n_gpus)

    # Placements of the current dispatch round, priced as one batch:
    # (job, allocation, backfilled, finish_seq, slow_assigned).
    round_placements: list[tuple[Job, GangAllocation, bool, int, bool]] = []

    def place(job: Job, requests: list[tuple[int, int]],
              backfilled: bool, now: float) -> None:
        nonlocal seq
        allocation = allocator.allocate(requests)
        running[job.job_id] = allocation
        if admission is not None:
            admission.commit(job.job_id, job.n_gpus)
        day = int(now // _SECONDS_PER_DAY)
        ref, threshold = slow_reference(job.workload_name, day)
        slow = bool(ref[allocation.gpu_indices].max() > threshold)
        round_placements.append((job, allocation, backfilled, seq, slow))
        seq += 1

    def dispatch_static(now: float) -> None:
        if not policy.backfill:
            while flat_queue:
                job = by_id[flat_queue[0]]
                if tracer is not None:
                    tracer.add("sched.dispatch_attempts")
                if admission is not None and not admission.can_admit(
                    job.n_gpus
                ):
                    return
                requests = plan_static(job)
                if requests is None:
                    return
                flat_queue.popleft()
                place(job, requests, False, now)
            return
        while True:
            if tracer is not None:
                tracer.add("sched.dispatch_attempts")
            entry = bucket_queue.earliest_fitting(fits)
            if entry is None:
                return
            entry_seq, job_id, size = entry
            backfilled = entry_seq != bucket_queue.head_seq()
            bucket_queue.pop(size)
            job = by_id[job_id]
            # fits() held, and the fit predicate is ranking-independent,
            # so the tree plan cannot miss.
            place(job, plan_static(job), backfilled, now)

    def dispatch_random(now: float) -> None:
        index = 0
        while index < len(flat_queue):
            job = by_id[flat_queue[index]]
            if tracer is not None:
                tracer.add("sched.dispatch_attempts")
            if admission is not None and not admission.can_admit(job.n_gpus):
                if not policy.backfill:
                    return
                index += 1
                continue
            # Reference draw point: the ranking is drawn before the fit
            # check, so the policy stream stays byte-compatible even for
            # attempts that cannot place.
            ranking = spec.draw(policy_rng)
            if not capacity_fits(job.n_gpus):
                if not policy.backfill:
                    return
                index += 1
                continue
            requests = resolve_with_ranking(
                ranking, counts_view, job.n_gpus, per_node
            )
            backfilled = index > 0
            flat_queue.pop(index)
            place(job, requests, backfilled, now)
            if not policy.backfill:
                index = 0

    dispatch = dispatch_static if static else dispatch_random

    def price_round(now: float) -> None:
        if not round_placements:
            return
        day = int(now // _SECONDS_PER_DAY)
        pricing = [
            JobPricingRequest(
                workload=workloads[job.workload_name],
                gpu_indices=allocation.gpu_indices,
                work_units=job.work_units,
                rng=cluster.rng_factory.child(
                    f"sched-job-{job.job_id}"
                ).generator("run"),
            )
            for job, allocation, _, _, _ in round_placements
        ]
        perfs = sample_job_runtimes(cluster, pricing, day=day)
        if tracer is not None:
            tracer.add("sched.price_batches")
        for (job, allocation, backfilled, finish_seq, slow), perf in zip(
            round_placements, perfs
        ):
            finish_t = now + perf.runtime_s
            record = JobRecord(
                job_id=job.job_id,
                workload_name=job.workload_name,
                n_gpus=job.n_gpus,
                work_units=job.work_units,
                submit_time_s=job.submit_time_s,
                start_time_s=now,
                finish_time_s=finish_t,
                node_indices=tuple(allocation.node_indices.tolist()),
                gpu_indices=tuple(allocation.gpu_indices.tolist()),
                runtime_s=perf.runtime_s,
                energy_j=perf.energy_j,
                gang_imbalance=perf.gang_imbalance,
                slow_assigned=slow,
            )
            records.append(record)
            events.append(
                {
                    "event": "start",
                    "t": _round(now),
                    "job": job.job_id,
                    "nodes": record.node_indices,
                    "gpus": record.gpu_indices,
                    "backfilled": backfilled,
                }
            )
            if tracer is not None:
                tracer.add("sched.placements")
                if backfilled:
                    tracer.add("sched.backfills")
                if slow:
                    tracer.add("sched.slow_assignments")
            heapq.heappush(
                heap, (finish_t, _EVT_FINISH, finish_seq, job.job_id)
            )
        round_placements.clear()

    span = (
        tracer.span(
            "schedule", category="sched", policy=policy.name,
            n_jobs=len(jobs),
        )
        if tracer is not None
        else contextlib.nullcontext()
    )
    with span:
        while heap:
            now, kind, _, job_id = heapq.heappop(heap)
            if kind == _EVT_SUBMIT:
                job = by_id[job_id]
                if use_buckets:
                    bucket_queue.push(job.n_gpus, arrival, job_id)
                    arrival += 1
                else:
                    flat_queue.append(job_id)
                events.append(
                    {
                        "event": "submit",
                        "t": _round(now),
                        "job": job_id,
                        "workload": job.workload_name,
                        "n_gpus": job.n_gpus,
                        "work_units": job.work_units,
                    }
                )
                if tracer is not None:
                    tracer.add("sched.submitted")
            else:
                allocation = running.pop(job_id)
                allocator.free(allocation)
                if admission is not None:
                    admission.release(job_id)
                events.append(
                    {"event": "finish", "t": _round(now), "job": job_id}
                )
                if tracer is not None:
                    tracer.add("sched.completed")
            dispatch(now)
            price_round(now)

    queued = len(bucket_queue) if use_buckets else len(flat_queue)
    if queued or running:
        raise SimulationError(
            f"scheduling run ended with {queued} queued and "
            f"{len(running)} running jobs"
        )
    records.sort(key=lambda r: r.job_id)
    return ScheduleOutcome(
        policy_name=policy.name,
        records=tuple(records),
        events=tuple(events),
    )
