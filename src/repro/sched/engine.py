"""Deterministic discrete-event batch-queue engine.

One serial event loop drives a whole scheduling run: jobs are submitted
from a seeded trace, queued, placed by a pluggable policy over a
:class:`~repro.cluster.allocator.FreeListAllocator`, priced on their
granted GPUs by :func:`~repro.sim.job.sample_job_runtime` (bulk-synchronous
gang semantics — the slowest member gates the job), and their completions
return capacity to the free list.

Determinism is structural, not incidental:

* the event queue orders by ``(time, kind, seq)`` with completions ahead
  of submissions at equal times, so processing order is a pure function of
  the trace;
* every random draw comes from a labeled :class:`~repro.rng.RngFactory`
  stream — one policy stream, one private stream *per job* keyed by job
  id, so a job's intrinsic draws are identical under every policy;
* the engine itself is serial.  The only parallelism in the stack (the
  profiling campaign feeding variability-aware placement) is already
  bit-identical across worker counts, so the same seed and policy yield a
  byte-identical event log no matter how the run was configured.
"""

from __future__ import annotations

import contextlib
import heapq
import json
from dataclasses import dataclass

import numpy as np

from ..cluster.allocator import FreeListAllocator, GangAllocation
from ..cluster.cluster import Cluster
from ..errors import SimulationError
from ..obs.tracer import active_tracer
from ..sim.job import reference_unit_times, sample_job_runtime
from ..workloads import get_workload
from .policies import PlacementPolicy
from .trace import Job

__all__ = [
    "JobRecord",
    "ScheduleOutcome",
    "run_schedule",
    "event_log_lines",
    "SLOW_THRESHOLD",
    "FAST_PERCENTILE",
]

#: Fractional slowdown over the fast baseline that marks a GPU as slow —
#: the paper's "6-7% slower than the fastest GPUs".
SLOW_THRESHOLD = 0.06

#: Percentile of the fleet's reference times taken as the fast baseline.
FAST_PERCENTILE = 2.0

_EVT_FINISH = 0  # completions release capacity before equal-time arrivals
_EVT_SUBMIT = 1

#: Day length used to map simulated time onto facility days.
_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class JobRecord:
    """Everything one job experienced, from submission to completion."""

    job_id: int
    workload_name: str
    n_gpus: int
    work_units: int
    submit_time_s: float
    start_time_s: float
    finish_time_s: float
    node_indices: tuple[int, ...]
    gpu_indices: tuple[int, ...]
    runtime_s: float
    energy_j: float
    gang_imbalance: float
    slow_assigned: bool

    @property
    def wait_time_s(self) -> float:
        """Time spent queued before the gang was granted."""
        return self.start_time_s - self.submit_time_s

    @property
    def jct_s(self) -> float:
        """Job completion time: submission to completion."""
        return self.finish_time_s - self.submit_time_s


@dataclass(frozen=True)
class ScheduleOutcome:
    """A completed scheduling run: per-job records plus the event log."""

    policy_name: str
    records: tuple[JobRecord, ...]
    events: tuple[dict[str, object], ...]

    @property
    def makespan_s(self) -> float:
        """First submission to last completion."""
        if not self.records:
            return 0.0
        return max(r.finish_time_s for r in self.records) - min(
            r.submit_time_s for r in self.records
        )


def _round(value: float) -> float:
    """Canonical float rounding for byte-stable event logs."""
    return round(float(value), 6)


def event_log_lines(events: tuple[dict[str, object], ...]) -> list[str]:
    """Serialize events as canonical JSON Lines (sorted keys, no spaces)."""
    return [
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        for event in events
    ]


def _plan_requests(
    job: Job,
    ranked: np.ndarray,
    allocator: FreeListAllocator,
) -> list[tuple[int, int]] | None:
    """Node requests satisfying the gang in policy preference order.

    Jobs that fit in one chassis require a single node (gang co-location);
    wider gangs greedily take capacity across the ranked nodes.  Returns
    ``None`` when the job cannot start now.
    """
    free = allocator.free_counts()
    if int(free.sum()) < job.n_gpus:
        return None
    per_node = allocator.topology.gpus_per_node
    if job.n_gpus <= per_node:
        for node in ranked.tolist():
            if int(free[node]) >= job.n_gpus:
                return [(int(node), job.n_gpus)]
        return None
    requests: list[tuple[int, int]] = []
    remaining = job.n_gpus
    for node in ranked.tolist():
        take = min(int(free[node]), remaining)
        if take > 0:
            requests.append((int(node), take))
            remaining -= take
        if remaining == 0:
            return requests
    return None


def run_schedule(
    cluster: Cluster,
    jobs: tuple[Job, ...],
    policy: PlacementPolicy,
) -> ScheduleOutcome:
    """Run the full trace through the queue under one placement policy.

    Parameters
    ----------
    cluster:
        The simulated machine (topology, physics, seeded streams).
    jobs:
        The offered load — typically :func:`~repro.sched.generate_trace`.
    policy:
        A constructed :class:`~repro.sched.PlacementPolicy`; its
        ``backfill`` flag selects the queue discipline.

    Returns the per-job records and the canonical event log.  Emits
    ``sched.*`` counters and a run span on the active tracer, if any.
    """
    if not jobs:
        raise SimulationError("a scheduling run needs at least one job")
    n_fleet = cluster.topology.n_gpus
    for job in jobs:
        if job.n_gpus > n_fleet:
            raise SimulationError(
                f"job {job.job_id} wants {job.n_gpus} GPUs but the "
                f"machine has {n_fleet}"
            )

    allocator = FreeListAllocator(cluster.topology)
    policy_rng = cluster.rng_factory.child("sched-policy").generator(
        policy.name
    )
    workloads = {
        name: get_workload(name)
        for name in sorted({job.workload_name for job in jobs})
    }
    reference_cache: dict[tuple[str, int], tuple[np.ndarray, float]] = {}

    def slow_reference(name: str, day: int) -> tuple[np.ndarray, float]:
        key = (name, day)
        if key not in reference_cache:
            ref = reference_unit_times(cluster, workloads[name], day=day)
            fast = float(np.percentile(ref, FAST_PERCENTILE))
            reference_cache[key] = (ref, fast * (1.0 + SLOW_THRESHOLD))
        return reference_cache[key]

    heap: list[tuple[float, int, int, int]] = []
    seq = 0
    for job in jobs:
        heapq.heappush(heap, (job.submit_time_s, _EVT_SUBMIT, seq, job.job_id))
        seq += 1

    by_id = {job.job_id: job for job in jobs}
    queue: list[int] = []
    running: dict[int, GangAllocation] = {}
    records: list[JobRecord] = []
    events: list[dict[str, object]] = []
    tracer = active_tracer()

    def emit(event: dict[str, object]) -> None:
        events.append(event)

    def try_dispatch(now: float) -> None:
        nonlocal seq
        index = 0
        while index < len(queue):
            job = by_id[queue[index]]
            workload = workloads[job.workload_name]
            ranked = policy.rank_nodes(
                workload, job.n_gpus, allocator.free_counts(), policy_rng
            )
            requests = _plan_requests(job, ranked, allocator)
            if requests is None:
                if not policy.backfill:
                    return
                index += 1
                continue
            allocation = allocator.allocate(requests)
            running[job.job_id] = allocation
            backfilled = index > 0
            queue.pop(index)
            day = int(now // _SECONDS_PER_DAY)
            job_rng = cluster.rng_factory.child(
                f"sched-job-{job.job_id}"
            ).generator("run")
            perf = sample_job_runtime(
                cluster,
                workload,
                allocation.gpu_indices,
                day=day,
                work_units=job.work_units,
                rng=job_rng,
            )
            ref, threshold = slow_reference(job.workload_name, day)
            slow = bool(ref[allocation.gpu_indices].max() > threshold)
            finish_t = now + perf.runtime_s
            record = JobRecord(
                job_id=job.job_id,
                workload_name=job.workload_name,
                n_gpus=job.n_gpus,
                work_units=job.work_units,
                submit_time_s=job.submit_time_s,
                start_time_s=now,
                finish_time_s=finish_t,
                node_indices=tuple(allocation.node_indices.tolist()),
                gpu_indices=tuple(allocation.gpu_indices.tolist()),
                runtime_s=perf.runtime_s,
                energy_j=perf.energy_j,
                gang_imbalance=perf.gang_imbalance,
                slow_assigned=slow,
            )
            records.append(record)
            emit(
                {
                    "event": "start",
                    "t": _round(now),
                    "job": job.job_id,
                    "nodes": record.node_indices,
                    "gpus": record.gpu_indices,
                    "backfilled": backfilled,
                }
            )
            if tracer is not None:
                tracer.add("sched.placements")
                if backfilled:
                    tracer.add("sched.backfills")
                if slow:
                    tracer.add("sched.slow_assignments")
            heapq.heappush(heap, (finish_t, _EVT_FINISH, seq, job.job_id))
            seq += 1
            # restart the scan: freeing nothing, but the head may now be
            # deeper in the queue after the pop
            if not policy.backfill:
                index = 0

    span = (
        tracer.span(
            "schedule", category="sched", policy=policy.name,
            n_jobs=len(jobs),
        )
        if tracer is not None
        else contextlib.nullcontext()
    )
    with span:
        while heap:
            now, kind, _, job_id = heapq.heappop(heap)
            if kind == _EVT_SUBMIT:
                job = by_id[job_id]
                queue.append(job_id)
                emit(
                    {
                        "event": "submit",
                        "t": _round(now),
                        "job": job_id,
                        "workload": job.workload_name,
                        "n_gpus": job.n_gpus,
                        "work_units": job.work_units,
                    }
                )
                if tracer is not None:
                    tracer.add("sched.submitted")
            else:
                allocation = running.pop(job_id)
                allocator.free(allocation)
                emit({"event": "finish", "t": _round(now), "job": job_id})
                if tracer is not None:
                    tracer.add("sched.completed")
            try_dispatch(now)

    if queue or running:
        raise SimulationError(
            f"scheduling run ended with {len(queue)} queued and "
            f"{len(running)} running jobs"
        )
    records.sort(key=lambda r: r.job_id)
    return ScheduleOutcome(
        policy_name=policy.name,
        records=tuple(records),
        events=tuple(events),
    )
