"""Allocation indexes for the near-linear scheduler hot path.

The reference engine answers "where does this gang go?" by rebuilding the
per-node free-count array and scanning every node in policy-preference
order — O(n_nodes) Python work per placement attempt.  This module holds
the structures that make the same answers O(log n) or O(1):

* :class:`OrderedFreeIndex` — a segment tree over a *static* node
  preference order (variability scores, health grades, power scores are
  fixed for a whole trace) carrying per-position free counts with subtree
  sums and maxima.  ``first_at_least(k)`` finds the first node in
  preference order with ``k`` free GPUs in O(log n); ``take_prefix(k)``
  reproduces the engine's greedy multi-node gang plan by walking only the
  non-empty positions of the order prefix, O(g log n) for a gang that
  touches ``g`` nodes.  The tree subscribes to
  :meth:`~repro.cluster.allocator.FreeListAllocator.add_listener`, so it
  is maintained incrementally as grants and frees mutate the free list.
* :func:`resolve_with_ranking` — the vectorized one-shot equivalent for
  *random* preference orders (fifo's per-attempt permutation draw), where
  a tree cannot be reused across attempts: a NumPy scan over the drawn
  ranking replacing the reference engine's Python loop.
* :class:`SizeBucketQueue` — the per-gang-size blocked-queue index: jobs
  waiting in FIFO order, bucketed by gang width, so a ``free`` event
  wakes only widths that can now fit instead of rescanning the queue
  head-first.

Every query is a pure function of (order, free state), so the indexed
engine's placements are byte-identical to the reference scan — the
equivalence argument lives in ``docs/SCHEDULING.md``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["OrderedFreeIndex", "SizeBucketQueue", "resolve_with_ranking"]


class OrderedFreeIndex:
    """Segment tree over a static node order, keyed by free counts.

    Parameters
    ----------
    order:
        Node indices in descending preference (the output of a policy's
        static ranking); a permutation of ``range(n_nodes)``.
    counts:
        Current free-GPU count per node (ascending *node* index).
    """

    def __init__(self, order: np.ndarray, counts: np.ndarray) -> None:
        order = np.asarray(order, dtype=np.int64)
        n = int(order.shape[0])
        m = 1
        while m < n:
            m <<= 1
        self._n = n
        self._m = m
        self._order = order
        pos = np.empty(n, dtype=np.int64)
        pos[order] = np.arange(n, dtype=np.int64)
        self._pos_of_node = pos.tolist()
        vals = [0] * (2 * m)
        ordered = counts[order].tolist()
        vals[m : m + n] = ordered
        self._max = vals
        self._sum = list(vals)
        mx, sm = self._max, self._sum
        for i in range(m - 1, 0, -1):
            left, right = 2 * i, 2 * i + 1
            mx[i] = mx[left] if mx[left] >= mx[right] else mx[right]
            sm[i] = sm[left] + sm[right]

    def update(self, node: int, count: int) -> None:
        """Set ``node``'s free count; O(log n)."""
        i = self._pos_of_node[node] + self._m
        mx, sm = self._max, self._sum
        mx[i] = count
        sm[i] = count
        i >>= 1
        while i:
            left, right = 2 * i, 2 * i + 1
            mx[i] = mx[left] if mx[left] >= mx[right] else mx[right]
            sm[i] = sm[left] + sm[right]
            i >>= 1

    def first_at_least(self, k: int) -> int:
        """First node in preference order with ``>= k`` free, or -1."""
        mx = self._max
        if mx[1] < k:
            return -1
        i = 1
        m = self._m
        while i < m:
            left = 2 * i
            i = left if mx[left] >= k else left + 1
        return int(self._order[i - m])

    def take_prefix(self, k: int) -> list[tuple[int, int]] | None:
        """Greedy gang plan over the order prefix: ``[(node, take), ...]``.

        Walks non-empty positions in preference order, taking
        ``min(free, remaining)`` from each — exactly the reference
        engine's scan, skipping empty nodes through subtree sums.
        Returns ``None`` when fewer than ``k`` GPUs are free in total.
        """
        sm = self._sum
        if sm[1] < k:
            return None
        order = self._order
        m = self._m
        out: list[tuple[int, int]] = []
        remaining = k
        stack = [1]
        while stack:
            i = stack.pop()
            s = sm[i]
            if s == 0:
                continue
            if i >= m:
                take = s if s < remaining else remaining
                out.append((int(order[i - m]), take))
                remaining -= take
                if remaining == 0:
                    return out
                continue
            # right child is pushed first so the left (preferred) side is
            # popped and consumed first
            stack.append(2 * i + 1)
            stack.append(2 * i)
        return out if remaining == 0 else None


def resolve_with_ranking(
    ranking: np.ndarray,
    counts: np.ndarray,
    n_gpus: int,
    gpus_per_node: int,
) -> list[tuple[int, int]] | None:
    """Vectorized gang plan over a one-shot (random) preference order.

    The NumPy equivalent of the reference engine's Python scan: for
    single-chassis gangs, the first ranked node with enough free GPUs;
    for wider gangs, the greedy prefix of the ranking.  Returns ``None``
    when the gang cannot start now.
    """
    free = counts[ranking]
    if n_gpus <= gpus_per_node:
        hits = free >= n_gpus
        at = int(np.argmax(hits))
        if not hits[at]:
            return None
        return [(int(ranking[at]), n_gpus)]
    cum = np.cumsum(free)
    if int(cum[-1]) < n_gpus:
        return None
    stop = int(np.searchsorted(cum, n_gpus, side="left"))
    takes = free[: stop + 1].copy()
    takes[stop] = n_gpus - (int(cum[stop - 1]) if stop > 0 else 0)
    nodes = ranking[: stop + 1]
    return [
        (int(node), int(take))
        for node, take in zip(nodes.tolist(), takes.tolist())
        if take > 0
    ]


class SizeBucketQueue:
    """FIFO wait queue bucketed by gang width.

    A blocked queue under a backfilling, draw-free policy only needs to
    reconsider widths that the last ``free`` event made feasible; this
    index keeps one FIFO deque per distinct width so a dispatch round
    touches O(widths) state per placement instead of rescanning every
    queued job.  Entries are ``(seq, job_id)`` with ``seq`` the global
    submission order, so cross-bucket FIFO order is recoverable.
    """

    def __init__(self) -> None:
        self._buckets: dict[int, deque[tuple[int, int]]] = {}
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, size: int, seq: int, job_id: int) -> None:
        """Append a job of gang width ``size`` in submission order."""
        bucket = self._buckets.get(size)
        if bucket is None:
            bucket = self._buckets[size] = deque()
        bucket.append((seq, job_id))
        self._len += 1

    def head_seq(self) -> int | None:
        """Global queue-head submission seq, or ``None`` when empty."""
        best: int | None = None
        for bucket in self._buckets.values():
            if bucket and (best is None or bucket[0][0] < best):
                best = bucket[0][0]
        return best

    def earliest_fitting(self, fits) -> tuple[int, int, int] | None:
        """Earliest queued ``(seq, job_id, size)`` whose width ``fits``.

        ``fits(size)`` is consulted once per *distinct* width — the
        per-gang-size wake check.
        """
        best: tuple[int, int, int] | None = None
        for size, bucket in self._buckets.items():
            if not bucket:
                continue
            if (best is None or bucket[0][0] < best[0]) and fits(size):
                best = (bucket[0][0], bucket[0][1], size)
        return best

    def pop(self, size: int) -> tuple[int, int]:
        """Remove and return the head entry of one width bucket."""
        entry = self._buckets[size].popleft()
        self._len -= 1
        return entry
