"""Command-line interface: ``python -m repro <command>``.

The operator-facing entry points, mirroring how the paper's artifact is
driven from the shell:

``list``
    Inventory of cluster presets and workloads.
``characterize``
    Run a measurement campaign and print the full variability report
    (optionally archiving the raw measurements to CSV).
``monitor``
    Run a campaign with the streaming metrics pipeline and online health
    detection attached; print the fleet-health report and optionally write
    the Prometheus-style metrics dump, the health-event stream (JSONL), and
    the machine-readable health report (JSON).
``screen``
    Maintenance triage: flag outliers across one or more applications and
    print confirmed offenders.
``sweep``
    The Fig.-22 power-limit sweep on an admin-access cluster.
``project``
    Scaled-normal projection of a campaign's variability to a larger
    cluster (Section IV-D).
``sched``
    Batch-queue simulation: run a seeded job trace through the
    discrete-event queue engine under a placement policy and print the
    scheduling report (Section VII); ``--report`` / ``--events`` write the
    schema-validated JSON report and the byte-stable JSONL event log.
``chaos``
    Declarative fault injection (:mod:`repro.chaos`): run a named incident
    scenario end to end — injection, online health detection, health-aware
    scheduler reaction — against an automatically-run no-fault baseline
    and print the mitigation scorecard; ``--list`` shows the scenario
    catalog and ``--score`` writes the schema-validated scorecard JSON.
``serve``
    Boot the long-lived fleet service (:mod:`repro.service`): asyncio
    HTTP endpoints for the request verbs with request coalescing, a
    bounded response cache, and worker-pool backpressure.
``loadgen``
    Drive a seeded closed- or open-loop request mix at a running service
    (or ``--self-host`` one on an ephemeral port) and print/write the
    schema-validated latency report (:mod:`repro.loadgen`).
``replay``
    Forensics over a recorded flight-recorder timeline
    (:mod:`repro.obs.replay`): summarize the event stream, reconstruct
    fleet state at a logical timestamp (``--at``), filter by entity
    (``--grep``) or by layer (``--layer``), or re-derive the report
    digests from the log alone (``--check``).

Every subcommand accepts the same execution options — ``--seed``,
``--workers``, ``--solver``, ``--trace PATH``, ``--manifest PATH`` and
``--timeline PATH`` —
through one shared builder, so observability is uniformly available:
``--solver`` selects the steady-state DVFS solver (``ladder``, ``fleet``
or ``grid`` — bit-identical outputs, different speed; see
docs/PERFORMANCE.md) by exporting ``REPRO_DVFS_SOLVER`` for the duration
of the command. ``--trace``
writes a Chrome-trace JSON (Perfetto-loadable; ``.jsonl`` suffix switches
to JSON Lines events), ``--manifest`` writes the reproducibility-audit
document, and ``--timeline`` records the unified flight-recorder event
stream for later ``repro replay`` (see :mod:`repro.obs` and
docs/OBSERVABILITY.md).  None of these flags changes any computed output:
results are bit-identical with or without them.

All commands delegate to the stable :mod:`repro.api` facade.  The five
campaign verbs assemble a typed request object
(:mod:`repro.api.requests`) and hand it to the facade — the exact same
deserialized object the HTTP service executes, so the CLI, Python, and
wire paths share one validated surface.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Sequence

from . import api
from .errors import ReproError
from .telemetry.io import write_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU fleet variability characterization "
                    "(SC'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list cluster presets and workloads")
    _add_execution_args(p)

    p = sub.add_parser("characterize",
                       help="campaign + full variability report")
    _add_cluster_args(p)
    _add_execution_args(p)
    p.add_argument("--workload", default="sgemm",
                   help="workload name (see `repro list`)")
    p.add_argument("--days", type=int, default=7)
    p.add_argument("--runs-per-day", type=int, default=1)
    p.add_argument("--coverage", type=float, default=1.0)
    p.add_argument("--csv", metavar="PATH",
                   help="archive raw measurements to (gzipped) CSV")

    p = sub.add_parser("monitor",
                       help="campaign with streaming metrics + health "
                            "detection")
    _add_cluster_args(p)
    _add_execution_args(p)
    p.add_argument("--workload", default="sgemm",
                   help="workload name (see `repro list`)")
    p.add_argument("--days", type=int, default=7)
    p.add_argument("--runs-per-day", type=int, default=1)
    p.add_argument("--coverage", type=float, default=1.0)
    p.add_argument("--window", type=int, default=4, metavar="RUNS",
                   help="sliding-window length (runs) for the health "
                        "detector")
    p.add_argument("--metrics", metavar="PATH", default=None,
                   help="write the Prometheus-style text exposition")
    p.add_argument("--events", metavar="PATH", default=None,
                   help="write the health-event stream as JSON Lines")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the machine-readable health report JSON")
    p.add_argument("--csv", metavar="PATH",
                   help="archive raw measurements to (gzipped) CSV")

    p = sub.add_parser("screen", help="outlier triage across applications")
    _add_cluster_args(p)
    _add_execution_args(p)
    p.add_argument("--workloads", default="sgemm,resnet50",
                   help="comma-separated workload names")
    p.add_argument("--days", type=int, default=3)
    p.add_argument("--min-confirmations", type=int, default=2)

    p = sub.add_parser("sweep", help="power-limit sweep (admin clusters)")
    _add_cluster_args(p, default_cluster="cloudlab")
    _add_execution_args(p)
    p.add_argument("--limits", default="300,250,200,150,100",
                   help="comma-separated watt limits")
    p.add_argument("--runs", type=int, default=6)

    p = sub.add_parser("project",
                       help="project variability to a larger cluster")
    _add_cluster_args(p)
    _add_execution_args(p)
    p.add_argument("--target-n", type=int, required=True,
                   help="hypothetical cluster size (GPUs)")
    p.add_argument("--days", type=int, default=5)

    p = sub.add_parser("sched",
                       help="batch-queue simulation under a placement "
                            "policy (Section VII)")
    _add_cluster_args(p)
    _add_execution_args(p)
    p.add_argument("--policy", default="fifo",
                   choices=list(api.POLICY_NAMES),
                   help="placement policy (aware policies profile the "
                        "fleet first)")
    p.add_argument("--jobs", type=int, default=100,
                   help="jobs in the generated trace")
    p.add_argument("--trace-seed", type=int, default=0,
                   help="job-trace seed (same seed = same offered load)")
    p.add_argument("--arrival-per-hour", type=float, default=120.0,
                   help="Poisson arrival rate (jobs/hour)")
    p.add_argument("--diurnal-amplitude", type=float, default=0.0,
                   help="within-day arrival-rate swing in [0,1) "
                        "(0 = time-homogeneous)")
    p.add_argument("--peak-hour", type=float, default=14.0,
                   help="hour of day at which the diurnal rate peaks")
    p.add_argument("--day-weights", default=None, metavar="W0,...,W6",
                   help="7 comma-separated Monday-first weekday rate "
                        "multipliers (e.g. quieter weekends)")
    p.add_argument("--engine", default="auto",
                   choices=list(api.ENGINE_MODES),
                   help="dispatch path: indexed near-linear, reference "
                        "scan, or auto (byte-identical outputs)")
    p.add_argument("--power-budget-w", type=float, default=None,
                   help="fleet power budget for the energy-capped policy "
                        "(default: 60%% of the summed power caps)")
    p.add_argument("--profile-days", type=int, default=3,
                   help="characterization days behind the aware policies")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the machine-readable scheduling report JSON")
    p.add_argument("--events", metavar="PATH", default=None,
                   help="write the canonical event log as JSON Lines")

    p = sub.add_parser("chaos",
                       help="fault injection: run an incident scenario "
                            "and print the mitigation scorecard")
    _add_cluster_args(p)
    _add_execution_args(p)
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="incident scenario from the catalog "
                        "(see --list)")
    p.add_argument("--list", action="store_true", dest="list_scenarios",
                   help="list the incident scenario catalog and exit")
    p.add_argument("--workload", default="sgemm",
                   help="workload name (see `repro list`)")
    p.add_argument("--days", type=int, default=10)
    p.add_argument("--runs-per-day", type=int, default=2)
    p.add_argument("--jobs", type=int, default=40,
                   help="jobs in the health-aware reaction trace")
    p.add_argument("--trace-seed", type=int, default=0,
                   help="job-trace seed for the reaction run")
    p.add_argument("--score", metavar="PATH", default=None,
                   help="write the schema-validated scorecard JSON")

    p = sub.add_parser("serve",
                       help="run the long-lived fleet service (HTTP)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="listen port (0 binds an ephemeral port)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent campaign executions")
    p.add_argument("--max-pending", type=int, default=8,
                   help="admitted-but-unfinished request bound "
                        "(beyond it: HTTP 429)")
    p.add_argument("--cache-entries", type=int, default=64,
                   help="response-cache FIFO bound")
    p.add_argument("--backend", default="thread",
                   choices=("thread", "process"),
                   help="worker-pool backend (see docs/SERVICE.md)")
    p.add_argument("--timeline", metavar="PATH", default=None,
                   help="stream service admission events to a "
                        "flight-recorder timeline file (JSON Lines)")

    p = sub.add_parser("loadgen",
                       help="seeded load generator against the service")
    p.add_argument("--url", default=None, metavar="http://HOST:PORT",
                   help="target service (mutually exclusive with "
                        "--self-host)")
    p.add_argument("--self-host", action="store_true",
                   help="boot an in-process service on an ephemeral port "
                        "for the duration of the run")
    p.add_argument("--mode", default="closed", choices=("closed", "open"))
    p.add_argument("--requests", type=int, default=32,
                   help="total requests offered")
    p.add_argument("--concurrency", type=int, default=8,
                   help="closed-loop worker count")
    p.add_argument("--rate", type=float, default=20.0,
                   help="open-loop arrival rate (requests/second)")
    p.add_argument("--seed", type=int, default=0,
                   help="load-plan seed (same seed = same request stream)")
    p.add_argument("--duplicate-fraction", type=float, default=0.75,
                   help="fraction of requests sharing one digest "
                        "(coalescing/cache exercise)")
    p.add_argument("--distinct", type=int, default=4,
                   help="distinct variant seeds for the rest of the mix")
    p.add_argument("--mix", default="characterize",
                   help="comma-separated endpoint kinds to mix")
    p.add_argument("--cluster", default="cloudlab",
                   help="cluster preset behind the generated requests")
    p.add_argument("--scale", type=float, default=0.5,
                   help="cluster scale of the generated requests")
    p.add_argument("--days", type=int, default=1,
                   help="campaign days of the generated requests")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="per-request service-side deadline (seconds)")
    p.add_argument("--timeout", type=float, default=120.0, metavar="S",
                   help="client-side transport timeout per request")
    p.add_argument("--sweep", default=None, metavar="C1,C2,...",
                   help="run a closed-loop saturation sweep at these "
                        "concurrencies after the main run")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the latency report JSON")

    p = sub.add_parser("replay",
                       help="forensics over a recorded flight-recorder "
                            "timeline")
    p.add_argument("timeline", metavar="PATH",
                   help="timeline file written with --timeline")
    p.add_argument("--at", type=int, default=None, metavar="SEQ",
                   help="reconstruct fleet state at this logical "
                        "timestamp (inclusive)")
    p.add_argument("--grep", default=None, metavar="TEXT",
                   help="print events whose entity or kind contains TEXT")
    p.add_argument("--layer", default=None, metavar="NAME",
                   help="print events of one timeline layer (campaign, "
                        "sim, health, sched, service, chaos)")
    p.add_argument("--check", action="store_true",
                   help="re-derive the recorded report digests from the "
                        "log alone; exit 1 on any mismatch")

    return parser


def _add_cluster_args(p: argparse.ArgumentParser,
                      default_cluster: str = "longhorn") -> None:
    p.add_argument("--cluster", default=default_cluster,
                   help="cluster preset name")
    p.add_argument("--scale", type=float, default=1.0,
                   help="shrink the cluster for quick looks (0-1]")


def _add_execution_args(p: argparse.ArgumentParser) -> None:
    """The shared execution/observability options every subcommand accepts."""
    p.add_argument("--seed", type=int, default=0,
                   help="master seed (same seed = same machine)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="campaign worker processes (results are "
                        "bit-identical to serial; default serial)")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Chrome-trace JSON of the execution "
                        "(open in ui.perfetto.dev; a .jsonl suffix writes "
                        "JSON Lines events instead)")
    p.add_argument("--manifest", metavar="PATH", default=None,
                   help="write the reproducibility-audit manifest JSON")
    p.add_argument("--timeline", metavar="PATH", default=None,
                   help="record the unified flight-recorder event stream "
                        "as JSON Lines (byte-identical at any worker "
                        "count; inspect with `repro replay`)")
    p.add_argument("--solver", default=None,
                   choices=(api.SOLVER_LADDER, api.SOLVER_FLEET,
                            api.SOLVER_GRID),
                   help="steady-state DVFS solver (all three are "
                        "bit-identical; 'fleet' batches the whole fleet "
                        "per solve and is the fastest — see "
                        "docs/PERFORMANCE.md; default honours "
                        f"${api.SOLVER_ENV_VAR})")


class _ObsSession:
    """Per-invocation observability sinks built from the shared CLI flags.

    Collects into in-memory :class:`~repro.obs.Tracer` /
    :class:`~repro.obs.Manifest` objects during the command and writes the
    requested files in :meth:`finish` — after the command's own output, so
    traces of failed commands are never half-written.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.trace_path: str | None = getattr(args, "trace", None)
        self.manifest_path: str | None = getattr(args, "manifest", None)
        self.timeline_path: str | None = getattr(args, "timeline", None)
        self.tracer = api.Tracer() if self.trace_path else None
        self.manifest = api.Manifest() if self.manifest_path else None
        self.timeline = (
            api.TimelineRecorder() if self.timeline_path else None
        )

    def finish(self) -> None:
        if self.tracer is not None and self.trace_path is not None:
            if self.trace_path.endswith(".jsonl"):
                api.write_events_jsonl(self.tracer, self.trace_path)
            else:
                api.write_chrome_trace(self.tracer, self.trace_path)
            print(f"trace written to {self.trace_path} "
                  f"({len(self.tracer.spans)} spans)")
        if self.manifest is not None and self.manifest_path is not None:
            self.manifest.write(self.manifest_path)
            print(f"manifest written to {self.manifest_path} "
                  f"({len(self.manifest.campaigns)} campaign(s))")
        if self.timeline is not None and self.timeline_path is not None:
            n_events = api.write_timeline(self.timeline, self.timeline_path)
            print(f"timeline written to {self.timeline_path} "
                  f"({n_events} events)")


def _build_cluster(args: argparse.Namespace) -> "api.Cluster":
    return api.load_preset(args.cluster, seed=args.seed, scale=args.scale)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    ``--solver`` routes through :func:`repro.api.solver_scope` (the env
    var :data:`repro.api.SOLVER_ENV_VAR`, restored on exit) so the
    selection reaches controllers and campaign worker processes without
    threading through every signature; for the request-carrying commands
    the request's own ``solver`` field applies the identical scope inside
    the facade — nesting the same value is a no-op.
    """
    args = build_parser().parse_args(argv)
    try:
        with api.solver_scope(getattr(args, "solver", None)):
            return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_list(args: argparse.Namespace) -> int:
    print("cluster presets:")
    for name in api.list_presets():
        cluster = api.load_preset(
            name, seed=args.seed, scale=0.05 if name == "Summit" else 1.0
        )
        cfg = cluster.config()
        print(f"  {name:<10} {cfg.gpu_name:<8} {cfg.cooling:<6} "
              f"{'(scaled preview)' if name == 'Summit' else f'{cfg.n_gpus} GPUs'}")
    print("\nworkloads:")
    for name in api.list_workloads():
        wl = api.load_workload(name)
        print(f"  {name:<14} {wl.n_gpus} GPU(s), metric "
              f"{wl.performance_metric}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    obs = _ObsSession(args)
    result = api.characterize(
        request=api.CharacterizeRequest(
            cluster=args.cluster,
            seed=args.seed,
            scale=args.scale,
            workload=args.workload,
            days=args.days,
            runs_per_day=args.runs_per_day,
            coverage=args.coverage,
            workers=args.workers,
            solver=args.solver,
        ),
        tracer=obs.tracer,
        manifest=obs.manifest,
        timeline=obs.timeline,
    )
    print(result.report.render())
    if args.csv:
        write_csv(result.dataset, args.csv)
        print(f"\nraw measurements written to {args.csv} "
              f"({result.dataset.n_rows} rows)")
    obs.finish()
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    obs = _ObsSession(args)
    result = api.monitor_fleet(
        request=api.MonitorRequest(
            cluster=args.cluster,
            seed=args.seed,
            scale=args.scale,
            workload=args.workload,
            days=args.days,
            runs_per_day=args.runs_per_day,
            coverage=args.coverage,
            window=args.window,
            workers=args.workers,
            solver=args.solver,
        ),
        tracer=obs.tracer,
        manifest=obs.manifest,
        timeline=obs.timeline,
    )
    print(result.report.render())
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as sink:
            sink.write(api.render_prometheus(result.monitor))
        print(f"\nmetrics written to {args.metrics} "
              f"({len(result.monitor.registry.metric_names())} metrics)")
    if args.events:
        api.write_health_events(result.events, args.events)
        print(f"health events written to {args.events} "
              f"({len(result.events)} events)")
    if args.report:
        result.report.write_json(args.report)
        print(f"health report written to {args.report}")
    if args.csv:
        write_csv(result.dataset, args.csv)
        print(f"raw measurements written to {args.csv} "
              f"({result.dataset.n_rows} rows)")
    obs.finish()
    return 0


def _cmd_screen(args: argparse.Namespace) -> int:
    obs = _ObsSession(args)
    report = api.screen(
        request=api.ScreenRequest(
            cluster=args.cluster,
            seed=args.seed,
            scale=args.scale,
            workloads=tuple(
                name.strip() for name in args.workloads.split(",")
            ),
            days=args.days,
            min_confirmations=args.min_confirmations,
            workers=args.workers,
            solver=args.solver,
        ),
        tracer=obs.tracer,
        manifest=obs.manifest,
        timeline=obs.timeline,
    )
    for item in report.screens:
        print(f"{item.workload:<18} {item.outliers.n_outlier_gpus:>3} "
              f"outlier GPUs on nodes {list(item.outliers.node_labels)[:6]}")
    print(f"\nconfirmed outliers ({args.min_confirmations}+ apps): "
          f"{sorted(report.confirmed) or 'none'}")
    obs.finish()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    obs = _ObsSession(args)
    report = api.sweep(
        request=api.SweepRequest(
            cluster=args.cluster,
            seed=args.seed,
            scale=args.scale,
            power_limits_w=tuple(
                float(x) for x in args.limits.split(",")
            ),
            runs=args.runs,
            workers=args.workers,
            solver=args.solver,
        ),
        tracer=obs.tracer,
        manifest=obs.manifest,
        timeline=obs.timeline,
    )
    print(f"{'limit':>8} {'median':>10} {'variation':>10}")
    for point in report.points:
        print(f"{point.power_limit_w:>6.0f} W {point.stats.median:>8.0f} ms "
              f"{point.stats.variation:>9.1%}")
    obs.finish()
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    obs = _ObsSession(args)
    report = api.project(
        cluster=_build_cluster(args),
        target_n_gpus=args.target_n,
        config=api.CampaignConfig(days=args.days),
        workers=args.workers,
        tracer=obs.tracer,
        manifest=obs.manifest,
        timeline=obs.timeline,
    )
    print(f"measured on {report.cluster} ({report.n_gpus_measured} GPUs): "
          f"{report.measured_variation:.1%}")
    print(f"projected at {report.target_n_gpus} GPUs: "
          f"{report.projected_variation:.1%}")
    obs.finish()
    return 0


def _cmd_sched(args: argparse.Namespace) -> int:
    obs = _ObsSession(args)
    day_weights = (
        tuple(float(w) for w in args.day_weights.split(","))
        if args.day_weights
        else None
    )
    result = api.schedule(
        request=api.ScheduleRequest(
            cluster=args.cluster,
            seed=args.seed,
            scale=args.scale,
            policy=args.policy,
            n_jobs=args.jobs,
            trace_seed=args.trace_seed,
            arrival_rate_per_hour=args.arrival_per_hour,
            diurnal_amplitude=args.diurnal_amplitude,
            peak_hour=args.peak_hour,
            day_of_week_weights=day_weights,
            engine=args.engine,
            power_budget_w=args.power_budget_w,
            profile_days=args.profile_days,
            workers=args.workers,
            solver=args.solver,
        ),
        tracer=obs.tracer,
        manifest=obs.manifest,
        timeline=obs.timeline,
    )
    print(result.report.render())
    if args.report:
        result.report.write_json(args.report)
        print(f"scheduling report written to {args.report}")
    if args.events:
        api.write_event_log(result.outcome, args.events)
        print(f"event log written to {args.events} "
              f"({len(result.events)} events)")
    obs.finish()
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.list_scenarios:
        from .chaos import SCENARIOS

        print("incident scenarios:")
        for name in api.list_scenarios():
            print(f"  {name:<22} {SCENARIOS[name].description}")
        return 0
    if not args.scenario:
        print("error: pass --scenario NAME (or --list to see the catalog)",
              file=sys.stderr)
        return 2
    obs = _ObsSession(args)
    result = api.chaos(
        request=api.ChaosRequest(
            scenario=args.scenario,
            cluster=args.cluster,
            seed=args.seed,
            scale=args.scale,
            workload=args.workload,
            days=args.days,
            runs_per_day=args.runs_per_day,
            n_jobs=args.jobs,
            trace_seed=args.trace_seed,
            workers=args.workers,
            solver=args.solver,
        ),
        tracer=obs.tracer,
        manifest=obs.manifest,
        timeline=obs.timeline,
    )
    print(result.render())
    if args.score:
        with open(args.score, "w", encoding="utf-8") as sink:
            json.dump(result.scorecard, sink, indent=2, sort_keys=True)
            sink.write("\n")
        print(f"scorecard written to {args.score}")
    obs.finish()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import FleetService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        max_pending=args.max_pending,
        cache_entries=args.cache_entries,
        timeline_path=args.timeline,
    )
    service = FleetService(config)

    async def _serve() -> None:
        await service.start()
        # Flush immediately: CI and scripts wait for this line to know
        # the (possibly ephemeral) port is bound.
        print(f"repro service listening on "
              f"http://{config.host}:{service.port}", flush=True)
        await service.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nservice stopped")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .loadgen import (
        LoadGenConfig,
        run_loadgen,
        run_selfhosted,
        validate_latency_report,
    )

    if bool(args.url) == bool(args.self_host):
        print("error: pass exactly one of --url or --self-host",
              file=sys.stderr)
        return 2
    config = LoadGenConfig(
        mode=args.mode,
        n_requests=args.requests,
        concurrency=args.concurrency,
        rate_rps=args.rate,
        seed=args.seed,
        duplicate_fraction=args.duplicate_fraction,
        distinct=args.distinct,
        mix=tuple(kind.strip() for kind in args.mix.split(",")),
        cluster=args.cluster,
        scale=args.scale,
        days=args.days,
        deadline_s=args.deadline,
        timeout_s=args.timeout,
    )
    sweep = (
        tuple(int(c) for c in args.sweep.split(",")) if args.sweep else ()
    )
    if args.self_host:
        report = run_selfhosted(config, sweep_concurrencies=sweep)
    else:
        host, port = _parse_service_url(args.url)
        report = run_loadgen(config, host, port, sweep_concurrencies=sweep)
    validate_latency_report(report)
    latency = report["latency_ms"]
    coalescing = report["coalescing"]
    print(f"{report['ok_requests']}/{report['n_requests']} ok in "
          f"{report['duration_s']:.2f}s "
          f"({report['throughput_rps']:.1f} req/s)")
    print(f"latency ms: p50={latency['p50']:.1f} p95={latency['p95']:.1f} "
          f"p99={latency['p99']:.1f}")
    print(f"coalescing: {coalescing['campaigns']} campaign(s) served "
          f"{report['ok_requests']} requests "
          f"(hit rate {coalescing['hit_rate']:.0%})")
    if report.get("saturation"):
        print(f"saturation concurrency: "
              f"{report['saturation']['saturation_concurrency']}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as sink:
            json.dump(report, sink, indent=2, sort_keys=True)
            sink.write("\n")
        print(f"latency report written to {args.report}")
    return 0


def _parse_service_url(url: str) -> tuple[str, int]:
    """Extract (host, port) from an ``http://host:port`` service URL."""
    from .errors import ConfigError

    stripped = url.strip()
    if stripped.startswith("http://"):
        stripped = stripped[len("http://"):]
    stripped = stripped.rstrip("/")
    host, colon, port_text = stripped.partition(":")
    if not colon or not port_text.isdigit() or not host:
        raise ConfigError(
            f"--url must look like http://HOST:PORT, got {url!r}"
        )
    return host, int(port_text)


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        replayer = api.load_replayer(args.timeline)
    except (OSError, ValueError) as exc:  # TimelineError is a ValueError
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.check:
        checks = replayer.check()
        for check in checks:
            print(check.render())
        if not checks:
            print("no summary events on the timeline; nothing to check")
        return 0 if all(check.ok for check in checks) else 1
    if args.grep is not None:
        matched = replayer.grep(args.grep)
        for event in matched:
            print(json.dumps(event.as_dict(), sort_keys=True))
        print(f"{len(matched)}/{len(replayer.events)} events matched "
              f"{args.grep!r}", file=sys.stderr)
        return 0
    if args.layer is not None:
        try:
            matched = replayer.layer(args.layer)
        except ValueError as exc:  # TimelineError: unknown layer name
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for event in matched:
            print(json.dumps(event.as_dict(), sort_keys=True))
        print(f"{len(matched)}/{len(replayer.events)} events on layer "
              f"{args.layer!r}", file=sys.stderr)
        return 0
    if args.at is not None:
        print(json.dumps(replayer.state_at(args.at), indent=2,
                         sort_keys=True))
        return 0
    print(json.dumps(replayer.summarize(), indent=2, sort_keys=True))
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "characterize": _cmd_characterize,
    "monitor": _cmd_monitor,
    "screen": _cmd_screen,
    "sweep": _cmd_sweep,
    "project": _cmd_project,
    "sched": _cmd_sched,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "replay": _cmd_replay,
}
