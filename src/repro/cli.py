"""Command-line interface: ``python -m repro <command>``.

The operator-facing entry points, mirroring how the paper's artifact is
driven from the shell:

``list``
    Inventory of cluster presets and workloads.
``characterize``
    Run a measurement campaign and print the full variability report
    (optionally archiving the raw measurements to CSV).
``screen``
    Maintenance triage: flag outliers across one or more applications and
    print confirmed offenders.
``sweep``
    The Fig.-22 power-limit sweep on an admin-access cluster.
``project``
    Scaled-normal projection of a campaign's variability to a larger
    cluster (Section IV-D).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from .cluster import get_preset, list_presets
from .core import (
    VariabilitySuite,
    flag_outlier_gpus,
    metric_boxstats,
    persistent_outliers,
    project_variation,
)
from .core.boxstats import BoxStats
from .errors import ReproError
from .sim import CampaignConfig, run_campaign, simulate_run
from .telemetry.io import write_csv
from .telemetry.sample import METRIC_PERFORMANCE
from .workloads import get_workload, list_workloads

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU fleet variability characterization "
                    "(SC'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list cluster presets and workloads")

    p = sub.add_parser("characterize",
                       help="campaign + full variability report")
    _add_cluster_args(p)
    _add_workers_arg(p)
    p.add_argument("--workload", default="sgemm",
                   help="workload name (see `repro list`)")
    p.add_argument("--days", type=int, default=7)
    p.add_argument("--runs-per-day", type=int, default=1)
    p.add_argument("--coverage", type=float, default=1.0)
    p.add_argument("--csv", metavar="PATH",
                   help="archive raw measurements to (gzipped) CSV")

    p = sub.add_parser("screen", help="outlier triage across applications")
    _add_cluster_args(p)
    _add_workers_arg(p)
    p.add_argument("--workloads", default="sgemm,resnet50",
                   help="comma-separated workload names")
    p.add_argument("--days", type=int, default=3)
    p.add_argument("--min-confirmations", type=int, default=2)

    p = sub.add_parser("sweep", help="power-limit sweep (admin clusters)")
    _add_cluster_args(p, default_cluster="cloudlab")
    p.add_argument("--limits", default="300,250,200,150,100",
                   help="comma-separated watt limits")
    p.add_argument("--runs", type=int, default=6)

    p = sub.add_parser("project",
                       help="project variability to a larger cluster")
    _add_cluster_args(p)
    _add_workers_arg(p)
    p.add_argument("--target-n", type=int, required=True,
                   help="hypothetical cluster size (GPUs)")
    p.add_argument("--days", type=int, default=5)

    return parser


def _add_cluster_args(p: argparse.ArgumentParser,
                      default_cluster: str = "longhorn") -> None:
    p.add_argument("--cluster", default=default_cluster,
                   help="cluster preset name")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=1.0,
                   help="shrink the cluster for quick looks (0-1]")


def _add_workers_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="campaign worker processes (results are "
                        "bit-identical to serial; default serial)")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_list(args: argparse.Namespace) -> int:
    print("cluster presets:")
    for name in list_presets():
        cluster = get_preset(name, scale=0.05 if name == "Summit" else 1.0)
        cfg = cluster.config()
        print(f"  {name:<10} {cfg.gpu_name:<8} {cfg.cooling:<6} "
              f"{'(scaled preview)' if name == 'Summit' else f'{cfg.n_gpus} GPUs'}")
    print("\nworkloads:")
    for name in list_workloads():
        wl = get_workload(name)
        print(f"  {name:<14} {wl.n_gpus} GPU(s), metric "
              f"{wl.performance_metric}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    cluster = get_preset(args.cluster, seed=args.seed, scale=args.scale)
    workload = get_workload(args.workload)
    suite = VariabilitySuite(cluster, CampaignConfig(
        days=args.days, runs_per_day=args.runs_per_day,
        coverage=args.coverage,
    ), workers=args.workers)
    dataset = suite.measure(workload)
    report = suite.analyze(dataset)
    print(report.render())
    if args.csv:
        write_csv(dataset, args.csv)
        print(f"\nraw measurements written to {args.csv} "
              f"({dataset.n_rows} rows)")
    return 0


def _cmd_screen(args: argparse.Namespace) -> int:
    cluster = get_preset(args.cluster, seed=args.seed, scale=args.scale)
    config = CampaignConfig(days=args.days)
    reports = []
    for name in args.workloads.split(","):
        workload = get_workload(name.strip())
        dataset = run_campaign(cluster, workload, config,
                               workers=args.workers)
        report = flag_outlier_gpus(dataset, METRIC_PERFORMANCE)
        reports.append(report)
        print(f"{workload.name:<18} {report.n_outlier_gpus:>3} outlier GPUs "
              f"on nodes {list(report.node_labels)[:6]}")
    confirmed = persistent_outliers(
        reports, min_occurrences=min(args.min_confirmations, len(reports))
    )
    print(f"\nconfirmed outliers ({args.min_confirmations}+ apps): "
          f"{sorted(confirmed) or 'none'}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    cluster = get_preset(args.cluster, seed=args.seed, scale=args.scale)
    workload = get_workload("sgemm")
    print(f"{'limit':>8} {'median':>10} {'variation':>10}")
    for limit in (float(x) for x in args.limits.split(",")):
        perf = np.concatenate([
            simulate_run(cluster, workload, day=0, run_index=i,
                         power_limit_w=limit).performance_ms
            for i in range(args.runs)
        ])
        stats = BoxStats.from_values(perf)
        print(f"{limit:>6.0f} W {stats.median:>8.0f} ms "
              f"{stats.variation:>9.1%}")
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    cluster = get_preset(args.cluster, seed=args.seed, scale=args.scale)
    dataset = run_campaign(
        cluster, get_workload("sgemm"), CampaignConfig(days=args.days),
        workers=args.workers,
    )
    measured = metric_boxstats(dataset, METRIC_PERFORMANCE)
    med = dataset.per_gpu_median(METRIC_PERFORMANCE)
    projected = project_variation(
        med[METRIC_PERFORMANCE], args.target_n
    )
    print(f"measured on {cluster.name} ({cluster.n_gpus} GPUs): "
          f"{measured.variation:.1%}")
    print(f"projected at {args.target_n} GPUs: {projected:.1%}")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "characterize": _cmd_characterize,
    "screen": _cmd_screen,
    "sweep": _cmd_sweep,
    "project": _cmd_project,
}
