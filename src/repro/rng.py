"""Deterministic random-number management.

Every stochastic component of the simulator draws from a
:class:`numpy.random.Generator` handed to it by its caller; nothing in the
library touches the global NumPy RNG state.  Reproducibility across runs and
across process boundaries is achieved with :class:`numpy.random.SeedSequence`
spawning, wrapped here in a small helper that derives child streams from
string labels so that adding a new consumer never perturbs the draws of
existing ones.

Example
-------
>>> root = RngFactory(1234)
>>> silicon_rng = root.generator("silicon")
>>> facility_rng = root.generator("facility")
>>> # identical labels yield identical, independent streams:
>>> a = RngFactory(7).generator("x").integers(0, 100, 3)
>>> b = RngFactory(7).generator("x").integers(0, 100, 3)
>>> bool((a == b).all())
True
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["RngFactory", "label_to_words", "spawn_generators"]


def label_to_words(label: str) -> list[int]:
    """Hash a string label into a list of 32-bit words for SeedSequence.

    Uses BLAKE2b so the mapping is stable across Python versions and
    platforms (unlike ``hash()``).
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=16).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


class RngFactory:
    """Derives independent, label-addressed random generators from one seed.

    Parameters
    ----------
    seed:
        Master seed for the whole experiment.  Two factories constructed
        with the same seed produce identical streams for identical labels.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The master seed this factory was constructed with."""
        return self._seed

    def sequence(self, label: str) -> np.random.SeedSequence:
        """Return the SeedSequence for ``label`` under this master seed."""
        return np.random.SeedSequence([self._seed, *label_to_words(label)])

    def generator(self, label: str) -> np.random.Generator:
        """Return a fresh PCG64 generator keyed by ``label``."""
        return np.random.Generator(np.random.PCG64(self.sequence(label)))

    def child(self, label: str) -> "RngFactory":
        """Return a sub-factory whose streams are independent of this one.

        Useful for giving each simulated day / run its own namespace:
        ``factory.child(f"day-{d}").generator("jitter")``.
        """
        # Fold the label into a derived integer seed deterministically.
        words = label_to_words(label)
        mixed = self._seed
        for w in words:
            mixed = (mixed * 6364136223846793005 + w + 1442695040888963407) % (1 << 63)
        return RngFactory(mixed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self._seed})"


def spawn_generators(seed: int, labels: Iterable[str]) -> dict[str, np.random.Generator]:
    """Convenience: build a dict of independent generators for ``labels``."""
    factory = RngFactory(seed)
    return {label: factory.generator(label) for label in labels}
