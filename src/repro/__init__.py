"""repro — reproduction of *Not All GPUs Are Created Equal* (SC 2022).

A GPU-fleet variability simulator plus the paper's characterization suite.

The supported import surface is :mod:`repro.api`::

    from repro import api

    cluster = api.load_preset("longhorn", seed=7)
    result = api.characterize(cluster=cluster,
                              workload=api.load_workload("sgemm"),
                              config=api.CampaignConfig(days=7))
    print(result.report.render())
    print(f"performance variation: {result.report.performance_variation:.1%}")

Layers (see DESIGN.md):

* :mod:`repro.api` — the stable facade (start here), including the typed
  request objects in :mod:`repro.api.requests`;
* :mod:`repro.service` — the long-lived asyncio HTTP service over the
  facade (coalescing, response cache, backpressure);
* :mod:`repro.loadgen` — the seeded closed/open-loop load generator;
* :mod:`repro.obs` — opt-in observability: spans, counters, manifests;
* :mod:`repro.gpu` — SKU specs, silicon lottery, power/thermal/DVFS models;
* :mod:`repro.cluster` — topologies, cooling plants, facility drift, the
  six paper cluster presets;
* :mod:`repro.workloads` — SGEMM, ResNet-50, BERT, LAMMPS, PageRank;
* :mod:`repro.sim` — steady-state runs, the reactive engine, campaigns;
* :mod:`repro.telemetry` — sensors, traces, datasets, persistence;
* :mod:`repro.core` — the analysis/characterization suite (works on real
  cluster telemetry too);
* :mod:`repro.hostbench` — real CPU microkernels through the same pipeline.

The historical top-level re-exports (``from repro import longhorn``) were
deprecated in 1.x and removed in 2.0: they now raise :class:`ImportError`
naming the supported replacement — see the migration table in the README.
"""

from . import api

__version__ = "2.0.0"

__all__ = ["__version__", "api"]

# Legacy top-level name -> (module that still defines it, replacement to
# name in the ImportError).  The objects themselves are unchanged — only
# the top-level ``repro.<name>`` spelling is gone.
_REMOVED_EXPORTS: dict[str, tuple[str, str]] = {
    # clusters
    "Cluster": ("repro.cluster", "repro.api.load_preset(...)"),
    "longhorn": ("repro.cluster", 'repro.api.load_preset("longhorn")'),
    "summit": ("repro.cluster", 'repro.api.load_preset("summit")'),
    "frontera": ("repro.cluster", 'repro.api.load_preset("frontera")'),
    "vortex": ("repro.cluster", 'repro.api.load_preset("vortex")'),
    "corona": ("repro.cluster", 'repro.api.load_preset("corona")'),
    "cloudlab": ("repro.cluster", 'repro.api.load_preset("cloudlab")'),
    "get_preset": ("repro.cluster", "repro.api.load_preset"),
    "list_presets": ("repro.cluster", "repro.api.list_presets"),
    # gpu
    "V100": ("repro.gpu", "repro.gpu.V100"),
    "RTX5000": ("repro.gpu", "repro.gpu.RTX5000"),
    "MI60": ("repro.gpu", "repro.gpu.MI60"),
    "GPUFleet": ("repro.gpu", "repro.gpu.GPUFleet"),
    "get_spec": ("repro.gpu", "repro.gpu.get_spec"),
    # workloads
    "Workload": ("repro.workloads", "repro.api.load_workload(...)"),
    "sgemm": ("repro.workloads", 'repro.api.load_workload("sgemm")'),
    "resnet50": ("repro.workloads", 'repro.api.load_workload("resnet50")'),
    "bert_pretraining": (
        "repro.workloads", 'repro.api.load_workload("bert_pretraining")'
    ),
    "lammps_reaxc": (
        "repro.workloads", 'repro.api.load_workload("lammps_reaxc")'
    ),
    "pagerank": ("repro.workloads", 'repro.api.load_workload("pagerank")'),
    "get_workload": ("repro.workloads", "repro.api.load_workload"),
    "list_workloads": ("repro.workloads", "repro.api.list_workloads"),
    # sim
    "CampaignConfig": ("repro.sim", "repro.api.CampaignConfig"),
    "run_campaign": ("repro.sim", "repro.api.run_campaign"),
    "simulate_run": ("repro.sim", "repro.sim.simulate_run"),
    "simulate_timeseries": ("repro.sim", "repro.sim.simulate_timeseries"),
    # telemetry
    "MeasurementDataset": ("repro.telemetry", "repro.api.MeasurementDataset"),
    "read_csv": ("repro.telemetry", "repro.telemetry.read_csv"),
    "write_csv": ("repro.telemetry", "repro.telemetry.write_csv"),
    # core
    "BoxStats": ("repro.core", "repro.api.BoxStats"),
    "VariabilitySuite": ("repro.core", "repro.api.characterize"),
    "ClusterReport": ("repro.core", "repro.api.ClusterReport"),
    "metric_boxstats": ("repro.core", "repro.core.metric_boxstats"),
    "normalized_performance": (
        "repro.core", "repro.core.normalized_performance"
    ),
    "correlation_matrix": ("repro.core", "repro.core.correlation_matrix"),
    "pearson": ("repro.core", "repro.core.pearson"),
    "flag_outlier_gpus": ("repro.core", "repro.api.screen"),
    "persistent_outliers": ("repro.core", "repro.api.screen"),
    "per_gpu_repeatability": (
        "repro.core", "repro.core.per_gpu_repeatability"
    ),
    "required_sample_size": ("repro.core", "repro.core.required_sample_size"),
    "project_variation": ("repro.core", "repro.api.project"),
    "slow_assignment_probability": (
        "repro.core", "repro.core.slow_assignment_probability"
    ),
    "plan_placements": ("repro.core", "repro.core.plan_placements"),
    # mitigation (Section VII)
    "BlacklistPolicy": ("repro.mitigation", "repro.mitigation.BlacklistPolicy"),
    "build_blacklist": ("repro.mitigation", "repro.mitigation.build_blacklist"),
    "evaluate_blacklist": (
        "repro.mitigation", "repro.mitigation.evaluate_blacklist"
    ),
    "weighted_shards": ("repro.mitigation", "repro.mitigation.weighted_shards"),
    "evaluate_sharding": (
        "repro.mitigation", "repro.mitigation.evaluate_sharding"
    ),
    "allocate_uniform": (
        "repro.mitigation", "repro.mitigation.allocate_uniform"
    ),
    "allocate_equal_frequency": (
        "repro.mitigation", "repro.mitigation.allocate_equal_frequency"
    ),
    "evaluate_allocation": (
        "repro.mitigation", "repro.mitigation.evaluate_allocation"
    ),
}


def __getattr__(name: str):
    """Raise :class:`ImportError` for removed legacy names, with a hint.

    The 1.x top-level re-exports were deprecated in PR 3 and removed in
    2.0.  The objects still live in their home subpackages; the error
    names the supported spelling so migration is a one-line edit.
    """
    try:
        module_name, replacement = _REMOVED_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    raise ImportError(
        f"'repro.{name}' was removed in repro 2.0; the object now lives in "
        f"{module_name} — use {replacement} (see repro.api and the "
        "migration table in README.md)"
    )


def __dir__() -> list[str]:
    return sorted(__all__)
