"""repro — reproduction of *Not All GPUs Are Created Equal* (SC 2022).

A GPU-fleet variability simulator plus the paper's characterization suite.

Quickstart::

    from repro import longhorn, sgemm, VariabilitySuite, CampaignConfig

    cluster = longhorn(seed=7)
    suite = VariabilitySuite(cluster, CampaignConfig(days=7))
    report = suite.characterize(sgemm())
    print(report.render())
    print(f"performance variation: {report.performance_variation:.1%}")

Layers (see DESIGN.md):

* :mod:`repro.gpu` — SKU specs, silicon lottery, power/thermal/DVFS models;
* :mod:`repro.cluster` — topologies, cooling plants, facility drift, the
  six paper cluster presets;
* :mod:`repro.workloads` — SGEMM, ResNet-50, BERT, LAMMPS, PageRank;
* :mod:`repro.sim` — steady-state runs, the reactive engine, campaigns;
* :mod:`repro.telemetry` — sensors, traces, datasets, persistence;
* :mod:`repro.core` — the analysis/characterization suite (works on real
  cluster telemetry too);
* :mod:`repro.hostbench` — real CPU microkernels through the same pipeline.
"""

from .cluster import (
    Cluster,
    cloudlab,
    corona,
    frontera,
    get_preset,
    list_presets,
    longhorn,
    summit,
    vortex,
)
from .core import (
    BoxStats,
    ClusterReport,
    VariabilitySuite,
    correlation_matrix,
    flag_outlier_gpus,
    metric_boxstats,
    normalized_performance,
    pearson,
    per_gpu_repeatability,
    persistent_outliers,
    plan_placements,
    project_variation,
    required_sample_size,
    slow_assignment_probability,
)
from .gpu import MI60, RTX5000, V100, GPUFleet, get_spec
from .mitigation import (
    BlacklistPolicy,
    allocate_equal_frequency,
    allocate_uniform,
    build_blacklist,
    evaluate_allocation,
    evaluate_blacklist,
    evaluate_sharding,
    weighted_shards,
)
from .sim import (
    CampaignConfig,
    run_campaign,
    simulate_run,
    simulate_timeseries,
)
from .telemetry import MeasurementDataset, read_csv, write_csv
from .workloads import (
    Workload,
    bert_pretraining,
    get_workload,
    lammps_reaxc,
    list_workloads,
    pagerank,
    resnet50,
    sgemm,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # clusters
    "Cluster",
    "longhorn",
    "summit",
    "frontera",
    "vortex",
    "corona",
    "cloudlab",
    "get_preset",
    "list_presets",
    # gpu
    "V100",
    "RTX5000",
    "MI60",
    "GPUFleet",
    "get_spec",
    # workloads
    "Workload",
    "sgemm",
    "resnet50",
    "bert_pretraining",
    "lammps_reaxc",
    "pagerank",
    "get_workload",
    "list_workloads",
    # sim
    "CampaignConfig",
    "run_campaign",
    "simulate_run",
    "simulate_timeseries",
    # telemetry
    "MeasurementDataset",
    "read_csv",
    "write_csv",
    # core
    "BoxStats",
    "VariabilitySuite",
    "ClusterReport",
    "metric_boxstats",
    "normalized_performance",
    "correlation_matrix",
    "pearson",
    "flag_outlier_gpus",
    "persistent_outliers",
    "per_gpu_repeatability",
    "required_sample_size",
    "project_variation",
    "slow_assignment_probability",
    "plan_placements",
    # mitigation (Section VII, implemented)
    "BlacklistPolicy",
    "build_blacklist",
    "evaluate_blacklist",
    "weighted_shards",
    "evaluate_sharding",
    "allocate_uniform",
    "allocate_equal_frequency",
    "evaluate_allocation",
]
