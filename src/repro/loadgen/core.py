"""Seeded closed/open-loop load generation against the fleet service.

The harness the acceptance numbers come from: drive a mixed, seeded
request stream at a running :class:`~repro.service.server.FleetService`
and emit a schema-validated latency report (p50/p95/p99, throughput,
coalescing hit rate, optional saturation sweep).

Two loop disciplines, both standard in serving papers:

* **closed loop** — ``concurrency`` workers each keep exactly one request
  outstanding; offered load adapts to service speed (measures capacity);
* **open loop** — requests fire at seeded exponential inter-arrivals at
  ``rate_rps`` regardless of completions (measures tail latency under a
  fixed offered load, the discipline that actually exposes queueing).

Everything random — the endpoint mix, the duplicate/distinct draw, the
inter-arrival times — derives from :class:`repro.rng.RngFactory`
streams keyed off ``seed``, so a load-generator run is replayable: the
same seed offers byte-identical request bodies in the same order.

``duplicate_fraction`` is the coalescing lever: duplicates all map to
variant 0 (one digest), the rest spread across ``distinct`` variant
seeds.  On a duplicate-heavy mix the service must execute at least 2×
fewer campaigns than it answers requests — the report's ``coalescing``
section is the client-side proof (campaigns == responses whose
``X-Repro-Cache`` header says ``miss``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from ..api.requests import (
    REQUEST_KINDS,
    CharacterizeRequest,
    MonitorRequest,
    ScheduleRequest,
    ScreenRequest,
    SweepRequest,
)
from ..config import config_to_dict, require, require_in_range
from ..errors import ServiceError
from ..rng import RngFactory
from .client import HttpReply, http_request

__all__ = [
    "LATENCY_REPORT_SCHEMA_VERSION",
    "LoadGenConfig",
    "plan_requests",
    "run_loadgen",
    "run_loadgen_async",
    "run_selfhosted",
    "validate_latency_report",
]

#: Version stamp of the latency-report schema below.
LATENCY_REPORT_SCHEMA_VERSION = 1

_MODES = ("closed", "open")


@dataclass(frozen=True)
class LoadGenConfig:
    """One load-generator run, fully determined by its fields.

    Parameters
    ----------
    mode:
        ``"closed"`` (worker loop) or ``"open"`` (timed arrivals).
    n_requests:
        Total requests offered.
    concurrency:
        Closed-loop worker count (ignored in open mode).
    rate_rps:
        Open-loop offered arrival rate (ignored in closed mode).
    seed:
        Root of every RNG stream in the run.
    duplicate_fraction:
        Probability a request is the canonical variant 0 — the knob that
        makes a mix duplicate-heavy (coalescing/cache exercise) or
        distinct-heavy (capacity exercise).
    distinct:
        How many distinct variant seeds non-duplicate requests spread
        over.
    mix:
        Endpoint kinds to draw from, uniformly.
    cluster / scale / days:
        Shape of the underlying campaigns (kept small by default so a
        smoke run completes in seconds).
    deadline_s:
        Per-request service-side deadline forwarded in the request body.
    timeout_s:
        Client-side transport timeout per request.
    """

    mode: str = "closed"
    n_requests: int = 32
    concurrency: int = 8
    rate_rps: float = 20.0
    seed: int = 0
    duplicate_fraction: float = 0.75
    distinct: int = 4
    mix: tuple[str, ...] = ("characterize",)
    cluster: str = "cloudlab"
    scale: float = 0.5
    days: int = 1
    deadline_s: float | None = None
    timeout_s: float = 120.0

    def __post_init__(self) -> None:
        require(self.mode in _MODES, f"mode must be one of {_MODES}, got {self.mode!r}")
        require(self.n_requests >= 1, f"n_requests must be >= 1, got {self.n_requests}")
        require(self.concurrency >= 1, f"concurrency must be >= 1, got {self.concurrency}")
        require(self.rate_rps > 0, f"rate_rps must be > 0, got {self.rate_rps}")
        require_in_range(self.duplicate_fraction, 0.0, 1.0, "duplicate_fraction")
        require(self.distinct >= 1, f"distinct must be >= 1, got {self.distinct}")
        require(len(self.mix) >= 1, "mix must name at least one endpoint")
        for kind in self.mix:
            require(
                kind in REQUEST_KINDS,
                f"mix entry {kind!r} is not a service verb "
                f"(choose from {sorted(REQUEST_KINDS)})",
            )
        require(self.timeout_s > 0, f"timeout_s must be > 0, got {self.timeout_s}")


def _build_request(kind: str, variant: int, config: LoadGenConfig):
    """The request object for one (kind, variant) draw — tiny campaigns."""
    common = dict(
        cluster=config.cluster,
        seed=variant,
        scale=config.scale,
        deadline_s=config.deadline_s,
    )
    if kind == "characterize":
        return CharacterizeRequest(days=config.days, **common)
    if kind == "monitor":
        return MonitorRequest(days=config.days, **common)
    if kind == "screen":
        return ScreenRequest(days=config.days, **common)
    if kind == "sweep":
        return SweepRequest(runs=2, power_limits_w=(250.0, 150.0), **common)
    return ScheduleRequest(
        n_jobs=20, trace_seed=variant, profile_days=1, **common
    )


def plan_requests(config: LoadGenConfig) -> list:
    """The run's full request sequence — a pure function of the config.

    Separated from the drivers so tests can assert replayability (same
    seed, same plan) without touching a socket.
    """
    rng = RngFactory(config.seed).generator("loadgen-plan")
    plan = []
    for _ in range(config.n_requests):
        kind = config.mix[int(rng.integers(len(config.mix)))]
        if float(rng.random()) < config.duplicate_fraction:
            variant = 0
        else:
            variant = int(rng.integers(config.distinct))
        plan.append(_build_request(kind, variant, config))
    return plan


class _Outcome:
    """One request's measured result (status, cache header, latency)."""

    __slots__ = ("kind", "status", "cache", "latency_s", "error")

    def __init__(
        self,
        kind: str,
        status: int | None,
        cache: str | None,
        latency_s: float,
        error: str | None,
    ) -> None:
        self.kind = kind
        self.status = status
        self.cache = cache
        self.latency_s = latency_s
        self.error = error


async def _fire(
    host: str, port: int, request, timeout_s: float
) -> _Outcome:
    """Send one request and fold the reply into an :class:`_Outcome`."""
    body = request.to_json().encode("utf-8")
    started = time.perf_counter()
    try:
        reply: HttpReply = await http_request(
            host, port, "POST", f"/v1/{request.kind}", body, timeout_s
        )
    except ServiceError as exc:
        return _Outcome(
            request.kind, None, None, time.perf_counter() - started, str(exc)
        )
    return _Outcome(
        request.kind,
        reply.status,
        reply.headers.get("x-repro-cache"),
        time.perf_counter() - started,
        None,
    )


async def _drive_closed(
    host: str, port: int, plan: list, config: LoadGenConfig
) -> list[_Outcome]:
    """Closed loop: ``concurrency`` workers drain the plan in order."""
    queue: asyncio.Queue = asyncio.Queue()
    for item in plan:
        queue.put_nowait(item)
    outcomes: list[_Outcome] = []

    async def worker() -> None:
        while True:
            try:
                request = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            outcomes.append(
                await _fire(host, port, request, config.timeout_s)
            )

    await asyncio.gather(
        *(worker() for _ in range(min(config.concurrency, len(plan))))
    )
    return outcomes


async def _drive_open(
    host: str, port: int, plan: list, config: LoadGenConfig
) -> list[_Outcome]:
    """Open loop: fire at seeded exponential inter-arrivals, don't wait."""
    rng = RngFactory(config.seed).generator("loadgen-arrivals")
    offsets = np.cumsum(rng.exponential(1.0 / config.rate_rps, len(plan)))
    start = time.perf_counter()

    async def timed(request, offset: float) -> _Outcome:
        delay = offset - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        return await _fire(host, port, request, config.timeout_s)

    return list(
        await asyncio.gather(
            *(timed(req, float(off)) for req, off in zip(plan, offsets))
        )
    )


def _percentile_ms(latencies_s: list[float], q: float) -> float:
    """A latency percentile in milliseconds (0.0 for an empty run)."""
    if not latencies_s:
        return 0.0
    return float(np.percentile(np.asarray(latencies_s), q) * 1000.0)


def _build_report(
    config: LoadGenConfig, outcomes: list[_Outcome], duration_s: float
) -> dict:
    """Fold per-request outcomes into the latency-report dict."""
    ok = [o for o in outcomes if o.status == 200]
    latencies = [o.latency_s for o in ok]
    status_counts: dict[str, int] = {}
    cache_counts = {"hit": 0, "coalesced": 0, "miss": 0}
    for outcome in outcomes:
        key = "error" if outcome.status is None else str(outcome.status)
        status_counts[key] = status_counts.get(key, 0) + 1
        if outcome.cache in cache_counts:
            cache_counts[outcome.cache] += 1
    campaigns = cache_counts["miss"]
    duplicates = cache_counts["hit"] + cache_counts["coalesced"]
    return {
        "schema_version": LATENCY_REPORT_SCHEMA_VERSION,
        "config": config_to_dict(config),
        "n_requests": len(outcomes),
        "ok_requests": len(ok),
        "error_requests": len(outcomes) - len(ok),
        "status_counts": dict(sorted(status_counts.items())),
        "cache_status_counts": cache_counts,
        "latency_ms": {
            "p50": _percentile_ms(latencies, 50),
            "p95": _percentile_ms(latencies, 95),
            "p99": _percentile_ms(latencies, 99),
            "mean": float(np.mean(latencies) * 1000.0) if latencies else 0.0,
            "max": float(np.max(latencies) * 1000.0) if latencies else 0.0,
        },
        "duration_s": duration_s,
        "throughput_rps": len(ok) / duration_s if duration_s > 0 else 0.0,
        "coalescing": {
            "campaigns": campaigns,
            "duplicate_requests": duplicates,
            "hit_rate": duplicates / len(ok) if ok else 0.0,
        },
        "saturation": None,
    }


async def run_loadgen_async(
    config: LoadGenConfig,
    host: str,
    port: int,
    sweep_concurrencies: tuple[int, ...] = (),
) -> dict:
    """Drive one load-generator run against ``host:port``; return the report.

    With ``sweep_concurrencies``, additionally runs a closed-loop
    concurrency ladder afterwards and fills the report's ``saturation``
    section: offered concurrency vs achieved throughput, plus the knee
    (first rung whose throughput gain over the previous rung is < 10%,
    or that sees 429s).
    """
    plan = plan_requests(config)
    started = time.perf_counter()
    if config.mode == "closed":
        outcomes = await _drive_closed(host, port, plan, config)
    else:
        outcomes = await _drive_open(host, port, plan, config)
    report = _build_report(config, outcomes, time.perf_counter() - started)
    if sweep_concurrencies:
        report["saturation"] = await _saturation_sweep(
            host, port, config, sweep_concurrencies
        )
    return report


async def _saturation_sweep(
    host: str,
    port: int,
    config: LoadGenConfig,
    concurrencies: tuple[int, ...],
) -> dict:
    """The closed-loop concurrency ladder behind ``saturation`` reports."""
    throughputs: list[float] = []
    rejected: list[int] = []
    knee: int | None = None
    for rung, concurrency in enumerate(concurrencies):
        rung_config = LoadGenConfig(
            **{
                **config_to_dict(config),
                "mode": "closed",
                "concurrency": concurrency,
                "mix": tuple(config.mix),
            }
        )
        plan = plan_requests(rung_config)
        started = time.perf_counter()
        outcomes = await _drive_closed(host, port, plan, rung_config)
        duration = time.perf_counter() - started
        ok = sum(1 for o in outcomes if o.status == 200)
        saturated = sum(1 for o in outcomes if o.status == 429)
        throughputs.append(ok / duration if duration > 0 else 0.0)
        rejected.append(saturated)
        if knee is None and rung > 0:
            gain = throughputs[rung] / max(throughputs[rung - 1], 1e-9)
            if saturated > 0 or gain < 1.10:
                knee = concurrency
    return {
        "concurrencies": list(concurrencies),
        "throughput_rps": throughputs,
        "rejected_429": rejected,
        "saturation_concurrency": knee,
    }


def run_loadgen(
    config: LoadGenConfig,
    host: str,
    port: int,
    sweep_concurrencies: tuple[int, ...] = (),
) -> dict:
    """Synchronous wrapper over :func:`run_loadgen_async` (own event loop)."""
    return asyncio.run(
        run_loadgen_async(config, host, port, sweep_concurrencies)
    )


def run_selfhosted(
    config: LoadGenConfig,
    service_config=None,
    runner=None,
    sweep_concurrencies: tuple[int, ...] = (),
) -> dict:
    """Boot an in-process service on an ephemeral port, load it, report.

    The benchmarking and test path: no subprocess, no fixed port.  The
    report gains a ``server`` section with the service's own counters —
    the authoritative (server-side) campaign count backing the
    coalescing acceptance check.
    """
    from ..service import FleetService, ServiceConfig

    async def _run() -> dict:
        cfg = service_config if service_config is not None else ServiceConfig(port=0)
        service = FleetService(cfg, runner=runner)
        await service.start()
        try:
            report = await run_loadgen_async(
                config, cfg.host, service.port, sweep_concurrencies
            )
        finally:
            await service.stop()
        report["server"] = {
            name: service.metrics.counter(name)
            for name in (
                "service_requests_total",
                "service_campaigns_executed",
                "service_coalesced_requests",
                "service_cache_hits",
                "service_cache_misses",
                "service_rejected_saturated",
                "service_deadline_expired",
            )
        }
        return report

    return asyncio.run(_run())


_REPORT_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema_version": int,
    "config": dict,
    "n_requests": int,
    "ok_requests": int,
    "error_requests": int,
    "status_counts": dict,
    "cache_status_counts": dict,
    "latency_ms": dict,
    "duration_s": (int, float),
    "throughput_rps": (int, float),
    "coalescing": dict,
}

_LATENCY_KEYS = ("p50", "p95", "p99", "mean", "max")
_COALESCING_KEYS = ("campaigns", "duplicate_requests", "hit_rate")


def validate_latency_report(report: dict) -> None:
    """Check a latency report against the schema; raise ``ServiceError``.

    The same validation CI runs on the smoke report and the benchmark
    runs on ``BENCH_service.json`` entries.
    """
    if not isinstance(report, dict):
        raise ServiceError("latency report must be a dict")
    version = report.get("schema_version")
    if version != LATENCY_REPORT_SCHEMA_VERSION:
        raise ServiceError(
            f"latency report schema_version {version!r} != "
            f"supported {LATENCY_REPORT_SCHEMA_VERSION}"
        )
    for key, expected in _REPORT_REQUIRED.items():
        if key not in report:
            raise ServiceError(f"latency report is missing {key!r}")
        if not isinstance(report[key], expected):
            raise ServiceError(
                f"latency report {key!r} has type "
                f"{type(report[key]).__name__}, expected {expected}"
            )
    for key in _LATENCY_KEYS:
        if not isinstance(report["latency_ms"].get(key), (int, float)):
            raise ServiceError(f"latency_ms is missing numeric {key!r}")
    for key in _COALESCING_KEYS:
        if key not in report["coalescing"]:
            raise ServiceError(f"coalescing section is missing {key!r}")
    saturation = report.get("saturation")
    if saturation is not None:
        for key in ("concurrencies", "throughput_rps", "saturation_concurrency"):
            if key not in saturation:
                raise ServiceError(f"saturation section is missing {key!r}")
