"""Minimal asyncio HTTP/1.1 client for the fleet service.

One connection per request, ``Connection: close`` — deliberately the
dumbest correct client: no pooling, no pipelining, no keep-alive state to
leak between load-generator runs.  That makes every request independent,
which is exactly what a latency-measuring harness wants (a slow response
can never head-of-line-block an unrelated one).
"""

from __future__ import annotations

import asyncio

from ..errors import ServiceError

__all__ = ["HttpReply", "http_request"]


class HttpReply:
    """One parsed HTTP response: status, lower-cased headers, raw body."""

    __slots__ = ("status", "headers", "body")

    def __init__(
        self, status: int, headers: dict[str, str], body: bytes
    ) -> None:
        self.status = status
        self.headers = headers
        self.body = body


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    timeout_s: float = 60.0,
) -> HttpReply:
    """Issue one HTTP/1.1 request and read the full response.

    Raises :class:`~repro.errors.ServiceError` on connection failure,
    timeout, or an unparseable response — the caller counts those as
    transport errors rather than HTTP statuses.
    """
    try:
        return await asyncio.wait_for(
            _request_once(host, port, method, path, body), timeout_s
        )
    except asyncio.TimeoutError:
        raise ServiceError(
            f"{method} {path} timed out after {timeout_s}s"
        ) from None
    except (ConnectionError, OSError) as exc:
        raise ServiceError(f"{method} {path} failed: {exc}") from exc


async def _request_once(
    host: str, port: int, method: str, path: str, body: bytes
) -> HttpReply:
    """The unguarded request/response exchange behind :func:`http_request`."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head_part, sep, payload = raw.partition(b"\r\n\r\n")
    if not sep:
        raise ServiceError(f"truncated response to {method} {path}")
    lines = head_part.decode("latin-1").split("\r\n")
    status_parts = lines[0].split(" ", 2)
    if len(status_parts) < 2 or not status_parts[1].isdigit():
        raise ServiceError(f"malformed status line: {lines[0]!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, colon, value = line.partition(":")
        if colon:
            headers[name.strip().lower()] = value.strip()
    return HttpReply(int(status_parts[1]), headers, payload)
