"""repro.loadgen — seeded load generation for the fleet service.

The measurement half of the serving story: :mod:`repro.service` answers
requests, this package offers them — closed-loop (fixed concurrency) or
open-loop (seeded exponential arrivals at a fixed rate), over a mixed,
duplicate-heavy or distinct-heavy endpoint stream — and distills the run
into a schema-validated latency report: p50/p95/p99 and mean/max latency,
throughput, per-status and per-cache-state counts, the coalescing hit
rate, and an optional closed-loop saturation sweep.

Every random choice derives from :class:`repro.rng.RngFactory` streams
keyed off the config seed, so runs replay exactly.  Use it from the
shell (``python -m repro loadgen --self-host``), from Python
(:func:`run_loadgen` against a URL, :func:`run_selfhosted` for an
in-process service on an ephemeral port), or via
``benchmarks/bench_service_latency.py`` which writes the
``BENCH_service.json`` artifact.  The report schema is documented in
docs/SERVICE.md and enforced by :func:`validate_latency_report`.
"""

from .core import (
    LATENCY_REPORT_SCHEMA_VERSION,
    LoadGenConfig,
    plan_requests,
    run_loadgen,
    run_loadgen_async,
    run_selfhosted,
    validate_latency_report,
)

__all__ = [
    "LATENCY_REPORT_SCHEMA_VERSION",
    "LoadGenConfig",
    "plan_requests",
    "run_loadgen",
    "run_loadgen_async",
    "run_selfhosted",
    "validate_latency_report",
]
