"""Simulate one measurement run of a workload across cluster GPUs.

A *run* follows the paper's protocol (Sections III-V): allocate GPUs
exclusively, execute the workload long enough for DVFS to settle, and
record the per-GPU medians of performance, frequency, power, and
temperature through the profiler's sensor path.

The simulation is fully vectorized over the participating GPUs:

1. build the day's fleet and apply run-level coolant jitter;
2. draw the run's software factors (ML speed/activity multipliers, drift);
3. solve the DVFS steady state per GPU;
4. evaluate the workload roofline at the settled clocks;
5. for multi-GPU jobs, apply bulk-synchronous semantics: the node's
   iteration time is the max across its GPUs (plus allreduce), and GPUs
   that finish early busy-wait at low activity — which is re-fed into the
   power solve so straggler *neighbours* show max clocks and low power
   (Fig. 15);
6. push everything through the sensor model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..config import require
from ..errors import SimulationError
from ..gpu.dvfs import SolverStats
from ..obs.metrics import active_monitor
from ..obs.timeline import active_recorder, measurement_digest
from ..obs.tracer import active_tracer
from ..telemetry.sample import SensorModel
from ..workloads.base import WAIT_ACTIVITY, Workload

__all__ = [
    "RunMeasurements",
    "simulate_run",
    "run_rng_label",
    "expected_max_of_normals",
    "EXPECTED_MAX_OF_NORMALS",
    "RUN_COOLANT_SIGMA_SHARED",
    "RUN_COOLANT_SIGMA_LOCAL",
]

#: E[max of k standard normals] — the bulk-synchronous amplification of
#: per-iteration jitter for k GPUs (k=1 means no amplification).  These are
#: the calibrated (3-decimal) constants the committed golden campaigns were
#: produced with; :func:`expected_max_of_normals` extends the table to
#: arbitrary k without perturbing the listed widths.
EXPECTED_MAX_OF_NORMALS = {1: 0.0, 2: 0.564, 3: 0.846, 4: 1.029, 6: 1.267, 8: 1.423}

#: Numerically-computed values for job widths outside the calibrated table.
_EMAX_CACHE: dict[int, float] = {}


def expected_max_of_normals(k: int) -> float:
    """E[max of ``k`` iid standard normals], for any job width ``k >= 1``.

    Widths in :data:`EXPECTED_MAX_OF_NORMALS` return the calibrated table
    constants (bit-compatible with the committed golden campaigns); other
    widths are integrated numerically from
    ``E[max] = ∫ x k φ(x) Φ(x)^(k-1) dx`` and memoized.  Raises
    :class:`~repro.errors.SimulationError` for ``k < 1`` — silently
    treating an unknown width as "no amplification" would understate
    bulk-synchronous jitter for 5- or 7-GPU jobs.
    """
    k = int(k)
    if k < 1:
        raise SimulationError(f"job width must be >= 1, got {k}")
    table = EXPECTED_MAX_OF_NORMALS.get(k)
    if table is not None:
        return table
    cached = _EMAX_CACHE.get(k)
    if cached is None:
        cached = _EMAX_CACHE[k] = _integrate_expected_max(k)
    return cached


def _integrate_expected_max(k: int) -> float:
    """Trapezoid quadrature of the max-order-statistic mean (~1e-7 accurate)."""
    x = np.linspace(-12.0, 12.0, 48001)
    phi = np.exp(-0.5 * x * x) / np.sqrt(2.0 * np.pi)
    # Φ from the cumulative integral of φ (no erf dependency); Φ(-12) ~ 2e-33.
    cdf = np.concatenate(
        ([0.0], np.cumsum((phi[1:] + phi[:-1]) * 0.5 * (x[1] - x[0])))
    )
    return float(np.trapezoid(x * k * phi * cdf ** (k - 1), x))

#: Std-dev (degC) of the facility-wide coolant fluctuation within one run.
RUN_COOLANT_SIGMA_SHARED = 0.35
#: Std-dev (degC) of per-GPU coolant fluctuation within one run.
RUN_COOLANT_SIGMA_LOCAL = 0.20


def run_rng_label(workload: Workload, day: int, run_index: int) -> str:
    """The :meth:`~repro.rng.RngFactory.child` label that names one run.

    Every random draw of a run derives from
    ``cluster.rng_factory.child(run_rng_label(...))``, so any executor —
    serial, threaded, or a separate process — can reconstruct the exact
    stream from the campaign coordinates alone.
    """
    return f"run-{workload.name}-day-{day}-idx-{run_index}"


@dataclass(frozen=True)
class RunMeasurements:
    """What the profiler recorded for one run (arrays over the run's GPUs).

    ``performance_ms`` follows the workload's metric (median kernel
    duration, iteration duration, or long-kernel aggregate).  ``true_*``
    fields carry the unobservable ground truth for validation.
    """

    gpu_indices: np.ndarray
    performance_ms: np.ndarray
    frequency_mhz: np.ndarray
    power_w: np.ndarray
    temperature_c: np.ndarray
    true_frequency_mhz: np.ndarray
    true_power_w: np.ndarray
    true_temperature_c: np.ndarray
    power_capped: np.ndarray
    thermally_capped: np.ndarray
    #: Steady-state solver work counters for this run (not a measurement —
    #: telemetry for the campaign executor's progress sink).
    solver_stats: SolverStats | None = None

    @property
    def n(self) -> int:
        """GPUs measured in this run."""
        return int(self.gpu_indices.shape[0])


def simulate_run(
    cluster: Cluster,
    workload: Workload,
    day: int = 0,
    run_index: int = 0,
    gpu_indices: np.ndarray | None = None,
    power_limit_w: float | None = None,
    sensor: SensorModel | None = None,
    *,
    rng: np.random.Generator | None = None,
    coolant_shared_offset_c: float | None = None,
) -> RunMeasurements:
    """Simulate one run and return its reported measurements.

    Parameters
    ----------
    cluster:
        The machine.
    workload:
        What to run.  Multi-GPU workloads require ``gpu_indices`` to be
        whole nodes (multiples of the node width, node-aligned).
    day, run_index:
        Campaign coordinates; they seed the run's randomness so campaigns
        replay exactly.
    gpu_indices:
        GPUs participating (default: the whole cluster).
    power_limit_w:
        Administrative power limit (Section VI-B); requires
        ``cluster.admin_access``.
    sensor:
        Sensor model override.
    rng:
        Random stream override.  The default is the keyed stream
        ``cluster.rng_factory.child(run_rng_label(...)).generator("run")``;
        the sharded campaign executor passes per-shard streams instead
        (see :mod:`repro.sim.parallel`).
    coolant_shared_offset_c:
        Pre-drawn facility-wide coolant fluctuation for this run.  By
        default it is the first draw of ``rng``; shard executors pass the
        run-level value so every GPU shard of one run shares the same
        facility environment.
    """
    if power_limit_w is not None and not cluster.admin_access:
        raise SimulationError(
            f"cluster {cluster.name} does not grant administrative access; "
            "power limits cannot be set (Section VI-B used CloudLab for this)"
        )
    if gpu_indices is None:
        gpu_indices = np.arange(cluster.n_gpus)
    else:
        gpu_indices = np.asarray(gpu_indices)
    if workload.is_multi_gpu:
        _check_node_alignment(cluster, workload, gpu_indices)

    tracer = active_tracer()
    if tracer is not None:
        span_start = time.time()
        span_t0 = time.perf_counter()

    sensor = sensor if sensor is not None else SensorModel()
    # Memoized per (day, shard): the day's facility conditions and the
    # silicon/thermal re-slicing are shared by every run of the same shard.
    fleet = cluster.fleet_slice(day, gpu_indices)
    n = fleet.n

    if rng is None:
        rng = cluster.rng_factory.child(
            run_rng_label(workload, day, run_index)
        ).generator("run")

    # Run-level thermal environment fluctuation.
    if coolant_shared_offset_c is None:
        coolant_shared_offset_c = rng.normal(0.0, RUN_COOLANT_SIGMA_SHARED)
    coolant = (
        fleet.coolant_c
        + coolant_shared_offset_c
        + rng.normal(0.0, RUN_COOLANT_SIGMA_LOCAL, size=n)
    )
    fleet = fleet.with_coolant(coolant)

    spec = fleet.spec
    act0, dram0 = workload.steady_load(
        spec.f_max_mhz, spec.compute_throughput, spec.mem_bandwidth_gbs
    )

    # Software factors: correlated speed / activity draws (Section V-A).
    corr = np.sqrt(workload.activity_speed_correlation)
    z_shared = rng.normal(size=n)
    z_speed = corr * z_shared + np.sqrt(1 - corr**2) * rng.normal(size=n)
    z_act = corr * z_shared + np.sqrt(1 - corr**2) * rng.normal(size=n)
    time_multiplier = np.exp(workload.run_speed_sigma * z_speed)
    activity_multiplier = np.exp(-workload.activity_mix_sigma * z_act)
    act_run = np.clip(act0 * activity_multiplier, 0.02, 1.0)

    efficiency = fleet.throughput_efficiency()
    cap = fleet.power_cap_w(power_limit_w)
    f_cap = fleet.frequency_cap_mhz()

    op = fleet.controller.solve_steady(
        act_run, dram0, efficiency, power_cap_w=cap, f_cap_mhz=f_cap, rng=rng
    )

    bw = fleet.memory_bandwidth_gbs()
    drift = 1.0 + rng.normal(0.0, cluster.run_noise_sigma, size=n)
    unit_ms = (
        workload.unit_time_ms(
            op.f_effective_mhz, spec.compute_throughput, bw, efficiency
        )
        * time_multiplier
        * np.clip(drift, 0.5, 1.5)
    )

    # Rare pathological runs: a stalled input pipeline or contended
    # filesystem drags the whole job while its GPUs sit near idle (the
    # extreme 3.5x ML stragglers at 76 W).  Drawn per job, so every GPU
    # of a multi-GPU job shares the event.
    path_mult = np.ones(n)
    if workload.pathological_run_rate > 0.0:
        k = workload.n_gpus
        n_jobs = n // k
        hit = rng.random(n_jobs) < workload.pathological_run_rate
        lo, hi = workload.pathological_slowdown
        job_mult = np.where(hit, rng.uniform(lo, hi, size=n_jobs), 1.0)
        path_mult = np.repeat(job_mult, k)
        unit_ms = unit_ms * path_mult
        # A stalled job barely exercises the GPU.
        act_run = np.clip(act_run / path_mult, 0.02, 1.0)
        if not workload.is_multi_gpu and hit.any():
            op = fleet.controller.solve_steady(
                act_run, dram0, efficiency, power_cap_w=cap,
                f_cap_mhz=f_cap, rng=rng,
            )

    true_power = op.power_w
    true_temp = op.temperature_c
    if workload.is_multi_gpu:
        unit_ms, true_power, true_temp, op = _apply_bulk_synchronous(
            fleet, workload, unit_ms, act_run, dram0, efficiency, cap, f_cap,
            rng, op
        )
    else:
        jitter_amp = expected_max_of_normals(1)
        unit_ms = unit_ms * (1.0 + workload.iteration_jitter_sigma * jitter_amp)

    # Median-over-units estimation noise; shared within a node for
    # bulk-synchronous jobs because the iteration time itself is shared.
    median_noise = rng.normal(
        0.0, 0.003 / np.sqrt(workload.units_per_run), size=n
    )
    if workload.is_multi_gpu:
        k = workload.n_gpus
        median_noise = np.repeat(median_noise.reshape(-1, k)[:, 0], k)
    performance = unit_ms * (1.0 + median_noise)

    reported_power = sensor.read_power(
        true_power, fleet.silicon.power_sensor_gain, rng
    )
    reported_temp = sensor.read_temperature(true_temp, rng)
    reported_freq = sensor.read_frequency(
        op.f_reported_mhz, spec.pstate_array()
    )

    monitor = active_monitor()
    if monitor is not None:
        # Reported values only, after everything that feeds the result is
        # computed — the monitor observes, it cannot perturb.
        monitor.observe_run(
            day=day,
            run_index=run_index,
            gpu_indices=gpu_indices,
            performance_ms=performance,
            frequency_mhz=reported_freq,
            power_w=reported_power,
            temperature_c=reported_temp,
            power_capped=op.power_capped,
            thermally_capped=op.thermally_capped,
        )
    recorder = active_recorder()
    if recorder is not None:
        # Like the monitor: observe only, after everything feeding the
        # result is computed.  No wall-clock — the digest covers the raw
        # reported arrays bit-exactly, so a replayed timeline can attest
        # that the measurements it describes are the measurements produced.
        stats = fleet.controller.stats
        recorder.record(
            "sim",
            "run",
            f"day-{day:03d}/run-{run_index:03d}",
            day=day,
            run_index=run_index,
            workload=workload.name,
            n_gpus=n,
            gpu_first=int(gpu_indices[0]),
            gpu_last=int(gpu_indices[-1]),
            solves=stats.solves,
            batches=stats.batches,
            measurements=measurement_digest(
                performance, reported_freq, reported_power, reported_temp
            ),
        )
    if tracer is not None:
        tracer.add("run.count", 1)
        tracer.add("run.gpus", n)
        tracer.record_span(
            "run",
            category="run",
            track=tracer.track,
            start_s=span_start,
            duration_s=time.perf_counter() - span_t0,
            workload=workload.name,
            day=day,
            run_index=run_index,
            n_gpus=n,
        )
    return RunMeasurements(
        gpu_indices=gpu_indices.copy(),
        performance_ms=performance,
        frequency_mhz=reported_freq,
        power_w=reported_power,
        temperature_c=reported_temp,
        true_frequency_mhz=op.f_effective_mhz,
        true_power_w=true_power,
        true_temperature_c=true_temp,
        power_capped=op.power_capped,
        thermally_capped=op.thermally_capped,
        # The run's controller is private to this run (with_coolant builds
        # it), so its counters are exactly this run's solver work.
        solver_stats=fleet.controller.stats.copy(),
    )


def _check_node_alignment(
    cluster: Cluster, workload: Workload, gpu_indices: np.ndarray
) -> None:
    width = cluster.topology.gpus_per_node
    if workload.n_gpus > width:
        raise SimulationError(
            f"workload wants {workload.n_gpus} GPUs per job but nodes have {width}"
        )
    if gpu_indices.shape[0] % workload.n_gpus:
        raise SimulationError(
            f"{gpu_indices.shape[0]} GPUs do not divide into jobs of "
            f"{workload.n_gpus}"
        )
    nodes = cluster.topology.node_of_gpu[gpu_indices]
    groups = nodes.reshape(-1, workload.n_gpus)
    if not np.all(groups == groups[:, :1]):
        raise SimulationError(
            "multi-GPU jobs must be allocated within single nodes "
            "(exclusive-node policy, Section III)"
        )


def _apply_bulk_synchronous(
    fleet,
    workload: Workload,
    unit_ms: np.ndarray,
    act_run: np.ndarray,
    dram0: float,
    efficiency: np.ndarray,
    cap: np.ndarray,
    f_cap: np.ndarray,
    rng: np.random.Generator,
    op,
):
    """Bulk-synchronous multi-GPU semantics (ResNet/BERT, Section V).

    The job's iteration time is the slowest member plus the allreduce;
    early finishers busy-wait, so their *sustained* activity — and hence
    power and temperature — drops in proportion to their idle share.
    """
    k = workload.n_gpus
    groups = unit_ms.reshape(-1, k)
    jitter_amp = expected_max_of_normals(k)
    t_sync = (
        groups.max(axis=1) * (1.0 + workload.iteration_jitter_sigma * jitter_amp)
        + workload.sync_overhead_ms
    )
    t_node = np.repeat(t_sync, k)

    duty = np.clip(unit_ms / t_node, 0.0, 1.0)
    act_eff = act_run * duty + WAIT_ACTIVITY * (1.0 - duty)
    op2 = fleet.controller.solve_steady(
        act_eff, dram0 * duty, efficiency, power_cap_w=cap, f_cap_mhz=f_cap,
        rng=rng
    )
    return t_node, op2.power_w, op2.temperature_c, op2
