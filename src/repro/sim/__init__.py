"""Simulation layer: steady-state runs, time-stepped engine, campaigns.

Two complementary simulators over the same physics:

* :mod:`repro.sim.run` — the settled-state path used for fleet-wide
  measurement campaigns (the paper's methodology runs kernels long enough
  to reach DVFS steady state, so the fixed-point solve *is* the
  measurement);
* :mod:`repro.sim.engine` — a time-stepped reactive simulator for the
  frequency/power transients of Figs. 11 and 25.

:mod:`repro.sim.campaign` sweeps runs across days/weeks and nodes, emitting
the long-form :class:`~repro.telemetry.dataset.MeasurementDataset` the
analysis suite consumes.  :mod:`repro.sim.parallel` shards that sweep
across worker processes with bit-identical results
(``run_campaign(..., workers=N)``).  :mod:`repro.sim.job` prices one
scheduled gang job on its allocated GPUs — the runtime model behind the
batch-queue simulator (:mod:`repro.sched`).
"""

from .run import RunMeasurements, run_rng_label, simulate_run
from .job import JobPerformance, reference_unit_times, sample_job_runtime
from .engine import Engine, EngineConfig
from .timeseries import simulate_timeseries
from .campaign import CampaignConfig, run_campaign
from .parallel import (
    ParallelConfig,
    ShardTask,
    execute_campaign,
    make_executor,
    plan_shards,
)
from .spatial import (
    SharedNodeResult,
    simulate_with_neighbors,
    spatial_penalty,
    temporal_soak_slowdown,
)

__all__ = [
    "RunMeasurements",
    "simulate_run",
    "run_rng_label",
    "JobPerformance",
    "reference_unit_times",
    "sample_job_runtime",
    "Engine",
    "EngineConfig",
    "simulate_timeseries",
    "CampaignConfig",
    "run_campaign",
    "ParallelConfig",
    "ShardTask",
    "execute_campaign",
    "make_executor",
    "plan_shards",
    "SharedNodeResult",
    "simulate_with_neighbors",
    "spatial_penalty",
    "temporal_soak_slowdown",
]
