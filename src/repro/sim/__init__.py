"""Simulation layer: steady-state runs, time-stepped engine, campaigns.

Two complementary simulators over the same physics:

* :mod:`repro.sim.run` — the settled-state path used for fleet-wide
  measurement campaigns (the paper's methodology runs kernels long enough
  to reach DVFS steady state, so the fixed-point solve *is* the
  measurement);
* :mod:`repro.sim.engine` — a time-stepped reactive simulator for the
  frequency/power transients of Figs. 11 and 25.

:mod:`repro.sim.campaign` sweeps runs across days/weeks and nodes, emitting
the long-form :class:`~repro.telemetry.dataset.MeasurementDataset` the
analysis suite consumes.
"""

from .run import RunMeasurements, simulate_run
from .engine import Engine, EngineConfig
from .timeseries import simulate_timeseries
from .campaign import CampaignConfig, run_campaign
from .spatial import (
    SharedNodeResult,
    simulate_with_neighbors,
    spatial_penalty,
    temporal_soak_slowdown,
)

__all__ = [
    "RunMeasurements",
    "simulate_run",
    "Engine",
    "EngineConfig",
    "simulate_timeseries",
    "CampaignConfig",
    "run_campaign",
    "SharedNodeResult",
    "simulate_with_neighbors",
    "spatial_penalty",
    "temporal_soak_slowdown",
]
