"""Per-job runtime sampling for the batch-queue simulator.

Where :func:`repro.sim.run.simulate_run` measures the *fleet* (every GPU
runs the workload side by side, the paper's characterization protocol),
this module prices one *job*: a gang of GPUs granted by the scheduler
(:mod:`repro.sched`) runs the workload bulk-synchronously and the slowest
member gates every iteration.  The physics is the same steady-state DVFS
solve and roofline evaluation the campaigns use, so a job lands exactly
where the characterization says its GPUs sit.

Two entry points:

* :func:`reference_unit_times` — the noise-free per-GPU unit time of a
  workload across the whole fleet (intrinsic GPU speed).  The scheduler's
  slow-assignment accounting compares a job's GPUs against this table,
  mirroring the paper's "6-7% slower than the fastest GPUs" definition.
* :func:`sample_job_runtime` — one job's realized runtime, energy, and
  gang imbalance on its allocated GPUs, with the run-level software and
  environment draws of :mod:`repro.sim.run` keyed per job so the same job
  draws the same factors under every placement policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..errors import SimulationError
from ..workloads.base import WAIT_ACTIVITY, Workload
from .run import (
    RUN_COOLANT_SIGMA_LOCAL,
    RUN_COOLANT_SIGMA_SHARED,
    expected_max_of_normals,
)

__all__ = [
    "JobPerformance",
    "reference_unit_times",
    "sample_job_runtime",
    "DEFAULT_SYNC_OVERHEAD_MS",
    "INTER_NODE_SYNC_FACTOR",
]

#: Per-unit synchronization cost (ms) for gangs whose workload model does
#: not carry one (single-GPU workload profiles scheduled as gangs).
DEFAULT_SYNC_OVERHEAD_MS = 6.0

#: Multiplier applied to the sync overhead per *additional* node the gang
#: spans: inter-node allreduce rides the injection network, not NVLink.
INTER_NODE_SYNC_FACTOR = 0.5


@dataclass(frozen=True)
class JobPerformance:
    """What one scheduled job experienced on its allocated GPUs.

    ``unit_time_ms`` is per-GPU (what each member *could* sustain);
    ``job_unit_ms`` is the gang-synchronous unit time that actually
    elapsed — the slowest member plus synchronization.
    """

    gpu_indices: np.ndarray
    unit_time_ms: np.ndarray
    job_unit_ms: float
    runtime_s: float
    power_w: np.ndarray
    energy_j: float
    gang_imbalance: float

    @property
    def n_gpus(self) -> int:
        """GPUs in the job."""
        return int(self.gpu_indices.shape[0])


def reference_unit_times(
    cluster: Cluster,
    workload: Workload,
    day: int = 0,
) -> np.ndarray:
    """Noise-free per-GPU unit time (ms) of ``workload`` across the fleet.

    The deterministic component of GPU speed — silicon lottery, defects,
    thermal seat, day-``day`` facility conditions — with every run-level
    software and environment draw suppressed.  The scheduler uses this as
    the ground truth for "is this GPU slow for this workload".
    """
    fleet = cluster.fleet_for_day(day)
    spec = fleet.spec
    act0, dram0 = workload.steady_load(
        spec.f_max_mhz, spec.compute_throughput, spec.mem_bandwidth_gbs
    )
    rng = cluster.rng_factory.child(
        f"sched-reference-{workload.name}-day-{day}"
    ).generator("reference")
    efficiency = fleet.throughput_efficiency()
    op = fleet.controller.solve_steady(
        act0,
        dram0,
        efficiency,
        power_cap_w=fleet.power_cap_w(None),
        f_cap_mhz=fleet.frequency_cap_mhz(),
        rng=rng,
    )
    return workload.unit_time_ms(
        op.f_effective_mhz,
        spec.compute_throughput,
        fleet.memory_bandwidth_gbs(),
        efficiency,
    )


def sample_job_runtime(
    cluster: Cluster,
    workload: Workload,
    gpu_indices: np.ndarray,
    *,
    day: int = 0,
    work_units: int = 100,
    rng: np.random.Generator,
) -> JobPerformance:
    """Price one gang job on its allocated GPUs.

    Parameters
    ----------
    cluster, workload:
        The machine and the application profile.  The gang width is the
        length of ``gpu_indices`` (the workload's own ``n_gpus`` is a
        campaign-protocol detail, not a constraint here).
    gpu_indices:
        The job's GPUs (global indices; may span several nodes).
    day:
        Facility day the job starts on (selects coolant conditions).
    work_units:
        Workload units the job executes; runtime scales linearly.
    rng:
        The job's random stream.  Key it per job id
        (``cluster.rng_factory.child(f"sched-job-{job_id}")``) so a job's
        intrinsic draws are identical under every placement policy.
    """
    gpu_indices = np.sort(np.asarray(gpu_indices, dtype=np.int64))
    n = int(gpu_indices.shape[0])
    if n < 1:
        raise SimulationError("a job needs at least one GPU")
    if int(work_units) < 1:
        raise SimulationError(f"work_units must be >= 1, got {work_units}")

    fleet = cluster.fleet_slice(day, gpu_indices)
    spec = fleet.spec

    # Run-level thermal environment, exactly as simulate_run draws it.
    coolant = (
        fleet.coolant_c
        + rng.normal(0.0, RUN_COOLANT_SIGMA_SHARED)
        + rng.normal(0.0, RUN_COOLANT_SIGMA_LOCAL, size=n)
    )
    fleet = fleet.with_coolant(coolant)

    act0, dram0 = workload.steady_load(
        spec.f_max_mhz, spec.compute_throughput, spec.mem_bandwidth_gbs
    )
    corr = np.sqrt(workload.activity_speed_correlation)
    z_shared = rng.normal(size=n)
    z_speed = corr * z_shared + np.sqrt(1 - corr**2) * rng.normal(size=n)
    z_act = corr * z_shared + np.sqrt(1 - corr**2) * rng.normal(size=n)
    time_multiplier = np.exp(workload.run_speed_sigma * z_speed)
    act_run = np.clip(
        act0 * np.exp(-workload.activity_mix_sigma * z_act), 0.02, 1.0
    )

    efficiency = fleet.throughput_efficiency()
    cap = fleet.power_cap_w(None)
    f_cap = fleet.frequency_cap_mhz()
    op = fleet.controller.solve_steady(
        act_run, dram0, efficiency, power_cap_w=cap, f_cap_mhz=f_cap, rng=rng
    )

    drift = 1.0 + rng.normal(0.0, cluster.run_noise_sigma, size=n)
    unit_ms = (
        workload.unit_time_ms(
            op.f_effective_mhz,
            spec.compute_throughput,
            fleet.memory_bandwidth_gbs(),
            efficiency,
        )
        * time_multiplier
        * np.clip(drift, 0.5, 1.5)
    )

    spanned = int(
        np.unique(cluster.topology.node_of_gpu[gpu_indices]).shape[0]
    )
    if n == 1:
        job_unit_ms = float(unit_ms[0])
        power = op.power_w
    else:
        sync_ms = (
            workload.sync_overhead_ms
            if workload.sync_overhead_ms > 0.0
            else DEFAULT_SYNC_OVERHEAD_MS
        )
        sync_ms *= 1.0 + INTER_NODE_SYNC_FACTOR * (spanned - 1)
        jitter_amp = expected_max_of_normals(n)
        job_unit_ms = float(
            unit_ms.max()
            * (1.0 + workload.iteration_jitter_sigma * jitter_amp)
            + sync_ms
        )
        # Early finishers busy-wait at low activity; their sustained power
        # drops with their idle share (Fig. 15 semantics).
        duty = np.clip(unit_ms / job_unit_ms, 0.0, 1.0)
        act_eff = act_run * duty + WAIT_ACTIVITY * (1.0 - duty)
        op = fleet.controller.solve_steady(
            act_eff,
            dram0 * duty,
            efficiency,
            power_cap_w=cap,
            f_cap_mhz=f_cap,
            rng=rng,
        )
        power = op.power_w

    runtime_s = job_unit_ms * int(work_units) / 1000.0
    return JobPerformance(
        gpu_indices=gpu_indices,
        unit_time_ms=unit_ms,
        job_unit_ms=job_unit_ms,
        runtime_s=runtime_s,
        power_w=power,
        energy_j=float(power.sum()) * runtime_s,
        gang_imbalance=float(unit_ms.max() / np.median(unit_ms)),
    )
