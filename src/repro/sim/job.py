"""Per-job runtime sampling for the batch-queue simulator.

Where :func:`repro.sim.run.simulate_run` measures the *fleet* (every GPU
runs the workload side by side, the paper's characterization protocol),
this module prices one *job*: a gang of GPUs granted by the scheduler
(:mod:`repro.sched`) runs the workload bulk-synchronously and the slowest
member gates every iteration.  The physics is the same steady-state DVFS
solve and roofline evaluation the campaigns use, so a job lands exactly
where the characterization says its GPUs sit.

Three entry points:

* :func:`reference_unit_times` — the noise-free per-GPU unit time of a
  workload across the whole fleet (intrinsic GPU speed).  The scheduler's
  slow-assignment accounting compares a job's GPUs against this table,
  mirroring the paper's "6-7% slower than the fastest GPUs" definition.
* :func:`sample_job_runtime` — one job's realized runtime, energy, and
  gang imbalance on its allocated GPUs, with the run-level software and
  environment draws of :mod:`repro.sim.run` keyed per job so the same job
  draws the same factors under every placement policy.
* :func:`sample_job_runtimes` — several jobs priced together: each job's
  normal draws come from its own job-id-keyed stream in one
  ``standard_normal`` batch, the gangs are concatenated into a single
  fleet slice, and the whole batch settles in at most two vectorized
  DVFS solves (the PR 6 fleet solver), bitwise equal to pricing each job
  alone.  This is the indexed scheduler's hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..errors import SimulationError
from ..workloads.base import WAIT_ACTIVITY, Workload
from .run import (
    RUN_COOLANT_SIGMA_LOCAL,
    RUN_COOLANT_SIGMA_SHARED,
    expected_max_of_normals,
)

__all__ = [
    "JobPerformance",
    "JobPricingRequest",
    "reference_unit_times",
    "sample_job_runtime",
    "sample_job_runtimes",
    "DEFAULT_SYNC_OVERHEAD_MS",
    "INTER_NODE_SYNC_FACTOR",
]

#: Per-unit synchronization cost (ms) for gangs whose workload model does
#: not carry one (single-GPU workload profiles scheduled as gangs).
DEFAULT_SYNC_OVERHEAD_MS = 6.0

#: Multiplier applied to the sync overhead per *additional* node the gang
#: spans: inter-node allreduce rides the injection network, not NVLink.
INTER_NODE_SYNC_FACTOR = 0.5


@dataclass(frozen=True)
class JobPerformance:
    """What one scheduled job experienced on its allocated GPUs.

    ``unit_time_ms`` is per-GPU (what each member *could* sustain);
    ``job_unit_ms`` is the gang-synchronous unit time that actually
    elapsed — the slowest member plus synchronization.
    """

    gpu_indices: np.ndarray
    unit_time_ms: np.ndarray
    job_unit_ms: float
    runtime_s: float
    power_w: np.ndarray
    energy_j: float
    gang_imbalance: float

    @property
    def n_gpus(self) -> int:
        """GPUs in the job."""
        return int(self.gpu_indices.shape[0])


def reference_unit_times(
    cluster: Cluster,
    workload: Workload,
    day: int = 0,
    *,
    solver: str | None = None,
) -> np.ndarray:
    """Noise-free per-GPU unit time (ms) of ``workload`` across the fleet.

    The deterministic component of GPU speed — silicon lottery, defects,
    thermal seat, day-``day`` facility conditions — with every run-level
    software and environment draw suppressed.  The scheduler uses this as
    the ground truth for "is this GPU slow for this workload".  All
    solver modes are bit-identical; ``solver="fleet"`` settles the whole
    machine in one vectorized call (the indexed engine passes it).
    """
    fleet = cluster.fleet_for_day(day)
    spec = fleet.spec
    act0, dram0 = workload.steady_load(
        spec.f_max_mhz, spec.compute_throughput, spec.mem_bandwidth_gbs
    )
    rng = cluster.rng_factory.child(
        f"sched-reference-{workload.name}-day-{day}"
    ).generator("reference")
    efficiency = fleet.throughput_efficiency()
    op = fleet.controller.solve_steady(
        act0,
        dram0,
        efficiency,
        power_cap_w=fleet.power_cap_w(None),
        f_cap_mhz=fleet.frequency_cap_mhz(),
        rng=rng,
        solver=solver,
    )
    return workload.unit_time_ms(
        op.f_effective_mhz,
        spec.compute_throughput,
        fleet.memory_bandwidth_gbs(),
        efficiency,
    )


def sample_job_runtime(
    cluster: Cluster,
    workload: Workload,
    gpu_indices: np.ndarray,
    *,
    day: int = 0,
    work_units: int = 100,
    rng: np.random.Generator,
) -> JobPerformance:
    """Price one gang job on its allocated GPUs.

    Parameters
    ----------
    cluster, workload:
        The machine and the application profile.  The gang width is the
        length of ``gpu_indices`` (the workload's own ``n_gpus`` is a
        campaign-protocol detail, not a constraint here).
    gpu_indices:
        The job's GPUs (global indices; may span several nodes).
    day:
        Facility day the job starts on (selects coolant conditions).
    work_units:
        Workload units the job executes; runtime scales linearly.
    rng:
        The job's random stream.  Key it per job id
        (``cluster.rng_factory.child(f"sched-job-{job_id}")``) so a job's
        intrinsic draws are identical under every placement policy.
    """
    gpu_indices = np.sort(np.asarray(gpu_indices, dtype=np.int64))
    n = int(gpu_indices.shape[0])
    if n < 1:
        raise SimulationError("a job needs at least one GPU")
    if int(work_units) < 1:
        raise SimulationError(f"work_units must be >= 1, got {work_units}")

    fleet = cluster.fleet_slice(day, gpu_indices)
    spec = fleet.spec

    # Run-level thermal environment, exactly as simulate_run draws it.
    coolant = (
        fleet.coolant_c
        + rng.normal(0.0, RUN_COOLANT_SIGMA_SHARED)
        + rng.normal(0.0, RUN_COOLANT_SIGMA_LOCAL, size=n)
    )
    fleet = fleet.with_coolant(coolant)

    act0, dram0 = workload.steady_load(
        spec.f_max_mhz, spec.compute_throughput, spec.mem_bandwidth_gbs
    )
    corr = np.sqrt(workload.activity_speed_correlation)
    z_shared = rng.normal(size=n)
    z_speed = corr * z_shared + np.sqrt(1 - corr**2) * rng.normal(size=n)
    z_act = corr * z_shared + np.sqrt(1 - corr**2) * rng.normal(size=n)
    time_multiplier = np.exp(workload.run_speed_sigma * z_speed)
    act_run = np.clip(
        act0 * np.exp(-workload.activity_mix_sigma * z_act), 0.02, 1.0
    )

    efficiency = fleet.throughput_efficiency()
    cap = fleet.power_cap_w(None)
    f_cap = fleet.frequency_cap_mhz()
    op = fleet.controller.solve_steady(
        act_run, dram0, efficiency, power_cap_w=cap, f_cap_mhz=f_cap, rng=rng
    )

    drift = 1.0 + rng.normal(0.0, cluster.run_noise_sigma, size=n)
    unit_ms = (
        workload.unit_time_ms(
            op.f_effective_mhz,
            spec.compute_throughput,
            fleet.memory_bandwidth_gbs(),
            efficiency,
        )
        * time_multiplier
        * np.clip(drift, 0.5, 1.5)
    )

    spanned = int(
        np.unique(cluster.topology.node_of_gpu[gpu_indices]).shape[0]
    )
    if n == 1:
        job_unit_ms = float(unit_ms[0])
        power = op.power_w
    else:
        sync_ms = (
            workload.sync_overhead_ms
            if workload.sync_overhead_ms > 0.0
            else DEFAULT_SYNC_OVERHEAD_MS
        )
        sync_ms *= 1.0 + INTER_NODE_SYNC_FACTOR * (spanned - 1)
        jitter_amp = expected_max_of_normals(n)
        job_unit_ms = float(
            unit_ms.max()
            * (1.0 + workload.iteration_jitter_sigma * jitter_amp)
            + sync_ms
        )
        # Early finishers busy-wait at low activity; their sustained power
        # drops with their idle share (Fig. 15 semantics).
        duty = np.clip(unit_ms / job_unit_ms, 0.0, 1.0)
        act_eff = act_run * duty + WAIT_ACTIVITY * (1.0 - duty)
        op = fleet.controller.solve_steady(
            act_eff,
            dram0 * duty,
            efficiency,
            power_cap_w=cap,
            f_cap_mhz=f_cap,
            rng=rng,
        )
        power = op.power_w

    runtime_s = job_unit_ms * int(work_units) / 1000.0
    return JobPerformance(
        gpu_indices=gpu_indices,
        unit_time_ms=unit_ms,
        job_unit_ms=job_unit_ms,
        runtime_s=runtime_s,
        power_w=power,
        energy_j=float(power.sum()) * runtime_s,
        gang_imbalance=float(unit_ms.max() / np.median(unit_ms)),
    )


@dataclass(frozen=True)
class JobPricingRequest:
    """One job to price in a :func:`sample_job_runtimes` batch.

    ``rng`` is the job's own stream (key it per job id exactly as for
    :func:`sample_job_runtime`) — batching never mixes streams, so each
    job draws the same factors it would draw priced alone.
    """

    workload: Workload
    gpu_indices: np.ndarray
    work_units: int
    rng: np.random.Generator


def sample_job_runtimes(
    cluster: Cluster,
    requests: list[JobPricingRequest],
    *,
    day: int = 0,
) -> list[JobPerformance]:
    """Price several gang jobs together, bitwise equal to pricing alone.

    The batched twin of :func:`sample_job_runtime`: per-job normal draws
    collapse into one ``standard_normal(1 + 5n)`` call on the job's own
    stream (numpy's ``normal(loc, scale)`` is ``loc + scale * z``, and a
    sliced batch equals the sequential draws), the gangs concatenate into
    a single fleet slice, and the whole batch settles in at most two
    vectorized DVFS solves — one for every gang's free-running unit
    times, one for the multi-GPU gangs' duty-adjusted power.  The PR 6
    fleet solver's evaluation-shape freedom makes the concatenated solve
    bit-identical to per-gang solves.

    Pre-drawing is only sound when the DVFS policy does not dither (the
    reference path draws run noise *after* the first solve, which on
    dithering ladders consumes the stream); dithering fleets fall back to
    the sequential path, preserving stream-exact equality everywhere.
    """
    if not requests:
        return []
    day_fleet = cluster.fleet_for_day(day)
    if day_fleet.controller.policy.dither:
        return [
            sample_job_runtime(
                cluster,
                request.workload,
                request.gpu_indices,
                day=day,
                work_units=request.work_units,
                rng=request.rng,
            )
            for request in requests
        ]

    gangs: list[np.ndarray] = []
    widths: list[int] = []
    for request in requests:
        gang = np.sort(np.asarray(request.gpu_indices, dtype=np.int64))
        n = int(gang.shape[0])
        if n < 1:
            raise SimulationError("a job needs at least one GPU")
        if int(request.work_units) < 1:
            raise SimulationError(
                f"work_units must be >= 1, got {request.work_units}"
            )
        gangs.append(gang)
        widths.append(n)

    offsets = np.zeros(len(requests) + 1, dtype=np.int64)
    np.cumsum(widths, out=offsets[1:])
    total = int(offsets[-1])
    concat = np.concatenate(gangs)
    fleet = day_fleet.take(concat)
    spec = fleet.spec
    base_coolant = fleet.coolant_c

    coolant = np.empty(total, dtype=float)
    act_run = np.empty(total, dtype=float)
    dram0_row = np.empty(total, dtype=float)
    time_multiplier = np.empty(total, dtype=float)
    drift = np.empty(total, dtype=float)
    dram0_of: list[float] = []
    run_noise_sigma = cluster.run_noise_sigma
    for j, request in enumerate(requests):
        n = widths[j]
        rows = slice(int(offsets[j]), int(offsets[j + 1]))
        workload = request.workload
        act0, dram0 = workload.steady_load(
            spec.f_max_mhz, spec.compute_throughput, spec.mem_bandwidth_gbs
        )
        dram0_of.append(dram0)
        z = request.rng.standard_normal(1 + 5 * n)
        z_local = z[1 : 1 + n]
        z_shared = z[1 + n : 1 + 2 * n]
        z_speed_ortho = z[1 + 2 * n : 1 + 3 * n]
        z_act_ortho = z[1 + 3 * n : 1 + 4 * n]
        z_drift = z[1 + 4 * n : 1 + 5 * n]
        coolant[rows] = (
            base_coolant[rows]
            + (0.0 + RUN_COOLANT_SIGMA_SHARED * z[0])
            + (0.0 + RUN_COOLANT_SIGMA_LOCAL * z_local)
        )
        corr = np.sqrt(workload.activity_speed_correlation)
        ortho = np.sqrt(1 - corr**2)
        z_speed = corr * z_shared + ortho * z_speed_ortho
        z_act = corr * z_shared + ortho * z_act_ortho
        time_multiplier[rows] = np.exp(workload.run_speed_sigma * z_speed)
        act_run[rows] = np.clip(
            act0 * np.exp(-workload.activity_mix_sigma * z_act), 0.02, 1.0
        )
        dram0_row[rows] = dram0
        drift[rows] = np.clip(
            1.0 + (0.0 + run_noise_sigma * z_drift), 0.5, 1.5
        )

    fleet = fleet.with_coolant(coolant)
    efficiency = fleet.throughput_efficiency()
    cap = fleet.power_cap_w(None)
    f_cap = fleet.frequency_cap_mhz()
    op = fleet.controller.solve_steady(
        act_run,
        dram0_row,
        efficiency,
        power_cap_w=cap,
        f_cap_mhz=f_cap,
        solver="fleet",
    )
    mem_bw = fleet.memory_bandwidth_gbs()
    f_effective = op.f_effective_mhz
    power_free = op.power_w

    node_of_gpu = cluster.topology.node_of_gpu
    unit_ms_of: list[np.ndarray] = []
    job_unit_ms_of: list[float] = []
    multi: list[int] = []
    act_eff_parts: list[np.ndarray] = []
    dram_eff_parts: list[np.ndarray] = []
    for j, request in enumerate(requests):
        n = widths[j]
        rows = slice(int(offsets[j]), int(offsets[j + 1]))
        workload = request.workload
        unit_ms = (
            workload.unit_time_ms(
                f_effective[rows],
                spec.compute_throughput,
                mem_bw[rows],
                efficiency[rows],
            )
            * time_multiplier[rows]
            * drift[rows]
        )
        unit_ms_of.append(unit_ms)
        if n == 1:
            job_unit_ms_of.append(float(unit_ms[0]))
            continue
        spanned = int(np.unique(node_of_gpu[gangs[j]]).shape[0])
        sync_ms = (
            workload.sync_overhead_ms
            if workload.sync_overhead_ms > 0.0
            else DEFAULT_SYNC_OVERHEAD_MS
        )
        sync_ms *= 1.0 + INTER_NODE_SYNC_FACTOR * (spanned - 1)
        jitter_amp = expected_max_of_normals(n)
        job_unit_ms = float(
            unit_ms.max()
            * (1.0 + workload.iteration_jitter_sigma * jitter_amp)
            + sync_ms
        )
        job_unit_ms_of.append(job_unit_ms)
        duty = np.clip(unit_ms / job_unit_ms, 0.0, 1.0)
        multi.append(j)
        act_eff_parts.append(
            act_run[rows] * duty + WAIT_ACTIVITY * (1.0 - duty)
        )
        dram_eff_parts.append(dram0_of[j] * duty)

    power_of: dict[int, np.ndarray] = {}
    if multi:
        rows_of: dict[int, slice] = {}
        at = 0
        for j in multi:
            rows_of[j] = slice(at, at + widths[j])
            at += widths[j]
        sub_fleet = day_fleet.take(
            np.concatenate([gangs[j] for j in multi])
        ).with_coolant(
            np.concatenate(
                [coolant[offsets[j] : offsets[j + 1]] for j in multi]
            )
        )
        op_eff = sub_fleet.controller.solve_steady(
            np.concatenate(act_eff_parts),
            np.concatenate(dram_eff_parts),
            sub_fleet.throughput_efficiency(),
            power_cap_w=sub_fleet.power_cap_w(None),
            f_cap_mhz=sub_fleet.frequency_cap_mhz(),
            solver="fleet",
        )
        for j in multi:
            power_of[j] = op_eff.power_w[rows_of[j]]

    out: list[JobPerformance] = []
    for j, request in enumerate(requests):
        rows = slice(int(offsets[j]), int(offsets[j + 1]))
        unit_ms = unit_ms_of[j]
        job_unit_ms = job_unit_ms_of[j]
        power = power_of.get(j)
        if power is None:
            power = power_free[rows]
        runtime_s = job_unit_ms * int(request.work_units) / 1000.0
        out.append(
            JobPerformance(
                gpu_indices=gangs[j],
                unit_time_ms=unit_ms,
                job_unit_ms=job_unit_ms,
                runtime_s=runtime_s,
                power_w=power,
                energy_j=float(power.sum()) * runtime_s,
                gang_imbalance=float(unit_ms.max() / np.median(unit_ms)),
            )
        )
    return out
