"""Continuous telemetry traces of selected GPUs (Figs. 11 and 25).

Wraps the reactive engine with the profiler's sensor path: integrate the
chosen GPUs under a workload and sample frequency / power / temperature at
a fixed interval, with kernel-launch markers.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..errors import SimulationError
from ..telemetry.recorder import TraceRecorder
from ..telemetry.sample import SensorModel
from ..telemetry.trace import TelemetryTrace
from ..workloads.base import Workload
from .engine import Engine, EngineConfig

__all__ = ["simulate_timeseries"]


def simulate_timeseries(
    cluster: Cluster,
    workload: Workload,
    gpu_indices: np.ndarray,
    duration_s: float,
    sample_interval_s: float = 0.1,
    day: int = 0,
    power_limit_w: float | None = None,
    engine_config: EngineConfig | None = None,
    sensor: SensorModel | None = None,
) -> list[TelemetryTrace]:
    """Integrate selected GPUs and return their telemetry traces.

    Parameters
    ----------
    cluster:
        The machine.
    workload:
        Single-phase workload (SGEMM) to trace.
    gpu_indices:
        Which GPUs to integrate and record (1-8 is typical).
    duration_s:
        Simulated wall-clock length.
    sample_interval_s:
        Telemetry sampling interval (>= the profiler's 1 ms floor).
    day:
        Campaign day supplying the facility conditions.
    power_limit_w:
        Optional administrative cap (requires admin access).
    """
    gpu_indices = np.asarray(gpu_indices)
    if gpu_indices.ndim != 1 or gpu_indices.shape[0] == 0:
        raise SimulationError("gpu_indices must be a non-empty 1-D array")
    if power_limit_w is not None and not cluster.admin_access:
        raise SimulationError(
            f"cluster {cluster.name} does not grant administrative access"
        )

    fleet = cluster.fleet_for_day(day).take(gpu_indices)
    engine = Engine(fleet, workload, engine_config, power_limit_w)
    labels = [cluster.topology.gpu_labels[i] for i in gpu_indices]
    rng = cluster.rng_factory.child(
        f"timeseries-{workload.name}-day-{day}"
    ).generator("sensor")
    recorder = TraceRecorder(
        labels=labels,
        pstates_mhz=fleet.spec.pstate_array(),
        power_gain=fleet.silicon.power_sensor_gain,
        rng=rng,
        sensor=sensor,
        interval_s=sample_interval_s,
    )

    steps = int(round(duration_s / engine.config.dt_s))
    marked = 0
    for _ in range(steps):
        engine.step()
        starts = engine.state.kernel_start_times
        while marked < len(starts):
            recorder.mark_kernel_start(starts[marked])
            marked += 1
        recorder.push(
            engine.state.time_s,
            engine.frequency_mhz(),
            engine.instantaneous_power(),
            engine.state.temperature_c,
        )
    return recorder.traces()
