"""Sharded, parallel campaign execution — bit-identical to the serial path.

The paper's methodology multiplies out to thousands of (GPU, day, run)
measurements per cluster; executed one run at a time, the Summit preset
(27,648 GPUs) dominates the wall clock of every figure script.  This module
partitions a campaign into independent **shards** and executes them across
``concurrent.futures`` workers.

Equivalence, not approximation
------------------------------
A parallel simulator is only trustworthy if it is provably the same
simulator.  Three properties make the parallel result *exactly* equal —
every column, every bit — to the serial one:

1. **Keyed RNG streams.**  Every random draw of a run derives from
   ``cluster.rng_factory.child(run_rng_label(workload, day, run))`` — a
   pure function of the campaign coordinates.  A worker process
   reconstructs the exact stream from the coordinates alone; no RNG state
   crosses the executor boundary.  When a run is split into GPU shards,
   each shard draws from its own child stream
   (``generator("shard-{i}-of-{m}")``) and the facility-wide coolant
   fluctuation — physically shared by every GPU in the run — comes from a
   dedicated run-level stream that every shard reconstructs identically.
2. **Worker-independent planning.**  :func:`plan_shards` depends only on
   the cluster, the workload, and the campaign/parallel configuration —
   never on the worker count or the backend.  Serial and parallel
   executors run literally the same plan, so "serial vs parallel" can
   only differ in *who* executes a shard, which the physics cannot see.
3. **Canonical merge order.**  Results are placed by plan position and
   concatenated in (day, run, shard) order, i.e. ascending
   (day, run, gpu_index).  No cross-shard floating-point reduction
   happens during the merge — only concatenation — so there is no
   reduction-order sensitivity.

The equivalence is enforced by ``tests/sim/test_parallel_equivalence.py``
(exact equality across workers x shard shapes x every cluster preset) and
pinned across refactors by the golden fixtures under ``tests/golden/``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import ExitStack
from concurrent.futures import (
    FIRST_EXCEPTION,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..cluster.allocator import ExclusiveNodeAllocator
from ..cluster.cluster import Cluster, active_fault_plan
from ..config import require
from ..errors import SimulationError
from ..gpu.dvfs import SolverStats
from ..obs.manifest import Manifest, build_campaign_manifest
from ..obs.metrics import FleetMonitor, activate_monitor
from ..obs.timeline import TimelineRecorder, activate_recorder, measurement_digest
from ..obs.tracer import Tracer, activate
from ..telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.progress import CampaignProgress, ShardTiming
from ..workloads.base import Workload
from .run import RUN_COOLANT_SIGMA_SHARED, run_rng_label, simulate_run

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .campaign import CampaignConfig

__all__ = [
    "DEFAULT_MAX_GPUS_PER_SHARD",
    "ParallelConfig",
    "ShardTask",
    "make_executor",
    "plan_shards",
    "execute_campaign",
]

#: Runs on fleets larger than this are split into GPU-index shards.  Sized
#: so every preset except full-scale Summit stays a single shard per run
#: (preserving the seed's exact serial streams) while Summit splits into
#: four pieces that parallelize and fit comfortably in worker memory.
DEFAULT_MAX_GPUS_PER_SHARD = 8192

_BACKENDS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class ParallelConfig:
    """How a campaign is sharded and executed.

    Parameters
    ----------
    workers:
        Worker count.  ``None`` or ``1`` executes the plan serially in
        the calling process (no pool is created).  The pool never exceeds
        the number of shards in the plan.
    backend:
        ``"process"`` (default for ``workers > 1``) isolates workers in
        subprocesses — true parallelism for the NumPy-heavy physics.
        ``"thread"`` shares the cluster object and suits tests or
        GIL-releasing BLAS-bound workloads.  ``"serial"`` forces in-process
        execution regardless of ``workers``; ``"auto"`` picks for you.
    max_gpus_per_shard:
        Within-run sharding threshold.  Runs covering more GPUs than this
        are split into node-aligned GPU shards; ``None`` disables
        within-run sharding entirely.  This changes *which* keyed RNG
        streams a run consumes, so it must be identical between any two
        executions you expect to compare bit-for-bit (it is part of the
        plan, not of the execution).
    """

    workers: int | None = None
    backend: str = "auto"
    max_gpus_per_shard: int | None = DEFAULT_MAX_GPUS_PER_SHARD

    def __post_init__(self) -> None:
        require(
            self.workers is None or self.workers >= 1,
            f"workers must be None or >= 1, got {self.workers}",
        )
        require(
            self.backend in _BACKENDS,
            f"backend must be one of {_BACKENDS}, got {self.backend!r}",
        )
        require(
            self.max_gpus_per_shard is None or self.max_gpus_per_shard >= 1,
            "max_gpus_per_shard must be None or >= 1, "
            f"got {self.max_gpus_per_shard}",
        )

    @property
    def effective_workers(self) -> int:
        """The worker count as an integer (serial == 1)."""
        return 1 if self.workers is None else int(self.workers)

    def resolved_backend(self) -> str:
        """The backend actually used: ``serial``, ``thread`` or ``process``."""
        if self.backend != "auto":
            return self.backend
        return "serial" if self.effective_workers <= 1 else "process"


@dataclass(frozen=True)
class ShardTask:
    """One schedulable unit: a (day, run) pair restricted to a GPU shard.

    ``gpu_indices`` is the shard's slice of the day's covered GPUs, in
    ascending order and node-aligned (whole nodes only), so multi-GPU
    bulk-synchronous jobs never straddle a shard boundary.
    """

    day: int
    run_index: int
    shard_index: int
    n_shards: int
    gpu_indices: np.ndarray = field(repr=False)

    @property
    def n_gpus(self) -> int:
        """GPUs simulated by this shard."""
        return int(self.gpu_indices.shape[0])


def plan_shards(
    cluster: Cluster,
    workload: Workload,
    config: "CampaignConfig",
    parallel: ParallelConfig | None = None,
) -> list[ShardTask]:
    """The campaign's full shard plan, in canonical (day, run, shard) order.

    Deterministic in (cluster, workload, config, parallel) and — crucially
    — independent of worker count and backend: the plan defines *what* the
    campaign computes, the executor only decides *where*.

    The per-day coverage draw consumes the same keyed stream
    (``child("campaign-day-{d}").generator("coverage")``) the serial
    campaign runner always used, so plans replay exactly.
    """
    parallel = parallel if parallel is not None else ParallelConfig()
    allocator = ExclusiveNodeAllocator(cluster.topology)
    tasks: list[ShardTask] = []
    for day in range(config.days):
        day_rng = cluster.rng_factory.child(f"campaign-day-{day}").generator(
            "coverage"
        )
        allocations = allocator.sweep(coverage=config.coverage, rng=day_rng)
        plan = active_fault_plan(cluster)
        if plan is not None:
            # Chaos node loss drops whole nodes from the day's sweep
            # *after* the coverage draw, so every other day's RNG stream
            # — and the plan's worker-independence — is untouched.
            lost = plan.lost_nodes(day)
            if lost:
                allocations = [
                    a for a in allocations if a.node_index not in lost
                ]
        if not allocations:
            continue
        shards = _partition_nodes(
            [a.gpu_indices for a in allocations], parallel.max_gpus_per_shard
        )
        for run_index in range(config.runs_per_day):
            for shard_index, gpus in enumerate(shards):
                tasks.append(
                    ShardTask(
                        day=day,
                        run_index=run_index,
                        shard_index=shard_index,
                        n_shards=len(shards),
                        gpu_indices=gpus,
                    )
                )
    return tasks


def _partition_nodes(
    node_gpu_arrays: list[np.ndarray], max_gpus_per_shard: int | None
) -> list[np.ndarray]:
    """Greedily pack whole nodes into contiguous shards of bounded size.

    A shard always contains at least one node, so a node wider than the
    bound becomes a singleton shard rather than an error.
    """
    if max_gpus_per_shard is None:
        return [np.concatenate(node_gpu_arrays)]
    shards: list[np.ndarray] = []
    current: list[np.ndarray] = []
    current_n = 0
    for gpus in node_gpu_arrays:
        if current and current_n + gpus.shape[0] > max_gpus_per_shard:
            shards.append(np.concatenate(current))
            current, current_n = [], 0
        current.append(gpus)
        current_n += gpus.shape[0]
    if current:
        shards.append(np.concatenate(current))
    return shards


# ---------------------------------------------------------------------------
# shard execution (shared by every backend; runs in workers for pools)
# ---------------------------------------------------------------------------


def _execute_shard(
    cluster: Cluster,
    workload: Workload,
    power_limit_w: float | None,
    task: ShardTask,
) -> tuple[MeasurementDataset, float, "SolverStats | None"]:
    """Simulate one shard and convert it to its dataset slice.

    Single-shard runs take the exact legacy path (the ``"run"`` stream of
    the run's keyed child factory), so campaigns on ordinarily-sized
    fleets are byte-identical to the pre-sharding executor.  Multi-shard
    runs reconstruct, from the same child factory, (a) the run-level
    shared coolant fluctuation and (b) the shard's private stream.
    """
    started = time.perf_counter()
    if task.n_shards == 1:
        result = simulate_run(
            cluster,
            workload,
            day=task.day,
            run_index=task.run_index,
            gpu_indices=task.gpu_indices,
            power_limit_w=power_limit_w,
        )
    else:
        run_factory = cluster.rng_factory.child(
            run_rng_label(workload, task.day, task.run_index)
        )
        shared_offset = float(
            run_factory.generator("coolant-shared").normal(
                0.0, RUN_COOLANT_SIGMA_SHARED
            )
        )
        shard_rng = run_factory.generator(
            f"shard-{task.shard_index}-of-{task.n_shards}"
        )
        result = simulate_run(
            cluster,
            workload,
            day=task.day,
            run_index=task.run_index,
            gpu_indices=task.gpu_indices,
            power_limit_w=power_limit_w,
            rng=shard_rng,
            coolant_shared_offset_c=shared_offset,
        )
    from .campaign import _to_dataset  # deferred: campaign imports us too

    dataset = _to_dataset(cluster, workload, task.day, task.run_index, result)
    return dataset, time.perf_counter() - started, result.solver_stats


#: Track name for shard-local spans: lexical sort == canonical plan order.
_SHARD_TRACK = "day-{day:03d}/run-{run:03d}/shard-{shard:02d}"

def _execute_shard_observed(
    cluster: Cluster,
    workload: Workload,
    power_limit_w: float | None,
    task: ShardTask,
    trace_enabled: bool,
    monitor_enabled: bool = False,
    timeline_enabled: bool = False,
) -> tuple[MeasurementDataset, float, "SolverStats | None", "tuple | None",
           "tuple | None", "tuple | None"]:
    """Execute one shard, optionally under fresh shard-local observers.

    Every observed shard gets its *own* tracer, monitor, and timeline
    recorder — even on the serial path — activated thread-locally for the
    duration of the shard, so counter totals, span structure, the metric
    sample stream, and the event timeline are identical for any worker
    count or backend: the executors merge the returned payloads in
    canonical plan order afterwards.
    """
    if not trace_enabled and not monitor_enabled and not timeline_enabled:
        dataset, duration, solver = _execute_shard(
            cluster, workload, power_limit_w, task
        )
        return dataset, duration, solver, None, None, None
    with ExitStack() as stack:
        shard_tracer: Tracer | None = None
        shard_monitor: FleetMonitor | None = None
        shard_recorder: TimelineRecorder | None = None
        if monitor_enabled:
            # Shard monitors only collect; fleet-level aggregation happens
            # once, after the canonical-order merge (FleetMonitor.finalize).
            shard_monitor = FleetMonitor()
            stack.enter_context(activate_monitor(shard_monitor))
        if timeline_enabled:
            # Shard recorders buffer events locally; the campaign recorder
            # folds the payloads in plan order and only then assigns the
            # monotone logical clock — no wall time, no worker identity.
            shard_recorder = TimelineRecorder()
            stack.enter_context(activate_recorder(shard_recorder))
        if trace_enabled:
            shard_tracer = Tracer(
                track=_SHARD_TRACK.format(
                    day=task.day, run=task.run_index, shard=task.shard_index
                )
            )
            stack.enter_context(activate(shard_tracer))
            stack.enter_context(
                shard_tracer.span(
                    "shard",
                    category="shard",
                    day=task.day,
                    run_index=task.run_index,
                    shard_index=task.shard_index,
                    n_shards=task.n_shards,
                    n_gpus=task.n_gpus,
                )
            )
        dataset, duration, solver = _execute_shard(
            cluster, workload, power_limit_w, task
        )
    return (
        dataset,
        duration,
        solver,
        shard_tracer.to_payload() if shard_tracer is not None else None,
        shard_monitor.to_payload() if shard_monitor is not None else None,
        shard_recorder.to_payload() if shard_recorder is not None else None,
    )


def _shard_error(task: ShardTask, exc: BaseException) -> SimulationError:
    shard = (
        f", shard {task.shard_index + 1}/{task.n_shards}"
        if task.n_shards > 1
        else ""
    )
    return SimulationError(
        f"campaign shard failed (day={task.day}, run={task.run_index}"
        f"{shard}, {task.n_gpus} GPUs): {exc}"
    )


# -- process-pool plumbing ---------------------------------------------------
#
# The cluster and workload are shipped once per worker through the pool
# initializer (cheap: a Longhorn cluster pickles to ~70 kB); tasks then
# carry only their shard coordinates and GPU indices.

_WORKER_CONTEXT: dict[str, tuple] = {}


def _init_worker(
    cluster: Cluster,
    workload: Workload,
    power_limit_w: float | None,
    trace_enabled: bool,
    monitor_enabled: bool,
    timeline_enabled: bool,
) -> None:
    _WORKER_CONTEXT["campaign"] = (
        cluster, workload, power_limit_w, trace_enabled, monitor_enabled,
        timeline_enabled,
    )


def _run_task_in_worker(
    index: int, task: ShardTask
) -> tuple[int, MeasurementDataset, float, "SolverStats | None",
           "tuple | None", "tuple | None", "tuple | None"]:
    (cluster, workload, power_limit_w, trace_enabled, monitor_enabled,
     timeline_enabled) = _WORKER_CONTEXT["campaign"]
    (dataset, duration, solver, payload, mpayload,
     tpayload) = _execute_shard_observed(
        cluster, workload, power_limit_w, task, trace_enabled,
        monitor_enabled, timeline_enabled,
    )
    return index, dataset, duration, solver, payload, mpayload, tpayload


def make_executor(
    backend: str,
    n_workers: int,
    *,
    initializer: Callable | None = None,
    initargs: tuple = (),
) -> Executor:
    """Build the ``concurrent.futures`` executor the campaign engine uses.

    ``backend`` is ``"thread"`` or ``"process"``; process pools prefer the
    fork start method where available (the initializer payload still
    travels by pickle, so spawn-only platforms work too).  Exposed so
    other long-lived components — notably :mod:`repro.service`'s worker
    pool — reuse the exact pool construction (and its start-method
    choice) instead of growing a second one.
    """
    require(
        backend in ("thread", "process"),
        f"backend must be 'thread' or 'process', got {backend!r}",
    )
    require(n_workers >= 1, f"n_workers must be >= 1, got {n_workers}")
    if backend == "thread":
        return ThreadPoolExecutor(
            max_workers=n_workers, initializer=initializer, initargs=initargs
        )
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )
    return ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=ctx,
        initializer=initializer,
        initargs=initargs,
    )


def _make_executor(
    backend: str,
    n_workers: int,
    cluster: Cluster,
    workload: Workload,
    power_limit_w: float | None,
    trace_enabled: bool,
    monitor_enabled: bool,
    timeline_enabled: bool,
) -> Executor:
    if backend == "thread":
        return ThreadPoolExecutor(max_workers=n_workers)
    return make_executor(
        "process",
        n_workers,
        initializer=_init_worker,
        initargs=(cluster, workload, power_limit_w, trace_enabled,
                  monitor_enabled, timeline_enabled),
    )


# ---------------------------------------------------------------------------
# campaign executor
# ---------------------------------------------------------------------------


def execute_campaign(
    cluster: Cluster,
    workload: Workload,
    config: "CampaignConfig",
    parallel: ParallelConfig | None = None,
    progress: CampaignProgress | None = None,
    *,
    tracer: Tracer | None = None,
    manifest: Manifest | None = None,
    monitor: FleetMonitor | None = None,
    timeline: TimelineRecorder | None = None,
) -> MeasurementDataset:
    """Plan, execute (serially or in parallel), and merge a campaign.

    This is the engine behind :func:`repro.sim.campaign.run_campaign`;
    call that instead unless you are composing executors.

    When ``tracer`` is given, every shard runs under its own shard-local
    tracer (in whatever worker executes it) and the per-shard payloads are
    merged into ``tracer`` in canonical plan order after the result merge
    — so counter totals and span structure are independent of worker
    count and backend.  ``monitor`` works the same way for the fleet
    metrics pipeline: shard-local :class:`~repro.obs.metrics.FleetMonitor`
    instances collect run samples and hook counters, the payloads merge in
    plan order, and :meth:`~repro.obs.metrics.FleetMonitor.finalize` then
    derives the fleet-level registry — making the sample stream, health
    events, and registry totals invariant to ``workers=``.  When
    ``manifest`` is given, one
    :class:`~repro.obs.manifest.CampaignManifest` entry is appended after
    execution.  ``timeline`` receives the unified flight-recorder event
    stream: one campaign-lifecycle envelope plus every shard's per-run
    events, folded in plan order so the recorded timeline is byte-identical
    at any worker count (events carry no wall time at all).  No sink
    perturbs the campaign: outputs are bit-identical with or without them.
    """
    parallel = parallel if parallel is not None else ParallelConfig()
    trace = tracer is not None
    monitoring = monitor is not None
    recording = timeline is not None
    if trace:
        campaign_start, campaign_t0 = time.time(), time.perf_counter()
        plan_start, plan_t0 = time.time(), time.perf_counter()
    tasks = plan_shards(cluster, workload, config, parallel)
    if trace:
        tracer.record_span(
            "plan",
            category="campaign",
            track=tracer.track,
            start_s=plan_start,
            duration_s=time.perf_counter() - plan_t0,
            n_shards=len(tasks),
        )
    if progress is not None:
        progress.begin(len(tasks))
    if recording:
        # Only plan-determined fields: worker count and backend must not
        # leave a fingerprint on the byte-stable timeline.
        timeline.record(
            "campaign",
            "campaign_begin",
            cluster.name,
            workload=workload.name,
            days=config.days,
            runs_per_day=config.runs_per_day,
            coverage=config.coverage,
            power_limit_w=config.power_limit_w,
            n_shards=len(tasks),
            fleet_gpus=cluster.topology.n_gpus,
        )
    backend = parallel.resolved_backend()
    n_workers = min(parallel.effective_workers, len(tasks))
    if backend == "serial" or n_workers <= 1:
        parts, payloads, solvers, mpayloads, tpayloads = _execute_serial(
            cluster, workload, config, tasks, progress, trace, monitoring,
            recording,
        )
    else:
        parts, payloads, solvers, mpayloads, tpayloads = _execute_pool(
            cluster, workload, config, tasks, backend, n_workers, progress,
            trace, monitoring, recording,
        )
    if trace:
        merge_start, merge_t0 = time.time(), time.perf_counter()
    dataset = MeasurementDataset.concat(parts)
    if monitoring:
        # Same canonical-order fold as the tracer: plan position decides
        # merge order, so the monitor's run stream and counter totals are
        # identical for any worker layout.
        for mpayload in mpayloads:
            if mpayload is not None:
                monitor.merge_payload(mpayload)
        monitor.finalize(cluster.topology.gpu_labels)
    if trace:
        # Canonical-order merge: payloads are indexed by plan position, so
        # the fold below is identical for any worker layout.
        for payload in payloads:
            if payload is not None:
                tracer.merge_payload(payload)
        _synthesize_day_spans(tracer, tasks, payloads)
        tracer.record_span(
            "merge",
            category="campaign",
            track=tracer.track,
            start_s=merge_start,
            duration_s=time.perf_counter() - merge_t0,
            n_parts=len(parts),
        )
        tracer.add("campaign.shards", len(tasks))
        tracer.add("campaign.rows", dataset.n_rows)
        tracer.record_span(
            "campaign",
            category="campaign",
            track=tracer.track,
            start_s=campaign_start,
            duration_s=time.perf_counter() - campaign_t0,
            cluster=cluster.name,
            workload=workload.name,
            days=config.days,
            runs_per_day=config.runs_per_day,
            backend=backend,
            workers=n_workers,
        )
    if recording:
        # Same canonical-order fold: tpayloads are indexed by plan
        # position, so the merged event order — and the logical clock
        # assigned from it — is identical for any worker layout.
        for tpayload in tpayloads:
            if tpayload is not None:
                timeline.merge_payload(tpayload)
        end_totals = SolverStats()
        for solver in solvers:
            if solver is not None:
                end_totals.merge(solver)
        timeline.record(
            "campaign",
            "campaign_end",
            cluster.name,
            rows=dataset.n_rows,
            n_shards=len(tasks),
            solves=end_totals.solves,
            batches=end_totals.batches,
            measurements=measurement_digest(
                dataset.column(METRIC_PERFORMANCE),
                dataset.column(METRIC_FREQUENCY),
                dataset.column(METRIC_POWER),
                dataset.column(METRIC_TEMPERATURE),
            ),
        )
    if manifest is not None:
        totals = SolverStats()
        for solver in solvers:
            if solver is not None:
                totals.merge(solver)
        manifest.add(
            build_campaign_manifest(
                cluster, workload, config, parallel, len(tasks), dataset,
                totals,
            )
        )
    return dataset


def _synthesize_day_spans(
    tracer: Tracer, tasks: list[ShardTask], payloads: list["tuple | None"]
) -> None:
    """Record one span per campaign day covering its shard spans.

    Day spans live on their own ``day-{d:03d}`` tracks (not inside shard
    tracks) because in parallel execution a day's shards overlap in wall
    time; a dedicated per-day row shows the day envelope without breaking
    the time-containment nesting inside shard tracks.
    """
    bounds: dict[int, list] = {}
    for task, payload in zip(tasks, payloads):
        if payload is None:
            continue
        spans, _ = payload
        for record in spans:
            if record.name != "shard":
                continue
            entry = bounds.setdefault(
                task.day, [record.start_s, record.end_s, 0]
            )
            entry[0] = min(entry[0], record.start_s)
            entry[1] = max(entry[1], record.end_s)
            entry[2] += 1
    for day in sorted(bounds):
        start, end, n_shards = bounds[day]
        tracer.record_span(
            "day",
            category="campaign",
            track=f"day-{day:03d}",
            start_s=start,
            duration_s=max(0.0, end - start),
            day=day,
            n_shards=n_shards,
        )


def _record(
    progress: CampaignProgress | None,
    task: ShardTask,
    dataset: MeasurementDataset,
    duration: float,
    solver: "SolverStats | None",
) -> None:
    if progress is None:
        return
    progress.record(
        ShardTiming(
            day=task.day,
            run_index=task.run_index,
            shard_index=task.shard_index,
            n_shards=task.n_shards,
            n_rows=dataset.n_rows,
            duration_s=duration,
            solver=solver,
        )
    )


def _execute_serial(
    cluster: Cluster,
    workload: Workload,
    config: "CampaignConfig",
    tasks: list[ShardTask],
    progress: CampaignProgress | None,
    trace_enabled: bool,
    monitor_enabled: bool,
    timeline_enabled: bool,
) -> tuple[list[MeasurementDataset], list["tuple | None"],
           list["SolverStats | None"], list["tuple | None"],
           list["tuple | None"]]:
    parts: list[MeasurementDataset] = []
    payloads: list["tuple | None"] = []
    solvers: list["SolverStats | None"] = []
    mpayloads: list["tuple | None"] = []
    tpayloads: list["tuple | None"] = []
    for task in tasks:
        try:
            dataset, duration, solver, payload, mpayload, tpayload = (
                _execute_shard_observed(
                    cluster, workload, config.power_limit_w, task,
                    trace_enabled, monitor_enabled, timeline_enabled,
                )
            )
        except SimulationError as exc:
            raise _shard_error(task, exc) from exc
        _record(progress, task, dataset, duration, solver)
        parts.append(dataset)
        payloads.append(payload)
        solvers.append(solver)
        mpayloads.append(mpayload)
        tpayloads.append(tpayload)
    return parts, payloads, solvers, mpayloads, tpayloads


def _execute_pool(
    cluster: Cluster,
    workload: Workload,
    config: "CampaignConfig",
    tasks: list[ShardTask],
    backend: str,
    n_workers: int,
    progress: CampaignProgress | None,
    trace_enabled: bool,
    monitor_enabled: bool,
    timeline_enabled: bool,
) -> tuple[list[MeasurementDataset], list["tuple | None"],
           list["SolverStats | None"], list["tuple | None"],
           list["tuple | None"]]:
    parts: list[MeasurementDataset | None] = [None] * len(tasks)
    payloads: list["tuple | None"] = [None] * len(tasks)
    solvers: list["SolverStats | None"] = [None] * len(tasks)
    mpayloads: list["tuple | None"] = [None] * len(tasks)
    tpayloads: list["tuple | None"] = [None] * len(tasks)
    executor = _make_executor(
        backend, n_workers, cluster, workload, config.power_limit_w,
        trace_enabled, monitor_enabled, timeline_enabled,
    )
    submit: Callable
    if backend == "thread":
        # Threads share the cluster object directly; no initializer needed.
        def submit(i: int, t: ShardTask):
            return executor.submit(
                _run_thread_task, cluster, workload, config.power_limit_w,
                i, t, trace_enabled, monitor_enabled, timeline_enabled,
            )
    else:
        def submit(i: int, t: ShardTask):
            return executor.submit(_run_task_in_worker, i, t)

    try:
        futures = {submit(i, t): t for i, t in enumerate(tasks)}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_EXCEPTION)
            for future in done:
                task = futures[future]
                try:
                    (index, dataset, duration, solver, payload,
                     mpayload, tpayload) = future.result()
                except Exception as exc:
                    # Fail fast with shard context rather than letting the
                    # remaining futures drain (or the caller hang on a
                    # half-merged campaign).
                    raise _shard_error(task, exc) from exc
                parts[index] = dataset
                payloads[index] = payload
                solvers[index] = solver
                mpayloads[index] = mpayload
                tpayloads[index] = tpayload
                _record(progress, task, dataset, duration, solver)
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    assert all(p is not None for p in parts)
    return parts, payloads, solvers, mpayloads, tpayloads  # type: ignore[return-value]


def _run_thread_task(
    cluster: Cluster,
    workload: Workload,
    power_limit_w: float | None,
    index: int,
    task: ShardTask,
    trace_enabled: bool,
    monitor_enabled: bool,
    timeline_enabled: bool,
) -> tuple[int, MeasurementDataset, float, "SolverStats | None",
           "tuple | None", "tuple | None", "tuple | None"]:
    (dataset, duration, solver, payload, mpayload,
     tpayload) = _execute_shard_observed(
        cluster, workload, power_limit_w, task, trace_enabled,
        monitor_enabled, timeline_enabled,
    )
    return index, dataset, duration, solver, payload, mpayload, tpayload


def default_worker_count(cap: int = 4) -> int:
    """A sensible worker count for this machine: ``min(cap, cpu_count)``.

    Used by the benchmark suite so figure scripts parallelize on capable
    machines and degrade to the serial path on single-core CI runners.
    """
    return max(1, min(cap, os.cpu_count() or 1))
