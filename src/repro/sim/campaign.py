"""Measurement campaigns: many runs, many days, most of the fleet.

The paper's methodology (Section III): measure >90% of each cluster's GPUs,
repeat over days and weeks to rule out transients, use exclusive node
allocations, and record everything.  :func:`run_campaign` reproduces that
protocol and emits a long-form :class:`~repro.telemetry.dataset.MeasurementDataset`
with one row per (GPU, run), carrying the identity columns every analysis
in :mod:`repro.core` groups by.

Execution is delegated to :mod:`repro.sim.parallel`, which partitions the
(day, run) grid — and, on very large fleets, GPU-index shards within a run
— into a deterministic shard plan.  Pass ``workers=N`` (or a full
:class:`~repro.sim.parallel.ParallelConfig`) to fan the plan out across
processes; the result is bit-identical to the serial execution.

Attach a :class:`~repro.telemetry.progress.CampaignProgress` to watch shards
complete; besides per-shard timings, its ``solver_stats`` property
aggregates the DVFS ladder-search counters
(:class:`~repro.gpu.dvfs.SolverStats`) across the campaign — how much of
the dense p-state grid the steady-state solver avoided evaluating.

The steady-state solver backing every run is selected per controller
(``ladder``, ``fleet`` or ``grid`` — all bit-identical; see
docs/PERFORMANCE.md).  ``REPRO_DVFS_SOLVER`` switches the default
fleet-wide, including inside campaign worker processes, so a campaign's
CSV output is byte-identical under any solver at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.facility import FacilityModel
from ..config import require
from ..errors import ConfigError
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.progress import CampaignProgress
from ..telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)
from ..workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..obs.manifest import Manifest
    from ..obs.metrics import FleetMonitor
    from ..obs.timeline import TimelineRecorder
    from ..obs.tracer import Tracer
    from .parallel import ParallelConfig

__all__ = ["CampaignConfig", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of a measurement campaign.

    Parameters
    ----------
    days:
        Calendar days covered (the paper: 1-8 weeks depending on cluster).
    runs_per_day:
        Independent runs per covered GPU per day.
    coverage:
        Fraction of nodes reachable each day (shared clusters rarely grant
        everything; Vortex yielded 184 of 216 GPUs).
    power_limit_w:
        Administrative power cap applied to every run (CloudLab sweeps).
    """

    days: int = 7
    runs_per_day: int = 1
    coverage: float = 1.0
    power_limit_w: float | None = None

    def __post_init__(self) -> None:
        # Counts must be genuine integers: a float like 2.5 would silently
        # truncate in range() loops and shard plans, so reject it outright
        # (bool is an int subclass but is surely a caller mistake here).
        for name in ("days", "runs_per_day"):
            value = getattr(self, name)
            require(
                isinstance(value, int) and not isinstance(value, bool),
                f"{name} must be an integer, got {value!r}",
            )
        require(self.days >= 1, f"days must be >= 1, got {self.days}")
        require(self.runs_per_day >= 1,
                f"runs_per_day must be >= 1, got {self.runs_per_day}")
        require(0 < self.coverage <= 1, "coverage must be in (0, 1]")
        require(
            self.power_limit_w is None or self.power_limit_w > 0,
            f"power_limit_w must be positive, got {self.power_limit_w}",
        )


def run_campaign(
    cluster: Cluster,
    workload: Workload,
    config: CampaignConfig | None = None,
    *,
    workers: int | None = None,
    parallel: "ParallelConfig | None" = None,
    progress: CampaignProgress | None = None,
    tracer: "Tracer | None" = None,
    manifest: "Manifest | None" = None,
    monitor: "FleetMonitor | None" = None,
    timeline: "TimelineRecorder | None" = None,
) -> MeasurementDataset:
    """Execute a campaign and return the long-form measurement table.

    Columns: ``cluster``, ``workload``, ``day``, ``weekday``, ``run``,
    ``gpu_index``, ``gpu_label``, ``node_label``, ``cabinet`` (plus ``row``
    / ``column`` on grid topologies), the four reported metrics, the
    ``true_*`` ground-truth columns, cap flags, and ``defect_kind`` (ground
    truth for validation — a real operator would not have it).

    Parameters
    ----------
    cluster, workload, config:
        What to measure, with what, for how long.
    workers:
        Shorthand for ``parallel=ParallelConfig(workers=...)``: fan the
        campaign's shard plan out over this many worker processes.
        ``None`` or ``1`` executes serially in-process.  The returned
        dataset is exactly equal — every column, bit for bit — regardless
        of the worker count (see :mod:`repro.sim.parallel`).
    parallel:
        Full sharding/execution configuration; mutually exclusive with
        ``workers``.
    progress:
        Optional :class:`~repro.telemetry.progress.CampaignProgress` sink
        receiving one per-shard timing record as shards complete.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` collecting spans and
        counters for the campaign (see :mod:`repro.obs`).  Tracing never
        perturbs the measurement: the dataset is byte-identical with or
        without it.
    manifest:
        Optional :class:`~repro.obs.manifest.Manifest`; one audit entry
        (config digest, RNG roots, solver totals, result digest) is
        appended per executed campaign.
    monitor:
        Optional :class:`~repro.obs.metrics.FleetMonitor` collecting the
        fleet metrics stream (per-GPU gauges, histograms, run samples for
        health analysis).  Like the tracer it is merged in canonical plan
        order and never perturbs the measurement.
    timeline:
        Optional :class:`~repro.obs.timeline.TimelineRecorder` receiving
        the unified flight-recorder event stream (campaign lifecycle plus
        one event per simulated run).  Events carry a logical clock only —
        the recorded timeline is byte-identical at any worker count.
    """
    from .parallel import ParallelConfig, execute_campaign

    config = config if config is not None else CampaignConfig()
    if workers is not None:
        if parallel is not None:
            raise ConfigError(
                "pass either workers= or parallel=, not both"
            )
        parallel = ParallelConfig(workers=workers)
    return execute_campaign(
        cluster, workload, config, parallel=parallel, progress=progress,
        tracer=tracer, manifest=manifest, monitor=monitor, timeline=timeline,
    )


def _to_dataset(
    cluster: Cluster,
    workload: Workload,
    day: int,
    run_index: int,
    result,
) -> MeasurementDataset:
    topo = cluster.topology
    idx = result.gpu_indices
    n = idx.shape[0]
    node_idx = topo.node_of_gpu[idx]
    columns: dict[str, np.ndarray] = {
        "cluster": np.full(n, cluster.name, dtype=object),
        "workload": np.full(n, workload.name, dtype=object),
        "day": np.full(n, day, dtype=np.int64),
        "weekday": np.full(n, FacilityModel.weekday_name(day), dtype=object),
        "run": np.full(n, run_index, dtype=np.int64),
        "gpu_index": idx.astype(np.int64),
        "gpu_label": np.asarray(
            [topo.gpu_labels[i] for i in idx], dtype=object
        ),
        "node_label": np.asarray(
            [topo.node_labels[i] for i in node_idx], dtype=object
        ),
        "cabinet": np.asarray(
            [topo.cabinet_labels[c] for c in topo.cabinet_of_gpu[idx]],
            dtype=object,
        ),
        METRIC_PERFORMANCE: result.performance_ms,
        METRIC_FREQUENCY: result.frequency_mhz,
        METRIC_POWER: result.power_w,
        METRIC_TEMPERATURE: result.temperature_c,
        "true_frequency_mhz": result.true_frequency_mhz,
        "true_power_w": result.true_power_w,
        "true_temperature_c": result.true_temperature_c,
        "power_capped": result.power_capped,
        "thermally_capped": result.thermally_capped,
        "defect_kind": cluster.defects.kind[idx].astype(np.int64),
    }
    if topo.has_grid:
        rows = topo.row_of_gpu[idx]
        columns["row"] = np.asarray(
            [topo.row_labels[r] for r in rows], dtype=object
        )
        columns["column"] = (topo.column_of_gpu[idx] + 1).astype(np.int64)
    return MeasurementDataset(columns)
