"""Measurement campaigns: many runs, many days, most of the fleet.

The paper's methodology (Section III): measure >90% of each cluster's GPUs,
repeat over days and weeks to rule out transients, use exclusive node
allocations, and record everything.  :func:`run_campaign` reproduces that
protocol and emits a long-form :class:`~repro.telemetry.dataset.MeasurementDataset`
with one row per (GPU, run), carrying the identity columns every analysis
in :mod:`repro.core` groups by.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.allocator import ExclusiveNodeAllocator
from ..cluster.cluster import Cluster
from ..cluster.facility import FacilityModel
from ..config import require
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)
from ..workloads.base import Workload
from .run import simulate_run

__all__ = ["CampaignConfig", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of a measurement campaign.

    Parameters
    ----------
    days:
        Calendar days covered (the paper: 1-8 weeks depending on cluster).
    runs_per_day:
        Independent runs per covered GPU per day.
    coverage:
        Fraction of nodes reachable each day (shared clusters rarely grant
        everything; Vortex yielded 184 of 216 GPUs).
    power_limit_w:
        Administrative power cap applied to every run (CloudLab sweeps).
    """

    days: int = 7
    runs_per_day: int = 1
    coverage: float = 1.0
    power_limit_w: float | None = None

    def __post_init__(self) -> None:
        require(self.days >= 1, "days must be >= 1")
        require(self.runs_per_day >= 1, "runs_per_day must be >= 1")
        require(0 < self.coverage <= 1, "coverage must be in (0, 1]")


def run_campaign(
    cluster: Cluster,
    workload: Workload,
    config: CampaignConfig | None = None,
) -> MeasurementDataset:
    """Execute a campaign and return the long-form measurement table.

    Columns: ``cluster``, ``workload``, ``day``, ``weekday``, ``run``,
    ``gpu_index``, ``gpu_label``, ``node_label``, ``cabinet`` (plus ``row``
    / ``column`` on grid topologies), the four reported metrics, the
    ``true_*`` ground-truth columns, cap flags, and ``defect_kind`` (ground
    truth for validation — a real operator would not have it).
    """
    config = config if config is not None else CampaignConfig()
    topo = cluster.topology
    allocator = ExclusiveNodeAllocator(topo)

    parts: list[MeasurementDataset] = []
    for day in range(config.days):
        day_rng = cluster.rng_factory.child(f"campaign-day-{day}").generator(
            "coverage"
        )
        allocations = allocator.sweep(coverage=config.coverage, rng=day_rng)
        gpu_indices = np.concatenate([a.gpu_indices for a in allocations])
        for run_index in range(config.runs_per_day):
            result = simulate_run(
                cluster,
                workload,
                day=day,
                run_index=run_index,
                gpu_indices=gpu_indices,
                power_limit_w=config.power_limit_w,
            )
            parts.append(_to_dataset(cluster, workload, day, run_index, result))
    return MeasurementDataset.concat(parts)


def _to_dataset(
    cluster: Cluster,
    workload: Workload,
    day: int,
    run_index: int,
    result,
) -> MeasurementDataset:
    topo = cluster.topology
    idx = result.gpu_indices
    n = idx.shape[0]
    node_idx = topo.node_of_gpu[idx]
    columns: dict[str, np.ndarray] = {
        "cluster": np.full(n, cluster.name, dtype=object),
        "workload": np.full(n, workload.name, dtype=object),
        "day": np.full(n, day, dtype=np.int64),
        "weekday": np.full(n, FacilityModel.weekday_name(day), dtype=object),
        "run": np.full(n, run_index, dtype=np.int64),
        "gpu_index": idx.astype(np.int64),
        "gpu_label": np.asarray(
            [topo.gpu_labels[i] for i in idx], dtype=object
        ),
        "node_label": np.asarray(
            [topo.node_labels[i] for i in node_idx], dtype=object
        ),
        "cabinet": np.asarray(
            [topo.cabinet_labels[c] for c in topo.cabinet_of_gpu[idx]],
            dtype=object,
        ),
        METRIC_PERFORMANCE: result.performance_ms,
        METRIC_FREQUENCY: result.frequency_mhz,
        METRIC_POWER: result.power_w,
        METRIC_TEMPERATURE: result.temperature_c,
        "true_frequency_mhz": result.true_frequency_mhz,
        "true_power_w": result.true_power_w,
        "true_temperature_c": result.true_temperature_c,
        "power_capped": result.power_capped,
        "thermally_capped": result.thermally_capped,
        "defect_kind": cluster.defects.kind[idx].astype(np.int64),
    }
    if topo.has_grid:
        rows = topo.row_of_gpu[idx]
        columns["row"] = np.asarray(
            [topo.row_labels[r] for r in rows], dtype=object
        )
        columns["column"] = (topo.column_of_gpu[idx] + 1).astype(np.int64)
    return MeasurementDataset(columns)
