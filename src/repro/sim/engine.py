"""Time-stepped reactive simulator (the transients of Figs. 11 and 25).

The steady-state solver answers *where* the DVFS controller lands; this
engine shows *how*: kernels launch, frequency boosts, power overshoots the
TDP, the firmware steps the ladder down, temperature relaxes on its RC
constant.  It integrates a subset of GPUs (time-series figures track one or
two) at a fixed step with the reactive controller running at the firmware's
control interval.

Work accounting is explicit: a kernel completes when its compute leg has
retired ``compute_flop`` (at the instantaneous clock) and its memory leg
has moved ``memory_bytes`` — so kernel durations emerge from the frequency
trajectory instead of being prescribed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require
from ..errors import SimulationError
from ..gpu.device import GPUFleet
from ..gpu.dvfs import SOLVER_FLEET
from ..obs.metrics import active_monitor
from ..obs.tracer import active_tracer
from ..workloads.base import Workload

__all__ = ["EngineConfig", "EngineState", "Engine"]

#: Fast-cap clamp schedule: at most this many rounds, each dropping the
#: over-cap GPUs this many ladder rungs (floored at the bottom).  Shared by
#: the sequential and batched clamp paths so they visit identical levels.
_CLAMP_MAX_ROUNDS = 4
_CLAMP_DOWN_STEP = 4


@dataclass(frozen=True)
class EngineConfig:
    """Integration settings for the reactive engine."""

    #: Integration step (seconds).  Must not exceed the control interval.
    dt_s: float = 0.005
    #: Host-side gap between consecutive kernel launches (seconds).
    launch_gap_s: float = 0.015
    #: Idle activity between kernels.
    idle_activity: float = 0.02
    #: Acceleration factor for the thermal transient: the RC time constant
    #: of a heatsinked GPU is minutes, so tests and short traces can
    #: fast-forward the thermal state without touching the electrical
    #: dynamics.  1.0 integrates in real time.
    thermal_time_scale: float = 1.0

    def __post_init__(self) -> None:
        require(self.dt_s > 0, "dt_s must be positive")
        require(self.launch_gap_s >= 0, "launch_gap_s must be >= 0")
        require(0 <= self.idle_activity <= 1, "idle_activity must be in [0, 1]")
        require(self.thermal_time_scale >= 1.0,
                "thermal_time_scale must be >= 1")


@dataclass
class EngineState:
    """Mutable integration state (arrays over the engine's GPUs)."""

    time_s: float
    pstate_index: np.ndarray
    temperature_c: np.ndarray
    kernel_active: np.ndarray       # bool
    compute_remaining: np.ndarray   # FLOPs left in the current kernel
    memory_remaining: np.ndarray    # bytes left in the current kernel
    gap_remaining_s: np.ndarray     # host gap left before the next launch
    kernels_completed: np.ndarray   # int
    kernel_start_times: list[float]


class Engine:
    """Reactive DVFS/thermal integrator for a (small) GPU fleet.

    Parameters
    ----------
    fleet:
        GPUs to integrate (time-series studies use 1-4).
    workload:
        Single-phase workloads only — the engine exists for SGEMM-style
        traces; phase mixtures are a steady-state concern.
    config:
        Integration settings.
    power_limit_w:
        Optional administrative cap.
    """

    def __init__(
        self,
        fleet: GPUFleet,
        workload: Workload,
        config: EngineConfig | None = None,
        power_limit_w: float | None = None,
    ) -> None:
        if len(workload.phases) != 1:
            raise SimulationError(
                "the reactive engine integrates single-phase workloads; "
                f"{workload.name} has {len(workload.phases)} phases"
            )
        self.fleet = fleet
        self.workload = workload
        self.phase = workload.phases[0]
        self.config = config if config is not None else EngineConfig()
        if self.config.dt_s * 1000.0 > fleet.spec.dvfs_interval_ms:
            raise SimulationError(
                f"dt {self.config.dt_s * 1e3:.1f} ms exceeds the firmware "
                f"control interval {fleet.spec.dvfs_interval_ms} ms"
            )
        self.cap = fleet.power_cap_w(power_limit_w)
        self.f_ceiling_index = fleet.spec.nearest_pstate_index(
            fleet.frequency_cap_mhz()
        )
        self._steps_per_control = max(
            1, int(round(fleet.spec.dvfs_interval_ms / 1000.0 / self.config.dt_s))
        )
        # Loop invariants of the integration: per-GPU efficiency/bandwidth
        # and the p-state ladder never change mid-run, so compute them once
        # instead of per step (and per fast-cap clamp iteration).
        self._steps = fleet.spec.pstate_array()
        self._efficiency = fleet.throughput_efficiency()
        self._bandwidth = fleet.memory_bandwidth_gbs()
        # Under the fleet solver the fast-cap clamp also runs batched: all
        # candidate drop levels are settled in one flat power evaluation
        # instead of round-by-round.  Both paths are bit-identical (the
        # candidate levels depend only on the entry state), so this is
        # purely an execution-shape switch.
        self._batched_clamp = fleet.controller.solver == SOLVER_FLEET
        n = fleet.n
        self.state = EngineState(
            time_s=0.0,
            pstate_index=np.minimum(
                np.full(n, fleet.spec.n_pstates - 1, dtype=np.int64),
                self.f_ceiling_index,
            ),
            temperature_c=fleet.coolant_c.copy(),
            kernel_active=np.zeros(n, dtype=bool),
            compute_remaining=np.zeros(n),
            memory_remaining=np.zeros(n),
            gap_remaining_s=np.zeros(n),
            kernels_completed=np.zeros(n, dtype=np.int64),
            kernel_start_times=[],
        )
        self._tick = 0

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """GPUs integrated by this engine."""
        return self.fleet.n

    def frequency_mhz(self) -> np.ndarray:
        """Instantaneous core clocks."""
        return self._steps[self.state.pstate_index]

    def instantaneous_power(self) -> np.ndarray:
        """Board power at the current state."""
        s = self.state
        act = np.where(
            s.kernel_active, self.phase.activity, self.config.idle_activity
        )
        dram = np.where(s.kernel_active, self.phase.dram_utilization, 0.02)
        return self.fleet.power_model.total_power(
            self.frequency_mhz(),
            s.temperature_c,
            act,
            dram,
            self._efficiency,
        )

    def _instantaneous_power_at(self, indices: np.ndarray) -> np.ndarray:
        """Board power for the GPUs at ``indices`` only.

        Elementwise-identical to ``instantaneous_power()[indices]`` — the
        power model is a per-GPU expression with no cross-GPU terms — but
        costs O(len(indices)) instead of O(n).  Used by the fast-cap clamp,
        which only ever changes the state of over-cap GPUs.
        """
        s = self.state
        active = s.kernel_active[indices]
        act = np.where(active, self.phase.activity, self.config.idle_activity)
        dram = np.where(active, self.phase.dram_utilization, 0.02)
        return self.fleet.power_model.total_power(
            self._steps[s.pstate_index[indices]],
            s.temperature_c[indices],
            act,
            dram,
            self._efficiency[indices],
            indices=indices,
        )

    def _clamp_fast_cap_batched(
        self,
        power: np.ndarray,
        over_idx: np.ndarray,
        cap_fast: np.ndarray,
    ) -> int:
        """Batched fast-cap clamp: all drop rounds in one power evaluation.

        The sequential clamp lowers over-cap GPUs ``_CLAMP_DOWN_STEP``
        rungs per round and re-evaluates, up to ``_CLAMP_MAX_ROUNDS``
        times.  Each round's level depends only on the entry p-state (not
        on the intervening power readings) and temperature is frozen for
        the whole clamp, so every candidate level can be evaluated in one
        flat batch and the first feasible one selected per GPU — the
        resulting p-states, power readings, and re-evaluation counts are
        bit-identical to the sequential path's.  Returns the re-evaluation
        count (each GPU counts once per round it would have participated
        in: ``j + 1`` when candidate ``j`` is its first feasible level,
        all rounds when none is).
        """
        s = self.state
        m = int(over_idx.size)
        idx0 = s.pstate_index[over_idx]
        cand = np.maximum(
            idx0[:, None]
            - _CLAMP_DOWN_STEP * np.arange(1, _CLAMP_MAX_ROUNDS + 1),
            0,
        )
        # Flat (m * rounds,) layout: per-GPU state enters by repetition,
        # keeping every elementwise op on full-length inner loops.
        rep = np.repeat(over_idx, _CLAMP_MAX_ROUNDS)
        active = s.kernel_active[rep]
        act = np.where(active, self.phase.activity, self.config.idle_activity)
        dram = np.where(active, self.phase.dram_utilization, 0.02)
        p_cand = self.fleet.power_model.total_power(
            self._steps[cand.ravel()],
            s.temperature_c[rep],
            act,
            dram,
            self._efficiency[rep],
            indices=rep,
        ).reshape(m, _CLAMP_MAX_ROUNDS)
        feas = p_cand <= cap_fast[over_idx, None]
        any_f = feas.any(axis=1)
        j_pick = np.where(
            any_f, np.argmax(feas, axis=1), _CLAMP_MAX_ROUNDS - 1
        )
        rows = np.arange(m)
        s.pstate_index[over_idx] = cand[rows, j_pick]
        power[over_idx] = p_cand[rows, j_pick]
        return int(np.where(any_f, j_pick + 1, _CLAMP_MAX_ROUNDS).sum())

    def step(self) -> None:
        """Advance the integration by one dt."""
        s = self.state
        cfg = self.config
        dt = cfg.dt_s

        # Launch kernels where the host gap has elapsed.
        ready = (~s.kernel_active) & (s.gap_remaining_s <= 0.0)
        if ready.any():
            s.kernel_active[ready] = True
            s.compute_remaining[ready] = self.phase.compute_flop
            s.memory_remaining[ready] = self.phase.memory_bytes
            s.kernel_start_times.append(s.time_s)
        s.gap_remaining_s = np.maximum(s.gap_remaining_s - dt, 0.0)

        power = self.instantaneous_power()
        s.temperature_c = self.fleet.thermal_model.step(
            s.temperature_c, power, dt * cfg.thermal_time_scale
        )

        # Retire work at the instantaneous clock (dt in ms for the roofline
        # throughput constants).
        f = self.frequency_mhz()
        eff = self._efficiency
        active = s.kernel_active
        if active.any():
            dt_ms = dt * 1000.0
            s.compute_remaining[active] -= (
                f[active] * self.fleet.spec.compute_throughput * eff[active] * dt_ms
            )
            s.memory_remaining[active] -= (
                self._bandwidth[active] * 1.0e6 * dt_ms
            )
            done = active & (s.compute_remaining <= 0) & (s.memory_remaining <= 0)
            if done.any():
                s.kernel_active[done] = False
                s.kernels_completed[done] += 1
                s.gap_remaining_s[done] = cfg.launch_gap_s

        # Hardware fast cap: board power limits clamp within microseconds
        # (voltage droop detection), far faster than the firmware control
        # interval — without this, every kernel launch would briefly report
        # hundreds of watts over a POWER_DELIVERY cap, which real boards
        # (and Fig. 25) never show.  Only the over-cap GPUs change state, so
        # only their power is re-evaluated; GPUs under the cap keep the
        # board power already computed above, bit for bit.
        cap_fast = self.cap * 1.02
        over_idx = np.flatnonzero(power > cap_fast)
        clamp_reevals = 0
        if over_idx.size and self._batched_clamp:
            clamp_reevals = self._clamp_fast_cap_batched(
                power, over_idx, cap_fast
            )
        else:
            for _ in range(_CLAMP_MAX_ROUNDS):
                if over_idx.size == 0:
                    break
                clamp_reevals += int(over_idx.size)
                s.pstate_index[over_idx] = np.maximum(
                    s.pstate_index[over_idx] - _CLAMP_DOWN_STEP, 0
                )
                power[over_idx] = self._instantaneous_power_at(over_idx)
                over_idx = over_idx[power[over_idx] > cap_fast[over_idx]]

        # Firmware control tick.
        self._tick += 1
        control_tick = self._tick % self._steps_per_control == 0
        if control_tick:
            new_idx = self.fleet.controller.control_step(
                s.pstate_index, power, s.temperature_c, self.cap
            )
            s.pstate_index = np.minimum(new_idx, self.f_ceiling_index)

        tracer = active_tracer()
        if tracer is not None:
            tracer.add("engine.steps", 1)
            if control_tick:
                tracer.add("engine.control_ticks", 1)
            if clamp_reevals:
                tracer.add("engine.clamp_reevaluations", clamp_reevals)
        monitor = active_monitor()
        if monitor is not None:
            # Instantaneous post-clamp state: what a per-step sensor scrape
            # would see.  Read-only — nothing here feeds the integration.
            monitor.observe_engine_step(
                self.frequency_mhz(), power, s.temperature_c
            )

        s.time_s += dt

    def run_for(self, duration_s: float) -> None:
        """Integrate for ``duration_s`` of simulated time."""
        if duration_s <= 0:
            raise SimulationError(f"duration must be positive, got {duration_s}")
        steps = int(round(duration_s / self.config.dt_s))
        for _ in range(steps):
            self.step()
