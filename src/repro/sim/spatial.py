"""Spatial and temporal interference effects (Section VII, future work).

The paper's methodology deliberately eliminated these with exclusive node
allocations and staggered runs, and explicitly defers them: "spatial
effects would be relevant for other scenarios like cloud computing or
enterprise clusters where GPUs are allocated individually.  We plan to
study both spatial and temporal (i.e., variability due to a preceding job
run on the same GPU) effects in the future."  This module is that study,
on the simulated fleet:

* **Spatial**: GPUs in one chassis share airflow and a power envelope; a
  neighbour's dissipation pre-heats the coolant your GPU sees.  The
  coupling strength is a property of the cooling technology — serial
  airflow couples strongly, cold plates barely at all — so the spatial
  penalty is predicted to be an air-cooled problem.
* **Temporal**: a job that starts on a GPU still hot from its predecessor
  spends its early portion with less thermal/leakage headroom; the penalty
  decays on the RC time constant and matters only for jobs shorter than a
  few constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..config import require, require_in_range
from ..errors import SimulationError
from ..workloads.base import Workload

__all__ = [
    "NEIGHBOR_COUPLING_C_PER_W",
    "SharedNodeResult",
    "simulate_with_neighbors",
    "spatial_penalty",
    "temporal_soak_slowdown",
]

#: Degrees of local coolant pre-heat per watt of same-node neighbour
#: dissipation, by cooling technology.  Serial airflow through a chassis
#: couples an order of magnitude more strongly than cold plates.
NEIGHBOR_COUPLING_C_PER_W = {
    "air": 0.016,
    "oil": 0.006,
    "water": 0.002,
}

#: Fixed-point sweeps for the thermal coupling (power <-> coolant).
_COUPLING_ITERS = 4


@dataclass(frozen=True)
class SharedNodeResult:
    """Probe-GPU measurements with neighbours active vs idle."""

    probe_gpu_indices: np.ndarray
    performance_idle_ms: np.ndarray       # neighbours idle (paper's protocol)
    performance_shared_ms: np.ndarray     # neighbours under load
    temperature_idle_c: np.ndarray
    temperature_shared_c: np.ndarray
    frequency_idle_mhz: np.ndarray
    frequency_shared_mhz: np.ndarray

    @property
    def slowdown(self) -> np.ndarray:
        """Per-probe runtime inflation caused by the neighbours."""
        return self.performance_shared_ms / self.performance_idle_ms


def _solve_with_coupling(
    fleet,
    node_of_gpu: np.ndarray,
    activity: np.ndarray,
    dram: np.ndarray,
    coupling_c_per_w: float,
    rng: np.random.Generator,
):
    """Fixed point of (DVFS settle <-> neighbour coolant pre-heat)."""
    base_coolant = fleet.coolant_c.copy()
    efficiency = fleet.throughput_efficiency()
    cap = fleet.power_cap_w()
    f_cap = fleet.frequency_cap_mhz()

    current = fleet
    op = None
    for _ in range(_COUPLING_ITERS):
        op = current.controller.solve_steady(
            activity, dram, efficiency, power_cap_w=cap, f_cap_mhz=f_cap,
            rng=rng,
        )
        if coupling_c_per_w == 0.0:
            break
        # Neighbour heat: the node's total dissipation minus your own.
        node_totals = np.zeros(int(node_of_gpu.max()) + 1)
        np.add.at(node_totals, node_of_gpu, op.power_w)
        neighbour_w = node_totals[node_of_gpu] - op.power_w
        current = fleet.with_coolant(
            base_coolant + coupling_c_per_w * neighbour_w
        )
    return op


def simulate_with_neighbors(
    cluster: Cluster,
    workload: Workload,
    neighbor_activity: float = 0.8,
    neighbor_dram: float = 0.3,
    day: int = 0,
    run_index: int = 0,
) -> SharedNodeResult:
    """Probe one GPU per node while its neighbours run a background load.

    The probe occupies slot 0 of every node (single-GPU allocation, cloud
    style); slots 1..w-1 either idle (the paper's exclusive protocol) or
    run a load with the given activity/DRAM utilization.  Returns both
    settled states so the spatial penalty is a controlled difference.
    """
    if workload.is_multi_gpu:
        raise SimulationError(
            "spatial probing uses single-GPU workloads (cloud allocation)"
        )
    require_in_range(neighbor_activity, 0.0, 1.0, "neighbor_activity")
    require_in_range(neighbor_dram, 0.0, 1.0, "neighbor_dram")

    topo = cluster.topology
    fleet = cluster.fleet_for_day(day)
    rng_factory = cluster.rng_factory.child(
        f"spatial-{workload.name}-day-{day}-idx-{run_index}"
    )
    spec = fleet.spec
    node_of = topo.node_of_gpu
    probe = topo.slot_of_gpu == 0

    act_probe, dram_probe = workload.steady_load(
        spec.f_max_mhz, spec.compute_throughput, spec.mem_bandwidth_gbs
    )
    coupling = NEIGHBOR_COUPLING_C_PER_W[cluster.cooling.kind]

    def settle(neigh_act: float, neigh_dram: float, label: str):
        activity = np.where(probe, act_probe, neigh_act)
        dram = np.where(probe, dram_probe, neigh_dram)
        return _solve_with_coupling(
            fleet, node_of, activity, dram, coupling,
            rng_factory.generator(label),
        )

    op_idle = settle(0.02, 0.02, "idle")
    op_shared = settle(neighbor_activity, neighbor_dram, "shared")

    bw = fleet.memory_bandwidth_gbs()
    eff = fleet.throughput_efficiency()

    def probe_time(op):
        return workload.unit_time_ms(
            op.f_effective_mhz, spec.compute_throughput, bw, eff
        )[probe]

    idx = np.flatnonzero(probe)
    return SharedNodeResult(
        probe_gpu_indices=idx,
        performance_idle_ms=probe_time(op_idle),
        performance_shared_ms=probe_time(op_shared),
        temperature_idle_c=op_idle.temperature_c[probe],
        temperature_shared_c=op_shared.temperature_c[probe],
        frequency_idle_mhz=op_idle.f_effective_mhz[probe],
        frequency_shared_mhz=op_shared.f_effective_mhz[probe],
    )


def spatial_penalty(
    cluster: Cluster,
    workload: Workload,
    neighbor_activity: float = 0.8,
) -> dict[str, float]:
    """Fleet-median spatial interference metrics for one cluster."""
    result = simulate_with_neighbors(cluster, workload, neighbor_activity)
    return {
        "median_slowdown": float(np.median(result.slowdown)),
        "worst_slowdown": float(result.slowdown.max()),
        "median_preheat_c": float(np.median(
            result.temperature_shared_c - result.temperature_idle_c
        )),
        "median_frequency_loss_mhz": float(np.median(
            result.frequency_idle_mhz - result.frequency_shared_mhz
        )),
    }


def temporal_soak_slowdown(
    cluster: Cluster,
    workload: Workload,
    idle_gap_s: float,
    job_duration_s: float,
    previous_activity: float = 1.0,
) -> float:
    """Median slowdown of a job that starts on GPUs still hot from a
    predecessor, relative to a fully-cooled start.

    The predecessor ran at ``previous_activity``; the machine then idled
    for ``idle_gap_s`` before our job of length ``job_duration_s`` began.
    The residual heat raises the *time-averaged* junction temperature over
    the job, which costs leakage headroom for the power-capped portion:

        T_avg = T_ss + (T_0 - T_ss) * (tau / D) * (1 - exp(-D / tau))

    with ``T_0`` the soaked starting temperature after the gap's decay.
    """
    require(idle_gap_s >= 0, "idle_gap_s must be >= 0")
    require(job_duration_s > 0, "job_duration_s must be positive")
    require_in_range(previous_activity, 0.0, 1.0, "previous_activity")

    fleet = cluster.fleet
    spec = fleet.spec
    act, dram = workload.steady_load(
        spec.f_max_mhz, spec.compute_throughput, spec.mem_bandwidth_gbs
    )
    eff = fleet.throughput_efficiency()
    cap = fleet.power_cap_w()
    f_cap = fleet.frequency_cap_mhz()
    rng = cluster.rng_factory.generator("temporal")

    # Steady states of the predecessor and of our job on a cold machine.
    op_prev = fleet.controller.solve_steady(
        previous_activity, dram, eff, power_cap_w=cap, f_cap_mhz=f_cap,
        rng=rng,
    )
    op_cold = fleet.controller.solve_steady(
        act, dram, eff, power_cap_w=cap, f_cap_mhz=f_cap,
        rng=cluster.rng_factory.generator("temporal-cold"),
    )

    tau = fleet.thermal_model.time_constant_s
    # Starting temperature: predecessor heat decayed through the gap.
    t0 = fleet.coolant_c + (
        op_prev.temperature_c - fleet.coolant_c
    ) * np.exp(-idle_gap_s / tau)
    # Both starts relax toward the same steady state T_ss; a job of length
    # D averages ``T_ss + (T_start - T_ss) * (tau/D) * (1 - e^{-D/tau})``.
    # Represent each start as a coolant offset equal to its transient
    # deficit/excess relative to T_ss, then re-settle both.
    weight = (tau / job_duration_s) * (1.0 - np.exp(-job_duration_s / tau))
    t_ss = op_cold.temperature_c
    offset_cold = (fleet.coolant_c - t_ss) * weight
    offset_hot = (t0 - t_ss) * weight

    def settle_with_offset(offset: np.ndarray, label: str):
        shifted = fleet.with_coolant(fleet.coolant_c + offset)
        return shifted.controller.solve_steady(
            act, dram, eff, power_cap_w=cap, f_cap_mhz=f_cap,
            rng=cluster.rng_factory.generator(label),
        )

    op_cold_avg = settle_with_offset(offset_cold, "temporal-coldavg")
    op_soaked = settle_with_offset(offset_hot, "temporal-hot")

    bw = fleet.memory_bandwidth_gbs()
    t_cold = workload.unit_time_ms(
        op_cold_avg.f_effective_mhz, spec.compute_throughput, bw, eff
    )
    t_hot = workload.unit_time_ms(
        op_soaked.f_effective_mhz, spec.compute_throughput, bw, eff
    )
    return float(np.median(t_hot / t_cold))
