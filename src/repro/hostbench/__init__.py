"""Host microbenchmarks: real measurements through the same pipeline.

The paper's artifact ships scripts that run GEMM/SpMV on whatever
accelerator is present.  Without GPUs, this subpackage is the equivalent
zero-hardware path: it runs real NumPy/SciPy kernels on the *host CPU*,
records wall-clock timings into the same
:class:`~repro.telemetry.dataset.MeasurementDataset` shape, and feeds the
same analysis suite — demonstrating that :mod:`repro.core` operates on real
measurements, not just simulated ones.
"""

from .kernels import KERNELS, HostKernel, gemm_kernel, spmv_kernel, stream_kernel
from .harness import HostBenchConfig, run_host_benchmark

__all__ = [
    "HostKernel",
    "KERNELS",
    "gemm_kernel",
    "spmv_kernel",
    "stream_kernel",
    "HostBenchConfig",
    "run_host_benchmark",
]
