"""Run host microkernels and emit paper-shaped measurement datasets.

Timings are real (``time.perf_counter``); the dataset mimics the campaign
schema closely enough that every :mod:`repro.core` analysis applies: the
"GPU" identity is (process, repetition-block) and the performance metric is
the per-block median kernel duration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import require
from ..telemetry.dataset import MeasurementDataset
from ..telemetry.sample import METRIC_PERFORMANCE
from .kernels import KERNELS, HostKernel

__all__ = ["HostBenchConfig", "run_host_benchmark"]


@dataclass(frozen=True)
class HostBenchConfig:
    """Shape of a host microbenchmark session.

    ``blocks`` play the role of distinct "devices" (repetition blocks whose
    medians are compared), ``reps_per_block`` the kernels per block, plus
    warmup following the paper's protocol (one warm-up run before
    measuring, Section IV-A).
    """

    blocks: int = 8
    reps_per_block: int = 9
    warmup_reps: int = 3

    def __post_init__(self) -> None:
        require(self.blocks >= 1, "blocks must be >= 1")
        require(self.reps_per_block >= 1, "reps_per_block must be >= 1")
        require(self.warmup_reps >= 0, "warmup_reps must be >= 0")


def run_host_benchmark(
    kernel: HostKernel | str,
    config: HostBenchConfig | None = None,
) -> MeasurementDataset:
    """Execute a kernel session and return the measurement table.

    Columns: ``workload``, ``gpu_index`` / ``gpu_label`` (block identity),
    ``node_label``, ``run`` (repetition index), ``performance_ms``,
    ``achieved_gflops``, ``achieved_gbs``, ``checksum``.
    """
    if isinstance(kernel, str):
        try:
            kernel = KERNELS[kernel]()
        except KeyError:
            raise ValueError(
                f"unknown kernel {kernel!r}; known: {sorted(KERNELS)}"
            ) from None
    config = config if config is not None else HostBenchConfig()

    for _ in range(config.warmup_reps):
        kernel.run()

    block_ids: list[int] = []
    rep_ids: list[int] = []
    durations: list[float] = []
    checksums: list[float] = []
    for block in range(config.blocks):
        for rep in range(config.reps_per_block):
            start = time.perf_counter()
            checksum = kernel.run()
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            block_ids.append(block)
            rep_ids.append(rep)
            durations.append(elapsed_ms)
            checksums.append(checksum)

    durations_arr = np.asarray(durations)
    n = durations_arr.shape[0]
    seconds = durations_arr / 1000.0
    return MeasurementDataset({
        "workload": np.full(n, f"host-{kernel.name}", dtype=object),
        "gpu_index": np.asarray(block_ids, dtype=np.int64),
        "gpu_label": np.asarray(
            [f"host-block-{b:02d}" for b in block_ids], dtype=object
        ),
        "node_label": np.full(n, "localhost", dtype=object),
        "run": np.asarray(rep_ids, dtype=np.int64),
        METRIC_PERFORMANCE: durations_arr,
        "achieved_gflops": kernel.flop / seconds / 1.0e9,
        "achieved_gbs": kernel.bytes_moved / seconds / 1.0e9,
        "checksum": np.asarray(checksums),
    })
