"""Real host-CPU microkernels mirroring the paper's workload classes.

Each kernel returns a scalar derived from its output (so the work cannot be
optimized away) and reports its nominal work so the harness can compute
achieved throughput:

* ``gemm``   — compute-bound (BLAS matrix multiply), the SGEMM analogue;
* ``spmv``   — irregular memory-bound (CSR sparse matvec), the PageRank
  analogue;
* ``stream`` — regular memory-bandwidth-bound (triad), the LAMMPS analogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..config import require

__all__ = ["HostKernel", "gemm_kernel", "spmv_kernel", "stream_kernel", "KERNELS"]


@dataclass(frozen=True)
class HostKernel:
    """A runnable host microkernel.

    ``run`` executes one repetition and returns a checksum; ``flop`` and
    ``bytes_moved`` describe the nominal work per repetition.
    """

    name: str
    run: Callable[[], float]
    flop: float
    bytes_moved: float
    workload_class: str


def gemm_kernel(n: int = 384, rng: np.random.Generator | None = None) -> HostKernel:
    """Dense single-precision matrix multiply (compute-bound)."""
    require(n >= 8, "gemm dimension must be >= 8")
    rng = rng if rng is not None else np.random.default_rng(0)
    a = rng.standard_normal((n, n), dtype=np.float32)
    b = rng.standard_normal((n, n), dtype=np.float32)

    def run() -> float:
        return float((a @ b).trace())

    return HostKernel(
        name="gemm",
        run=run,
        flop=2.0 * n**3,
        bytes_moved=3.0 * n * n * 4.0,
        workload_class="compute-bound",
    )


def spmv_kernel(
    n: int = 40_000,
    nnz_per_row: int = 10,
    rng: np.random.Generator | None = None,
) -> HostKernel:
    """CSR sparse matrix-vector product with random pattern (irregular)."""
    require(n >= 16, "spmv dimension must be >= 16")
    require(nnz_per_row >= 1, "nnz_per_row must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(1)
    rows = np.repeat(np.arange(n), nnz_per_row)
    cols = rng.integers(0, n, size=n * nnz_per_row)
    vals = rng.standard_normal(n * nnz_per_row)
    matrix = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    x = rng.standard_normal(n)

    def run() -> float:
        return float((matrix @ x).sum())

    nnz = matrix.nnz
    return HostKernel(
        name="spmv",
        run=run,
        flop=2.0 * nnz,
        bytes_moved=nnz * 20.0 + n * 24.0,
        workload_class="memory-latency-bound",
    )


def stream_kernel(
    n: int = 4_000_000, rng: np.random.Generator | None = None
) -> HostKernel:
    """STREAM-triad style streaming update (bandwidth-bound)."""
    require(n >= 1024, "stream length must be >= 1024")
    rng = rng if rng is not None else np.random.default_rng(2)
    a = rng.standard_normal(n)
    b = rng.standard_normal(n)
    c = np.empty(n)

    def run() -> float:
        np.multiply(b, 3.0, out=c)
        np.add(c, a, out=c)
        return float(c[0] + c[-1])

    return HostKernel(
        name="stream",
        run=run,
        flop=2.0 * n,
        bytes_moved=3.0 * n * 8.0,
        workload_class="memory-bandwidth-bound",
    )


#: Kernel factories by name (default sizes).
KERNELS: dict[str, Callable[[], HostKernel]] = {
    "gemm": gemm_kernel,
    "spmv": spmv_kernel,
    "stream": stream_kernel,
}
