"""LAMMPS molecular dynamics with the REAXC force field (Section V-C).

In the paper's single-GPU (8, 16, 16) configuration LAMMPS is memory-bound:
DRAM utilization 42x ResNet's, FU utilization 4.3x *lower* than ResNet's.
Each run interleaves four unique long-running kernels (20-200 ms) that make
up 98% of the runtime with a swarm of sub-60-us kernels; the paper's
performance metric is the *sum of the long-kernel durations* per bundle.

Because the memory roofline leg does not scale with core frequency, the SM
clock pins at boost, runtime varies by <1%, yet power still varies by ~20%
(leakage spread and temperature) — Takeaway 7: memory-bound work can use
"bad" GPUs with almost no performance penalty.
"""

from __future__ import annotations

from .base import KernelPhase, Workload

__all__ = ["lammps_reaxc"]


def lammps_reaxc(
    grid: tuple[int, int, int] = (8, 16, 16),
    step_bundles: int = 12,
) -> Workload:
    """Build the LAMMPS/REAXC workload.

    Parameters
    ----------
    grid:
        The (x, y, z) replication of the simulation cell; the paper tuned
        (8, 16, 16) to fill a V100's 16 GB while keeping utilization high.
        Work scales linearly in the cell count.
    step_bundles:
        How many long-kernel bundles one run executes.
    """
    x, y, z = grid
    if min(x, y, z) < 1:
        raise ValueError(f"grid must be positive, got {grid}")
    # Traffic scales with the atom count; (8, 16, 16) is the calibration
    # point where the four long kernels run 20-200 ms on a V100.
    scale = (x * y * z) / (8 * 16 * 16)

    def long_kernel(name: str, gbytes: float, gflop: float) -> KernelPhase:
        return KernelPhase(
            name=name,
            compute_flop=gflop * 1e9 * scale,
            memory_bytes=gbytes * 1e9 * scale,
            activity=0.30,
            dram_utilization=0.85,
            launches=1,
        )

    phases = (
        long_kernel("nonbonded_forces", 160.0, 90.0),   # ~190 ms
        long_kernel("bond_order", 80.0, 40.0),          # ~96 ms
        long_kernel("charge_equilibration", 33.0, 18.0),  # ~40 ms
        long_kernel("neighbor_build", 17.0, 9.0),       # ~20 ms
        KernelPhase(
            name="short_kernels",
            compute_flop=1.0e9 * scale,
            memory_bytes=5.0e9 * scale,
            activity=0.18,
            dram_utilization=0.40,
            launches=1,
        ),
    )
    return Workload(
        name="LAMMPS",
        phases=phases,
        n_gpus=1,
        units_per_run=step_bundles,
        performance_metric="aggregate_ms",
        fu_utilization=1.3,
        dram_utilization_profile=0.85,
        mem_stall_frac=0.07,
        fu_stall_frac=0.03,
        activity_mix_sigma=0.06,
        run_speed_sigma=0.002,
        iteration_jitter_sigma=0.004,
        input_description=f"REAXC, (x, y, z) = {grid}, {step_bundles} step bundles",
    )
