"""Workload models for the five applications the paper studies (Table II).

Each workload is a set of kernel phases placed on the roofline (compute
FLOPs vs DRAM traffic) plus the profiler characterization the paper reports
(functional-unit utilization, DRAM utilization, stall fractions).  The
placement determines everything the paper observes: compute-bound phases at
high switching activity push the GPU into its TDP (DVFS variability),
memory-bound phases leave frequency pinned at boost (performance stability
with residual power/thermal variability).
"""

from .base import KernelPhase, Workload, roofline_time_ms
from .sgemm import sgemm
from .resnet import resnet50
from .bert import bert_pretraining
from .lammps import lammps_reaxc
from .pagerank import (
    pagerank,
    pagerank_pull,
    synthesize_circuit_graph,
    derive_spmv_phase,
)
from .registry import get_workload, list_workloads, PAPER_WORKLOADS

__all__ = [
    "KernelPhase",
    "Workload",
    "roofline_time_ms",
    "sgemm",
    "resnet50",
    "bert_pretraining",
    "lammps_reaxc",
    "pagerank",
    "pagerank_pull",
    "synthesize_circuit_graph",
    "derive_spmv_phase",
    "get_workload",
    "list_workloads",
    "PAPER_WORKLOADS",
]
