"""SGEMM: the cross-cluster probe workload (Section IV).

A single dense single-precision matrix-multiply kernel from cuBLAS /
hipBLAS, repeated 100 times per run.  The matrix size is tuned per SKU the
way the paper tuned it (Table II): 25536^3 on the V100/RTX 5000 clusters,
24576^3 on Corona's MI60s — large enough that one kernel runs for seconds,
giving the DVFS controller time to settle, and occupying every SM/CU.

SGEMM is the purest compute-bound load: functional-unit utilization 10/10,
negligible memory stalls, switching activity ~1.0.  At the boost clock its
dynamic power exceeds the TDP, so every healthy GPU is power-capped and the
silicon lottery becomes directly visible as a frequency (and therefore
runtime) spread — Figs. 1-13.
"""

from __future__ import annotations

from .base import KernelPhase, Workload

__all__ = ["sgemm", "SGEMM_N_NVIDIA", "SGEMM_N_AMD"]

#: Matrix dimension used on the NVIDIA clusters (Table II).
SGEMM_N_NVIDIA = 25536
#: Matrix dimension used on Corona's AMD MI60s (Table II).
SGEMM_N_AMD = 24576

#: Effective DRAM traffic per kernel relative to the compulsory 3*n^2*4
#: bytes (tiling refetch).
_TRAFFIC_FACTOR = 2.0


def sgemm(n: int = SGEMM_N_NVIDIA, repetitions: int = 100) -> Workload:
    """Build the SGEMM workload for matrix dimension ``n``.

    Parameters
    ----------
    n:
        Square matrix dimension.  Use :data:`SGEMM_N_AMD` for MI60 runs.
    repetitions:
        Kernels per run (the paper uses 100; Section IV-A).
    """
    if n < 256:
        raise ValueError(f"matrix dimension {n} is too small to occupy a GPU")
    flop = 2.0 * float(n) ** 3
    traffic = 3.0 * float(n) ** 2 * 4.0 * _TRAFFIC_FACTOR
    phase = KernelPhase(
        name="sgemm",
        compute_flop=flop,
        memory_bytes=traffic,
        activity=1.0,
        dram_utilization=0.35,
        launches=1,
    )
    return Workload(
        name="SGEMM",
        phases=(phase,),
        n_gpus=1,
        units_per_run=repetitions,
        performance_metric="kernel_ms",
        fu_utilization=10.0,
        dram_utilization_profile=0.35,
        mem_stall_frac=0.03,
        fu_stall_frac=0.24,
        activity_mix_sigma=0.0,
        iteration_jitter_sigma=0.0,
        input_description=f"{n} x {n} single-precision matrices, {repetitions} reps",
    )
