"""PageRank over a circuit-simulation graph (Section V-D).

The paper runs pull-based PageRank (Pannotia / SPMV formulation) on
``rajat30``, an undirected circuit-simulation matrix with 643,994 nodes,
chosen so the SpMV kernels exceed the 1 ms profiler floor while fully
occupying a V100.  PageRank is memory-*latency* bound and highly irregular:
61% memory-dependency stalls (vs 7% for LAMMPS and 3% for SGEMM) with
*lower* DRAM utilization than LAMMPS (4.24x) because random accesses defeat
the memory subsystem.

This module carries a real substrate, not just a phase model:

* :func:`synthesize_circuit_graph` builds a rajat30-like sparse matrix
  (power-law-ish degree mix typical of circuit matrices, symmetric, with a
  dominant diagonal band plus random long-range couplings);
* :func:`pagerank_pull` is an actual pull-based PageRank on CSR;
* :func:`derive_spmv_phase` converts a matrix into a roofline
  :class:`KernelPhase` (traffic from nnz and rank-vector gathers, inflated
  by an irregularity factor representing wasted cache lines).

The default :func:`pagerank` workload uses the analytic traffic of the
full-size graph so benchmarks do not need to materialize 6 M edges; tests
exercise the real pipeline end to end on smaller graphs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError
from .base import KernelPhase, Workload

__all__ = [
    "synthesize_circuit_graph",
    "pagerank_pull",
    "derive_spmv_phase",
    "pagerank",
    "RAJAT30_NODES",
    "RAJAT30_NNZ",
]

#: rajat30's published dimensions (SuiteSparse).
RAJAT30_NODES = 643_994
RAJAT30_NNZ = 6_175_244

#: Bytes per CSR nonzero during pull SpMV: 4 (column index) + 8 (value)
#: + 8 (gathered rank-vector entry).
_BYTES_PER_NNZ = 20.0
#: Bytes per row: row pointer + output write + degree normalization.
_BYTES_PER_ROW = 24.0
#: Effective traffic inflation from irregular gathers (wasted sectors of
#: each 32-byte DRAM transaction plus TLB/row-buffer misses).
IRREGULARITY_FACTOR = 22.0


def synthesize_circuit_graph(
    n_nodes: int = 20_000,
    avg_degree: float = 9.6,
    rng: np.random.Generator | None = None,
) -> sp.csr_matrix:
    """Build a rajat30-like symmetric adjacency matrix in CSR form.

    Circuit matrices combine a strong banded structure (local wiring) with
    a tail of high-degree nets (power rails, clock trees).  We mimic that
    with a diagonal band plus preferential long-range couplings.

    Parameters
    ----------
    n_nodes:
        Node count; defaults far below rajat30 so tests stay fast — pass
        :data:`RAJAT30_NODES` for the full-size graph.
    avg_degree:
        Target mean degree (rajat30 is ~9.6).
    rng:
        Randomness source; defaults to a fixed-seed generator.
    """
    if n_nodes < 4:
        raise ConfigError(f"need at least 4 nodes, got {n_nodes}")
    if avg_degree < 2.0:
        raise ConfigError(f"avg_degree must be >= 2, got {avg_degree}")
    if rng is None:
        rng = np.random.default_rng(20_220_422)

    # Banded local wiring: connect i to i+1 and i+2.
    i = np.arange(n_nodes - 1)
    rows = [i, i[:-1]]
    cols = [i + 1, i[:-1] + 2]

    # Long-range couplings with a preferential (heavy-tailed) target choice.
    n_random = int(n_nodes * (avg_degree - 3.0) / 2.0)
    if n_random > 0:
        src = rng.integers(0, n_nodes, size=n_random)
        # Zipf-ish hub selection clipped into range.
        hub = np.minimum(
            (rng.pareto(1.6, size=n_random) * (n_nodes / 50.0)).astype(np.int64),
            n_nodes - 1,
        )
        keep = src != hub
        rows.append(src[keep])
        cols.append(hub[keep])

    row = np.concatenate(rows)
    col = np.concatenate(cols)
    data = np.ones(row.shape[0])
    adj = sp.coo_matrix((data, (row, col)), shape=(n_nodes, n_nodes))
    adj = adj + adj.T           # undirected
    adj.data[:] = 1.0           # collapse duplicate couplings
    return adj.tocsr()


def pagerank_pull(
    adjacency: sp.spmatrix,
    damping: float = 0.85,
    tol: float = 1.0e-8,
    max_iterations: int = 200,
) -> tuple[np.ndarray, int]:
    """Pull-based PageRank on a CSR adjacency matrix.

    Each iteration *pulls* rank from in-neighbours — the SpMV formulation
    the paper profiles.  Returns the rank vector (L1-normalized) and the
    iteration count at convergence.

    Raises
    ------
    ConfigError
        If ``damping`` is outside (0, 1) or the matrix is not square.
    """
    if not 0.0 < damping < 1.0:
        raise ConfigError(f"damping must be in (0, 1), got {damping}")
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise ConfigError(f"adjacency must be square, got {adjacency.shape}")
    csr = adjacency.tocsr()

    out_degree = np.asarray(csr.sum(axis=1)).ravel()
    dangling = out_degree == 0
    inv_degree = np.where(dangling, 0.0, 1.0 / np.where(dangling, 1.0, out_degree))

    # Pull formulation: r_new = d * A^T (r * inv_degree) + teleport.
    pull = csr.T.tocsr()
    rank = np.full(n, 1.0 / n)
    for iteration in range(1, max_iterations + 1):
        contrib = rank * inv_degree
        dangling_mass = rank[dangling].sum()
        new_rank = damping * (pull @ contrib)
        new_rank += (1.0 - damping + damping * dangling_mass) / n
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < tol:
            break
    return rank / rank.sum(), iteration


def derive_spmv_phase(
    adjacency: sp.spmatrix,
    irregularity: float = IRREGULARITY_FACTOR,
) -> KernelPhase:
    """Convert a sparse matrix into the roofline phase of one SpMV sweep."""
    csr = adjacency.tocsr()
    n, nnz = csr.shape[0], csr.nnz
    return _spmv_phase(n, nnz, irregularity)


def _spmv_phase(n: int, nnz: int, irregularity: float) -> KernelPhase:
    traffic = (nnz * _BYTES_PER_NNZ + n * _BYTES_PER_ROW) * irregularity
    return KernelPhase(
        name="spmv_pull",
        compute_flop=2.0 * nnz,
        memory_bytes=traffic,
        activity=0.22,
        dram_utilization=0.20,
        launches=1,
    )


def pagerank(
    n_nodes: int = RAJAT30_NODES,
    nnz: int = RAJAT30_NNZ,
    sweeps: int = 100,
) -> Workload:
    """Build the PageRank workload (rajat30-sized by default).

    Parameters
    ----------
    n_nodes, nnz:
        Graph dimensions; traffic is analytic so the full rajat30 size
        costs nothing to model.  Use :func:`derive_spmv_phase` to build the
        phase from a materialized matrix instead.
    sweeps:
        SpMV sweeps per run (each sweep is one profiled kernel).
    """
    if n_nodes < 4 or nnz < n_nodes:
        raise ConfigError(
            f"implausible graph: {n_nodes} nodes, {nnz} nonzeros"
        )
    phase = _spmv_phase(n_nodes, nnz, IRREGULARITY_FACTOR)
    return Workload(
        name="PageRank",
        phases=(phase,),
        n_gpus=1,
        units_per_run=sweeps,
        performance_metric="kernel_ms",
        fu_utilization=0.8,
        dram_utilization_profile=0.20,
        mem_stall_frac=0.61,
        fu_stall_frac=0.02,
        activity_mix_sigma=0.07,
        run_speed_sigma=0.002,
        iteration_jitter_sigma=0.004,
        input_description=f"rajat30-like graph: {n_nodes} nodes, {nnz} nonzeros",
    )
