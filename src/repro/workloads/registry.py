"""Registry of the paper's workloads (Table II rows by name)."""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError
from .base import Workload
from .bert import bert_pretraining
from .lammps import lammps_reaxc
from .pagerank import pagerank
from .resnet import resnet50
from .sgemm import SGEMM_N_AMD, sgemm

__all__ = ["PAPER_WORKLOADS", "get_workload", "list_workloads"]

#: Factory per canonical workload name.  ``sgemm-amd`` is the Corona-sized
#: variant (Table II lists 24576^3 for the MI60s).
PAPER_WORKLOADS: dict[str, Callable[[], Workload]] = {
    "sgemm": sgemm,
    "sgemm-amd": lambda: sgemm(n=SGEMM_N_AMD),
    "resnet50": resnet50,
    "resnet50-1gpu": lambda: resnet50(batch_size=16, n_gpus=1),
    "bert": bert_pretraining,
    "lammps": lammps_reaxc,
    "pagerank": pagerank,
}


def get_workload(name: str) -> Workload:
    """Build a paper workload by registry name (case-insensitive)."""
    key = name.lower()
    if key not in PAPER_WORKLOADS:
        raise ConfigError(
            f"unknown workload {name!r}; known: {sorted(PAPER_WORKLOADS)}"
        )
    return PAPER_WORKLOADS[key]()


def list_workloads() -> list[str]:
    """Names of the registered workloads."""
    return sorted(PAPER_WORKLOADS)
