"""ResNet-50 training (Section V-A).

ResNet-50 is the paper's most variable workload: 22% iteration-duration
spread in the 4-GPU configuration and 14% single-GPU, with *frequency pinned
at 1530 MHz* throughout — i.e. the variability is not DVFS-driven.  Three
mechanisms reproduce it here:

1. a per-run software speed multiplier (cuDNN autotuner / input pipeline),
2. per-iteration jitter amplified by the bulk-synchronous ``max()`` across
   the node's GPUs, and
3. sick nodes: one SICK_SLOW GPU drags the whole node, and its healthy
   neighbours appear as the paradoxical "1530 MHz, slow, 76 W" stragglers
   of Fig. 15 because they spend most of each iteration busy-waiting.

The kernel population (~85 unique kernels, 75% shorter than 2 ms) is
aggregated into two phases: the convolution/GEMM backbone (compute-leg) and
the elementwise/batch-norm tail (memory-leg).  The mix holds total switching
activity around 0.6, which keeps the board below TDP at boost clock — the
paper's observation that ResNet sees "little PM interference".
"""

from __future__ import annotations

from .base import KernelPhase, Workload

__all__ = ["resnet50"]

#: *Effective* training FLOPs per image: the nominal ~12 GFLOP of forward
#: + backward, inflated by the achieved-throughput gap of real training
#: (kernel launch overheads, low-occupancy layers, im2col expansions —
#: ResNet sustains well under peak FU utilization, which the paper's 5.4/10
#: FU reading reflects).  Calibrated so a 16-image/GPU iteration lands near
#: the ~110 ms the paper's Fig. 15a shows.
_FLOP_PER_IMAGE = 1.05e11

#: Fraction of training FLOPs in convolution / GEMM kernels.
_CONV_FLOP_SHARE = 0.92


def resnet50(
    batch_size: int = 64,
    n_gpus: int = 4,
    iterations: int = 500,
) -> Workload:
    """Build the ResNet-50 training workload.

    Parameters
    ----------
    batch_size:
        Global batch size; the paper uses 64 for the 4-GPU runs and scales
        to 16 for the single-GPU comparison (Section V-A).
    n_gpus:
        GPUs per job; iteration time is the bulk-synchronous max across
        them plus an allreduce.
    iterations:
        Iterations per run (the paper profiles 500).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if batch_size % n_gpus:
        raise ValueError(
            f"batch_size {batch_size} must divide evenly across {n_gpus} GPUs"
        )
    per_gpu_images = batch_size / n_gpus
    # Single-GPU runs use batch 16 whose smaller kernels sustain less
    # switching activity ("power consumption stays well within TDP ...
    # hence they run at the max frequency", Section V-A).
    act_scale = 1.0 if n_gpus > 1 else 0.90
    conv = KernelPhase(
        name="conv_gemm",
        compute_flop=_FLOP_PER_IMAGE * _CONV_FLOP_SHARE * per_gpu_images,
        memory_bytes=1.3e8 * per_gpu_images,
        activity=0.62 * act_scale,
        dram_utilization=0.30,
        launches=1,
    )
    elementwise = KernelPhase(
        name="elementwise_bn",
        compute_flop=_FLOP_PER_IMAGE * (1.0 - _CONV_FLOP_SHARE) * per_gpu_images,
        memory_bytes=3.6e8 * per_gpu_images,
        activity=0.32 * act_scale,
        dram_utilization=0.72,
        launches=1,
    )
    return Workload(
        name="ResNet-50" if n_gpus > 1 else "ResNet-50 (1 GPU)",
        phases=(conv, elementwise),
        n_gpus=n_gpus,
        units_per_run=iterations,
        performance_metric="iteration_ms",
        fu_utilization=5.4,
        dram_utilization_profile=0.30,
        mem_stall_frac=0.20,
        fu_stall_frac=0.18,
        activity_mix_sigma=0.26 if n_gpus > 1 else 0.07,
        # The bulk-synchronous max() across 4 GPUs compresses relative
        # spread, so the multi-GPU jobs need a larger per-GPU draw to land
        # the paper's 22% (vs 14% single-GPU) variation.
        run_speed_sigma=0.055 if n_gpus > 1 else 0.026,
        activity_speed_correlation=0.6,
        iteration_jitter_sigma=0.05,
        sync_overhead_ms=8.0 if n_gpus > 1 else 0.0,
        # Rare catastrophic runs (stalled input pipeline): the 3.5x
        # stragglers of Fig. 1 / Section V-A, milder for single-GPU jobs.
        pathological_run_rate=0.012 if n_gpus > 1 else 0.004,
        pathological_slowdown=(1.8, 3.4),
        input_description=(
            f"1.2M ImageNet images, batch {batch_size}, {n_gpus} GPU(s), "
            f"{iterations} iterations"
        ),
    )
