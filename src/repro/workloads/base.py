"""Workload abstraction: kernel phases on the roofline.

A workload is a repeating *unit* (one SGEMM kernel, one training iteration,
one simulation step bundle) composed of :class:`KernelPhase` entries.  Each
phase carries the two roofline coordinates (FLOPs and DRAM bytes per launch)
and the power-relevant behaviour while resident (switching activity, DRAM
utilization).  The :func:`roofline_time_ms` model is deliberately simple —
``max(compute time, memory time)`` with a small serialization term — because
the paper's findings depend only on *where* a workload sits on the roofline,
not on microarchitectural detail:

* SGEMM / ResNet conv phases: compute time dominates and scales with 1/f,
  so DVFS differences become runtime differences;
* LAMMPS / PageRank phases: memory time dominates and is frequency-flat, so
  runtime is stable while power still varies (Takeaways 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import require, require_in_range, require_positive

__all__ = ["KernelPhase", "Workload", "roofline_time_ms", "SERIALIZATION_FRACTION"]

#: Fraction of the shorter roofline leg that does not overlap with the
#: longer one (imperfect latency hiding).
SERIALIZATION_FRACTION = 0.12

#: Switching activity of a GPU busy-waiting on communication (NCCL spin).
WAIT_ACTIVITY = 0.06


def roofline_time_ms(
    compute_flop: float,
    memory_bytes: float,
    f_mhz: np.ndarray | float,
    compute_throughput: float,
    bandwidth_gbs: np.ndarray | float,
    efficiency: np.ndarray | float = 1.0,
) -> np.ndarray:
    """Kernel duration under the overlap roofline model (vectorized).

    Parameters
    ----------
    compute_flop, memory_bytes:
        Work per launch.
    f_mhz:
        Core clock; compute throughput scales linearly with it.
    compute_throughput:
        SKU constant: FLOPs per MHz per millisecond at full FU utilization.
    bandwidth_gbs:
        Achieved DRAM bandwidth (GB/s).
    efficiency:
        Throughput multiplier (achieved IPC; defect degradation).
    """
    f = np.asarray(f_mhz, dtype=float)
    bw = np.asarray(bandwidth_gbs, dtype=float)
    eff = np.asarray(efficiency, dtype=float)
    t_compute = compute_flop / (f * compute_throughput * eff)
    # GB/s == bytes per nanosecond; per millisecond that is bw * 1e6 bytes.
    t_memory = memory_bytes / (bw * 1.0e6)
    long_leg = np.maximum(t_compute, t_memory)
    short_leg = np.minimum(t_compute, t_memory)
    return long_leg + SERIALIZATION_FRACTION * short_leg


@dataclass(frozen=True)
class KernelPhase:
    """One kernel class inside a workload unit.

    Attributes
    ----------
    name:
        Phase label (``"gemm"``, ``"elementwise"``...).
    compute_flop:
        Floating-point work per launch.
    memory_bytes:
        DRAM traffic per launch.
    activity:
        Core switching-activity factor in [0, 1] while this phase runs
        (drives dynamic power).
    dram_utilization:
        DRAM utilization in [0, 1] while this phase runs (drives memory
        power).
    launches:
        Launches of this phase per workload unit.
    """

    name: str
    compute_flop: float
    memory_bytes: float
    activity: float
    dram_utilization: float
    launches: int = 1

    def __post_init__(self) -> None:
        require(self.compute_flop >= 0, "compute_flop must be >= 0")
        require(self.memory_bytes >= 0, "memory_bytes must be >= 0")
        require(self.compute_flop + self.memory_bytes > 0,
                "a phase needs some compute or memory work")
        require_in_range(self.activity, 0.0, 1.0, "activity")
        require_in_range(self.dram_utilization, 0.0, 1.0, "dram_utilization")
        require(self.launches >= 1, "launches must be >= 1")

    def time_ms(
        self,
        f_mhz: np.ndarray | float,
        compute_throughput: float,
        bandwidth_gbs: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Duration of one launch of this phase."""
        return roofline_time_ms(
            self.compute_flop,
            self.memory_bytes,
            f_mhz,
            compute_throughput,
            bandwidth_gbs,
            efficiency,
        )


@dataclass(frozen=True)
class Workload:
    """A complete application model (one Table II row).

    Attributes
    ----------
    name:
        Application name.
    phases:
        Kernel phases per unit.
    n_gpus:
        GPUs per job (1, or the node width for bulk-synchronous training).
    units_per_run:
        Workload units per run: kernel repetitions for SGEMM (100),
        training iterations for ResNet/BERT (500/250), step bundles for
        LAMMPS/PageRank.
    performance_metric:
        What the paper reports for this app: ``"kernel_ms"`` (median kernel
        duration), ``"iteration_ms"`` (iteration duration), or
        ``"aggregate_ms"`` (sum of the long kernels — LAMMPS).
    fu_utilization:
        nvprof functional-unit utilization on its 0-10 scale (SGEMM 10,
        ResNet 5.4 — Section V-A).
    dram_utilization_profile:
        Profiler DRAM utilization in [0, 1] used for classification.
    mem_stall_frac, fu_stall_frac:
        Profiler stall fractions (PageRank 61% memory stalls vs 7% LAMMPS
        and 3% SGEMM — Section V-D).
    activity_mix_sigma:
        Log-sigma of the per-run, per-GPU activity multiplier.  ML training
        runs mix kernel populations differently run to run (data order,
        cuDNN algorithm choice), producing the large power variability of
        Figs. 14c/17c; 0 for steady kernels.
    run_speed_sigma:
        Log-sigma of a per-run, per-GPU duration multiplier that persists
        for the whole run (cuDNN autotuner picking different convolution
        algorithms, input-pipeline placement).  This is the software
        component of ML performance variability: Fig. 16 shows 14%
        iteration-duration spread even with every GPU pinned at 1530 MHz.
    activity_speed_correlation:
        Fraction (0-1) of the activity-mix draw shared with the run-speed
        draw: runs that land faster algorithms burn more power, producing
        the negative duration/power correlation of Fig. 15b.
    iteration_jitter_sigma:
        Log-sigma of per-iteration duration jitter (input pipeline, NCCL);
        amplified by the bulk-synchronous max() across GPUs.
    sync_overhead_ms:
        Per-unit synchronization cost for multi-GPU jobs (allreduce).
    pathological_run_rate:
        Probability that a whole run degrades pathologically (input
        pipeline stalls, NCCL renegotiation, a contended parallel
        filesystem) — the mechanism behind the extreme 3.5x ResNet
        stragglers of Fig. 1 whose GPUs sit near idle power.
    pathological_slowdown:
        (lo, hi) multiplier applied to a pathological run's duration.
    input_description:
        Human-readable input configuration (Table II).
    """

    name: str
    phases: tuple[KernelPhase, ...]
    n_gpus: int = 1
    units_per_run: int = 100
    performance_metric: str = "kernel_ms"
    fu_utilization: float = 5.0
    dram_utilization_profile: float = 0.3
    mem_stall_frac: float = 0.1
    fu_stall_frac: float = 0.1
    activity_mix_sigma: float = 0.0
    run_speed_sigma: float = 0.0
    activity_speed_correlation: float = 0.0
    iteration_jitter_sigma: float = 0.0
    sync_overhead_ms: float = 0.0
    pathological_run_rate: float = 0.0
    pathological_slowdown: tuple[float, float] = (1.5, 3.2)
    input_description: str = ""

    def __post_init__(self) -> None:
        require(len(self.phases) >= 1, "a workload needs at least one phase")
        require(self.n_gpus >= 1, "n_gpus must be >= 1")
        require(self.units_per_run >= 1, "units_per_run must be >= 1")
        require(
            self.performance_metric in ("kernel_ms", "iteration_ms", "aggregate_ms"),
            f"unknown performance metric {self.performance_metric!r}",
        )
        require_in_range(self.fu_utilization, 0.0, 10.0, "fu_utilization")
        require_in_range(self.dram_utilization_profile, 0.0, 1.0,
                         "dram_utilization_profile")
        require(self.activity_mix_sigma >= 0, "activity_mix_sigma must be >= 0")
        require(self.run_speed_sigma >= 0, "run_speed_sigma must be >= 0")
        require_in_range(self.activity_speed_correlation, 0.0, 1.0,
                         "activity_speed_correlation")
        require(self.iteration_jitter_sigma >= 0,
                "iteration_jitter_sigma must be >= 0")
        require(self.sync_overhead_ms >= 0, "sync_overhead_ms must be >= 0")
        require_in_range(self.pathological_run_rate, 0.0, 0.5,
                         "pathological_run_rate")
        lo, hi = self.pathological_slowdown
        require(1.0 <= lo <= hi, "pathological_slowdown must satisfy 1 <= lo <= hi")

    # ------------------------------------------------------------------

    @property
    def is_multi_gpu(self) -> bool:
        """Whether the job spans multiple GPUs (bulk-synchronous)."""
        return self.n_gpus > 1

    def unit_time_ms(
        self,
        f_mhz: np.ndarray | float,
        compute_throughput: float,
        bandwidth_gbs: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Duration of one workload unit at an operating point (vectorized)."""
        total = 0.0
        for phase in self.phases:
            total = total + phase.launches * phase.time_ms(
                f_mhz, compute_throughput, bandwidth_gbs, efficiency
            )
        return np.asarray(total, dtype=float)

    def steady_load(
        self,
        f_mhz: float,
        compute_throughput: float,
        bandwidth_gbs: float,
    ) -> tuple[float, float]:
        """Time-weighted (activity, dram_utilization) of the running workload.

        Evaluated at a nominal operating point; the weighting shifts only
        marginally with frequency, so a single evaluation at boost clock is
        what the DVFS solver uses as the sustained load.
        """
        times = np.array([
            phase.launches * float(phase.time_ms(
                f_mhz, compute_throughput, bandwidth_gbs
            ))
            for phase in self.phases
        ])
        weights = times / times.sum()
        activity = float(np.dot(weights, [p.activity for p in self.phases]))
        dram = float(np.dot(weights, [p.dram_utilization for p in self.phases]))
        return activity, dram

    def compute_fraction(
        self,
        f_mhz: float,
        compute_throughput: float,
        bandwidth_gbs: float,
    ) -> float:
        """Fraction of unit time spent on compute-leg-dominated phases."""
        compute_time = 0.0
        total_time = 0.0
        for phase in self.phases:
            t = phase.launches * float(
                phase.time_ms(f_mhz, compute_throughput, bandwidth_gbs)
            )
            total_time += t
            t_c = phase.compute_flop / (f_mhz * compute_throughput)
            t_m = phase.memory_bytes / (bandwidth_gbs * 1.0e6)
            if t_c >= t_m:
                compute_time += t
        return compute_time / total_time

    def total_flop_per_unit(self) -> float:
        """Total floating-point work per workload unit."""
        return sum(p.launches * p.compute_flop for p in self.phases)

    def total_bytes_per_unit(self) -> float:
        """Total DRAM traffic per workload unit."""
        return sum(p.launches * p.memory_bytes for p in self.phases)
