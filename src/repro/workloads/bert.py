"""BERT-Large pre-training (Section V-B).

BERT mixes GEMMs with attention/softmax/layout kernels: its GEMMs are
30-65% of runtime but only utilize 40-50% of the GPU, so both its power
draw (median ~40 W below ResNet's) and its performance variability (8% vs
22%) are lower — Takeaway 6.  Like ResNet it runs bulk-synchronously across
the node's four GPUs, and its outlier nodes are the *same* c002 nodes, which
falls out of the shared cluster defect assignment rather than anything in
this module.
"""

from __future__ import annotations

from .base import KernelPhase, Workload

__all__ = ["bert_pretraining"]

#: *Effective* training FLOPs per sequence for BERT-Large (seq len 128,
#: forward + backward), inflated for achieved-throughput gaps the same way
#: as ResNet — BERT's GEMMs "only utilize 40-50% of the GPU" (Section V-B).
_FLOP_PER_SEQUENCE = 5.6e11


def bert_pretraining(
    batch_size: int = 64,
    n_gpus: int = 4,
    iterations: int = 250,
) -> Workload:
    """Build the BERT-Large pre-training workload.

    Parameters
    ----------
    batch_size:
        Global batch size (the paper uses 64).
    n_gpus:
        GPUs per job (4 in the paper; Section V-B).
    iterations:
        Iterations per run (the paper limits runs to 250).
    """
    if batch_size % n_gpus:
        raise ValueError(
            f"batch_size {batch_size} must divide evenly across {n_gpus} GPUs"
        )
    per_gpu_sequences = batch_size / n_gpus
    gemm = KernelPhase(
        name="attention_gemm",
        compute_flop=_FLOP_PER_SEQUENCE * 0.70 * per_gpu_sequences,
        memory_bytes=2.0e8 * per_gpu_sequences,
        activity=0.50,
        dram_utilization=0.35,
        launches=1,
    )
    other = KernelPhase(
        name="softmax_layout",
        compute_flop=_FLOP_PER_SEQUENCE * 0.30 * per_gpu_sequences,
        memory_bytes=5.5e8 * per_gpu_sequences,
        activity=0.30,
        dram_utilization=0.60,
        launches=1,
    )
    return Workload(
        name="BERT",
        phases=(gemm, other),
        n_gpus=n_gpus,
        units_per_run=iterations,
        performance_metric="iteration_ms",
        fu_utilization=4.6,
        dram_utilization_profile=0.35,
        mem_stall_frac=0.30,
        fu_stall_frac=0.15,
        activity_mix_sigma=0.24,
        run_speed_sigma=0.020,
        activity_speed_correlation=0.6,
        iteration_jitter_sigma=0.03,
        sync_overhead_ms=14.0 if n_gpus > 1 else 0.0,
        pathological_run_rate=0.008,
        pathological_slowdown=(1.4, 2.2),
        input_description=(
            f"30522-word vocabulary, batch {batch_size}, {n_gpus} GPU(s), "
            f"{iterations} iterations, BERT-Large (24 encoders, 16 heads)"
        ),
    )
