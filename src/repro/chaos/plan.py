"""Compile a scenario against one cluster: the injection plan.

A :class:`ChaosPlan` is a scenario bound to a concrete topology: every
fault's target group is resolved to GPU / node index arrays exactly once,
and every per-day effect is a pure function of the day index.  That purity
is the whole determinism story — the plan rides on the cluster (a plain
pickled attribute, so process-pool workers rebuild identical faulted
fleets), the per-day fleet cache in ``Cluster.fleet_for_day`` stays
valid, and the shard plan stays worker-independent.

Effects map onto the channels the fleet already models:

* coolant faults add per-GPU deltas to the day's coolant array;
* stuck p-states multiply ``DefectAssignment.frequency_cap_frac``;
* power-cap directives multiply ``DefectAssignment.power_cap_frac``;
* node loss filters whole nodes out of the allocation sweep *after* the
  coverage RNG draw, so every other day's streams are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require
from ..errors import ConfigError
from .faults import (
    CoolantPumpDegradation,
    InletTemperatureDrift,
    NodeLoss,
    PowerCapDirective,
    StuckPState,
)
from .scenarios import Scenario

__all__ = ["CompiledFault", "ChaosPlan", "compile_plan"]


@dataclass(frozen=True)
class CompiledFault:
    """One fault with its targets resolved against a topology.

    ``gpu_indices`` is ``None`` for fleet-wide faults; ``node_labels``
    carries the targeted nodes (empty for fleet-wide) for timeline events
    and detection scoring.  ``lost_nodes`` is non-empty only for node
    loss.
    """

    label: str
    spec: object
    gpu_indices: np.ndarray | None
    node_labels: tuple[str, ...]
    lost_nodes: frozenset[int]


def _nodes_of_scope(topology, scope: str, index: int) -> np.ndarray:
    """Ascending node indices of one topology group."""
    if scope == "node":
        require(index < topology.n_nodes,
                f"node index {index} out of range (n_nodes="
                f"{topology.n_nodes})")
        return np.asarray([index])
    if scope == "cabinet":
        require(index < topology.n_cabinets,
                f"cabinet index {index} out of range (n_cabinets="
                f"{topology.n_cabinets})")
        return np.flatnonzero(topology.cabinet_of_node == index)
    if scope == "row":
        if not topology.has_grid:
            raise ConfigError(
                "scope 'row' needs a grid topology (row/column layout); "
                "this cluster has cabinets only — use scope 'cabinet'"
            )
        require(index < len(topology.row_labels),
                f"row index {index} out of range "
                f"(n_rows={len(topology.row_labels)})")
        return np.flatnonzero(topology.row_of_node == index)
    raise ConfigError(f"unknown target scope {scope!r}")


def _gpus_of_nodes(topology, nodes: np.ndarray) -> np.ndarray:
    return np.flatnonzero(np.isin(topology.node_of_gpu, nodes))


def compile_plan(scenario: Scenario, cluster) -> "ChaosPlan":
    """Resolve every fault's targets against ``cluster``'s topology."""
    topology = cluster.topology
    compiled = []
    for label, spec in zip(scenario.fault_labels(), scenario.faults):
        if isinstance(spec, (CoolantPumpDegradation, PowerCapDirective)):
            gpu_indices = None
            node_labels: tuple[str, ...] = ()
            lost: frozenset[int] = frozenset()
        elif isinstance(spec, (InletTemperatureDrift, StuckPState)):
            nodes = _nodes_of_scope(topology, spec.scope, spec.index)
            gpu_indices = _gpus_of_nodes(topology, nodes)
            node_labels = tuple(topology.node_labels[i] for i in nodes)
            lost = frozenset()
        elif isinstance(spec, NodeLoss):
            nodes = _nodes_of_scope(topology, spec.scope, spec.index)
            nodes = nodes[: spec.count]
            require(nodes.shape[0] > 0,
                    f"{label}: no nodes in scope {spec.scope}[{spec.index}]")
            require(nodes.shape[0] < topology.n_nodes,
                    f"{label}: cannot lose every node in the cluster")
            gpu_indices = _gpus_of_nodes(topology, nodes)
            node_labels = tuple(topology.node_labels[i] for i in nodes)
            lost = frozenset(int(i) for i in nodes)
        else:
            raise ConfigError(
                f"cannot compile fault of type {type(spec).__name__}"
            )
        compiled.append(
            CompiledFault(
                label=label,
                spec=spec,
                gpu_indices=gpu_indices,
                node_labels=node_labels,
                lost_nodes=lost,
            )
        )
    return ChaosPlan(
        scenario=scenario,
        faults=tuple(compiled),
        n_gpus=topology.n_gpus,
    )


@dataclass(frozen=True)
class ChaosPlan:
    """A scenario's effects, resolved and ready for the injection hooks.

    Pure data (picklable: it travels to campaign workers inside the
    cluster), and every query is a pure function of the day index.
    """

    scenario: Scenario
    faults: tuple[CompiledFault, ...]
    n_gpus: int

    def affects(self, day: int) -> bool:
        """Whether any fault changes the fleet (not the plan) on ``day``."""
        return any(
            f.spec.schedule.active(day) and not isinstance(f.spec, NodeLoss)
            for f in self.faults
        )

    def coolant_delta_c(self, day: int) -> np.ndarray | None:
        """Per-GPU coolant delta on ``day``; ``None`` when no thermal fault."""
        delta: np.ndarray | None = None
        for fault in self.faults:
            severity = fault.spec.schedule.severity(day)
            if severity == 0.0:
                continue
            if isinstance(fault.spec, CoolantPumpDegradation):
                if delta is None:
                    delta = np.zeros(self.n_gpus)
                delta += fault.spec.coolant_rise_c * severity
            elif isinstance(fault.spec, InletTemperatureDrift):
                if delta is None:
                    delta = np.zeros(self.n_gpus)
                delta[fault.gpu_indices] += fault.spec.drift_c * severity
        return delta

    def defect_multipliers(self, day: int) -> tuple[np.ndarray, np.ndarray] | None:
        """``(power_cap_mult, frequency_cap_mult)`` arrays, or ``None``.

        Severity interpolates each multiplier from 1.0 (no effect) down to
        the spec's fraction at full severity; overlapping faults compose
        by taking the tighter cap.
        """
        power: np.ndarray | None = None
        freq: np.ndarray | None = None
        for fault in self.faults:
            severity = fault.spec.schedule.severity(day)
            if severity == 0.0:
                continue
            if isinstance(fault.spec, PowerCapDirective):
                cap = 1.0 - severity * (1.0 - fault.spec.power_cap_frac)
                if power is None:
                    power = np.ones(self.n_gpus)
                np.minimum(power, cap, out=power)
            elif isinstance(fault.spec, StuckPState):
                cap = 1.0 - severity * (1.0 - fault.spec.frequency_cap_frac)
                if freq is None:
                    freq = np.ones(self.n_gpus)
                freq[fault.gpu_indices] = np.minimum(
                    freq[fault.gpu_indices], cap
                )
        if power is None and freq is None:
            return None
        if power is None:
            power = np.ones(self.n_gpus)
        if freq is None:
            freq = np.ones(self.n_gpus)
        return power, freq

    def lost_nodes(self, day: int) -> frozenset[int]:
        """Node indices absent from the machine on ``day``."""
        lost: set[int] = set()
        for fault in self.faults:
            if fault.lost_nodes and fault.spec.schedule.active(day):
                lost |= fault.lost_nodes
        return frozenset(lost)

    def faults_meta(self) -> list[dict]:
        """Per-fault metadata for timeline events and detection scoring."""
        meta = []
        for fault in self.faults:
            schedule = fault.spec.schedule
            meta.append({
                "label": fault.label,
                "kind": fault.spec.kind,
                "detectable": bool(fault.spec.detectable),
                "onset_day": schedule.onset_day,
                "ramp_days": schedule.ramp_days,
                "recovery_day": schedule.recovery_day,
                "nodes": (
                    sorted(fault.node_labels) if fault.node_labels else None
                ),
            })
        return meta
