"""Typed, declarative fault specifications with day-keyed schedules.

The paper characterizes a *healthy* fleet; its failure shapes — thermal
runaways, stuck throttles, chronic slow outliers — exist in the repo as
static :mod:`repro.gpu.defects` draws fixed at fleet construction.  A
*fault* is the time-varying counterpart: a declarative description of a
mid-campaign incident with an onset, an optional severity ramp, and an
optional recovery, all keyed to campaign days so injection composes with
the per-day fleet memoization in :class:`repro.cluster.Cluster`.

Five fault families cover the incident classes operators actually see
(Cankur et al., PAPERS.md — transient, spatially-correlated degradations):

``coolant_pump_degradation``
    A failing pump raises the effective coolant temperature fleet-wide,
    slowly (the ramp models the pump losing flow over days).
``inlet_temperature_drift``
    One row (grid machines) or cabinet runs hotter than its neighbours —
    the spatial signature of Summit's row-correlated temperature outliers.
``stuck_pstate``
    Firmware / driver regression pins the boost ceiling of a node or
    cabinet at a fraction of ``f_max`` — the transient cousin of the
    ``SICK_SLOW`` defect.
``power_cap_directive``
    A facility-wide curtailment order: every GPU's power cap drops to a
    fraction of TDP (the operational form of the paper's Section VII
    power-limit sweep).
``node_loss``
    Nodes leave the machine (hardware pull, maintenance): their
    allocations vanish from the campaign plan while the fault is active.

Every spec validates eagerly (:class:`~repro.errors.ConfigError`) and
round-trips through plain dicts for the JSON scenario catalog
(:mod:`repro.chaos.scenarios`).  Specs are pure data — effects are
compiled against a concrete cluster by :mod:`repro.chaos.plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..config import require

__all__ = [
    "FaultSchedule",
    "CoolantPumpDegradation",
    "InletTemperatureDrift",
    "StuckPState",
    "PowerCapDirective",
    "NodeLoss",
    "FAULT_KINDS",
    "fault_to_dict",
    "fault_from_dict",
]


@dataclass(frozen=True)
class FaultSchedule:
    """When a fault is active, and how hard it hits, as a function of day.

    Severity ramps linearly from ``1/(ramp_days+1)`` on ``onset_day`` to
    ``1.0`` on ``onset_day + ramp_days`` and stays there until
    ``recovery_day`` (exclusive), after which it is 0 again — a pure
    function of the day index, which is what keeps per-day fleet caching
    and worker-count independence intact.
    """

    onset_day: int
    ramp_days: int = 0
    recovery_day: int | None = None

    def __post_init__(self) -> None:
        require(
            isinstance(self.onset_day, int) and not isinstance(self.onset_day, bool)
            and self.onset_day >= 0,
            f"onset_day must be an int >= 0, got {self.onset_day!r}",
        )
        require(
            isinstance(self.ramp_days, int) and not isinstance(self.ramp_days, bool)
            and self.ramp_days >= 0,
            f"ramp_days must be an int >= 0, got {self.ramp_days!r}",
        )
        if self.recovery_day is not None:
            require(
                isinstance(self.recovery_day, int)
                and not isinstance(self.recovery_day, bool)
                and self.recovery_day > self.onset_day,
                f"recovery_day must be an int > onset_day "
                f"({self.onset_day}), got {self.recovery_day!r}",
            )

    def severity(self, day: int) -> float:
        """Severity in [0, 1] on campaign day ``day``."""
        if day < self.onset_day:
            return 0.0
        if self.recovery_day is not None and day >= self.recovery_day:
            return 0.0
        return min(1.0, (day - self.onset_day + 1) / (self.ramp_days + 1))

    def active(self, day: int) -> bool:
        """Whether the fault has any effect on ``day``."""
        return self.severity(day) > 0.0


#: Scopes a spatially-targeted fault may name.  ``cluster`` targets every
#: GPU; the others select one topology group by ascending index, which
#: keeps scenarios portable across presets and ``scale`` values (labels
#: differ between machines, indices do not).
TARGET_SCOPES = ("cluster", "row", "cabinet", "node")


def _require_scope(scope: str, allowed: tuple[str, ...]) -> None:
    require(scope in allowed,
            f"scope must be one of {allowed}, got {scope!r}")


def _require_index(index: int) -> None:
    require(
        isinstance(index, int) and not isinstance(index, bool) and index >= 0,
        f"index must be an int >= 0, got {index!r}",
    )


def _require_frac(value: float, name: str) -> None:
    require(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and 0.0 < value < 1.0,
        f"{name} must be in (0, 1), got {value!r}",
    )


def _require_degrees(value: float, name: str, limit: float = 30.0) -> None:
    require(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and 0.0 < value <= limit,
        f"{name} must be in (0, {limit}] degC, got {value!r}",
    )


@dataclass(frozen=True)
class CoolantPumpDegradation:
    """Fleet-wide coolant temperature rise from a degrading pump."""

    schedule: FaultSchedule
    coolant_rise_c: float

    kind = "coolant_pump_degradation"
    detectable = True

    def __post_init__(self) -> None:
        _require_degrees(self.coolant_rise_c, "coolant_rise_c")


@dataclass(frozen=True)
class InletTemperatureDrift:
    """One row or cabinet's inlet runs hot relative to the rest."""

    schedule: FaultSchedule
    drift_c: float
    scope: str = "cabinet"
    index: int = 0

    kind = "inlet_temperature_drift"
    detectable = True

    def __post_init__(self) -> None:
        _require_degrees(self.drift_c, "drift_c")
        _require_scope(self.scope, ("row", "cabinet"))
        _require_index(self.index)


@dataclass(frozen=True)
class StuckPState:
    """Boost ceiling pinned at a fraction of ``f_max`` for a group."""

    schedule: FaultSchedule
    frequency_cap_frac: float
    scope: str = "node"
    index: int = 0

    kind = "stuck_pstate"
    detectable = True

    def __post_init__(self) -> None:
        _require_frac(self.frequency_cap_frac, "frequency_cap_frac")
        _require_scope(self.scope, ("cabinet", "node"))
        _require_index(self.index)


@dataclass(frozen=True)
class PowerCapDirective:
    """Facility curtailment: every GPU capped at a fraction of TDP.

    A uniform cap shifts the whole fleet together, so the Tukey-fence
    health detector (which flags *relative* outliers) does not see it —
    operators issue the directive, they do not need to detect it.
    Applied through the defect power-cap channel, not the campaign
    ``power_limit_w``, so it works on non-admin clusters too.
    """

    schedule: FaultSchedule
    power_cap_frac: float

    kind = "power_cap_directive"
    detectable = False

    def __post_init__(self) -> None:
        _require_frac(self.power_cap_frac, "power_cap_frac")


@dataclass(frozen=True)
class NodeLoss:
    """Nodes leave the machine while the fault is active.

    ``count`` consecutive nodes starting at the scope's first node are
    dropped from the campaign's allocation sweep — their GPUs simply stop
    appearing in measurements, exactly like a drained node.  The health
    tracker never observes them, so node loss is excluded from
    detection-latency scoring (``detectable = False``).
    """

    schedule: FaultSchedule
    scope: str = "node"
    index: int = 0
    count: int = 1

    kind = "node_loss"
    detectable = False

    def __post_init__(self) -> None:
        _require_scope(self.scope, ("cabinet", "node"))
        _require_index(self.index)
        require(
            isinstance(self.count, int) and not isinstance(self.count, bool)
            and self.count >= 1,
            f"count must be an int >= 1, got {self.count!r}",
        )


#: kind string -> spec class, for the JSON catalog.
FAULT_KINDS = {
    cls.kind: cls
    for cls in (
        CoolantPumpDegradation,
        InletTemperatureDrift,
        StuckPState,
        PowerCapDirective,
        NodeLoss,
    )
}


def fault_to_dict(fault) -> dict:
    """Plain-dict form of a fault spec (inverse of :func:`fault_from_dict`)."""
    require(type(fault) in FAULT_KINDS.values(),
            f"not a fault spec: {type(fault).__name__}")
    doc: dict = {"kind": fault.kind}
    for f in fields(fault):
        value = getattr(fault, f.name)
        if f.name == "schedule":
            doc["schedule"] = {
                "onset_day": value.onset_day,
                "ramp_days": value.ramp_days,
                "recovery_day": value.recovery_day,
            }
        else:
            doc[f.name] = value
    return doc


def fault_from_dict(doc: dict) -> object:
    """Build a fault spec from its dict form, validating eagerly."""
    require(isinstance(doc, dict), f"fault must be an object, got {doc!r}")
    kind = doc.get("kind")
    cls = FAULT_KINDS.get(kind)
    require(cls is not None,
            f"unknown fault kind {kind!r}; expected one of "
            f"{sorted(FAULT_KINDS)}")
    schedule_doc = doc.get("schedule")
    require(isinstance(schedule_doc, dict),
            f"fault {kind!r} needs a schedule object")
    known = {"onset_day", "ramp_days", "recovery_day"}
    unknown = sorted(set(schedule_doc) - known)
    require(not unknown, f"unknown schedule keys: {unknown}")
    schedule = FaultSchedule(**schedule_doc)
    field_names = {f.name for f in fields(cls)} - {"schedule"}
    extra = sorted(set(doc) - field_names - {"kind", "schedule"})
    require(not extra, f"unknown keys for fault {kind!r}: {extra}")
    kwargs = {name: doc[name] for name in field_names if name in doc}
    return cls(schedule=schedule, **kwargs)
