"""The scoring harness: injection → detection → reaction → scorecard.

``score_scenario`` runs one catalog scenario end-to-end on a preset:

1. **Injection** — compile the scenario (:mod:`repro.chaos.plan`), attach
   it to a fresh cluster, and run a monitored campaign; an identical
   no-fault twin runs as the baseline.
2. **Detection** — the online :class:`~repro.obs.health.HealthTracker`
   sees the faulted measurements; per-fault detection latency, miss
   counts, and off-target (false-positive) detections are derived from
   its event stream.
3. **Reaction** — a health-aware scheduler placed a job trace using each
   run's fleet grades; misrouted-job, slow-assignment, JCT, and energy
   deltas quantify what the incident cost downstream.

The result is one schema-validated **scorecard** dict, plus ``chaos``
timeline events that let ``repro replay --check`` re-derive the detection
claims from the log alone (:func:`derive_detection` is shared with the
replayer for exactly that purpose).

Determinism: both campaigns, the trace, and the scheduler are bit-exact
at any worker count and in every solver mode, so a scorecard — and the
chaos timeline behind it — is a pure function of
(scenario, cluster, seed, scale, workload, campaign shape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from ..config import require
from ..obs.manifest import validate_manifest
from ..obs.timeline import (
    TimelineRecorder,
    activate_recorder,
    canonical_digest,
    canonical_json,
)
from .plan import ChaosPlan, compile_plan
from .scenarios import Scenario, scenario_to_dict

__all__ = [
    "SCORECARD_SCHEMA_VERSION",
    "CHAOS_SCORECARD_SCHEMA",
    "ChaosRunResult",
    "derive_detection",
    "validate_scorecard",
    "score_scenario",
    "render_scorecard",
]

SCORECARD_SCHEMA_VERSION = 1

#: Health event kinds that open a condition (everything but RECOVERED).
_OPEN_KINDS = frozenset(
    ("THERMAL_RUNAWAY", "STUCK_THROTTLE", "CHRONIC_SLOW_OUTLIER",
     "DEFECT_DRIFT")
)

#: Schema of the scorecard document (validate_manifest subset).
CHAOS_SCORECARD_SCHEMA = {
    "type": "object",
    "required": [
        "schema_version", "scenario", "cluster", "seed", "scale",
        "workload", "days", "runs_per_day", "faults", "detection",
        "scheduling", "campaign",
    ],
    "properties": {
        "schema_version": {
            "type": "integer", "enum": [SCORECARD_SCHEMA_VERSION],
        },
        "scenario": {"type": "string"},
        "cluster": {"type": "string"},
        "seed": {"type": "integer"},
        "scale": {"type": "number"},
        "workload": {"type": "string"},
        "days": {"type": "integer"},
        "runs_per_day": {"type": "integer"},
        "faults": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "label", "kind", "detectable", "onset_day",
                    "ramp_days", "recovery_day", "nodes",
                ],
                "properties": {
                    "label": {"type": "string"},
                    "kind": {"type": "string"},
                    "detectable": {"type": "boolean"},
                    "onset_day": {"type": "integer"},
                    "ramp_days": {"type": "integer"},
                    "recovery_day": {"type": ["integer", "null"]},
                    "nodes": {"type": ["array", "null"]},
                },
            },
        },
        "detection": {
            "type": "object",
            "required": [
                "detected", "missed", "false_positives", "latency_days",
                "events_total", "baseline_events_total",
            ],
            "properties": {
                "detected": {"type": "integer"},
                "missed": {"type": "integer"},
                "false_positives": {"type": "integer"},
                "latency_days": {"type": "object"},
                "events_total": {"type": "integer"},
                "baseline_events_total": {"type": "integer"},
            },
        },
        "scheduling": {
            "type": "object",
            "required": [
                "policy", "n_jobs", "misrouted_jobs",
                "misrouted_jobs_baseline", "slow_assigned_jobs",
                "slow_assigned_jobs_baseline", "jct_p50_s",
                "jct_p50_baseline_s", "energy_total_j",
                "energy_total_baseline_j",
            ],
        },
        "campaign": {
            "type": "object",
            "required": [
                "rows", "rows_baseline", "perf_p50_ms",
                "perf_p50_baseline_ms", "perf_delta_frac",
                "energy_per_measurement_j", "energy_per_measurement_baseline_j",
                "energy_delta_frac",
            ],
        },
    },
}


def validate_scorecard(doc: dict) -> None:
    """Validate a scorecard document; raises ``ConfigError`` on mismatch."""
    validate_manifest(doc, CHAOS_SCORECARD_SCHEMA)


def _node_of_gpu_label(gpu_label: str) -> str:
    """GPU labels are ``<node_label>-<slot>``; recover the node label."""
    return gpu_label.rsplit("-", 1)[0]


def derive_detection(
    faults_meta: Sequence[dict],
    observations: Iterable[tuple[int, str]],
) -> dict[str, Any]:
    """Detection scoring from fault metadata and health observations.

    ``observations`` are ``(day, gpu_label)`` pairs for every *opened*
    health condition.  The same function scores a live run (observations
    from ``HealthTracker.events``) and a replayed log (observations from
    the timeline's ``health`` layer) — which is what lets
    ``repro replay --check`` re-derive a scorecard's detection claims.

    Per detectable fault, detection is the first open event on a targeted
    GPU at or after the onset day; latency is in days.  Faults with
    ``nodes = None`` target the whole fleet.  Off-target events — opens
    on GPUs no fault targets — count as false positives (detections not
    attributable to the injected incident; on a fleet with background
    defects these include the genuine static outliers).
    """
    obs = sorted(observations)
    targeted_nodes: set[str] = set()
    fleet_wide = False
    for meta in faults_meta:
        if meta["nodes"] is None:
            fleet_wide = True
        else:
            targeted_nodes |= set(meta["nodes"])

    latency_days: dict[str, int | None] = {}
    detected = missed = 0
    for meta in faults_meta:
        if not meta["detectable"]:
            latency_days[meta["label"]] = None
            continue
        nodes = None if meta["nodes"] is None else set(meta["nodes"])
        hits = [
            day
            for day, gpu_label in obs
            if day >= meta["onset_day"]
            and (nodes is None or _node_of_gpu_label(gpu_label) in nodes)
        ]
        if hits:
            latency_days[meta["label"]] = int(hits[0] - meta["onset_day"])
            detected += 1
        else:
            latency_days[meta["label"]] = None
            missed += 1

    if fleet_wide:
        false_positives = 0
    else:
        false_positives = sum(
            1
            for _, gpu_label in obs
            if _node_of_gpu_label(gpu_label) not in targeted_nodes
        )
    return {
        "detected": detected,
        "missed": missed,
        "false_positives": false_positives,
        "latency_days": latency_days,
    }


@dataclass(frozen=True)
class ChaosRunResult:
    """Everything one scenario run produced.

    ``scorecard`` is the schema-validated summary dict; the monitored
    campaign results and scheduling runs are kept for drill-down.
    """

    scenario: Scenario
    plan: ChaosPlan
    scorecard: dict
    faulted: Any          # MonitoringResult
    baseline: Any         # MonitoringResult
    sched_faulted: Any    # SchedulingResult
    sched_baseline: Any   # SchedulingResult

    def render(self) -> str:
        """Human-readable scorecard for the CLI."""
        return render_scorecard(self.scorecard)


def _record_plan_events(
    timeline: TimelineRecorder,
    scenario: Scenario,
    plan: ChaosPlan,
    *,
    cluster: str,
    seed: int,
    scale: float,
    days: int,
    runs_per_day: int,
) -> None:
    timeline.record(
        "chaos",
        "scenario_begin",
        scenario.name,
        cluster=cluster,
        seed=seed,
        scale=scale,
        days=days,
        runs_per_day=runs_per_day,
        n_faults=len(plan.faults),
        scenario_digest=canonical_digest(
            canonical_json(scenario_to_dict(scenario))
        ),
    )
    for meta in plan.faults_meta():
        timeline.record(
            "chaos",
            "fault_onset",
            meta["label"],
            fault_kind=meta["kind"],
            detectable=meta["detectable"],
            onset_day=meta["onset_day"],
            ramp_days=meta["ramp_days"],
            recovery_day=meta["recovery_day"],
            nodes=meta["nodes"],
        )
        if meta["recovery_day"] is not None:
            timeline.record(
                "chaos",
                "fault_recovery",
                meta["label"],
                fault_kind=meta["kind"],
                day=meta["recovery_day"],
            )


def _sched_reaction(cluster, tracker, *, n_jobs: int, trace_seed: int,
                    timeline: TimelineRecorder | None, tracer=None):
    """Health-aware scheduling run driven by one run's fleet grades."""
    from ..api import schedule
    from ..sched import (
        HealthAwarePolicy,
        TraceConfig,
        node_grades_from_gpu_grades,
    )

    node_grades = node_grades_from_gpu_grades(
        tracker.grades(), cluster.topology.node_of_gpu,
        cluster.topology.n_nodes,
    )
    result = schedule(
        cluster=cluster,
        policy=HealthAwarePolicy(node_grades),
        trace=TraceConfig(n_jobs=n_jobs, seed=trace_seed),
        timeline=timeline,
        tracer=tracer,
    )
    bad_nodes = {
        i for i, grade in enumerate(node_grades)
        if grade in ("degraded", "critical")
    }
    misrouted = sum(
        1 for record in result.records
        if any(node in bad_nodes for node in record.node_indices)
    )
    slow_assigned = sum(1 for record in result.records if record.slow_assigned)
    return result, misrouted, slow_assigned


def _campaign_metrics(dataset) -> tuple[int, float, float]:
    """(rows, median performance_ms, mean per-measurement energy J)."""
    perf = dataset.column("performance_ms")
    power = dataset.column("power_w")
    energy_j = power * perf / 1e3
    return int(dataset.n_rows), float(np.median(perf)), float(energy_j.mean())


def _delta_frac(value: float, baseline: float) -> float:
    return float((value - baseline) / baseline) if baseline else 0.0


def score_scenario(
    scenario: Scenario,
    *,
    cluster_name: str = "longhorn",
    seed: int = 0,
    scale: float = 1.0,
    workload_name: str = "sgemm",
    days: int = 10,
    runs_per_day: int = 2,
    n_jobs: int = 40,
    trace_seed: int = 0,
    workers: int | None = None,
    solver: str | None = None,
    tracer: Any = None,
    manifest: Any = None,
    timeline: TimelineRecorder | None = None,
) -> ChaosRunResult:
    """Run ``scenario`` end-to-end against an automatically-run baseline.

    Returns a :class:`ChaosRunResult` whose ``scorecard`` validates
    against :data:`CHAOS_SCORECARD_SCHEMA`.  When ``timeline`` is given,
    the faulted run's events — scenario/fault declarations, campaign,
    health, scheduling, and the final scorecard claims — land on it in a
    deterministic order (the baseline run is never recorded: the
    timeline is the faulted machine's flight log).
    """
    # Deferred: the facade imports this module's result types.
    from ..api import load_preset, load_workload, monitor_fleet, solver_scope
    from ..sim import CampaignConfig

    require(days >= 1, f"days must be >= 1, got {days}")
    require(runs_per_day >= 1,
            f"runs_per_day must be >= 1, got {runs_per_day}")
    require(n_jobs >= 1, f"n_jobs must be >= 1, got {n_jobs}")

    faulted_cluster = load_preset(cluster_name, seed=seed, scale=scale)
    plan = compile_plan(scenario, faulted_cluster)
    faulted_cluster.set_fault_plan(plan)
    baseline_cluster = load_preset(cluster_name, seed=seed, scale=scale)
    workload = load_workload(workload_name)
    config = CampaignConfig(days=days, runs_per_day=runs_per_day)

    if timeline is not None:
        _record_plan_events(
            timeline, scenario, plan,
            cluster=faulted_cluster.name, seed=seed, scale=scale,
            days=days, runs_per_day=runs_per_day,
        )

    with solver_scope(solver):
        faulted = monitor_fleet(
            cluster=faulted_cluster, workload=workload, config=config,
            workers=workers, timeline=timeline, tracer=tracer,
            manifest=manifest,
        )
        # Mask any outer active recorder: the baseline twin must never
        # appear on the faulted machine's flight log.
        with activate_recorder(None):
            baseline = monitor_fleet(
                cluster=baseline_cluster, workload=workload, config=config,
                workers=workers,
            )
        sched_f, misrouted_f, slow_f = _sched_reaction(
            faulted_cluster, faulted.tracker,
            n_jobs=n_jobs, trace_seed=trace_seed, timeline=timeline,
            tracer=tracer,
        )
        with activate_recorder(None):
            sched_b, misrouted_b, slow_b = _sched_reaction(
                baseline_cluster, baseline.tracker,
                n_jobs=n_jobs, trace_seed=trace_seed, timeline=None,
            )

    observations = [
        (event.day, event.gpu_label)
        for event in faulted.tracker.events
        if event.kind.value in _OPEN_KINDS
    ]
    faults_meta = plan.faults_meta()
    detection = derive_detection(faults_meta, observations)
    detection["events_total"] = len(faulted.tracker.events)
    detection["baseline_events_total"] = len(baseline.tracker.events)

    rows_f, perf_f, energy_f = _campaign_metrics(faulted.dataset)
    rows_b, perf_b, energy_b = _campaign_metrics(baseline.dataset)

    scorecard = {
        "schema_version": SCORECARD_SCHEMA_VERSION,
        "scenario": scenario.name,
        "cluster": faulted_cluster.name,
        "seed": seed,
        "scale": scale,
        "workload": workload.name,
        "days": days,
        "runs_per_day": runs_per_day,
        "faults": faults_meta,
        "detection": detection,
        "scheduling": {
            "policy": "health-aware",
            "n_jobs": n_jobs,
            "misrouted_jobs": misrouted_f,
            "misrouted_jobs_baseline": misrouted_b,
            "slow_assigned_jobs": slow_f,
            "slow_assigned_jobs_baseline": slow_b,
            "jct_p50_s": float(sched_f.report.metrics["jct_p50_s"]),
            "jct_p50_baseline_s": float(sched_b.report.metrics["jct_p50_s"]),
            "energy_total_j": float(sched_f.report.metrics["energy_total_j"]),
            "energy_total_baseline_j": float(
                sched_b.report.metrics["energy_total_j"]
            ),
        },
        "campaign": {
            "rows": rows_f,
            "rows_baseline": rows_b,
            "perf_p50_ms": perf_f,
            "perf_p50_baseline_ms": perf_b,
            "perf_delta_frac": _delta_frac(perf_f, perf_b),
            "energy_per_measurement_j": energy_f,
            "energy_per_measurement_baseline_j": energy_b,
            "energy_delta_frac": _delta_frac(energy_f, energy_b),
        },
    }
    validate_scorecard(scorecard)

    if timeline is not None:
        timeline.record(
            "chaos",
            "chaos_scorecard",
            scenario.name,
            detected=detection["detected"],
            missed=detection["missed"],
            false_positives=detection["false_positives"],
            latency_days=detection["latency_days"],
            digest=canonical_digest(canonical_json(scorecard)),
        )

    return ChaosRunResult(
        scenario=scenario,
        plan=plan,
        scorecard=scorecard,
        faulted=faulted,
        baseline=baseline,
        sched_faulted=sched_f,
        sched_baseline=sched_b,
    )


def render_scorecard(scorecard: dict) -> str:
    """Terminal summary of one scorecard."""
    det = scorecard["detection"]
    sched = scorecard["scheduling"]
    camp = scorecard["campaign"]
    lines = [
        f"chaos scorecard: {scorecard['scenario']}  "
        f"cluster={scorecard['cluster']}  seed={scorecard['seed']}  "
        f"days={scorecard['days']}",
        f"  faults: {len(scorecard['faults'])}  "
        f"detected={det['detected']}  missed={det['missed']}  "
        f"false_positives={det['false_positives']}",
    ]
    for label, latency in sorted(det["latency_days"].items()):
        shown = "not detected" if latency is None else f"{latency} d latency"
        lines.append(f"    {label}: {shown}")
    lines.append(
        f"  scheduling ({sched['policy']}, {sched['n_jobs']} jobs): "
        f"misrouted {sched['misrouted_jobs_baseline']} -> "
        f"{sched['misrouted_jobs']}, slow-assigned "
        f"{sched['slow_assigned_jobs_baseline']} -> "
        f"{sched['slow_assigned_jobs']}"
    )
    lines.append(
        f"    jct p50 {sched['jct_p50_baseline_s']:.1f} s -> "
        f"{sched['jct_p50_s']:.1f} s, energy "
        f"{sched['energy_total_baseline_j'] / 1e6:.2f} MJ -> "
        f"{sched['energy_total_j'] / 1e6:.2f} MJ"
    )
    lines.append(
        f"  campaign: perf p50 {camp['perf_p50_baseline_ms']:.1f} ms -> "
        f"{camp['perf_p50_ms']:.1f} ms ({camp['perf_delta_frac']:+.2%}), "
        f"energy/measurement {camp['energy_delta_frac']:+.2%}, "
        f"rows {camp['rows_baseline']} -> {camp['rows']}"
    )
    return "\n".join(lines)
