"""Declarative fault injection, incident scenarios, and mitigation scoring.

``repro.chaos`` turns the repo from "characterize a fleet" into "operate a
fleet under failure":

* :mod:`~repro.chaos.faults` — typed, seeded fault specs with
  onset/ramp/recovery schedules keyed to campaign days;
* :mod:`~repro.chaos.scenarios` — the named, JSON-declarable incident
  catalog (schema-validated);
* :mod:`~repro.chaos.plan` — scenario compilation against a concrete
  cluster; the compiled plan rides on the cluster into every worker, so
  injection is bit-identical at any worker count and solver mode;
* :mod:`~repro.chaos.score` — the end-to-end scoring harness (injection
  → health detection → scheduler reaction) emitting schema-validated
  scorecards against an automatically-run no-fault baseline.

See docs/CHAOS.md for the catalog, scoring semantics, and determinism
guarantees; the CLI entry is ``repro chaos``.
"""

from .faults import (
    FAULT_KINDS,
    CoolantPumpDegradation,
    FaultSchedule,
    InletTemperatureDrift,
    NodeLoss,
    PowerCapDirective,
    StuckPState,
    fault_from_dict,
    fault_to_dict,
)
from .plan import ChaosPlan, CompiledFault, compile_plan
from .scenarios import (
    SCENARIO_SCHEMA,
    SCENARIO_SCHEMA_VERSION,
    SCENARIOS,
    Scenario,
    get_scenario,
    list_scenarios,
    scenario_from_dict,
    scenario_to_dict,
    validate_scenario,
)
from .score import (
    CHAOS_SCORECARD_SCHEMA,
    SCORECARD_SCHEMA_VERSION,
    ChaosRunResult,
    derive_detection,
    render_scorecard,
    score_scenario,
    validate_scorecard,
)

__all__ = [
    "FaultSchedule",
    "CoolantPumpDegradation",
    "InletTemperatureDrift",
    "StuckPState",
    "PowerCapDirective",
    "NodeLoss",
    "FAULT_KINDS",
    "fault_to_dict",
    "fault_from_dict",
    "Scenario",
    "SCENARIOS",
    "SCENARIO_SCHEMA",
    "SCENARIO_SCHEMA_VERSION",
    "scenario_to_dict",
    "scenario_from_dict",
    "validate_scenario",
    "get_scenario",
    "list_scenarios",
    "ChaosPlan",
    "CompiledFault",
    "compile_plan",
    "ChaosRunResult",
    "CHAOS_SCORECARD_SCHEMA",
    "SCORECARD_SCHEMA_VERSION",
    "derive_detection",
    "render_scorecard",
    "score_scenario",
    "validate_scorecard",
]
