"""The named incident scenario catalog: composed faults, JSON-declarable.

A *scenario* is a named composition of fault specs — the unit the scoring
harness (:mod:`repro.chaos.score`) runs end-to-end and the ``repro chaos``
CLI exposes.  Scenarios serialize to plain JSON documents validated by the
same dependency-free schema walker the manifest and health report use
(:func:`repro.obs.manifest.validate_manifest`), so a catalog entry can be
checked, stored, and diffed without constructing anything.

The shipped catalog mirrors incident classes from production telemetry
studies (PAPERS.md): slow pump failures, heatwave curtailments, firmware
p-state regressions, emergency power caps, maintenance windows, and
cascading thermal events.  Targets are index-based (cabinet 0, node 3)
rather than label-based, so every scenario runs on every preset at any
``scale``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import require
from ..errors import ConfigError
from ..obs.manifest import validate_manifest
from .faults import (
    CoolantPumpDegradation,
    FaultSchedule,
    InletTemperatureDrift,
    NodeLoss,
    PowerCapDirective,
    StuckPState,
    fault_from_dict,
    fault_to_dict,
)

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "SCENARIO_SCHEMA",
    "Scenario",
    "scenario_to_dict",
    "scenario_from_dict",
    "validate_scenario",
    "SCENARIOS",
    "get_scenario",
    "list_scenarios",
]

SCENARIO_SCHEMA_VERSION = 1

#: Schema for the JSON form of a scenario (validate_manifest subset).
SCENARIO_SCHEMA = {
    "type": "object",
    "required": ["schema_version", "name", "description", "faults"],
    "properties": {
        "schema_version": {"type": "integer", "enum": [SCENARIO_SCHEMA_VERSION]},
        "name": {"type": "string"},
        "description": {"type": "string"},
        "faults": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["kind", "schedule"],
                "properties": {
                    "kind": {"type": "string"},
                    "schedule": {
                        "type": "object",
                        "required": ["onset_day"],
                        "properties": {
                            "onset_day": {"type": "integer"},
                            "ramp_days": {"type": "integer"},
                            "recovery_day": {"type": ["integer", "null"]},
                        },
                    },
                },
            },
        },
    },
}


@dataclass(frozen=True)
class Scenario:
    """A named incident: one or more fault specs applied together."""

    name: str
    description: str
    faults: tuple

    def __post_init__(self) -> None:
        require(isinstance(self.name, str) and self.name,
                "scenario name must be a non-empty string")
        require(isinstance(self.description, str) and self.description,
                "scenario description must be a non-empty string")
        require(len(self.faults) >= 1,
                f"scenario {self.name!r} needs at least one fault")

    def fault_labels(self) -> tuple[str, ...]:
        """Stable per-fault labels (position + kind) used in scorecards."""
        return tuple(
            f"fault-{i:02d}-{fault.kind}" for i, fault in enumerate(self.faults)
        )


def scenario_to_dict(scenario: Scenario) -> dict:
    """JSON-able form (inverse of :func:`scenario_from_dict`)."""
    return {
        "schema_version": SCENARIO_SCHEMA_VERSION,
        "name": scenario.name,
        "description": scenario.description,
        "faults": [fault_to_dict(fault) for fault in scenario.faults],
    }


def validate_scenario(doc: dict) -> None:
    """Validate a scenario document against :data:`SCENARIO_SCHEMA`."""
    validate_manifest(doc, SCENARIO_SCHEMA)


def scenario_from_dict(doc: dict) -> Scenario:
    """Build a :class:`Scenario` from its JSON form, validating eagerly."""
    validate_scenario(doc)
    return Scenario(
        name=doc["name"],
        description=doc["description"],
        faults=tuple(fault_from_dict(f) for f in doc["faults"]),
    )


def _catalog() -> dict[str, Scenario]:
    entries = (
        Scenario(
            name="pump-degradation",
            description=(
                "A coolant pump loses flow over four days, raising the "
                "fleet's effective coolant temperature, while the worst-fed "
                "cabinet drifts further above its neighbours."
            ),
            faults=(
                CoolantPumpDegradation(
                    schedule=FaultSchedule(onset_day=2, ramp_days=3),
                    coolant_rise_c=6.0,
                ),
                InletTemperatureDrift(
                    schedule=FaultSchedule(onset_day=4),
                    drift_c=5.0,
                    scope="cabinet",
                    index=0,
                ),
            ),
        ),
        Scenario(
            name="summer-heatwave",
            description=(
                "Ambient heat pushes coolant temperatures up over several "
                "days; the facility answers with a fleet-wide power-cap "
                "directive to hold the thermal envelope."
            ),
            faults=(
                CoolantPumpDegradation(
                    schedule=FaultSchedule(onset_day=1, ramp_days=4),
                    coolant_rise_c=5.0,
                ),
                PowerCapDirective(
                    schedule=FaultSchedule(onset_day=3),
                    power_cap_frac=0.85,
                ),
            ),
        ),
        Scenario(
            name="stuck-pstate-cabinet",
            description=(
                "A firmware rollout pins one cabinet's boost ceiling at "
                "62% of f_max; one node is pulled for diagnosis mid-week."
            ),
            faults=(
                StuckPState(
                    schedule=FaultSchedule(onset_day=2),
                    frequency_cap_frac=0.62,
                    scope="cabinet",
                    index=1,
                ),
                NodeLoss(
                    schedule=FaultSchedule(onset_day=5),
                    scope="node",
                    index=0,
                    count=1,
                ),
            ),
        ),
        Scenario(
            name="power-emergency",
            description=(
                "A grid event forces a deep fleet-wide power cap; two "
                "nodes brown out entirely until the cap lifts on day 8."
            ),
            faults=(
                PowerCapDirective(
                    schedule=FaultSchedule(onset_day=1, recovery_day=8),
                    power_cap_frac=0.75,
                ),
                NodeLoss(
                    schedule=FaultSchedule(onset_day=2, recovery_day=8),
                    scope="node",
                    index=1,
                    count=2,
                ),
            ),
        ),
        Scenario(
            name="maintenance-window",
            description=(
                "A planned cabinet drain for three days; the disturbed "
                "airflow leaves a neighbouring cabinet running hot."
            ),
            faults=(
                NodeLoss(
                    schedule=FaultSchedule(onset_day=3, recovery_day=6),
                    scope="cabinet",
                    index=2,
                    count=2,
                ),
                InletTemperatureDrift(
                    schedule=FaultSchedule(onset_day=3, recovery_day=7),
                    drift_c=4.0,
                    scope="cabinet",
                    index=1,
                ),
            ),
        ),
        Scenario(
            name="cascading-thermal",
            description=(
                "A slow pump failure raises fleet coolant; one cabinet "
                "drifts hotter still, and a node's firmware locks its "
                "p-state low under the thermal stress."
            ),
            faults=(
                CoolantPumpDegradation(
                    schedule=FaultSchedule(onset_day=1, ramp_days=2),
                    coolant_rise_c=4.0,
                ),
                InletTemperatureDrift(
                    schedule=FaultSchedule(onset_day=2),
                    drift_c=5.0,
                    scope="cabinet",
                    index=1,
                ),
                StuckPState(
                    schedule=FaultSchedule(onset_day=4),
                    frequency_cap_frac=0.70,
                    scope="node",
                    index=3,
                ),
            ),
        ),
    )
    return {scenario.name: scenario for scenario in entries}


#: The shipped incident catalog, by name.
SCENARIOS: dict[str, Scenario] = _catalog()


def get_scenario(name: str) -> Scenario:
    """Look up a catalog scenario; raises ``ConfigError`` on unknown names."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(sorted(SCENARIOS))}"
        )
    return scenario


def list_scenarios() -> tuple[str, ...]:
    """Catalog scenario names, sorted."""
    return tuple(sorted(SCENARIOS))
