"""Lightweight dataclass-config utilities.

All user-facing configuration objects in the library are frozen dataclasses.
This module provides shared helpers: validation guards and dict/JSON
round-tripping used by the persistence layer and by tests.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping, Type, TypeVar

from .errors import ConfigError

T = TypeVar("T")

__all__ = [
    "require",
    "require_positive",
    "require_in_range",
    "asdict_shallow",
    "config_to_dict",
    "config_from_dict",
    "dump_json",
    "load_json",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigError(message)


def require_positive(value: float, name: str) -> None:
    """Raise unless ``value`` is strictly positive and finite."""
    if not (value > 0 and value == value and value != float("inf")):
        raise ConfigError(f"{name} must be positive and finite, got {value!r}")


def require_in_range(value: float, lo: float, hi: float, name: str) -> None:
    """Raise unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ConfigError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def asdict_shallow(obj: Any) -> dict[str, Any]:
    """A shallow version of :func:`dataclasses.asdict`.

    Unlike the stdlib helper it does not recurse, so nested dataclasses stay
    as objects.  Useful when a caller wants to tweak one field via
    ``dataclasses.replace``-style construction.
    """
    if not dataclasses.is_dataclass(obj):
        raise TypeError(f"expected a dataclass instance, got {type(obj).__name__}")
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


def config_to_dict(obj: Any) -> dict[str, Any]:
    """Recursively convert a dataclass config to plain JSON-able types."""
    if not dataclasses.is_dataclass(obj):
        raise TypeError(f"expected a dataclass instance, got {type(obj).__name__}")
    out: dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        out[f.name] = _jsonify(value)
    return out


def _jsonify(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return config_to_dict(value)
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        return value.item()
    return value


def config_from_dict(cls: Type[T], data: Mapping[str, Any]) -> T:
    """Rebuild a (possibly nested) dataclass from a plain dict.

    Nested dataclass fields are reconstructed recursively; unknown keys in
    ``data`` raise :class:`ConfigError` so stale files fail loudly.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass type")
    field_map = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(data) - set(field_map)
    if unknown:
        raise ConfigError(
            f"unknown keys for {cls.__name__}: {sorted(unknown)}"
        )
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        field = field_map[name]
        ftype = field.type
        # Resolve string annotations pointing at dataclasses in this package.
        resolved = _resolve_dataclass(ftype)
        if resolved is not None and isinstance(value, Mapping):
            kwargs[name] = config_from_dict(resolved, value)
        elif isinstance(value, list):
            kwargs[name] = tuple(value) if _wants_tuple(ftype) else value
        else:
            kwargs[name] = value
    return cls(**kwargs)


def _resolve_dataclass(ftype: Any) -> Type[Any] | None:
    if isinstance(ftype, type) and dataclasses.is_dataclass(ftype):
        return ftype
    return None


def _wants_tuple(ftype: Any) -> bool:
    text = str(ftype)
    return text.startswith("tuple") or text.startswith("Tuple") or "tuple[" in text


def dump_json(obj: Any, path: str | Path) -> None:
    """Serialize a dataclass config to a JSON file."""
    Path(path).write_text(json.dumps(config_to_dict(obj), indent=2, sort_keys=True))


def load_json(cls: Type[T], path: str | Path) -> T:
    """Load a dataclass config from a JSON file written by :func:`dump_json`."""
    return config_from_dict(cls, json.loads(Path(path).read_text()))
