"""Physical constants and small unit-conversion helpers.

The simulator works internally in SI-adjacent units chosen to match what the
vendor profilers report (the units used throughout the paper):

====================  =========================
quantity              unit
====================  =========================
frequency             MHz
power                 W
temperature           degrees Celsius
time (wall clock)     seconds
kernel duration       milliseconds
voltage               volts
energy                joules
====================  =========================

Keeping conversions in one place avoids scattered magic constants.
"""

from __future__ import annotations

# --- time ---------------------------------------------------------------

MS_PER_S = 1000.0
S_PER_MS = 1.0 / MS_PER_S
S_PER_MIN = 60.0
S_PER_HOUR = 3600.0
HOURS_PER_DAY = 24.0
DAYS_PER_WEEK = 7

# --- frequency ----------------------------------------------------------

MHZ_PER_GHZ = 1000.0
HZ_PER_MHZ = 1.0e6


def ms_to_s(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms * S_PER_MS


def s_to_ms(s: float) -> float:
    """Convert seconds to milliseconds."""
    return s * MS_PER_S


def mhz_to_hz(mhz: float) -> float:
    """Convert megahertz to hertz."""
    return mhz * HZ_PER_MHZ


def hours_to_s(hours: float) -> float:
    """Convert hours to seconds."""
    return hours * S_PER_HOUR


def celsius_to_kelvin(c: float) -> float:
    """Convert Celsius to Kelvin (used only at physics boundaries)."""
    return c + 273.15


def kelvin_to_celsius(k: float) -> float:
    """Convert Kelvin to Celsius."""
    return k - 273.15


# --- reference temperatures ----------------------------------------------

#: Temperature (deg C) at which leakage parameters are specified.
LEAKAGE_REFERENCE_C = 25.0

#: Typical machine-room chilled air supply temperature (deg C).
ROOM_AIR_SUPPLY_C = 22.0

#: Typical facility chilled-water loop temperature (deg C).
CHILLED_WATER_C = 17.0
