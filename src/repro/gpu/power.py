"""Board power model.

Total board power is the sum of four contributions::

    P = activity * eff * C_eff * (V(f) * (1 + v_off))**2 * f   (core dynamic)
      + dram_util * P_mem_max                                   (memory)
      + leak_scale * P_leak0 * exp(k * (T - 25))                 (leakage)
      + P_idle                                                   (baseboard)

The dynamic term carries the manufacturing voltage offset — the lever through
which process spread becomes a per-GPU power difference and, under a fixed
TDP, a per-GPU frequency and performance difference.  The leakage term grows
exponentially with junction temperature, which couples cooling quality into
the power budget (and therefore performance) on air-cooled clusters.

All methods are vectorized: per-GPU parameter arrays of shape ``(n,)``
broadcast against frequency grids of shape ``(n,)`` or ``(n, k)``.
"""

from __future__ import annotations

import numpy as np

from .silicon import SiliconPopulation
from .specs import GPUSpec

__all__ = ["PowerModel"]


class PowerModel:
    """Vectorized power evaluation for a homogeneous-SKU GPU population.

    Parameters
    ----------
    spec:
        The SKU electrical specification.
    silicon:
        Per-die manufacturing parameters; ``silicon.n`` defines the
        population size all evaluations broadcast over.
    """

    def __init__(self, spec: GPUSpec, silicon: SiliconPopulation) -> None:
        self.spec = spec
        self.silicon = silicon
        # Pre-square the per-die voltage multiplier once.
        self._v_mult_sq = (1.0 + silicon.voltage_offset) ** 2
        self._leak_f32: np.ndarray | None = None

    @property
    def n(self) -> int:
        """Population size."""
        return self.silicon.n

    @property
    def v_mult_sq(self) -> np.ndarray:
        """Per-die squared voltage multiplier ``(1 + v_offset)**2``.

        The per-GPU factor the dynamic-power term scales with; exposed for
        the fleet solver's analytic boundary estimate, which separates
        dynamic power into this row factor times a ladder-column basis.
        """
        return self._v_mult_sq

    def leakage_scale_w_f32(self) -> np.ndarray:
        """Per-die leakage at the reference temperature, cached float32.

        ``leakage_scale * leakage_nominal_w`` is loop-invariant across every
        fixed-point solve the DVFS controller runs, so it is computed once
        per model and shared (read-only) by all solver workspaces.
        """
        if self._leak_f32 is None:
            leak = (
                self.silicon.leakage_scale * self.spec.leakage_nominal_w
            ).astype(np.float32)
            leak.setflags(write=False)
            self._leak_f32 = leak
        return self._leak_f32

    # -- components ---------------------------------------------------------

    def dynamic_power(
        self,
        f_mhz: np.ndarray,
        activity: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
        indices: np.ndarray | None = None,
        v_sq: np.ndarray | None = None,
    ) -> np.ndarray:
        """Core switching power at frequency ``f_mhz``.

        ``activity`` is the workload's switching-activity factor in [0, 1];
        ``efficiency`` is the defect throughput multiplier (sick GPUs stall,
        switching less and burning less power — the 76 W stragglers of
        Fig. 15b fall out of this coupling).  ``indices`` restricts the
        per-die parameters to a population subset, for callers evaluating
        only the GPUs whose state changed (the engine's fast-cap clamp).

        ``v_sq`` optionally supplies the per-cell effective squared voltage
        ``V(f)**2 * (1 + v_off)**2`` precomputed by the caller.  The fleet
        solver uses this to gather squared ladder voltages from a cached
        per-column table instead of re-evaluating the V/F curve per cell;
        since every element must equal the expression above bit-for-bit,
        only cached values produced by the same ops may be passed.
        """
        f = np.asarray(f_mhz, dtype=float)
        if v_sq is None:
            v_nom = self.spec.voltage_at(f)
            v_mult_sq = (
                self._v_mult_sq if indices is None else self._v_mult_sq[indices]
            )
            v_sq = v_nom**2 * _col(v_mult_sq, f.ndim)
        if isinstance(efficiency, float) and efficiency == 1.0:
            # x * 1.0 is an exact float identity, so callers that fold the
            # efficiency factor into ``activity`` beforehand skip the
            # full-width multiply without changing a bit.
            act = np.asarray(activity, dtype=float)
        else:
            act = np.asarray(activity, dtype=float) * np.asarray(
                efficiency, dtype=float
            )
        return act * self.spec.c_eff_w_per_v2mhz * v_sq * f

    def memory_power(self, dram_utilization: np.ndarray | float) -> np.ndarray:
        """DRAM + memory-controller power at the given utilization."""
        util = np.clip(np.asarray(dram_utilization, dtype=float), 0.0, 1.0)
        return util * self.spec.mem_power_max_w

    def leakage_power(
        self,
        temperature_c: np.ndarray | float,
        indices: np.ndarray | None = None,
    ) -> np.ndarray:
        """Static power of each die at junction temperature ``temperature_c``."""
        t = np.asarray(temperature_c, dtype=float)
        base = self.spec.leakage_nominal_w * np.exp(
            self.spec.leakage_temp_coeff * (t - 25.0)
        )
        scale = (
            self.silicon.leakage_scale
            if indices is None
            else self.silicon.leakage_scale[indices]
        )
        return _col(scale, t.ndim) * base

    def settle_base_power_w(
        self,
        f_mhz: np.ndarray,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
        indices: np.ndarray | None = None,
        v_sq: np.ndarray | None = None,
        mem_w: np.ndarray | None = None,
    ) -> np.ndarray:
        """Temperature-independent board power: dynamic + memory + idle.

        This is the loop-invariant part of the DVFS fixed point (leakage is
        the only temperature-coupled term).  Both the full-population settle
        and the fleet solver's masked row-subset settle call this one
        expression, so their float64 base powers are bit-identical by
        construction; ``indices`` restricts the per-die parameters to the
        rows being evaluated, and ``v_sq`` is forwarded to
        :meth:`dynamic_power` (same bit-exactness contract).  ``mem_w``
        optionally supplies a precomputed :meth:`memory_power` result —
        the memory term is per-GPU only, so callers evaluating several
        ladder columns per GPU compute it once and duplicate it; the sum
        keeps the exact ``(dynamic + memory) + idle`` association either
        way.
        """
        if mem_w is None:
            mem_w = self.memory_power(dram_utilization)
        return (
            self.dynamic_power(
                f_mhz, activity, efficiency, indices=indices, v_sq=v_sq
            )
            + mem_w
            + self.spec.idle_power_w
        )

    # -- totals ---------------------------------------------------------------

    def total_power(
        self,
        f_mhz: np.ndarray,
        temperature_c: np.ndarray,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
        indices: np.ndarray | None = None,
    ) -> np.ndarray:
        """Board power at an operating point (vectorized, broadcasting).

        With ``indices``, the inputs cover only that population subset and
        the per-die parameters are sliced to match.
        """
        return (
            self.dynamic_power(f_mhz, activity, efficiency, indices=indices)
            + self.memory_power(dram_utilization)
            + self.leakage_power(temperature_c, indices=indices)
            + self.spec.idle_power_w
        )

    def idle_power(self, temperature_c: np.ndarray | float) -> np.ndarray:
        """Board power with clocks parked (leakage + baseboard only)."""
        return self.leakage_power(temperature_c) + self.spec.idle_power_w


def _col(per_gpu: np.ndarray, target_ndim: int) -> np.ndarray:
    """Reshape a per-GPU (n,) array to broadcast against (n, k) grids."""
    if target_ndim <= 1:
        return per_gpu
    return per_gpu.reshape(per_gpu.shape[0], *([1] * (target_ndim - 1)))
