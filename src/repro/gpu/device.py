"""The :class:`GPUFleet` — a population of simulated GPUs ready to run.

A fleet bundles everything hardware-side: the SKU spec, the silicon sample,
the defect assignment, and the thermal environment (per-GPU base thermal
resistance and coolant temperature supplied by the cluster's cooling model).
From those it derives the power model, thermal model, and DVFS controller.

Fleets are cheap, immutable views: per-day facility conditions produce a new
fleet via :meth:`GPUFleet.with_coolant` without resampling silicon.
"""

from __future__ import annotations

import numpy as np

from .defects import DefectAssignment, DefectType
from .dvfs import DvfsController, DvfsPolicy
from .power import PowerModel
from .silicon import SiliconPopulation
from .specs import GPUSpec
from .thermal import ThermalModel

__all__ = ["GPUFleet"]


class GPUFleet:
    """A homogeneous-SKU population of simulated GPUs.

    Parameters
    ----------
    spec:
        SKU specification.
    silicon:
        Manufacturing sample, one entry per GPU.
    defects:
        Defect assignment, one entry per GPU.
    r_theta_base_c_per_w:
        Cooling-technology base junction-to-coolant resistance per GPU
        (shape ``(n,)``); multiplied by the silicon TIM-quality and any
        HOT_RUNNER defect factor to form the effective resistance.
    coolant_c:
        Per-GPU coolant temperature (shape ``(n,)``).
    policy:
        DVFS policy; defaults to the vendor-appropriate one.
    power_model:
        Pre-built power model to reuse.  The power model depends only on
        (spec, silicon), so :meth:`with_coolant` passes the existing one
        instead of rebuilding per-die electrical state for every per-run
        thermal environment; must have been built from the same ``silicon``.
    """

    def __init__(
        self,
        spec: GPUSpec,
        silicon: SiliconPopulation,
        defects: DefectAssignment,
        r_theta_base_c_per_w: np.ndarray,
        coolant_c: np.ndarray,
        policy: DvfsPolicy | None = None,
        power_model: PowerModel | None = None,
    ) -> None:
        n = silicon.n
        if defects.n != n:
            raise ValueError(f"defects cover {defects.n} GPUs, silicon covers {n}")
        r_base = np.asarray(r_theta_base_c_per_w, dtype=float)
        coolant = np.asarray(coolant_c, dtype=float)
        if r_base.shape != (n,) or coolant.shape != (n,):
            raise ValueError(
                f"r_theta_base and coolant_c must have shape ({n},), got "
                f"{r_base.shape} and {coolant.shape}"
            )
        if power_model is not None and power_model.silicon is not silicon:
            raise ValueError(
                "power_model was built from a different silicon population"
            )
        self.spec = spec
        self.silicon = silicon
        self.defects = defects
        self.r_theta_base = r_base
        self.coolant_c = coolant
        self.policy = policy if policy is not None else DvfsPolicy.for_spec(spec)

        self.power_model = (
            power_model if power_model is not None else PowerModel(spec, silicon)
        )
        self.thermal_model = ThermalModel(
            spec, self.effective_r_theta(), coolant
        )
        self.controller = DvfsController(
            spec, self.power_model, self.thermal_model, self.policy
        )

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of GPUs in the fleet."""
        return self.silicon.n

    def effective_r_theta(self) -> np.ndarray:
        """Effective junction-to-coolant thermal resistance per GPU."""
        return (
            self.r_theta_base
            * self.silicon.thermal_resistance_scale
            * self.defects.extra_thermal_resistance
        )

    def power_cap_w(
        self, power_limit_w: float | np.ndarray | None = None
    ) -> np.ndarray:
        """Effective per-GPU power cap.

        Board-level POWER_DELIVERY defects cap a GPU at a fraction of TDP;
        an administrative power limit (``nvidia-smi -pl``, Section VI-B)
        caps everything below that.  The effective cap is the minimum.
        """
        cap = np.full(self.n, self.spec.tdp_w)
        if power_limit_w is not None:
            cap = np.minimum(cap, np.broadcast_to(
                np.asarray(power_limit_w, dtype=float), (self.n,)
            ))
        return cap * self.defects.power_cap_frac

    def throughput_efficiency(self) -> np.ndarray:
        """Per-GPU work-throughput multiplier (silicon IPC x defect)."""
        return self.silicon.compute_efficiency * self.defects.efficiency

    def frequency_cap_mhz(self) -> np.ndarray:
        """Per-GPU boost ceiling (SICK_SLOW defects clock below f_max)."""
        return self.spec.f_max_mhz * self.defects.frequency_cap_frac

    def memory_bandwidth_gbs(self) -> np.ndarray:
        """Per-GPU achieved DRAM bandwidth."""
        return self.spec.mem_bandwidth_gbs * self.silicon.bandwidth_efficiency

    # ------------------------------------------------------------------

    def with_coolant(self, coolant_c: np.ndarray) -> "GPUFleet":
        """A fleet identical to this one but in a new thermal environment.

        The electrical side (spec, silicon) is unchanged, so the power
        model — including its cached per-die solver parameters — is shared
        with the new fleet rather than rebuilt.
        """
        return GPUFleet(
            spec=self.spec,
            silicon=self.silicon,
            defects=self.defects,
            r_theta_base_c_per_w=self.r_theta_base,
            coolant_c=coolant_c,
            policy=self.policy,
            power_model=self.power_model,
        )

    def take(self, indices: np.ndarray) -> "GPUFleet":
        """Sub-fleet at ``indices`` (e.g. the GPUs of one allocation)."""
        indices = np.asarray(indices)
        return GPUFleet(
            spec=self.spec,
            silicon=self.silicon.take(indices),
            defects=self.defects.take(indices),
            r_theta_base_c_per_w=self.r_theta_base[indices].copy(),
            coolant_c=self.coolant_c[indices].copy(),
            policy=self.policy,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_def = self.defects.defective_indices().shape[0]
        return f"GPUFleet(spec={self.spec.name}, n={self.n}, defective={n_def})"
