"""Vendor SKU specifications for the GPUs studied in the paper.

The paper covers three SKUs (Table I):

* NVIDIA Tesla **V100**-SXM2 — Volta, 80 SMs, 300 W TDP, 1530 MHz boost,
  fine-grained DVFS steps (7.5 MHz), HBM2 at ~900 GB/s.  Used on Longhorn,
  Summit, Vortex, and CloudLab.
* NVIDIA Quadro **RTX 5000** — Turing, 48 SMs, 230 W TDP, ~1815 MHz boost,
  15 MHz steps, GDDR6 at ~448 GB/s.  Used on Frontera.
* AMD Radeon Instinct **MI60** — Vega20, 64 CUs, 300 W TDP, 1800 MHz boost,
  *coarse* DPM states (8 levels), HBM2 at ~1024 GB/s.  Used on Corona.

Temperature thresholds come from Section III of the paper.  Electrical
parameters (voltage rails, effective capacitance, leakage) are calibrated so
that a fully-active compute kernel exceeds TDP at the boost clock — forcing
the DVFS controller into the power-capped regime the paper observes — while
memory-bound workloads stay comfortably below TDP at the boost clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import require, require_positive
from ..errors import ConfigError

__all__ = [
    "GPUSpec",
    "VENDOR_NVIDIA",
    "VENDOR_AMD",
    "V100",
    "RTX5000",
    "MI60",
    "get_spec",
    "list_specs",
    "register_spec",
]

VENDOR_NVIDIA = "NVIDIA"
VENDOR_AMD = "AMD"


@dataclass(frozen=True)
class GPUSpec:
    """Immutable description of a GPU stock-keeping unit (SKU).

    Attributes
    ----------
    name, vendor:
        Marketing name and vendor string.
    sm_count:
        Streaming multiprocessors (NVIDIA) or compute units (AMD).
    tdp_w:
        Board thermal design power in watts; the DVFS power cap.
    pstates_mhz:
        Discrete core-clock states in MHz, ascending.  NVIDIA exposes fine
        steps, AMD exposes a handful of DPM levels — the granularity
        difference itself is a finding of the paper (Section IV-D).
    v_min, v_max:
        Core voltage at the lowest / highest p-state (volts).
    vf_gamma:
        Shape of the voltage/frequency curve
        ``V(f) = v_min + (v_max - v_min) * x**vf_gamma`` with
        ``x = (f - f_min)/(f_max - f_min)``.
    c_eff_w_per_v2mhz:
        Effective switched capacitance: dynamic power at activity 1.0 is
        ``c_eff * V(f)**2 * f`` watts.
    idle_power_w:
        Board power with clocks idle.
    mem_bandwidth_gbs:
        Peak DRAM bandwidth (GB/s) — the memory roofline.
    mem_power_max_w:
        DRAM + memory-controller power at 100% DRAM utilization.
    leakage_nominal_w:
        Static (leakage) power of a *nominal* die at the reference
        temperature (25 C).
    leakage_temp_coeff:
        Exponential temperature coefficient of leakage (1/degC):
        ``P_leak(T) = leakage_nominal * exp(coeff * (T - 25))``.
    compute_throughput:
        FLOPs retired per MHz per millisecond at full functional-unit
        utilization (i.e. peak FLOP/s divided by boost MHz, expressed per
        ms).  Normalizes the roofline so kernel durations land in the
        ranges the paper reports (e.g. a 25536^3 SGEMM ~2.3 s on a V100).
    t_shutdown_c, t_slowdown_c, t_max_operating_c:
        Thermal thresholds from Section III.
    thermal_capacitance_j_per_c:
        Lumped heat capacity of die + heatsink for the RC transient model.
    dvfs_interval_ms:
        Control period of the on-board power-management firmware.
    """

    name: str
    vendor: str
    sm_count: int
    tdp_w: float
    pstates_mhz: tuple[float, ...]
    v_min: float
    v_max: float
    vf_gamma: float
    c_eff_w_per_v2mhz: float
    idle_power_w: float
    mem_bandwidth_gbs: float
    mem_power_max_w: float
    leakage_nominal_w: float
    leakage_temp_coeff: float
    compute_throughput: float
    t_shutdown_c: float
    t_slowdown_c: float
    t_max_operating_c: float
    thermal_capacitance_j_per_c: float = 600.0
    dvfs_interval_ms: float = 25.0

    def __post_init__(self) -> None:
        require(len(self.pstates_mhz) >= 1, "a GPUSpec needs at least one p-state")
        steps = np.asarray(self.pstates_mhz, dtype=float)
        if not np.all(np.diff(steps) > 0):
            raise ConfigError("pstates_mhz must be strictly ascending")
        require_positive(self.tdp_w, "tdp_w")
        require_positive(self.c_eff_w_per_v2mhz, "c_eff_w_per_v2mhz")
        require_positive(self.mem_bandwidth_gbs, "mem_bandwidth_gbs")
        require_positive(self.compute_throughput, "compute_throughput")
        require(self.v_max > self.v_min > 0, "need v_max > v_min > 0")
        require(
            self.t_shutdown_c > self.t_slowdown_c,
            "t_shutdown_c must exceed t_slowdown_c",
        )

    # -- frequency helpers -------------------------------------------------

    @property
    def f_min_mhz(self) -> float:
        """Lowest supported core clock."""
        return self.pstates_mhz[0]

    @property
    def f_max_mhz(self) -> float:
        """Boost (highest) core clock."""
        return self.pstates_mhz[-1]

    @property
    def n_pstates(self) -> int:
        """Number of discrete frequency states."""
        return len(self.pstates_mhz)

    def pstate_array(self) -> np.ndarray:
        """P-states as a float ndarray (ascending MHz)."""
        return np.asarray(self.pstates_mhz, dtype=float)

    def nearest_pstate_index(self, f_mhz: float | np.ndarray) -> np.ndarray:
        """Index of the highest p-state **not above** ``f_mhz`` (clamped)."""
        steps = self.pstate_array()
        idx = np.searchsorted(steps, np.asarray(f_mhz, dtype=float), side="right") - 1
        return np.clip(idx, 0, len(steps) - 1)

    # -- electrical helpers --------------------------------------------------

    def voltage_at(self, f_mhz: float | np.ndarray) -> np.ndarray:
        """Nominal core voltage on the V-f curve at frequency ``f_mhz``."""
        f = np.asarray(f_mhz, dtype=float)
        span = self.f_max_mhz - self.f_min_mhz
        if span <= 0.0:
            # Degenerate single-p-state ladder: the V-f curve collapses to
            # a point, pinned at the minimum voltage.
            return np.full_like(f, self.v_min)
        x = np.clip((f - self.f_min_mhz) / span, 0.0, 1.0)
        return self.v_min + (self.v_max - self.v_min) * np.power(x, self.vf_gamma)

    def peak_dynamic_power_w(self) -> float:
        """Dynamic power of a nominal die at boost clock, activity 1.0."""
        return float(self.c_eff_w_per_v2mhz * self.v_max**2 * self.f_max_mhz)


def _nvidia_steps(lo: float, hi: float, step: float) -> tuple[float, ...]:
    n = int(round((hi - lo) / step)) + 1
    return tuple(lo + i * step for i in range(n))


#: NVIDIA Tesla V100-SXM2 16GB (Volta).  Calibrated so a fully-active
#: compute kernel draws ~355 W at 1530 MHz — well over the 300 W TDP —
#: so SGEMM settles in the 1300–1450 MHz band the paper measures.
V100 = GPUSpec(
    name="V100",
    vendor=VENDOR_NVIDIA,
    sm_count=80,
    tdp_w=300.0,
    pstates_mhz=_nvidia_steps(135.0, 1530.0, 7.5),
    v_min=0.712,
    v_max=1.093,
    vf_gamma=1.5,
    c_eff_w_per_v2mhz=0.1510,
    idle_power_w=22.0,
    mem_bandwidth_gbs=900.0,
    mem_power_max_w=60.0,
    leakage_nominal_w=18.0,
    leakage_temp_coeff=0.018,
    compute_throughput=1.026e7,
    t_shutdown_c=90.0,
    t_slowdown_c=87.0,
    t_max_operating_c=83.0,
    thermal_capacitance_j_per_c=650.0,
    dvfs_interval_ms=25.0,
)

#: NVIDIA Quadro RTX 5000 (Turing).  Lower 230 W TDP, faster boost clock
#: (Section IV-F notes Frontera's operating frequencies sit above the V100s').
RTX5000 = GPUSpec(
    name="RTX5000",
    vendor=VENDOR_NVIDIA,
    sm_count=48,
    tdp_w=230.0,
    pstates_mhz=_nvidia_steps(300.0, 1815.0, 15.0),
    v_min=0.70,
    v_max=1.06,
    vf_gamma=1.45,
    c_eff_w_per_v2mhz=0.0934,
    idle_power_w=15.0,
    mem_bandwidth_gbs=448.0,
    mem_power_max_w=45.0,
    leakage_nominal_w=12.0,
    leakage_temp_coeff=0.015,
    compute_throughput=6.17e6,
    t_shutdown_c=96.0,
    t_slowdown_c=93.0,
    t_max_operating_c=89.0,
    thermal_capacitance_j_per_c=420.0,
    dvfs_interval_ms=25.0,
)

#: AMD Radeon Instinct MI60 (Vega20).  Coarse DPM states; Corona's GPUs run
#: hot under air cooling and thermally throttle below peak power (Section IV-D).
MI60 = GPUSpec(
    name="MI60",
    vendor=VENDOR_AMD,
    sm_count=64,
    tdp_w=300.0,
    pstates_mhz=(300.0, 701.0, 892.0, 1085.0, 1287.0, 1440.0, 1597.0, 1725.0, 1800.0),
    v_min=0.72,
    v_max=1.10,
    vf_gamma=1.55,
    c_eff_w_per_v2mhz=0.1040,
    idle_power_w=20.0,
    mem_bandwidth_gbs=1024.0,
    mem_power_max_w=64.0,
    leakage_nominal_w=14.0,
    leakage_temp_coeff=0.017,
    compute_throughput=8.2e6,
    t_shutdown_c=105.0,
    t_slowdown_c=100.0,
    t_max_operating_c=99.0,
    thermal_capacitance_j_per_c=700.0,
    dvfs_interval_ms=40.0,
)


_REGISTRY: dict[str, GPUSpec] = {s.name: s for s in (V100, RTX5000, MI60)}


def register_spec(spec: GPUSpec) -> None:
    """Add a custom SKU to the registry (e.g. for what-if studies)."""
    if spec.name in _REGISTRY:
        raise ConfigError(f"spec {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def get_spec(name: str) -> GPUSpec:
    """Look up a registered SKU by name (``'V100'``, ``'RTX5000'``, ``'MI60'``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown GPU spec {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def list_specs() -> list[str]:
    """Names of all registered SKUs."""
    return sorted(_REGISTRY)
