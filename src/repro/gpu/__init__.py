"""GPU device substrate: SKU specs, silicon variability, power, thermal, DVFS.

This subpackage models the *hardware* side of the paper's measurement stack.
Each simulated GPU is a sample from a manufacturing distribution layered on a
vendor SKU specification; its run-time behaviour emerges from the interaction
of the power model, the RC thermal model, and the vendor DVFS controller —
exactly the causal chain the paper identifies as the source of variability.
"""

from .specs import (
    GPUSpec,
    VENDOR_AMD,
    VENDOR_NVIDIA,
    MI60,
    RTX5000,
    V100,
    get_spec,
    list_specs,
)
from .silicon import SiliconConfig, SiliconPopulation, sample_population
from .defects import DefectType, DefectConfig, assign_defects
from .power import PowerModel
from .thermal import ThermalModel
from .dvfs import (
    SOLVER_GRID,
    SOLVER_LADDER,
    DvfsController,
    DvfsPolicy,
    SolverStats,
    default_solver,
)
from .device import GPUFleet

__all__ = [
    "GPUSpec",
    "VENDOR_AMD",
    "VENDOR_NVIDIA",
    "MI60",
    "RTX5000",
    "V100",
    "get_spec",
    "list_specs",
    "SiliconConfig",
    "SiliconPopulation",
    "sample_population",
    "DefectType",
    "DefectConfig",
    "assign_defects",
    "PowerModel",
    "ThermalModel",
    "DvfsController",
    "DvfsPolicy",
    "SolverStats",
    "SOLVER_LADDER",
    "SOLVER_GRID",
    "default_solver",
    "GPUFleet",
]
