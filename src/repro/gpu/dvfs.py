"""Vendor DVFS (dynamic voltage & frequency scaling) controller.

GPU power management is local and reactive (Section II-B): firmware walks
the discrete p-state ladder to keep board power under the TDP and junction
temperature under the slowdown threshold.  We provide two views of the same
policy:

* :meth:`DvfsController.solve_steady` — the settled operating point a long,
  stationary kernel reaches (the regime the paper measures: SGEMM kernels
  are sized so "the DVFS controller [reaches] a stable state").  Solved as a
  vectorized fixed point over the whole population at once.
* :meth:`DvfsController.control_step` — one reactive controller tick for the
  time-stepped engine, reproducing the rise-overshoot-settle transients of
  Fig. 11.

The AMD MI60's coarse DPM ladder cannot sit exactly at the cap, so the
controller *dithers* between two adjacent levels; the effective frequency is
a duty-cycle blend while the reported (sampled) frequency snaps to a level.
This is what makes Corona's per-run repeatability much worse (Fig. 8, median
6.06% vs 0.12–0.44% on NVIDIA clusters) and weakens its perf/frequency
correlation (-0.76 vs -0.97/-0.99) despite identical physics.

Steady-state solvers
--------------------
Three interchangeable, **bit-identical** solvers find the settled ladder
level (see ``docs/PERFORMANCE.md`` for the full argument and measurements):

* ``"ladder"`` (default) — a monotone binary search along the p-state
  ladder.  Power and temperature never decrease up the ladder, so
  feasibility is a prefix and the settled index is its boundary; only
  O(log k) ladder columns per GPU are evaluated.  Each column runs the
  *same elementwise fixed point* the dense grid runs — a (GPU, p-state)
  cell's fixed point depends on nothing but that cell's inputs — so the
  result is bit-for-bit identical to the dense scan.
* ``"fleet"`` — the batched fleet search: one vectorized solve over the
  whole (n_gpus, n_pstates) feasibility matrix with a masked-convergence
  loop.  An analytic per-row boundary estimate (a ``searchsorted`` against
  the dynamic-power ladder basis, refined by a few O(n) leakage passes)
  seeds one batched pair evaluation of each GPU's estimated level and the
  level above; where the pair brackets the boundary — almost the whole
  fleet — that GPU is done and the pair *is* the epilogue's (level, above)
  output.  Stragglers gallop outward from their estimates, and converged
  GPUs drop out of every subsequent array operation — both out of the
  ladder search and out of the leakage/temperature fixed point (a cell
  whose float32 iterate repeats bit-for-bit is frozen, because every
  further iteration would reproduce it exactly).  Boost ceilings are
  pre-clamped analytically.  Select with ``REPRO_DVFS_SOLVER=fleet``.
* ``"grid"`` — the dense (n, k) feasibility scan, kept as an escape hatch
  and cross-check (``REPRO_DVFS_SOLVER=grid`` selects it globally).

All paths evaluate the same elementwise fixed point — the ladder and grid
solvers through :meth:`DvfsController.power_grid_columns`, the fleet
solver through its masked row-subset twin — and the work each solve
performs is counted in :class:`SolverStats`.  Because every (GPU, p-state)
cell depends on nothing but its own inputs, *any* evaluation order,
subset, or masking produces bit-identical cells, which is what the
differential equivalence suite (``tests/gpu/test_dvfs_fleet_equivalence``)
pins across presets, defects, and cap edge cases.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass

import numpy as np

from ..config import require
from ..obs.metrics import active_monitor
from ..obs.tracer import active_tracer
from .power import PowerModel
from .specs import GPUSpec, VENDOR_AMD
from .thermal import ThermalModel

__all__ = [
    "DvfsPolicy",
    "SteadyOperatingPoint",
    "SolverStats",
    "DvfsController",
    "SOLVER_LADDER",
    "SOLVER_FLEET",
    "SOLVER_GRID",
    "solver_scope",
]

#: Fixed-point iterations for the leakage/temperature coupling.  The
#: contraction factor is R * dP_leak/dT ~ 0.05-0.1, so 7 iterations push the
#: error far below sensor resolution.
_FIXED_POINT_ITERS = 7

#: Monotone binary search along the ladder (the default).
SOLVER_LADDER = "ladder"
#: Batched fleet search: estimate-guided pair probe with masked convergence.
SOLVER_FLEET = "fleet"
#: Dense (n, k) feasibility scan — escape hatch and cross-check baseline.
SOLVER_GRID = "grid"

_SOLVERS = (SOLVER_LADDER, SOLVER_FLEET, SOLVER_GRID)

#: Environment variable overriding the default solver for newly-created
#: controllers (``ladder``, ``fleet``, or ``grid``).
SOLVER_ENV_VAR = "REPRO_DVFS_SOLVER"

#: Bins in the fleet solver's inverse-basis lookup table (the analytic
#: boundary estimate's replacement for a per-row binary search).
_BASIS_LUT_SIZE = 4096


@dataclass(frozen=True)
class DvfsPolicy:
    """Tunable behaviour of the power-management firmware."""

    #: Degrees of headroom kept below the slowdown temperature.
    thermal_headroom_c: float = 1.0
    #: Watts of headroom kept below the power cap when stepping up.
    power_headroom_w: float = 2.0
    #: Whether the ladder is coarse enough that the controller dithers
    #: between adjacent levels (AMD DPM behaviour).
    dither: bool = False
    #: Maximum duty-cycle fraction spent at the level *above* the feasible
    #: one while dithering.
    dither_max_duty: float = 0.90
    #: p-states stepped per control tick when over the cap (reactive mode).
    down_step: int = 2
    #: p-states stepped per control tick when under the cap (reactive mode).
    up_step: int = 1

    def __post_init__(self) -> None:
        require(self.thermal_headroom_c >= 0, "thermal_headroom_c must be >= 0")
        require(self.power_headroom_w >= 0, "power_headroom_w must be >= 0")
        require(0 <= self.dither_max_duty < 1, "dither_max_duty must be in [0, 1)")
        require(self.down_step >= 1 and self.up_step >= 1,
                "step sizes must be >= 1")

    @classmethod
    def for_spec(cls, spec: GPUSpec) -> "DvfsPolicy":
        """Default policy for a SKU (AMD ladders dither, NVIDIA's do not)."""
        if spec.vendor == VENDOR_AMD:
            return cls(dither=True, dither_max_duty=0.50, power_headroom_w=2.0,
                       down_step=1, up_step=1)
        return cls(dither=False)


@dataclass(frozen=True)
class SteadyOperatingPoint:
    """Settled operating point of every GPU in the population.

    All arrays have shape ``(n,)``.
    """

    pstate_index: np.ndarray      # int, feasible ladder level
    f_effective_mhz: np.ndarray   # duty-cycle-blended core clock
    f_reported_mhz: np.ndarray    # what the profiler would report
    power_w: np.ndarray           # settled board power
    temperature_c: np.ndarray     # settled junction temperature
    power_capped: np.ndarray      # bool: limited by power, not ladder top
    thermally_capped: np.ndarray  # bool: limited by the slowdown threshold

    @property
    def n(self) -> int:
        """Population size."""
        return int(self.pstate_index.shape[0])


@dataclass
class SolverStats:
    """Work counters for the steady-state solver (mutable, additive).

    One instance lives on each :class:`DvfsController` and accumulates over
    its :meth:`~DvfsController.solve_steady` calls; the campaign executor
    carries per-shard copies through
    :class:`repro.telemetry.progress.ShardTiming` so operators can see how
    much of the dense grid the ladder search skipped.
    """

    #: Per-GPU steady states solved: every ``solve_steady`` call counts its
    #: whole population, so one batched fleet solve over n GPUs adds n — the
    #: same n the GPUs would add if solved alone.  This is what keeps the
    #: total invariant across solver modes *and* shard plans (a worker's
    #: shard solves its GPU subset).
    solves: int = 0
    #: ``solve_steady`` invocations (batches), regardless of population size.
    batches: int = 0
    #: (GPU, p-state) cells whose fixed point was actually evaluated.
    columns_evaluated: int = 0
    #: Cells the dense (n, k) grid would have evaluated for the same solves.
    dense_cells: int = 0
    #: Elementwise fixed-point iterations executed (iterations x cells).
    fixed_point_iterations: int = 0

    @property
    def cells_avoided(self) -> int:
        """Dense-equivalent fixed-point cells the solver never touched."""
        return max(0, self.dense_cells - self.columns_evaluated)

    @property
    def dense_fraction_avoided(self) -> float:
        """Fraction of the dense grid's work avoided (0.0 for the grid solver)."""
        if self.dense_cells <= 0:
            return 0.0
        return self.cells_avoided / self.dense_cells

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Accumulate another counter set into this one (returns ``self``)."""
        self.solves += other.solves
        self.batches += other.batches
        self.columns_evaluated += other.columns_evaluated
        self.dense_cells += other.dense_cells
        self.fixed_point_iterations += other.fixed_point_iterations
        return self

    def copy(self) -> "SolverStats":
        """An independent snapshot of the current counters."""
        return SolverStats(
            solves=self.solves,
            batches=self.batches,
            columns_evaluated=self.columns_evaluated,
            dense_cells=self.dense_cells,
            fixed_point_iterations=self.fixed_point_iterations,
        )

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"{self.solves} GPU solves in {self.batches} batches: "
            f"{self.columns_evaluated} cells evaluated, "
            f"{self.cells_avoided} of {self.dense_cells} dense cells avoided "
            f"({self.dense_fraction_avoided:.1%})"
        )


def default_solver() -> str:
    """The solver newly-created controllers use.

    ``ladder`` unless overridden by the ``REPRO_DVFS_SOLVER`` environment
    variable — the escape hatch for running the batched ``fleet`` search or
    cross-checking the dense ``grid`` scan on a full campaign without
    touching code.
    """
    solver = os.environ.get(SOLVER_ENV_VAR, SOLVER_LADDER)
    require(solver in _SOLVERS,
            f"{SOLVER_ENV_VAR} must be one of {_SOLVERS}, got {solver!r}")
    return solver


@contextlib.contextmanager
def solver_scope(solver: str | None):
    """Select the steady-state solver for the duration of a ``with`` block.

    Controllers consult :data:`SOLVER_ENV_VAR` at construction time (also
    inside campaign worker processes, which inherit the environment), so
    the selection routes through the environment rather than through every
    intermediate API signature.  ``None`` is a no-op; the prior value is
    restored on exit, so scopes nest and re-entrant callers (the CLI, the
    service layer) never leak state.  All solvers produce bit-identical
    outputs — the scope only selects speed.
    """
    if solver is None:
        yield
        return
    require(solver in _SOLVERS,
            f"solver must be one of {_SOLVERS}, got {solver!r}")
    sentinel = object()
    prior = os.environ.get(SOLVER_ENV_VAR, sentinel)
    os.environ[SOLVER_ENV_VAR] = solver
    try:
        yield
    finally:
        if prior is sentinel:
            os.environ.pop(SOLVER_ENV_VAR, None)
        else:
            os.environ[SOLVER_ENV_VAR] = prior  # type: ignore[arg-type]


class DvfsController:
    """Power-management firmware for a homogeneous-SKU population.

    Parameters
    ----------
    spec, power_model, thermal_model, policy:
        The SKU, its electrical and thermal models, and the firmware policy
        (vendor default when ``None``).
    solver:
        Steady-state solver: ``"ladder"`` (monotone binary search, default),
        ``"fleet"`` (batched pilot-guided search with masked convergence),
        or ``"grid"`` (dense scan).  ``None`` defers to
        :func:`default_solver`.  All produce bit-identical results; see
        the module docstring.
    """

    def __init__(
        self,
        spec: GPUSpec,
        power_model: PowerModel,
        thermal_model: ThermalModel,
        policy: DvfsPolicy | None = None,
        solver: str | None = None,
    ) -> None:
        if power_model.n != thermal_model.n:
            raise ValueError(
                f"power model covers {power_model.n} GPUs but thermal model "
                f"covers {thermal_model.n}"
            )
        solver = solver if solver is not None else default_solver()
        require(solver in _SOLVERS,
                f"solver must be one of {_SOLVERS}, got {solver!r}")
        self.spec = spec
        self.power = power_model
        self.thermal = thermal_model
        self.policy = policy if policy is not None else DvfsPolicy.for_spec(spec)
        self.solver = solver
        self.stats = SolverStats()
        self._pstates: np.ndarray | None = None
        self._ladder_basis: np.ndarray | None = None
        self._basis_lut: tuple[np.ndarray | None, float, float] | None = None
        self._vsq_steps: np.ndarray | None = None
        # Reusable float32 buffers keyed by evaluation shape; the ladder
        # search re-enters the fixed point O(log k) times per solve and
        # simulate_run re-solves up to three times per run, so the (t, p,
        # scratch) triple is recycled instead of reallocated.
        self._workspaces: dict[tuple[int, ...], tuple[np.ndarray, ...]] = {}
        # Grow-only (float32, bool) scratch pair for the masked fixed
        # point — same recycling rationale as _workspaces.
        self._masked_scratch: tuple[np.ndarray, np.ndarray] | None = None
        # Solve-invariant duplicated per-GPU parameters for the fleet
        # solver's flat (2n,) pair round, built once per controller.
        self._pair_params: tuple[np.ndarray, ...] | None = None
        self._vmult_sq32: np.ndarray | None = None
        # Thermal power ceiling per GPU, keyed by the t_limit it was
        # derived from (constant per policy, so one entry suffices).
        self._thermal_cap32: tuple[float, np.ndarray] | None = None

    @property
    def n(self) -> int:
        """Population size."""
        return self.power.n

    # ------------------------------------------------------------------
    # steady state
    # ------------------------------------------------------------------

    def pstates(self) -> np.ndarray:
        """The SKU ladder as a cached, read-only float array (ascending MHz)."""
        if self._pstates is None:
            steps = self.spec.pstate_array()
            steps.setflags(write=False)
            self._pstates = steps
        return self._pstates

    def ladder_basis(self) -> np.ndarray:
        """Per-column dynamic-power basis ``C_eff * V(f)^2 * f`` (cached).

        Dynamic power factors into ``(activity * eff * (1 + v_off)^2)``
        per GPU times this strictly rising per-column basis, which is what
        lets the fleet solver invert the power cap into a ladder index
        with one ``searchsorted`` per row.
        """
        if self._ladder_basis is None:
            steps = self.pstates()
            v_nom = self.spec.voltage_at(steps)
            basis = self.spec.c_eff_w_per_v2mhz * v_nom**2 * steps
            basis.setflags(write=False)
            self._ladder_basis = basis
        return self._ladder_basis

    def _vsq_ladder(self) -> np.ndarray:
        """Squared nominal voltage per ladder column (cached, read-only).

        ``voltage_at`` is elementwise, so gathering ``V(steps)**2`` by
        column index is bit-identical to evaluating it at the gathered
        frequencies — the fleet solver trades the per-cell V/F polynomial
        for one small-table gather (see :meth:`PowerModel.dynamic_power`'s
        ``v_sq`` contract).
        """
        if self._vsq_steps is None:
            vsq = self.spec.voltage_at(self.pstates()) ** 2
            vsq.setflags(write=False)
            self._vsq_steps = vsq
        return self._vsq_steps

    def _basis_lookup(self, q: np.ndarray) -> np.ndarray:
        """Approximate ``searchsorted(ladder_basis, q)`` via a uniform LUT.

        A 4096-bin table over the basis range replaces the per-row binary
        search with one subtract/multiply/gather.  The table quantizes bin
        edges downward, so dense low-frequency basis regions can return an
        index a few rungs low — harmless, because the result is only the
        fleet solver's starting hint and the gallop rounds correct any
        offset with exact evaluations.  Non-finite queries (idle rows
        divide by zero activity) clamp to the table ends.
        """
        if self._basis_lut is None:
            basis = self.ladder_basis()
            b0 = float(basis[0])
            span = float(basis[-1]) - b0
            if basis.shape[0] < 8 or span <= 0.0:
                self._basis_lut = (None, 0.0, 0.0)
            else:
                edges = np.linspace(b0, float(basis[-1]), _BASIS_LUT_SIZE)
                lut = np.searchsorted(basis, edges)
                lut.setflags(write=False)
                self._basis_lut = (lut, b0, (_BASIS_LUT_SIZE - 1) / span)
        lut, b0, inv_step = self._basis_lut
        if lut is None:
            return np.searchsorted(self.ladder_basis(), q)
        j = np.clip(
            np.minimum((q - b0) * inv_step, _BASIS_LUT_SIZE - 1.0).astype(
                np.int64
            ),
            0,
            _BASIS_LUT_SIZE - 1,
        )
        return lut[j]

    def _estimate_boundary(
        self,
        act_eff: np.ndarray,
        mem_w: np.ndarray,
        cap: np.ndarray,
        t_limit: float,
    ) -> np.ndarray:
        """Analytic per-row estimate of the first infeasible ladder column.

        One exp and one ``searchsorted`` per GPU, no settles: the thermal
        limit becomes a power bound through the RC model, and — the key
        closed form — a GPU *at* its feasibility boundary dissipates the
        effective cap (to within one rung), so its steady temperature and
        hence its leakage term are known without iterating.  Subtracting
        the temperature-independent terms leaves the dynamic budget, which
        the rising ladder basis inverts into a column index.  Purely a
        search hint — every returned index is verified by exact cell
        evaluations — so the float32 shortcuts here cannot affect the
        solved operating points.  ``act_eff`` is the folded per-GPU
        ``activity * efficiency`` factor and ``mem_w`` the memory power,
        both shared with the pair round's base-power prep.
        """
        f32 = np.float32
        if self._vmult_sq32 is None:
            vm32 = self.power.v_mult_sq.astype(f32)
            vm32.setflags(write=False)
            self._vmult_sq32 = vm32
        a = act_eff.astype(f32) * self._vmult_sq32
        mem_idle = mem_w.astype(f32) + f32(self.spec.idle_power_w)
        leak = self.power.leakage_scale_w_f32()
        # The thermal limit is equivalent to a power cap through T = Tc+R*P;
        # that per-GPU ceiling is policy-constant, so it is cached.
        cached = self._thermal_cap32
        if cached is None or cached[0] != t_limit:
            p_t = self.thermal.power_at_temperature(t_limit).astype(f32)
            p_t.setflags(write=False)
            cached = (t_limit, p_t)
            self._thermal_cap32 = cached
        cap_eff = np.minimum(cap, cached[1]).astype(f32)
        r32, tc32 = self.thermal.fixed_point_params_f32()
        t_bound = tc32 + r32 * cap_eff
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            c0 = mem_idle + leak * np.exp(
                f32(self.spec.leakage_temp_coeff) * (t_bound - f32(25.0))
            )
            return self._basis_lookup((cap_eff - c0) / a)

    def _workspace(self, shape: tuple[int, ...]) -> tuple[np.ndarray, ...]:
        ws = self._workspaces.get(shape)
        if ws is None:
            ws = tuple(np.empty(shape, dtype=np.float32) for _ in range(3))
            self._workspaces[shape] = ws
        return ws

    def _settle(
        self,
        f_mhz: np.ndarray,
        activity: np.ndarray,
        dram_utilization: np.ndarray,
        efficiency: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Elementwise fixed-point settle at per-cell frequencies ``f_mhz``.

        The cell (i, j)'s result depends only on GPU ``i``'s parameters and
        ``f_mhz[i, j]`` — never on neighbouring cells — which is what makes
        any subset of ladder columns bit-identical to the dense grid.
        ``activity``/``dram_utilization``/``efficiency`` must broadcast
        against ``f_mhz`` along axis 0.
        """
        p_base = self.power.settle_base_power_w(
            f_mhz, activity, dram_utilization, efficiency
        ).astype(np.float32)
        # The fixed point runs in float32: the dense grid is n x k (up to
        # ~5M cells on Summit) and the exp-heavy leakage term dominates the
        # whole simulation; 0.01 W precision is far below sensor noise.
        leak_scale = self.power.leakage_scale_w_f32()
        r, tc = self.thermal.fixed_point_params_f32()
        if p_base.ndim == 2:
            leak_scale = leak_scale[:, None]
            r = r[:, None]
            tc = tc[:, None]
        k_t = np.float32(self.spec.leakage_temp_coeff)
        # Clamp the iterate well above the shutdown threshold: operating
        # points that hot are rejected by the feasibility check regardless,
        # and the clamp keeps the exponential leakage term from blowing up
        # on (GPU, p-state) cells that would physically thermally run away.
        t_clamp = np.float32(self.spec.t_shutdown_c + 40.0)

        t, p, scratch = self._workspace(p_base.shape)

        def leakage_step() -> None:
            # p = p_base + leak_scale * exp(k_t * (t - 25)), decomposed into
            # the same correctly-rounded elementwise ops, no temporaries.
            np.subtract(t, np.float32(25.0), out=scratch)
            np.multiply(scratch, k_t, out=scratch)
            np.exp(scratch, out=scratch)
            np.multiply(leak_scale, scratch, out=scratch)
            np.add(p_base, scratch, out=p)

        np.copyto(t, np.broadcast_to(tc, p_base.shape))
        leakage_step()
        for _ in range(_FIXED_POINT_ITERS):
            np.multiply(r, p, out=scratch)
            np.add(tc, scratch, out=scratch)
            np.minimum(scratch, t_clamp, out=t)
            leakage_step()
        self.stats.columns_evaluated += int(p_base.size)
        self.stats.fixed_point_iterations += _FIXED_POINT_ITERS * int(p_base.size)
        return p.astype(np.float64), t.astype(np.float64)

    def _settle_rows(
        self,
        rows: np.ndarray,
        f_mhz: np.ndarray,
        activity: np.ndarray,
        dram_utilization: np.ndarray,
        efficiency: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Masked-convergence settle of one ladder cell per selected row.

        The fleet solver's twin of :meth:`_settle`: evaluates the cell at
        frequency ``f_mhz[i]`` for each population row ``rows[i]``, and
        drops a cell out of the iteration as soon as its float32
        temperature iterate repeats bit-for-bit — every further pass of the
        deterministic elementwise update would reproduce the same bits, so
        freezing early returns exactly what :meth:`_settle`'s fixed seven
        iterations return.  ``activity``/``dram_utilization``/``efficiency``
        are full ``(n,)`` vectors (sliced here).  Returns float32 ``(p, t)``
        of ``rows``'s shape; float32→float64 widening is exact, so callers
        may compare against float64 caps without changing any outcome.
        """
        p_base = self.power.settle_base_power_w(
            f_mhz, activity[rows], dram_utilization[rows],
            efficiency[rows], indices=rows,
        ).astype(np.float32)
        leak_scale = self.power.leakage_scale_w_f32()[rows]
        r, tc = self.thermal.fixed_point_params_f32(indices=rows)
        return self._settle_masked(p_base, leak_scale, r, tc)

    def _settle_cols(
        self,
        rows: np.ndarray | None,
        cols: np.ndarray,
        activity: np.ndarray,
        dram_utilization: np.ndarray,
        efficiency: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Masked-convergence settle of a ``(m, c)`` ladder-column block.

        ``cols[i, j]`` selects a ladder index for population row
        ``rows[i]`` (``rows=None`` means the whole population, in order);
        each GPU's parameters broadcast across its row of the block, so
        the full-population case runs without any per-row gathers.
        Returns float32 ``(p, t)`` of ``cols``'s shape, every cell
        bit-identical to the corresponding dense-grid entry.
        """
        f = self.pstates()[cols]
        if rows is None:
            act, util, eff = activity, dram_utilization, efficiency
            leak = self.power.leakage_scale_w_f32()
            r, tc = self.thermal.fixed_point_params_f32()
        else:
            act = activity[rows]
            util = dram_utilization[rows]
            eff = efficiency[rows]
            leak = self.power.leakage_scale_w_f32()[rows]
            r, tc = self.thermal.fixed_point_params_f32(indices=rows)
        p_base = self.power.settle_base_power_w(
            f, act[:, None], util[:, None], eff[:, None], indices=rows
        ).astype(np.float32)
        c = int(cols.shape[1])
        p, t = self._settle_masked(
            p_base.ravel(),
            np.repeat(leak, c),
            np.repeat(r, c),
            np.repeat(tc, c),
        )
        return p.reshape(p_base.shape), t.reshape(p_base.shape)

    def _settle_masked(
        self,
        p_base: np.ndarray,
        leak: np.ndarray,
        r: np.ndarray,
        tc: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat masked-convergence fixed point over pre-gathered cells.

        The shared core under :meth:`_settle_rows` and
        :meth:`_settle_cols`: all four inputs are float32 ``(m,)`` arrays
        giving each cell's temperature-independent power, leakage scale,
        and thermal parameters.  Iterations write into preallocated
        scratch (the hot loop allocates nothing); cells whose float32
        temperature iterate repeats bit-for-bit stop changing, and once a
        majority have frozen the working set compacts so the stragglers
        iterate alone.  The loop exits outright when every cell is stable.
        """
        m = int(p_base.shape[0])
        k_t = np.float32(self.spec.leakage_temp_coeff)
        t_clamp = np.float32(self.spec.t_shutdown_c + 40.0)
        c25 = np.float32(25.0)
        pool = self._masked_scratch
        if pool is None or pool[0].shape[0] < m:
            pool = (np.empty(m, dtype=np.float32), np.empty(m, dtype=bool))
            self._masked_scratch = pool
        scratch = pool[0][:m]
        moved_buf = pool[1][:m]

        def leakage(t_cur: np.ndarray, base: np.ndarray,
                    leak_w: np.ndarray, out: np.ndarray,
                    s: np.ndarray) -> None:
            # Same decomposed op sequence as _settle's leakage_step:
            # p = base + leak * exp(k_t * (t - 25)).
            np.subtract(t_cur, c25, out=s)
            np.multiply(s, k_t, out=s)
            np.exp(s, out=s)
            np.multiply(leak_w, s, out=s)
            np.add(base, s, out=out)

        out_t = tc.astype(np.float32, copy=True)
        out_p = np.empty(m, dtype=np.float32)
        leakage(out_t, p_base, leak, out_p, scratch)
        self.stats.columns_evaluated += m
        # Work on contiguous arrays, compacting only when cells actually
        # freeze: the common all-cells-still-moving iteration costs one
        # extra elementwise compare, nothing more.
        sel = None  # positions of the working set in the output; None = all
        tc_w, r_w, base_w, leak_w = tc, r, p_base, leak
        t_w, p_w = out_t, out_p
        for it in range(_FIXED_POINT_ITERS):
            m_a = int(t_w.shape[0])
            if m_a == 0:
                break
            self.stats.fixed_point_iterations += m_a
            s = scratch[:m_a]
            np.multiply(r_w, p_w, out=s)
            np.add(tc_w, s, out=s)
            np.minimum(s, t_clamp, out=s)  # s is now t_new
            if it & 1 or it == _FIXED_POINT_ITERS - 1:
                # Odd rounds skip the freeze check: re-iterating a
                # bit-stable cell reproduces the same bits, so checking
                # every other round halves the bookkeeping while at most
                # deferring a compaction by one iteration.  The final
                # round skips it too — a compaction there has no
                # iterations left to save, only gather/scatter cost.
                np.copyto(t_w, s)
                leakage(t_w, base_w, leak_w, p_w, scratch[: t_w.shape[0]])
                continue
            mv = moved_buf[:m_a]
            np.not_equal(s, t_w, out=mv)
            n_moved = int(np.count_nonzero(mv))
            if n_moved == 0:
                break
            if n_moved * 2 <= m_a:
                # A majority of cells froze: park their (t, p) — iterating
                # a bit-stable cell would reproduce identical bits — and
                # compact the working set.  Below that threshold the
                # compaction gathers cost more than the iterations they
                # save, so frozen cells simply ride along unchanged.
                frozen = np.flatnonzero(~mv) if sel is None else sel[~mv]
                out_t[frozen] = t_w[~mv]
                out_p[frozen] = p_w[~mv]
                sel = np.flatnonzero(mv) if sel is None else sel[mv]
                t_w = s[mv]
                tc_w = tc_w[mv]
                r_w = r_w[mv]
                base_w = base_w[mv]
                leak_w = leak_w[mv]
                p_w = np.empty(n_moved, dtype=np.float32)
            else:
                np.copyto(t_w, s)
            leakage(t_w, base_w, leak_w, p_w, scratch[: t_w.shape[0]])
        if sel is None:
            # Nothing froze: the working arrays cover every cell.
            return p_w, t_w
        out_t[sel] = t_w
        out_p[sel] = p_w
        return out_p, out_t

    def power_grid_columns(
        self,
        pstate_idx: np.ndarray,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-point settled (power, temperature) at chosen ladder columns.

        ``pstate_idx`` holds per-GPU ladder indices, shape ``(n,)`` or
        ``(n, m)``; returns two float arrays of the same shape whose cells
        are bit-identical to the corresponding :meth:`power_grid` entries.
        This is the column evaluator both steady-state solvers share.
        """
        idx = np.asarray(pstate_idx, dtype=np.int64)
        if idx.ndim not in (1, 2) or idx.shape[0] != self.n:
            raise ValueError(
                f"pstate_idx must be (n,) or (n, m) with n={self.n}, "
                f"got shape {idx.shape}"
            )
        f = self.pstates()[idx]
        if idx.ndim == 1:
            act = _as_vec(activity, self.n)
            util = _as_vec(dram_utilization, self.n)
            eff = _as_vec(efficiency, self.n)
        else:
            act = _as_col(activity, self.n)
            util = _as_col(dram_utilization, self.n)
            eff = _as_col(efficiency, self.n)
        return self._settle(f, act, util, eff)

    def power_grid(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-point settled (power, temperature) at every (GPU, p-state).

        Returns two ``(n, k)`` arrays.  Solves the leakage/temperature
        coupling ``P = P0(f) + P_leak(T)``, ``T = Tc + R * P`` by iteration.
        """
        steps = self.pstates()
        f_grid = np.broadcast_to(steps, (self.n, steps.shape[0]))
        return self._settle(
            f_grid,
            _as_col(activity, self.n),
            _as_col(dram_utilization, self.n),
            _as_col(efficiency, self.n),
        )

    def solve_steady(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
        power_cap_w: np.ndarray | float | None = None,
        f_cap_mhz: np.ndarray | float | None = None,
        rng: np.random.Generator | None = None,
        solver: str | None = None,
    ) -> SteadyOperatingPoint:
        """Settled operating point of every GPU under a stationary load.

        Parameters
        ----------
        activity, dram_utilization, efficiency:
            Workload switching activity, DRAM utilization, and (defect)
            throughput multiplier; scalars or ``(n,)`` arrays.
        power_cap_w:
            Effective per-GPU power cap.  ``None`` uses the SKU TDP.  Pass
            ``min(TDP * defect_cap, power_limit)`` to combine board defects
            with ``nvidia-smi``-style administrative limits (Section VI-B).
        f_cap_mhz:
            Per-GPU boost ceiling; SICK_SLOW defects cannot clock past it.
            ``None`` allows the full ladder.
        rng:
            Required when the policy dithers (AMD); supplies the per-call
            duty cycles.
        solver:
            Per-call solver override (``"ladder"``, ``"fleet"``, or
            ``"grid"``); ``None`` uses the controller's solver.  All are
            bit-identical.
        """
        solver = solver if solver is not None else self.solver
        require(solver in _SOLVERS,
                f"solver must be one of {_SOLVERS}, got {solver!r}")
        if power_cap_w is None:
            cap = np.full(self.n, self.spec.tdp_w)
        else:
            cap = np.broadcast_to(
                np.asarray(power_cap_w, dtype=float), (self.n,)
            ).copy()
        f_cap = None
        if f_cap_mhz is not None:
            f_cap = np.broadcast_to(
                np.asarray(f_cap_mhz, dtype=float), (self.n,)
            )

        steps = self.pstates()
        k = steps.shape[0]
        t_limit = self.spec.t_slowdown_c - self.policy.thermal_headroom_c
        # A batched call solves every GPU in the population: count n per-GPU
        # solves (and one batch) so totals are invariant across solver modes
        # and shard plans.
        self.stats.solves += self.n
        self.stats.batches += 1
        self.stats.dense_cells += self.n * k
        tracer = active_tracer()
        if tracer is not None:
            # Counter deltas come from SolverStats at the end of the solve:
            # one batch of adds per solve keeps the hot _settle loop clean.
            columns_before = self.stats.columns_evaluated
            fixed_point_before = self.stats.fixed_point_iterations
            span_start = time.time()
            span_t0 = time.perf_counter()

        if solver == SOLVER_GRID:
            idx, p_level, t_level, p_above, t_above = self._scan_dense(
                activity, dram_utilization, efficiency, cap, f_cap, t_limit
            )
        elif solver == SOLVER_FLEET:
            idx, p_level, t_level, p_above, t_above = self._search_fleet(
                activity, dram_utilization, efficiency, cap, f_cap, t_limit
            )
        else:
            idx, p_level, t_level, p_above, t_above = self._search_ladder(
                activity, dram_utilization, efficiency, cap, f_cap, t_limit
            )

        above = np.minimum(idx + 1, k - 1)
        f_level = steps[idx]
        at_top = idx == k - 1
        # Why is the GPU not at the top of the ladder?
        power_capped = (~at_top) & (p_above > cap)
        thermally_capped = (~at_top) & (t_above > t_limit) & ~power_capped
        if f_cap is not None:
            # A GPU pinned by its boost ceiling is not (necessarily) at a
            # power or thermal limit; exclude it from both categories so it
            # does not dither past the ceiling.
            at_ceiling = (~at_top) & (steps[above] > f_cap)
            power_capped &= ~at_ceiling
            thermally_capped &= ~at_ceiling

        f_eff = f_level.astype(float).copy()
        f_rep = f_level.astype(float).copy()
        p_out = p_level.copy()
        t_out = t_level.copy()

        if self.policy.dither:
            if rng is None:
                raise ValueError("a dithering policy requires an rng")
            dither_mask = (~at_top) & (power_capped | thermally_capped)
            n_d = int(dither_mask.sum())
            if n_d:
                # The controller may only spend time at the level above to
                # the extent the time-averaged power and temperature stay
                # under their limits; the realized duty cycle is a noisy
                # fraction of that headroom (run-to-run DPM nondeterminism).
                p_lo = p_level[dither_mask]
                p_hi = p_above[dither_mask]
                t_lo = t_level[dither_mask]
                t_hi = t_above[dither_mask]
                with np.errstate(divide="ignore", invalid="ignore"):
                    duty_p = (
                        cap[dither_mask] - self.policy.power_headroom_w - p_lo
                    ) / (p_hi - p_lo)
                    duty_t = (t_limit - t_lo) / (t_hi - t_lo)
                duty_limit = np.clip(
                    np.nan_to_num(np.minimum(duty_p, duty_t), nan=0.0), 0.0, 1.0
                )
                duty_limit = np.minimum(duty_limit, self.policy.dither_max_duty)
                duty = duty_limit * rng.uniform(0.3, 1.0, size=n_d)
                f_hi = steps[above[dither_mask]]
                f_lo = f_level[dither_mask]
                f_eff[dither_mask] = f_lo + duty * (f_hi - f_lo)
                f_rep[dither_mask] = np.where(duty >= 0.5, f_hi, f_lo)
                p_out[dither_mask] = (
                    p_level[dither_mask]
                    + duty * (p_above[dither_mask] - p_level[dither_mask])
                )
                t_out[dither_mask] = (
                    t_level[dither_mask]
                    + duty * (t_above[dither_mask] - t_level[dither_mask])
                )

        if tracer is not None:
            tracer.add("solver.solves", self.n)
            tracer.add("solver.batches", 1)
            tracer.add("solver.dense_cells", self.n * k)
            tracer.add("solver.columns_evaluated",
                       self.stats.columns_evaluated - columns_before)
            tracer.add("solver.fixed_point_iterations",
                       self.stats.fixed_point_iterations - fixed_point_before)
            tracer.record_span(
                "solve",
                category="solver",
                track=tracer.track,
                start_s=span_start,
                duration_s=time.perf_counter() - span_t0,
                n=self.n,
                solver=solver,
            )
        monitor = active_monitor()
        if monitor is not None:
            # Throttle outcome of the settled operating point: which GPUs
            # ended the solve capped.  Counts of already-computed booleans
            # only, so the hook is execution-invariant and perturbation-free.
            monitor.observe_solve(power_capped, thermally_capped)
        return SteadyOperatingPoint(
            pstate_index=idx.astype(np.int32),
            f_effective_mhz=f_eff,
            f_reported_mhz=f_rep,
            power_w=p_out,
            temperature_c=t_out,
            power_capped=power_capped,
            thermally_capped=thermally_capped,
        )

    def _scan_dense(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float,
        cap: np.ndarray,
        f_cap: np.ndarray | None,
        t_limit: float,
    ) -> tuple[np.ndarray, ...]:
        """Dense solver core: materialize the grid, scan for the top level."""
        steps = self.pstates()
        k = steps.shape[0]
        p_grid, t_grid = self.power_grid(activity, dram_utilization, efficiency)

        feasible = (p_grid <= cap[:, None]) & (t_grid <= t_limit)
        if f_cap is not None:
            feasible &= steps[None, :] <= f_cap[:, None]

        # Highest feasible ladder index per GPU; the ladder is monotone in
        # power and temperature so feasibility is a prefix — but scan
        # explicitly, which is what makes this path the cross-check baseline.
        rev = feasible[:, ::-1]
        first_true = np.argmax(rev, axis=1)
        any_true = rev.any(axis=1)
        idx = np.where(any_true, k - 1 - first_true, 0)

        rows = np.arange(self.n)
        above = np.minimum(idx + 1, k - 1)
        return (
            idx,
            p_grid[rows, idx],
            t_grid[rows, idx],
            p_grid[rows, above],
            t_grid[rows, above],
        )

    def _search_ladder(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float,
        cap: np.ndarray,
        f_cap: np.ndarray | None,
        t_limit: float,
    ) -> tuple[np.ndarray, ...]:
        """Ladder solver core: binary search for the feasibility boundary.

        Settled power and temperature are nondecreasing along the ladder
        (dynamic power rises with f and V(f); leakage follows temperature,
        which follows power), so per-GPU feasibility — power cap AND
        thermal limit AND boost ceiling, each individually a prefix — is a
        prefix of the ladder.  A vectorized binary search with sentinels
        ``lo = -1`` (feasible) and ``hi = k`` (infeasible) finds the
        boundary evaluating ceil(log2(k + 1)) columns instead of k.
        """
        steps = self.pstates()
        k = steps.shape[0]
        n = self.n
        lo = np.full(n, -1, dtype=np.int64)
        hi = np.full(n, k, dtype=np.int64)
        while True:
            gap = hi - lo
            active = gap > 1
            if not active.any():
                break
            # Converged rows get a clamped, ignored evaluation; k is shared
            # by every GPU so nearly all rows converge on the same round and
            # the waste is at most one column on coarse (AMD) ladders.
            mid = np.clip((lo + hi) >> 1, 0, k - 1)
            p_mid, t_mid = self.power_grid_columns(
                mid, activity, dram_utilization, efficiency
            )
            feas = (p_mid <= cap) & (t_mid <= t_limit)
            if f_cap is not None:
                feas &= steps[mid] <= f_cap
            lo = np.where(active & feas, mid, lo)
            hi = np.where(active & ~feas, mid, hi)
        idx = np.where(lo >= 0, lo, 0)
        above = np.minimum(idx + 1, k - 1)
        p_level, t_level = self.power_grid_columns(
            idx, activity, dram_utilization, efficiency
        )
        p_above, t_above = self.power_grid_columns(
            above, activity, dram_utilization, efficiency
        )
        return idx, p_level, t_level, p_above, t_above

    def _pair_invariants(self) -> tuple[np.ndarray, ...]:
        """Duplicated per-GPU parameters for the flat (2n,) pair round.

        The pair round lays its two probe columns out as ``[all c_lo |
        all c_hi]``, so every per-GPU parameter enters twice in sequence.
        These duplicates are solve-invariant (they depend only on the
        silicon and thermal models), so they are concatenated once per
        controller and shared read-only by every fleet solve.
        """
        if self._pair_params is None:
            leak32 = self.power.leakage_scale_w_f32()
            r32, tc32 = self.thermal.fixed_point_params_f32()
            params = tuple(
                np.concatenate([a, a])
                for a in (leak32, r32, tc32, self.power.v_mult_sq)
            )
            for a in params:
                a.setflags(write=False)
            self._pair_params = params
        return self._pair_params

    def _search_fleet(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float,
        cap: np.ndarray,
        f_cap: np.ndarray | None,
        t_limit: float,
    ) -> tuple[np.ndarray, ...]:
        """Fleet solver core: estimate-guided batched search, endpoint caching.

        Finds the same feasibility boundary as :meth:`_search_ladder` with
        ~2 cell evaluations per GPU instead of ~10:

        * Boost ceilings are cut analytically before any settle runs —
          ``steps[j] <= f_cap`` is a pure comparison, so ``searchsorted``
          pre-clamps the infeasible bracket top for free.
        * An analytic per-row boundary estimate seeds the search: dynamic
          power separates into a per-GPU factor times a rising
          ladder-column basis, a GPU at its boundary dissipates its
          effective cap (fixing the leakage term in closed form), and
          inverting ``power <= cap`` is then one ``searchsorted`` per row
          — no settles, one exp per GPU (:meth:`_estimate_boundary`).
        * One batched pair evaluation settles each GPU's estimated level
          and the level above it.  Where the pair brackets the boundary —
          the common case — that GPU is done, and the pair *is* the
          (level, above) output the epilogue needs.  The rest gallop
          outward from their estimate, converged GPUs dropping out of
          every subsequent round.
        * Inside each evaluation, converged fixed-point cells freeze early
          (:meth:`_settle_rows`); only cells never probed (pre-clamped
          ceilings, empty feasible sets) run in one final masked batch.

        Every cell is settled by the same elementwise float32 fixed point
        the other solvers use, so the outputs are bit-identical to theirs.
        """
        steps = self.pstates()
        k = steps.shape[0]
        n = self.n
        act = _as_vec(activity, n)
        util = _as_vec(dram_utilization, n)
        eff = _as_vec(efficiency, n)

        # Per-GPU factors shared between the boundary estimate and the
        # pair round's base-power prep.  Both are elementwise, so folding
        # them once per GPU and duplicating is bit-identical to the
        # per-cell products the other solvers compute.
        ae = act * eff
        mem_w = self.power.memory_power(util)

        if f_cap is not None:
            # Columns at steps[j] > f_cap are infeasible by the ceiling
            # alone; feasibility is a prefix, so clamp the bracket top to
            # the first such column without settling anything.
            hi_top: np.ndarray | int = np.minimum(
                k, np.searchsorted(steps, f_cap, side="right")
            )
            pair_ok = bool((hi_top >= 2).all())
        else:
            hi_top = k
            pair_ok = k >= 2

        # Estimated first-infeasible column, clamped so the probe pair
        # (c_hi - 1, c_hi) sits inside the pre-clamped bracket.
        est = self._estimate_boundary(ae, mem_w, cap, t_limit)
        c_hi = np.clip(est, 1, np.maximum(hi_top - 1, 1))
        c_lo = c_hi - 1

        # Pair round: one batched settle of (estimated level, level above)
        # for every row whose bracket can hold the pair.  The common case
        # (no bracket pre-clamped below two rungs) evaluates the whole
        # population as one flat block and updates every bracket with
        # full-width selects; the rare mixed case falls back to gathered
        # rows and scatter updates.
        if pair_ok:
            # Flat [all c_lo | all c_hi] layout: per-GPU parameters enter
            # by contiguous duplication (concatenate, not fancy gathers),
            # per-column quantities by small-table gathers, and every
            # elementwise op runs one full-length inner loop — the same
            # per-cell float64/float32 op sequence as the other solvers.
            cols_flat = np.concatenate([c_lo, c_hi])
            leak2, r2, tc2, vmult2 = self._pair_invariants()
            p_base = self.power.settle_base_power_w(
                steps[cols_flat],
                np.concatenate([ae, ae]),
                util,  # unused: mem_w below already carries the memory term
                v_sq=self._vsq_ladder()[cols_flat] * vmult2,
                mem_w=np.concatenate([mem_w, mem_w]),
            ).astype(np.float32)
            p_flat, t_flat = self._settle_masked(p_base, leak2, r2, tc2)
            pv_lo, pv_hi = p_flat[:n], p_flat[n:]
            tv_lo, tv_hi = t_flat[:n], t_flat[n:]
            f_lo2 = (pv_lo <= cap) & (tv_lo <= t_limit)
            f_hi2 = (pv_hi <= cap) & (tv_hi <= t_limit)
            if int(np.count_nonzero(f_lo2)) == n and not f_hi2.any():
                # Every row bracketed the boundary at its estimate — the
                # common case when the analytic estimate is exact.  The
                # probed pair already is the (level, above) answer, so the
                # gallop rounds and the endpoint epilogue have nothing to
                # do; return the pair directly (float32 widens exactly).
                return (
                    c_lo,
                    pv_lo.astype(np.float64),
                    tv_lo.astype(np.float64),
                    pv_hi.astype(np.float64),
                    tv_hi.astype(np.float64),
                )
            # Feasibility is a prefix of the ladder and the settle is
            # monotone along it, so f_hi2 implies f_lo2 and each bracket
            # collapses to one select: feasible rows land at c_lo + f_hi2
            # (c_hi when both cells passed), rows with an infeasible pair
            # cell pull hi onto it while the rest keep the untouched top.
            lo = np.where(f_lo2, c_lo + f_hi2, -1)
            hi = np.where(f_hi2, hi_top, c_lo + f_lo2)
            # Endpoint caches: wherever the selects above moved a bracket
            # end onto a probed cell, the matching cache entry holds that
            # cell's settled values (unset slots are never read — lo
            # stayed -1 or hi_eval stays False there).
            p_lo = np.where(f_hi2, pv_hi, pv_lo)
            t_lo = np.where(f_hi2, tv_hi, tv_lo)
            p_hi = np.where(f_lo2, pv_hi, pv_lo)
            t_hi = np.where(f_lo2, tv_hi, tv_lo)
            hi_eval = ~f_hi2
        else:
            lo = np.full(n, -1, dtype=np.int64)
            hi = (
                np.minimum(np.full(n, k, dtype=np.int64), hi_top)
                if f_cap is not None
                else np.full(n, k, dtype=np.int64)
            )
            p_lo = np.empty(n, dtype=np.float32)
            t_lo = np.empty(n, dtype=np.float32)
            p_hi = np.empty(n, dtype=np.float32)
            t_hi = np.empty(n, dtype=np.float32)
            hi_eval = np.zeros(n, dtype=bool)
            rows2 = np.flatnonzero(hi >= 2)
            if rows2.size:
                p2, t2 = self._settle_cols(
                    rows2,
                    np.stack([c_lo[rows2], c_hi[rows2]], axis=1),
                    act, util, eff,
                )
                feas2 = (p2 <= cap[rows2, None]) & (t2 <= t_limit)
                f_lo2, f_hi2 = feas2[:, 0], feas2[:, 1]
                sel = rows2[~f_lo2]
                hi[sel] = c_lo[sel]
                p_hi[sel] = p2[~f_lo2, 0]
                t_hi[sel] = t2[~f_lo2, 0]
                hi_eval[sel] = True
                found = f_lo2 & ~f_hi2
                sel = rows2[found]
                lo[sel] = c_lo[sel]
                p_lo[sel] = p2[found, 0]
                t_lo[sel] = t2[found, 0]
                hi[sel] = c_hi[sel]
                p_hi[sel] = p2[found, 1]
                t_hi[sel] = t2[found, 1]
                hi_eval[sel] = True
                sel = rows2[f_hi2]
                lo[sel] = c_hi[sel]
                p_lo[sel] = p2[f_hi2, 1]
                t_lo[sel] = t2[f_hi2, 1]
        state = (lo, hi, p_lo, t_lo, p_hi, t_hi, hi_eval)
        self._fleet_bisect(np.arange(n, dtype=np.int64), state, steps, act,
                           util, eff, cap, t_limit, c_hi)

        idx = np.where(lo >= 0, lo, 0)
        above = np.minimum(idx + 1, k - 1)
        at_top = idx == k - 1
        has_lo = lo >= 0

        # Level values: any lo >= 0 came from a feasible evaluation, which
        # cached (p, t).  A row stuck at lo == -1 ended with hi == 0; if the
        # bottom rung was ever probed its values sit on the hi endpoint.
        p_level = np.where(has_lo, p_lo, p_hi)
        t_level = np.where(has_lo, t_lo, t_hi)
        need_level = ~has_lo & ~hi_eval

        # Above values: at the ladder top, above == idx; for found rows the
        # bracket ends at gap 1, so above == hi and the cached infeasible
        # endpoint is exactly the above cell.
        hi_is_above = hi_eval & (hi == above) & ~at_top
        need_above = ~at_top & ~hi_is_above

        rows_l = np.flatnonzero(need_level)
        rows_a = np.flatnonzero(need_above)
        p_m = t_m = None
        if rows_l.size or rows_a.size:
            rows = np.concatenate([rows_l, rows_a])
            cols = np.concatenate([idx[rows_l], above[rows_a]])
            p_m, t_m = self._settle_rows(rows, steps[cols], act, util, eff)
            p_level[rows_l] = p_m[: rows_l.size]
            t_level[rows_l] = t_m[: rows_l.size]

        p_above = np.where(hi_is_above, p_hi, p_level)
        t_above = np.where(hi_is_above, t_hi, t_level)
        if rows_a.size:
            p_above[rows_a] = p_m[rows_l.size :]
            t_above[rows_a] = t_m[rows_l.size :]
        return (
            idx,
            p_level.astype(np.float64),
            t_level.astype(np.float64),
            p_above.astype(np.float64),
            t_above.astype(np.float64),
        )

    def _fleet_bisect(
        self,
        rows: np.ndarray,
        state: tuple[np.ndarray, ...],
        steps: np.ndarray,
        act: np.ndarray,
        util: np.ndarray,
        eff: np.ndarray,
        cap: np.ndarray,
        t_limit: float,
        center: np.ndarray | None,
    ) -> None:
        """Drive ``rows``'s brackets to ``hi - lo <= 1``, caching endpoints.

        Plain masked bisection when ``center`` is ``None``.  With per-row
        centers (the analytic boundary estimates, already probed by the
        pair round) the rounds gallop outward — the offset doubles per
        round and is capped by the bisection midpoint, so a GPU settling d
        rungs from its estimate converges in O(log d) evaluations while
        the worst case keeps the bisection bound.  Only active rows are
        evaluated; the brackets and endpoint caches in ``state`` are
        updated in place.
        """
        lo, hi, p_lo, t_lo, p_hi, t_hi, hi_eval = state
        g = 1
        # Brackets only shrink, so a row that converges never re-enters:
        # the candidate set contracts monotonically round over round.
        remaining = rows
        while True:
            if remaining.size == 0:
                break
            lo_a = lo[remaining]
            hi_a = hi[remaining]
            open_ = hi_a - lo_a > 1
            if not open_.all():
                remaining = remaining[open_]
                if remaining.size == 0:
                    break
                lo_a = lo_a[open_]
                hi_a = hi_a[open_]
            active = remaining
            mid_b = (lo_a + hi_a) >> 1
            if center is not None:
                # Gallop away from each row's center: rows whose bracket
                # bottom reached their center search upward, the rest
                # downward.  The clamp against the bisection midpoint keeps
                # mid strictly inside (lo, hi) and degrades to bisection
                # once g is large.
                up = lo_a >= center[active]
                mid = np.where(up, np.minimum(lo_a + g, mid_b),
                               np.maximum(hi_a - g, mid_b))
                g *= 2
            else:
                mid = mid_b
            p_m, t_m = self._settle_rows(active, steps[mid], act, util, eff)
            # mid < hi <= the pre-clamped ceiling bracket, so the boost
            # ceiling needs no re-check here; float32 operands widen
            # exactly against the float64 cap, matching the other solvers'
            # comparisons bit for bit.
            feas = (p_m <= cap[active]) & (t_m <= t_limit)
            f_rows = active[feas]
            i_rows = active[~feas]
            lo[f_rows] = mid[feas]
            p_lo[f_rows] = p_m[feas]
            t_lo[f_rows] = t_m[feas]
            hi[i_rows] = mid[~feas]
            p_hi[i_rows] = p_m[~feas]
            t_hi[i_rows] = t_m[~feas]
            hi_eval[i_rows] = True

    # ------------------------------------------------------------------
    # reactive control (time-stepped engine)
    # ------------------------------------------------------------------

    def control_step(
        self,
        pstate_index: np.ndarray,
        power_w: np.ndarray,
        temperature_c: np.ndarray,
        power_cap_w: np.ndarray,
    ) -> np.ndarray:
        """One firmware tick: step the ladder based on instantaneous P and T.

        Over the cap (or over the slowdown threshold) steps down by
        ``policy.down_step``; comfortably under the cap steps up by
        ``policy.up_step``.  Returns the new p-state indices.
        """
        idx = np.asarray(pstate_index, dtype=np.int64).copy()
        t_limit = self.spec.t_slowdown_c - self.policy.thermal_headroom_c
        over = (power_w > power_cap_w) | (temperature_c > t_limit)
        under = (power_w < power_cap_w - self.policy.power_headroom_w) & (
            temperature_c < t_limit - 1.0
        )
        idx[over] -= self.policy.down_step
        idx[under & ~over] += self.policy.up_step
        return np.clip(idx, 0, self.spec.n_pstates - 1)


def _as_vec(value: np.ndarray | float, n: int) -> np.ndarray:
    """Broadcast a scalar or (n,) array to an (n,) vector."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.shape != (n,):
        raise ValueError(f"expected scalar or shape ({n},), got {arr.shape}")
    return arr


def _as_col(value: np.ndarray | float, n: int) -> np.ndarray:
    """Broadcast a scalar or (n,) array to an (n, 1) column."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full((n, 1), float(arr))
    if arr.shape != (n,):
        raise ValueError(f"expected scalar or shape ({n},), got {arr.shape}")
    return arr[:, None]
