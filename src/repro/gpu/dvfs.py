"""Vendor DVFS (dynamic voltage & frequency scaling) controller.

GPU power management is local and reactive (Section II-B): firmware walks
the discrete p-state ladder to keep board power under the TDP and junction
temperature under the slowdown threshold.  We provide two views of the same
policy:

* :meth:`DvfsController.solve_steady` — the settled operating point a long,
  stationary kernel reaches (the regime the paper measures: SGEMM kernels
  are sized so "the DVFS controller [reaches] a stable state").  Solved as a
  vectorized fixed point over the whole population at once.
* :meth:`DvfsController.control_step` — one reactive controller tick for the
  time-stepped engine, reproducing the rise-overshoot-settle transients of
  Fig. 11.

The AMD MI60's coarse DPM ladder cannot sit exactly at the cap, so the
controller *dithers* between two adjacent levels; the effective frequency is
a duty-cycle blend while the reported (sampled) frequency snaps to a level.
This is what makes Corona's per-run repeatability much worse (Fig. 8, median
6.06% vs 0.12–0.44% on NVIDIA clusters) and weakens its perf/frequency
correlation (-0.76 vs -0.97/-0.99) despite identical physics.

Steady-state solvers
--------------------
Two interchangeable, **bit-identical** solvers find the settled ladder level
(see ``docs/PERFORMANCE.md`` for the full argument and measurements):

* ``"ladder"`` (default) — a monotone binary search along the p-state
  ladder.  Power and temperature never decrease up the ladder, so
  feasibility is a prefix and the settled index is its boundary; only
  O(log k) ladder columns per GPU are evaluated.  Each column runs the
  *same elementwise fixed point* the dense grid runs — a (GPU, p-state)
  cell's fixed point depends on nothing but that cell's inputs — so the
  result is bit-for-bit identical to the dense scan.
* ``"grid"`` — the dense (n, k) feasibility scan, kept as an escape hatch
  and cross-check (``REPRO_DVFS_SOLVER=grid`` selects it globally).

Both paths share :meth:`DvfsController.power_grid_columns`, and the work
each solve performs is counted in :class:`SolverStats`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..config import require
from ..obs.metrics import active_monitor
from ..obs.tracer import active_tracer
from .power import PowerModel
from .specs import GPUSpec, VENDOR_AMD
from .thermal import ThermalModel

__all__ = [
    "DvfsPolicy",
    "SteadyOperatingPoint",
    "SolverStats",
    "DvfsController",
    "SOLVER_LADDER",
    "SOLVER_GRID",
]

#: Fixed-point iterations for the leakage/temperature coupling.  The
#: contraction factor is R * dP_leak/dT ~ 0.05-0.1, so 7 iterations push the
#: error far below sensor resolution.
_FIXED_POINT_ITERS = 7

#: Monotone binary search along the ladder (the default).
SOLVER_LADDER = "ladder"
#: Dense (n, k) feasibility scan — escape hatch and cross-check baseline.
SOLVER_GRID = "grid"

_SOLVERS = (SOLVER_LADDER, SOLVER_GRID)

#: Environment variable overriding the default solver for newly-created
#: controllers (``ladder`` or ``grid``).
SOLVER_ENV_VAR = "REPRO_DVFS_SOLVER"


@dataclass(frozen=True)
class DvfsPolicy:
    """Tunable behaviour of the power-management firmware."""

    #: Degrees of headroom kept below the slowdown temperature.
    thermal_headroom_c: float = 1.0
    #: Watts of headroom kept below the power cap when stepping up.
    power_headroom_w: float = 2.0
    #: Whether the ladder is coarse enough that the controller dithers
    #: between adjacent levels (AMD DPM behaviour).
    dither: bool = False
    #: Maximum duty-cycle fraction spent at the level *above* the feasible
    #: one while dithering.
    dither_max_duty: float = 0.90
    #: p-states stepped per control tick when over the cap (reactive mode).
    down_step: int = 2
    #: p-states stepped per control tick when under the cap (reactive mode).
    up_step: int = 1

    def __post_init__(self) -> None:
        require(self.thermal_headroom_c >= 0, "thermal_headroom_c must be >= 0")
        require(self.power_headroom_w >= 0, "power_headroom_w must be >= 0")
        require(0 <= self.dither_max_duty < 1, "dither_max_duty must be in [0, 1)")
        require(self.down_step >= 1 and self.up_step >= 1,
                "step sizes must be >= 1")

    @classmethod
    def for_spec(cls, spec: GPUSpec) -> "DvfsPolicy":
        """Default policy for a SKU (AMD ladders dither, NVIDIA's do not)."""
        if spec.vendor == VENDOR_AMD:
            return cls(dither=True, dither_max_duty=0.50, power_headroom_w=2.0,
                       down_step=1, up_step=1)
        return cls(dither=False)


@dataclass(frozen=True)
class SteadyOperatingPoint:
    """Settled operating point of every GPU in the population.

    All arrays have shape ``(n,)``.
    """

    pstate_index: np.ndarray      # int, feasible ladder level
    f_effective_mhz: np.ndarray   # duty-cycle-blended core clock
    f_reported_mhz: np.ndarray    # what the profiler would report
    power_w: np.ndarray           # settled board power
    temperature_c: np.ndarray     # settled junction temperature
    power_capped: np.ndarray      # bool: limited by power, not ladder top
    thermally_capped: np.ndarray  # bool: limited by the slowdown threshold

    @property
    def n(self) -> int:
        """Population size."""
        return int(self.pstate_index.shape[0])


@dataclass
class SolverStats:
    """Work counters for the steady-state solver (mutable, additive).

    One instance lives on each :class:`DvfsController` and accumulates over
    its :meth:`~DvfsController.solve_steady` calls; the campaign executor
    carries per-shard copies through
    :class:`repro.telemetry.progress.ShardTiming` so operators can see how
    much of the dense grid the ladder search skipped.
    """

    #: ``solve_steady`` invocations counted.
    solves: int = 0
    #: (GPU, p-state) cells whose fixed point was actually evaluated.
    columns_evaluated: int = 0
    #: Cells the dense (n, k) grid would have evaluated for the same solves.
    dense_cells: int = 0
    #: Elementwise fixed-point iterations executed (iterations x cells).
    fixed_point_iterations: int = 0

    @property
    def cells_avoided(self) -> int:
        """Dense-equivalent fixed-point cells the solver never touched."""
        return max(0, self.dense_cells - self.columns_evaluated)

    @property
    def dense_fraction_avoided(self) -> float:
        """Fraction of the dense grid's work avoided (0.0 for the grid solver)."""
        if self.dense_cells <= 0:
            return 0.0
        return self.cells_avoided / self.dense_cells

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Accumulate another counter set into this one (returns ``self``)."""
        self.solves += other.solves
        self.columns_evaluated += other.columns_evaluated
        self.dense_cells += other.dense_cells
        self.fixed_point_iterations += other.fixed_point_iterations
        return self

    def copy(self) -> "SolverStats":
        """An independent snapshot of the current counters."""
        return SolverStats(
            solves=self.solves,
            columns_evaluated=self.columns_evaluated,
            dense_cells=self.dense_cells,
            fixed_point_iterations=self.fixed_point_iterations,
        )

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"{self.solves} solves: {self.columns_evaluated} cells evaluated, "
            f"{self.cells_avoided} of {self.dense_cells} dense cells avoided "
            f"({self.dense_fraction_avoided:.1%})"
        )


def default_solver() -> str:
    """The solver newly-created controllers use.

    ``ladder`` unless overridden by the ``REPRO_DVFS_SOLVER`` environment
    variable — the escape hatch for cross-checking the dense scan on a full
    campaign without touching code.
    """
    solver = os.environ.get(SOLVER_ENV_VAR, SOLVER_LADDER)
    require(solver in _SOLVERS,
            f"{SOLVER_ENV_VAR} must be one of {_SOLVERS}, got {solver!r}")
    return solver


class DvfsController:
    """Power-management firmware for a homogeneous-SKU population.

    Parameters
    ----------
    spec, power_model, thermal_model, policy:
        The SKU, its electrical and thermal models, and the firmware policy
        (vendor default when ``None``).
    solver:
        Steady-state solver: ``"ladder"`` (monotone binary search, default)
        or ``"grid"`` (dense scan).  ``None`` defers to
        :func:`default_solver`.  Both produce bit-identical results; see
        the module docstring.
    """

    def __init__(
        self,
        spec: GPUSpec,
        power_model: PowerModel,
        thermal_model: ThermalModel,
        policy: DvfsPolicy | None = None,
        solver: str | None = None,
    ) -> None:
        if power_model.n != thermal_model.n:
            raise ValueError(
                f"power model covers {power_model.n} GPUs but thermal model "
                f"covers {thermal_model.n}"
            )
        solver = solver if solver is not None else default_solver()
        require(solver in _SOLVERS,
                f"solver must be one of {_SOLVERS}, got {solver!r}")
        self.spec = spec
        self.power = power_model
        self.thermal = thermal_model
        self.policy = policy if policy is not None else DvfsPolicy.for_spec(spec)
        self.solver = solver
        self.stats = SolverStats()
        self._pstates: np.ndarray | None = None
        # Reusable float32 buffers keyed by evaluation shape; the ladder
        # search re-enters the fixed point O(log k) times per solve and
        # simulate_run re-solves up to three times per run, so the (t, p,
        # scratch) triple is recycled instead of reallocated.
        self._workspaces: dict[tuple[int, ...], tuple[np.ndarray, ...]] = {}

    @property
    def n(self) -> int:
        """Population size."""
        return self.power.n

    # ------------------------------------------------------------------
    # steady state
    # ------------------------------------------------------------------

    def pstates(self) -> np.ndarray:
        """The SKU ladder as a cached, read-only float array (ascending MHz)."""
        if self._pstates is None:
            steps = self.spec.pstate_array()
            steps.setflags(write=False)
            self._pstates = steps
        return self._pstates

    def _workspace(self, shape: tuple[int, ...]) -> tuple[np.ndarray, ...]:
        ws = self._workspaces.get(shape)
        if ws is None:
            ws = tuple(np.empty(shape, dtype=np.float32) for _ in range(3))
            self._workspaces[shape] = ws
        return ws

    def _settle(
        self,
        f_mhz: np.ndarray,
        activity: np.ndarray,
        dram_utilization: np.ndarray,
        efficiency: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Elementwise fixed-point settle at per-cell frequencies ``f_mhz``.

        The cell (i, j)'s result depends only on GPU ``i``'s parameters and
        ``f_mhz[i, j]`` — never on neighbouring cells — which is what makes
        any subset of ladder columns bit-identical to the dense grid.
        ``activity``/``dram_utilization``/``efficiency`` must broadcast
        against ``f_mhz`` along axis 0.
        """
        p_base = (
            self.power.dynamic_power(f_mhz, activity, efficiency)
            + self.power.memory_power(dram_utilization)
            + self.spec.idle_power_w
        ).astype(np.float32)
        # The fixed point runs in float32: the dense grid is n x k (up to
        # ~5M cells on Summit) and the exp-heavy leakage term dominates the
        # whole simulation; 0.01 W precision is far below sensor noise.
        leak_scale = self.power.leakage_scale_w_f32()
        r, tc = self.thermal.fixed_point_params_f32()
        if p_base.ndim == 2:
            leak_scale = leak_scale[:, None]
            r = r[:, None]
            tc = tc[:, None]
        k_t = np.float32(self.spec.leakage_temp_coeff)
        # Clamp the iterate well above the shutdown threshold: operating
        # points that hot are rejected by the feasibility check regardless,
        # and the clamp keeps the exponential leakage term from blowing up
        # on (GPU, p-state) cells that would physically thermally run away.
        t_clamp = np.float32(self.spec.t_shutdown_c + 40.0)

        t, p, scratch = self._workspace(p_base.shape)

        def leakage_step() -> None:
            # p = p_base + leak_scale * exp(k_t * (t - 25)), decomposed into
            # the same correctly-rounded elementwise ops, no temporaries.
            np.subtract(t, np.float32(25.0), out=scratch)
            np.multiply(scratch, k_t, out=scratch)
            np.exp(scratch, out=scratch)
            np.multiply(leak_scale, scratch, out=scratch)
            np.add(p_base, scratch, out=p)

        np.copyto(t, np.broadcast_to(tc, p_base.shape))
        leakage_step()
        for _ in range(_FIXED_POINT_ITERS):
            np.multiply(r, p, out=scratch)
            np.add(tc, scratch, out=scratch)
            np.minimum(scratch, t_clamp, out=t)
            leakage_step()
        self.stats.columns_evaluated += int(p_base.size)
        self.stats.fixed_point_iterations += _FIXED_POINT_ITERS * int(p_base.size)
        return p.astype(np.float64), t.astype(np.float64)

    def power_grid_columns(
        self,
        pstate_idx: np.ndarray,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-point settled (power, temperature) at chosen ladder columns.

        ``pstate_idx`` holds per-GPU ladder indices, shape ``(n,)`` or
        ``(n, m)``; returns two float arrays of the same shape whose cells
        are bit-identical to the corresponding :meth:`power_grid` entries.
        This is the column evaluator both steady-state solvers share.
        """
        idx = np.asarray(pstate_idx, dtype=np.int64)
        if idx.ndim not in (1, 2) or idx.shape[0] != self.n:
            raise ValueError(
                f"pstate_idx must be (n,) or (n, m) with n={self.n}, "
                f"got shape {idx.shape}"
            )
        f = self.pstates()[idx]
        if idx.ndim == 1:
            act = _as_vec(activity, self.n)
            util = _as_vec(dram_utilization, self.n)
            eff = _as_vec(efficiency, self.n)
        else:
            act = _as_col(activity, self.n)
            util = _as_col(dram_utilization, self.n)
            eff = _as_col(efficiency, self.n)
        return self._settle(f, act, util, eff)

    def power_grid(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-point settled (power, temperature) at every (GPU, p-state).

        Returns two ``(n, k)`` arrays.  Solves the leakage/temperature
        coupling ``P = P0(f) + P_leak(T)``, ``T = Tc + R * P`` by iteration.
        """
        steps = self.pstates()
        f_grid = np.broadcast_to(steps, (self.n, steps.shape[0]))
        return self._settle(
            f_grid,
            _as_col(activity, self.n),
            _as_col(dram_utilization, self.n),
            _as_col(efficiency, self.n),
        )

    def solve_steady(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
        power_cap_w: np.ndarray | float | None = None,
        f_cap_mhz: np.ndarray | float | None = None,
        rng: np.random.Generator | None = None,
        solver: str | None = None,
    ) -> SteadyOperatingPoint:
        """Settled operating point of every GPU under a stationary load.

        Parameters
        ----------
        activity, dram_utilization, efficiency:
            Workload switching activity, DRAM utilization, and (defect)
            throughput multiplier; scalars or ``(n,)`` arrays.
        power_cap_w:
            Effective per-GPU power cap.  ``None`` uses the SKU TDP.  Pass
            ``min(TDP * defect_cap, power_limit)`` to combine board defects
            with ``nvidia-smi``-style administrative limits (Section VI-B).
        f_cap_mhz:
            Per-GPU boost ceiling; SICK_SLOW defects cannot clock past it.
            ``None`` allows the full ladder.
        rng:
            Required when the policy dithers (AMD); supplies the per-call
            duty cycles.
        solver:
            Per-call solver override (``"ladder"`` or ``"grid"``); ``None``
            uses the controller's solver.  Both are bit-identical.
        """
        solver = solver if solver is not None else self.solver
        require(solver in _SOLVERS,
                f"solver must be one of {_SOLVERS}, got {solver!r}")
        if power_cap_w is None:
            cap = np.full(self.n, self.spec.tdp_w)
        else:
            cap = np.broadcast_to(
                np.asarray(power_cap_w, dtype=float), (self.n,)
            ).copy()
        f_cap = None
        if f_cap_mhz is not None:
            f_cap = np.broadcast_to(
                np.asarray(f_cap_mhz, dtype=float), (self.n,)
            )

        steps = self.pstates()
        k = steps.shape[0]
        t_limit = self.spec.t_slowdown_c - self.policy.thermal_headroom_c
        self.stats.solves += 1
        self.stats.dense_cells += self.n * k
        tracer = active_tracer()
        if tracer is not None:
            # Counter deltas come from SolverStats at the end of the solve:
            # one batch of adds per solve keeps the hot _settle loop clean.
            columns_before = self.stats.columns_evaluated
            fixed_point_before = self.stats.fixed_point_iterations
            span_start = time.time()
            span_t0 = time.perf_counter()

        if solver == SOLVER_GRID:
            idx, p_level, t_level, p_above, t_above = self._scan_dense(
                activity, dram_utilization, efficiency, cap, f_cap, t_limit
            )
        else:
            idx, p_level, t_level, p_above, t_above = self._search_ladder(
                activity, dram_utilization, efficiency, cap, f_cap, t_limit
            )

        above = np.minimum(idx + 1, k - 1)
        f_level = steps[idx]
        at_top = idx == k - 1
        # Why is the GPU not at the top of the ladder?
        power_capped = (~at_top) & (p_above > cap)
        thermally_capped = (~at_top) & (t_above > t_limit) & ~power_capped
        if f_cap is not None:
            # A GPU pinned by its boost ceiling is not (necessarily) at a
            # power or thermal limit; exclude it from both categories so it
            # does not dither past the ceiling.
            at_ceiling = (~at_top) & (steps[above] > f_cap)
            power_capped &= ~at_ceiling
            thermally_capped &= ~at_ceiling

        f_eff = f_level.astype(float).copy()
        f_rep = f_level.astype(float).copy()
        p_out = p_level.copy()
        t_out = t_level.copy()

        if self.policy.dither:
            if rng is None:
                raise ValueError("a dithering policy requires an rng")
            dither_mask = (~at_top) & (power_capped | thermally_capped)
            n_d = int(dither_mask.sum())
            if n_d:
                # The controller may only spend time at the level above to
                # the extent the time-averaged power and temperature stay
                # under their limits; the realized duty cycle is a noisy
                # fraction of that headroom (run-to-run DPM nondeterminism).
                p_lo = p_level[dither_mask]
                p_hi = p_above[dither_mask]
                t_lo = t_level[dither_mask]
                t_hi = t_above[dither_mask]
                with np.errstate(divide="ignore", invalid="ignore"):
                    duty_p = (
                        cap[dither_mask] - self.policy.power_headroom_w - p_lo
                    ) / (p_hi - p_lo)
                    duty_t = (t_limit - t_lo) / (t_hi - t_lo)
                duty_limit = np.clip(
                    np.nan_to_num(np.minimum(duty_p, duty_t), nan=0.0), 0.0, 1.0
                )
                duty_limit = np.minimum(duty_limit, self.policy.dither_max_duty)
                duty = duty_limit * rng.uniform(0.3, 1.0, size=n_d)
                f_hi = steps[above[dither_mask]]
                f_lo = f_level[dither_mask]
                f_eff[dither_mask] = f_lo + duty * (f_hi - f_lo)
                f_rep[dither_mask] = np.where(duty >= 0.5, f_hi, f_lo)
                p_out[dither_mask] = (
                    p_level[dither_mask]
                    + duty * (p_above[dither_mask] - p_level[dither_mask])
                )
                t_out[dither_mask] = (
                    t_level[dither_mask]
                    + duty * (t_above[dither_mask] - t_level[dither_mask])
                )

        if tracer is not None:
            tracer.add("solver.solves", 1)
            tracer.add("solver.dense_cells", self.n * k)
            tracer.add("solver.columns_evaluated",
                       self.stats.columns_evaluated - columns_before)
            tracer.add("solver.fixed_point_iterations",
                       self.stats.fixed_point_iterations - fixed_point_before)
            tracer.record_span(
                "solve",
                category="solver",
                track=tracer.track,
                start_s=span_start,
                duration_s=time.perf_counter() - span_t0,
                n=self.n,
                solver=solver,
            )
        monitor = active_monitor()
        if monitor is not None:
            # Throttle outcome of the settled operating point: which GPUs
            # ended the solve capped.  Counts of already-computed booleans
            # only, so the hook is execution-invariant and perturbation-free.
            monitor.observe_solve(power_capped, thermally_capped)
        return SteadyOperatingPoint(
            pstate_index=idx.astype(np.int32),
            f_effective_mhz=f_eff,
            f_reported_mhz=f_rep,
            power_w=p_out,
            temperature_c=t_out,
            power_capped=power_capped,
            thermally_capped=thermally_capped,
        )

    def _scan_dense(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float,
        cap: np.ndarray,
        f_cap: np.ndarray | None,
        t_limit: float,
    ) -> tuple[np.ndarray, ...]:
        """Dense solver core: materialize the grid, scan for the top level."""
        steps = self.pstates()
        k = steps.shape[0]
        p_grid, t_grid = self.power_grid(activity, dram_utilization, efficiency)

        feasible = (p_grid <= cap[:, None]) & (t_grid <= t_limit)
        if f_cap is not None:
            feasible &= steps[None, :] <= f_cap[:, None]

        # Highest feasible ladder index per GPU; the ladder is monotone in
        # power and temperature so feasibility is a prefix — but scan
        # explicitly, which is what makes this path the cross-check baseline.
        rev = feasible[:, ::-1]
        first_true = np.argmax(rev, axis=1)
        any_true = rev.any(axis=1)
        idx = np.where(any_true, k - 1 - first_true, 0)

        rows = np.arange(self.n)
        above = np.minimum(idx + 1, k - 1)
        return (
            idx,
            p_grid[rows, idx],
            t_grid[rows, idx],
            p_grid[rows, above],
            t_grid[rows, above],
        )

    def _search_ladder(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float,
        cap: np.ndarray,
        f_cap: np.ndarray | None,
        t_limit: float,
    ) -> tuple[np.ndarray, ...]:
        """Ladder solver core: binary search for the feasibility boundary.

        Settled power and temperature are nondecreasing along the ladder
        (dynamic power rises with f and V(f); leakage follows temperature,
        which follows power), so per-GPU feasibility — power cap AND
        thermal limit AND boost ceiling, each individually a prefix — is a
        prefix of the ladder.  A vectorized binary search with sentinels
        ``lo = -1`` (feasible) and ``hi = k`` (infeasible) finds the
        boundary evaluating ceil(log2(k + 1)) columns instead of k.
        """
        steps = self.pstates()
        k = steps.shape[0]
        n = self.n
        lo = np.full(n, -1, dtype=np.int64)
        hi = np.full(n, k, dtype=np.int64)
        while True:
            gap = hi - lo
            active = gap > 1
            if not active.any():
                break
            # Converged rows get a clamped, ignored evaluation; k is shared
            # by every GPU so nearly all rows converge on the same round and
            # the waste is at most one column on coarse (AMD) ladders.
            mid = np.clip((lo + hi) >> 1, 0, k - 1)
            p_mid, t_mid = self.power_grid_columns(
                mid, activity, dram_utilization, efficiency
            )
            feas = (p_mid <= cap) & (t_mid <= t_limit)
            if f_cap is not None:
                feas &= steps[mid] <= f_cap
            lo = np.where(active & feas, mid, lo)
            hi = np.where(active & ~feas, mid, hi)
        idx = np.where(lo >= 0, lo, 0)
        above = np.minimum(idx + 1, k - 1)
        p_level, t_level = self.power_grid_columns(
            idx, activity, dram_utilization, efficiency
        )
        p_above, t_above = self.power_grid_columns(
            above, activity, dram_utilization, efficiency
        )
        return idx, p_level, t_level, p_above, t_above

    # ------------------------------------------------------------------
    # reactive control (time-stepped engine)
    # ------------------------------------------------------------------

    def control_step(
        self,
        pstate_index: np.ndarray,
        power_w: np.ndarray,
        temperature_c: np.ndarray,
        power_cap_w: np.ndarray,
    ) -> np.ndarray:
        """One firmware tick: step the ladder based on instantaneous P and T.

        Over the cap (or over the slowdown threshold) steps down by
        ``policy.down_step``; comfortably under the cap steps up by
        ``policy.up_step``.  Returns the new p-state indices.
        """
        idx = np.asarray(pstate_index, dtype=np.int64).copy()
        t_limit = self.spec.t_slowdown_c - self.policy.thermal_headroom_c
        over = (power_w > power_cap_w) | (temperature_c > t_limit)
        under = (power_w < power_cap_w - self.policy.power_headroom_w) & (
            temperature_c < t_limit - 1.0
        )
        idx[over] -= self.policy.down_step
        idx[under & ~over] += self.policy.up_step
        return np.clip(idx, 0, self.spec.n_pstates - 1)


def _as_vec(value: np.ndarray | float, n: int) -> np.ndarray:
    """Broadcast a scalar or (n,) array to an (n,) vector."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.shape != (n,):
        raise ValueError(f"expected scalar or shape ({n},), got {arr.shape}")
    return arr


def _as_col(value: np.ndarray | float, n: int) -> np.ndarray:
    """Broadcast a scalar or (n,) array to an (n, 1) column."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full((n, 1), float(arr))
    if arr.shape != (n,):
        raise ValueError(f"expected scalar or shape ({n},), got {arr.shape}")
    return arr[:, None]
