"""Vendor DVFS (dynamic voltage & frequency scaling) controller.

GPU power management is local and reactive (Section II-B): firmware walks
the discrete p-state ladder to keep board power under the TDP and junction
temperature under the slowdown threshold.  We provide two views of the same
policy:

* :meth:`DvfsController.solve_steady` — the settled operating point a long,
  stationary kernel reaches (the regime the paper measures: SGEMM kernels
  are sized so "the DVFS controller [reaches] a stable state").  Solved as a
  vectorized fixed point over the whole population at once.
* :meth:`DvfsController.control_step` — one reactive controller tick for the
  time-stepped engine, reproducing the rise-overshoot-settle transients of
  Fig. 11.

The AMD MI60's coarse DPM ladder cannot sit exactly at the cap, so the
controller *dithers* between two adjacent levels; the effective frequency is
a duty-cycle blend while the reported (sampled) frequency snaps to a level.
This is what makes Corona's per-run repeatability much worse (Fig. 8, median
6.06% vs 0.12–0.44% on NVIDIA clusters) and weakens its perf/frequency
correlation (-0.76 vs -0.97/-0.99) despite identical physics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require
from .power import PowerModel
from .specs import GPUSpec, VENDOR_AMD
from .thermal import ThermalModel

__all__ = ["DvfsPolicy", "SteadyOperatingPoint", "DvfsController"]

#: Fixed-point iterations for the leakage/temperature coupling.  The
#: contraction factor is R * dP_leak/dT ~ 0.05-0.1, so 7 iterations push the
#: error far below sensor resolution.
_FIXED_POINT_ITERS = 7


@dataclass(frozen=True)
class DvfsPolicy:
    """Tunable behaviour of the power-management firmware."""

    #: Degrees of headroom kept below the slowdown temperature.
    thermal_headroom_c: float = 1.0
    #: Watts of headroom kept below the power cap when stepping up.
    power_headroom_w: float = 2.0
    #: Whether the ladder is coarse enough that the controller dithers
    #: between adjacent levels (AMD DPM behaviour).
    dither: bool = False
    #: Maximum duty-cycle fraction spent at the level *above* the feasible
    #: one while dithering.
    dither_max_duty: float = 0.90
    #: p-states stepped per control tick when over the cap (reactive mode).
    down_step: int = 2
    #: p-states stepped per control tick when under the cap (reactive mode).
    up_step: int = 1

    def __post_init__(self) -> None:
        require(self.thermal_headroom_c >= 0, "thermal_headroom_c must be >= 0")
        require(self.power_headroom_w >= 0, "power_headroom_w must be >= 0")
        require(0 <= self.dither_max_duty < 1, "dither_max_duty must be in [0, 1)")
        require(self.down_step >= 1 and self.up_step >= 1,
                "step sizes must be >= 1")

    @classmethod
    def for_spec(cls, spec: GPUSpec) -> "DvfsPolicy":
        """Default policy for a SKU (AMD ladders dither, NVIDIA's do not)."""
        if spec.vendor == VENDOR_AMD:
            return cls(dither=True, dither_max_duty=0.50, power_headroom_w=2.0,
                       down_step=1, up_step=1)
        return cls(dither=False)


@dataclass(frozen=True)
class SteadyOperatingPoint:
    """Settled operating point of every GPU in the population.

    All arrays have shape ``(n,)``.
    """

    pstate_index: np.ndarray      # int, feasible ladder level
    f_effective_mhz: np.ndarray   # duty-cycle-blended core clock
    f_reported_mhz: np.ndarray    # what the profiler would report
    power_w: np.ndarray           # settled board power
    temperature_c: np.ndarray     # settled junction temperature
    power_capped: np.ndarray      # bool: limited by power, not ladder top
    thermally_capped: np.ndarray  # bool: limited by the slowdown threshold

    @property
    def n(self) -> int:
        """Population size."""
        return int(self.pstate_index.shape[0])


class DvfsController:
    """Power-management firmware for a homogeneous-SKU population."""

    def __init__(
        self,
        spec: GPUSpec,
        power_model: PowerModel,
        thermal_model: ThermalModel,
        policy: DvfsPolicy | None = None,
    ) -> None:
        if power_model.n != thermal_model.n:
            raise ValueError(
                f"power model covers {power_model.n} GPUs but thermal model "
                f"covers {thermal_model.n}"
            )
        self.spec = spec
        self.power = power_model
        self.thermal = thermal_model
        self.policy = policy if policy is not None else DvfsPolicy.for_spec(spec)

    @property
    def n(self) -> int:
        """Population size."""
        return self.power.n

    # ------------------------------------------------------------------
    # steady state
    # ------------------------------------------------------------------

    def power_grid(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-point settled (power, temperature) at every (GPU, p-state).

        Returns two ``(n, k)`` arrays.  Solves the leakage/temperature
        coupling ``P = P0(f) + P_leak(T)``, ``T = Tc + R * P`` by iteration.
        """
        steps = self.spec.pstate_array()          # (k,)
        act = _as_col(activity, self.n)
        util = _as_col(dram_utilization, self.n)
        eff = _as_col(efficiency, self.n)

        f_grid = np.broadcast_to(steps, (self.n, steps.shape[0]))
        p_base = (
            self.power.dynamic_power(f_grid, act, eff)
            + self.power.memory_power(util)
            + self.spec.idle_power_w
        ).astype(np.float32)
        # The fixed point runs in float32: the grid is n x k (up to ~5M
        # entries on Summit) and the exp-heavy leakage term dominates the
        # whole simulation; 0.01 W precision is far below sensor noise.
        leak_scale = (
            self.power.silicon.leakage_scale[:, None]
            * self.spec.leakage_nominal_w
        ).astype(np.float32)
        k_t = np.float32(self.spec.leakage_temp_coeff)
        r = self.thermal.r_theta[:, None].astype(np.float32)
        tc = self.thermal.coolant_c[:, None].astype(np.float32)

        # Clamp the iterate well above the shutdown threshold: operating
        # points that hot are rejected by the feasibility check regardless,
        # and the clamp keeps the exponential leakage term from blowing up
        # on (GPU, p-state) pairs that would physically thermally run away.
        t_clamp = np.float32(self.spec.t_shutdown_c + 40.0)
        t = np.broadcast_to(tc, p_base.shape).copy()
        p = p_base + leak_scale * np.exp(k_t * (t - np.float32(25.0)))
        for _ in range(_FIXED_POINT_ITERS):
            np.minimum(tc + r * p, t_clamp, out=t)
            p = p_base + leak_scale * np.exp(k_t * (t - np.float32(25.0)))
        return p.astype(np.float64), t.astype(np.float64)

    def solve_steady(
        self,
        activity: np.ndarray | float,
        dram_utilization: np.ndarray | float,
        efficiency: np.ndarray | float = 1.0,
        power_cap_w: np.ndarray | float | None = None,
        f_cap_mhz: np.ndarray | float | None = None,
        rng: np.random.Generator | None = None,
    ) -> SteadyOperatingPoint:
        """Settled operating point of every GPU under a stationary load.

        Parameters
        ----------
        activity, dram_utilization, efficiency:
            Workload switching activity, DRAM utilization, and (defect)
            throughput multiplier; scalars or ``(n,)`` arrays.
        power_cap_w:
            Effective per-GPU power cap.  ``None`` uses the SKU TDP.  Pass
            ``min(TDP * defect_cap, power_limit)`` to combine board defects
            with ``nvidia-smi``-style administrative limits (Section VI-B).
        f_cap_mhz:
            Per-GPU boost ceiling; SICK_SLOW defects cannot clock past it.
            ``None`` allows the full ladder.
        rng:
            Required when the policy dithers (AMD); supplies the per-call
            duty cycles.
        """
        if power_cap_w is None:
            cap = np.full(self.n, self.spec.tdp_w)
        else:
            cap = np.broadcast_to(
                np.asarray(power_cap_w, dtype=float), (self.n,)
            ).copy()

        p_grid, t_grid = self.power_grid(activity, dram_utilization, efficiency)
        t_limit = self.spec.t_slowdown_c - self.policy.thermal_headroom_c

        power_ok = p_grid <= cap[:, None]
        thermal_ok = t_grid <= t_limit
        feasible = power_ok & thermal_ok
        if f_cap_mhz is not None:
            f_cap = np.broadcast_to(
                np.asarray(f_cap_mhz, dtype=float), (self.n,)
            )
            feasible &= self.spec.pstate_array()[None, :] <= f_cap[:, None]

        # Highest feasible ladder index per GPU; the ladder is monotone in
        # power and temperature so feasibility is a prefix — but defects and
        # degenerate configs could break that, so scan explicitly.
        k = p_grid.shape[1]
        rev = feasible[:, ::-1]
        first_true = np.argmax(rev, axis=1)
        any_true = rev.any(axis=1)
        idx = np.where(any_true, k - 1 - first_true, 0)

        rows = np.arange(self.n)
        steps = self.spec.pstate_array()
        f_level = steps[idx]
        p_level = p_grid[rows, idx]
        t_level = t_grid[rows, idx]

        at_top = idx == k - 1
        # Why is the GPU not at the top of the ladder?
        above = np.minimum(idx + 1, k - 1)
        p_above = p_grid[rows, above]
        t_above = t_grid[rows, above]
        power_capped = (~at_top) & (p_above > cap)
        thermally_capped = (~at_top) & (t_above > t_limit) & ~power_capped
        if f_cap_mhz is not None:
            # A GPU pinned by its boost ceiling is not (necessarily) at a
            # power or thermal limit; exclude it from both categories so it
            # does not dither past the ceiling.
            at_ceiling = (~at_top) & (steps[above] > f_cap)
            power_capped &= ~at_ceiling
            thermally_capped &= ~at_ceiling

        f_eff = f_level.astype(float).copy()
        f_rep = f_level.astype(float).copy()
        p_out = p_level.copy()
        t_out = t_level.copy()

        if self.policy.dither:
            if rng is None:
                raise ValueError("a dithering policy requires an rng")
            dither_mask = (~at_top) & (power_capped | thermally_capped)
            n_d = int(dither_mask.sum())
            if n_d:
                # The controller may only spend time at the level above to
                # the extent the time-averaged power and temperature stay
                # under their limits; the realized duty cycle is a noisy
                # fraction of that headroom (run-to-run DPM nondeterminism).
                p_lo = p_level[dither_mask]
                p_hi = p_above[dither_mask]
                t_lo = t_level[dither_mask]
                t_hi = t_above[dither_mask]
                with np.errstate(divide="ignore", invalid="ignore"):
                    duty_p = (
                        cap[dither_mask] - self.policy.power_headroom_w - p_lo
                    ) / (p_hi - p_lo)
                    duty_t = (t_limit - t_lo) / (t_hi - t_lo)
                duty_limit = np.clip(
                    np.nan_to_num(np.minimum(duty_p, duty_t), nan=0.0), 0.0, 1.0
                )
                duty_limit = np.minimum(duty_limit, self.policy.dither_max_duty)
                duty = duty_limit * rng.uniform(0.3, 1.0, size=n_d)
                f_hi = steps[above[dither_mask]]
                f_lo = f_level[dither_mask]
                f_eff[dither_mask] = f_lo + duty * (f_hi - f_lo)
                f_rep[dither_mask] = np.where(duty >= 0.5, f_hi, f_lo)
                p_out[dither_mask] = (
                    p_level[dither_mask]
                    + duty * (p_above[dither_mask] - p_level[dither_mask])
                )
                t_out[dither_mask] = (
                    t_level[dither_mask]
                    + duty * (t_above[dither_mask] - t_level[dither_mask])
                )

        return SteadyOperatingPoint(
            pstate_index=idx.astype(np.int32),
            f_effective_mhz=f_eff,
            f_reported_mhz=f_rep,
            power_w=p_out,
            temperature_c=t_out,
            power_capped=power_capped,
            thermally_capped=thermally_capped,
        )

    # ------------------------------------------------------------------
    # reactive control (time-stepped engine)
    # ------------------------------------------------------------------

    def control_step(
        self,
        pstate_index: np.ndarray,
        power_w: np.ndarray,
        temperature_c: np.ndarray,
        power_cap_w: np.ndarray,
    ) -> np.ndarray:
        """One firmware tick: step the ladder based on instantaneous P and T.

        Over the cap (or over the slowdown threshold) steps down by
        ``policy.down_step``; comfortably under the cap steps up by
        ``policy.up_step``.  Returns the new p-state indices.
        """
        idx = np.asarray(pstate_index, dtype=np.int64).copy()
        t_limit = self.spec.t_slowdown_c - self.policy.thermal_headroom_c
        over = (power_w > power_cap_w) | (temperature_c > t_limit)
        under = (power_w < power_cap_w - self.policy.power_headroom_w) & (
            temperature_c < t_limit - 1.0
        )
        idx[over] -= self.policy.down_step
        idx[under & ~over] += self.policy.up_step
        return np.clip(idx, 0, self.spec.n_pstates - 1)


def _as_col(value: np.ndarray | float, n: int) -> np.ndarray:
    """Broadcast a scalar or (n,) array to an (n, 1) column."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full((n, 1), float(arr))
    if arr.shape != (n,):
        raise ValueError(f"expected scalar or shape ({n},), got {arr.shape}")
    return arr[:, None]
