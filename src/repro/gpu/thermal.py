"""Lumped RC thermal model.

Each GPU is a single thermal node: junction temperature ``T`` relaxes toward
``T_coolant + R_theta * P`` with time constant ``R_theta * C_th``::

    C_th * dT/dt = P - (T - T_coolant) / R_theta

``R_theta`` (junction-to-coolant thermal resistance, degC/W) combines the
cooling technology's base resistance with the die's thermal-interface
quality (silicon sample) and any HOT_RUNNER defect multiplier.  The cooling
technology also sets the per-GPU coolant temperature field — wide for air
(hot/cold aisles, vertical gradients), narrow for water and mineral oil —
which is where the paper's cooling-dependent temperature spreads come from
(Takeaway 3).
"""

from __future__ import annotations

import numpy as np

from .specs import GPUSpec

__all__ = ["ThermalModel"]


class ThermalModel:
    """Vectorized RC thermal dynamics for a GPU population.

    Parameters
    ----------
    spec:
        SKU specification (supplies the lumped heat capacity).
    r_theta_c_per_w:
        Per-GPU junction-to-coolant thermal resistance, shape ``(n,)``.
        Already includes silicon TIM-quality and defect multipliers.
    coolant_c:
        Per-GPU coolant temperature, shape ``(n,)``.
    """

    def __init__(
        self,
        spec: GPUSpec,
        r_theta_c_per_w: np.ndarray,
        coolant_c: np.ndarray,
    ) -> None:
        r = np.asarray(r_theta_c_per_w, dtype=float)
        tc = np.asarray(coolant_c, dtype=float)
        if r.ndim != 1 or r.shape != tc.shape:
            raise ValueError(
                f"r_theta and coolant must be 1-D and equal length, got "
                f"{r.shape} vs {tc.shape}"
            )
        if np.any(r <= 0):
            raise ValueError("thermal resistances must be positive")
        self.spec = spec
        self.r_theta = r
        self.coolant_c = tc
        self._fp32: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def n(self) -> int:
        """Population size."""
        return int(self.r_theta.shape[0])

    def fixed_point_params_f32(
        self, indices: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(r_theta, coolant_c)`` as cached, read-only float32 arrays.

        The DVFS steady-state solver runs its leakage/temperature fixed
        point in float32; these casts are loop-invariant per model, so they
        are made once and shared by every solve.  ``indices`` returns the
        parameters for a population subset (the fleet solver evaluates only
        the rows still searching), sliced from the same cached casts so the
        values are bit-identical to the full arrays'.
        """
        if self._fp32 is None:
            r32 = self.r_theta.astype(np.float32)
            tc32 = self.coolant_c.astype(np.float32)
            r32.setflags(write=False)
            tc32.setflags(write=False)
            self._fp32 = (r32, tc32)
        if indices is None:
            return self._fp32
        r32, tc32 = self._fp32
        return r32[indices], tc32[indices]

    @property
    def time_constant_s(self) -> np.ndarray:
        """Per-GPU thermal time constant ``R * C`` in seconds."""
        return self.r_theta * self.spec.thermal_capacitance_j_per_c

    def steady_temperature(self, power_w: np.ndarray) -> np.ndarray:
        """Equilibrium junction temperature at dissipation ``power_w``.

        Broadcasts: ``power_w`` may be ``(n,)`` or ``(n, k)``.
        """
        p = np.asarray(power_w, dtype=float)
        r = self.r_theta if p.ndim == 1 else self.r_theta[:, None]
        tc = self.coolant_c if p.ndim == 1 else self.coolant_c[:, None]
        return tc + r * p

    def power_at_temperature(self, temperature_c: np.ndarray) -> np.ndarray:
        """Dissipation that would hold the junction at ``temperature_c``.

        The inverse of :meth:`steady_temperature`; used by the DVFS solver
        to convert a thermal-throttle threshold into a power ceiling.
        """
        t = np.asarray(temperature_c, dtype=float)
        return (t - self.coolant_c) / self.r_theta

    def step(
        self,
        temperature_c: np.ndarray,
        power_w: np.ndarray,
        dt_s: float,
    ) -> np.ndarray:
        """Advance junction temperatures by ``dt_s`` seconds (exact ODE step).

        Uses the closed-form solution of the linear RC ODE over the step, so
        the integration is unconditionally stable for any ``dt_s``::

            T(t+dt) = T_inf + (T(t) - T_inf) * exp(-dt / (R*C))
        """
        if dt_s <= 0:
            raise ValueError(f"dt_s must be positive, got {dt_s}")
        t_inf = self.steady_temperature(power_w)
        decay = np.exp(-dt_s / self.time_constant_s)
        return t_inf + (np.asarray(temperature_c, dtype=float) - t_inf) * decay
