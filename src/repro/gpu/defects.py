"""Rare defect / degradation modes observed as outliers in the paper.

The paper's outliers are not explained by the bulk process spread: they are
specific pathologies concentrated in specific locations.  We model the three
recurring signatures:

``POWER_DELIVERY``
    Board power delivery limits the GPU below its nominal TDP (255–290 W on
    Summit row H, Appendix B).  The GPU settles at a *fixed low frequency*
    (e.g. the flat 1312 MHz trace in Fig. 25), runs cool, and shows up as a
    string of power outliers at a common slow runtime (~2510 ms, Fig. 5b) —
    uncorrelated with temperature.

``SICK_SLOW``
    A stuck-low boost ceiling (degraded VRM phase, firmware fallback, ECC
    retirement pressure): the GPU cannot clock past a fraction of its boost
    ladder, so it is simultaneously *slow*, *cool*, and *low-power* — the
    signature of the two Frontera c197 GPUs (1100-1600 ms slower, 16 degC
    cooler, 59 W below median, Section IV-F) and the Longhorn c002
    stragglers.  Under bulk-synchronous multi-GPU training the *healthy
    neighbours* of a sick GPU spend most of each iteration waiting at max
    frequency and near-idle power, which is exactly the paradoxical
    "1530 MHz yet slow and 76 W" cloud of Fig. 15.

``HOT_RUNNER``
    Degraded thermal interface: the GPU runs far hotter than its neighbours
    at the same power (Summit rowh-col36-node2, which had *only* temperature
    outliers, Appendix B-B; Corona's c115 when combined with a cooling fault).

Defects are assigned per GPU with *spatially correlated* hazards — the
paper's outliers cluster by row/column/cabinet (rows D & F, columns 13, 14,
28, 33, 36, 50 on Summit; single cabinets elsewhere), so each location group
carries a hazard multiplier drawn from a Gamma distribution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..config import require

__all__ = ["DefectType", "DefectConfig", "DefectAssignment", "assign_defects"]


class DefectType(enum.IntEnum):
    """Defect categories; ``NONE`` is a healthy die."""

    NONE = 0
    POWER_DELIVERY = 1
    SICK_SLOW = 2
    HOT_RUNNER = 3


@dataclass(frozen=True)
class DefectConfig:
    """Fleet-level defect incidence and severity distribution.

    Rates are per-GPU probabilities *before* spatial concentration; the
    Gamma hazard redistributes incidents toward unlucky location groups
    while preserving the expected count.
    """

    #: Probability a GPU has a power-delivery cap.
    power_delivery_rate: float = 0.004
    #: Power cap range as a fraction of TDP (uniform), e.g. 255–290 W / 300 W.
    power_delivery_cap_frac: tuple[float, float] = (0.85, 0.97)
    #: Probability a GPU is sick-slow.
    sick_slow_rate: float = 0.003
    #: Boost-ceiling range for sick GPUs as a fraction of f_max (uniform).
    sick_slow_frequency_cap: tuple[float, float] = (0.55, 0.85)
    #: Probability a GPU is a hot runner.
    hot_runner_rate: float = 0.004
    #: Extra thermal-resistance multiplier range for hot runners (uniform).
    hot_runner_resistance: tuple[float, float] = (1.5, 2.2)
    #: Shape of the Gamma hazard shared by GPUs in one location group.
    #: Smaller shape => more concentrated outlier clusters (mean fixed at 1).
    spatial_concentration_shape: float = 0.35

    def __post_init__(self) -> None:
        for name in ("power_delivery_rate", "sick_slow_rate", "hot_runner_rate"):
            rate = getattr(self, name)
            require(0.0 <= rate <= 0.5, f"{name} must be in [0, 0.5]")
        for name in ("power_delivery_cap_frac", "sick_slow_frequency_cap",
                     "hot_runner_resistance"):
            bounds = getattr(self, name)
            require(len(bounds) == 2,
                    f"{name} must be a (lo, hi) pair, got {bounds!r}")
            lo, hi = bounds
            require(0 < lo <= hi, f"{name} must satisfy 0 < lo <= hi")
        # Cap fractions are multipliers on TDP / f_max: above 1 they would
        # silently *overclock* the defective GPUs.
        for name in ("power_delivery_cap_frac", "sick_slow_frequency_cap"):
            require(getattr(self, name)[1] <= 1.0,
                    f"{name} is a fraction of nominal and must be <= 1")
        # Hot runners add thermal resistance; a multiplier below 1 would
        # model a defect that *improves* cooling.
        require(self.hot_runner_resistance[0] >= 1.0,
                "hot_runner_resistance must be >= 1")
        require(self.spatial_concentration_shape > 0,
                "spatial_concentration_shape must be positive")

    @classmethod
    def none(cls) -> "DefectConfig":
        """A defect-free fleet (for ablations)."""
        return cls(power_delivery_rate=0.0, sick_slow_rate=0.0, hot_runner_rate=0.0)

    @property
    def total_rate(self) -> float:
        """Expected fraction of GPUs with any defect."""
        return self.power_delivery_rate + self.sick_slow_rate + self.hot_runner_rate


@dataclass(frozen=True)
class DefectAssignment:
    """Per-GPU defect outcome (parallel arrays of length ``n``).

    All severity arrays are 1.0 for healthy GPUs, so they can be applied
    unconditionally as multipliers.
    """

    kind: np.ndarray                     # DefectType values, int8
    power_cap_frac: np.ndarray           # fraction of TDP available
    frequency_cap_frac: np.ndarray       # fraction of f_max reachable
    efficiency: np.ndarray               # work-throughput multiplier
    extra_thermal_resistance: np.ndarray  # multiplier on R_theta

    def __post_init__(self) -> None:
        n = self.kind.shape[0] if self.kind.ndim == 1 else -1
        arrays = {
            "kind": self.kind,
            "power_cap_frac": self.power_cap_frac,
            "frequency_cap_frac": self.frequency_cap_frac,
            "efficiency": self.efficiency,
            "extra_thermal_resistance": self.extra_thermal_resistance,
        }
        for name, arr in arrays.items():
            require(arr.ndim == 1 and arr.shape[0] == n,
                    f"{name} must be a 1-D array of length {n}, "
                    f"got shape {arr.shape}")
        valid_kinds = {int(k) for k in DefectType}
        require(set(np.unique(self.kind)).issubset(valid_kinds),
                "kind must contain only DefectType values")
        # Severities are unconditional multipliers: negative or zero
        # values would silently invert / zero the physics downstream.
        for name in ("power_cap_frac", "frequency_cap_frac", "efficiency"):
            arr = arrays[name]
            require(bool(np.isfinite(arr).all())
                    and bool((arr > 0.0).all()) and bool((arr <= 1.0).all()),
                    f"{name} must be finite and in (0, 1]")
        res = self.extra_thermal_resistance
        require(bool(np.isfinite(res).all()) and bool((res >= 1.0).all()),
                "extra_thermal_resistance must be finite and >= 1")

    @property
    def n(self) -> int:
        """Number of GPUs covered by this assignment."""
        return int(self.kind.shape[0])

    def defective_indices(self) -> np.ndarray:
        """Indices of GPUs with any defect."""
        return np.flatnonzero(self.kind != int(DefectType.NONE))

    def count(self, kind: DefectType) -> int:
        """Number of GPUs with defect ``kind``."""
        return int(np.count_nonzero(self.kind == int(kind)))

    def take(self, indices: np.ndarray) -> "DefectAssignment":
        """Sub-assignment at ``indices``."""
        return DefectAssignment(
            kind=self.kind[indices].copy(),
            power_cap_frac=self.power_cap_frac[indices].copy(),
            frequency_cap_frac=self.frequency_cap_frac[indices].copy(),
            efficiency=self.efficiency[indices].copy(),
            extra_thermal_resistance=self.extra_thermal_resistance[indices].copy(),
        )


def assign_defects(
    n: int,
    config: DefectConfig,
    rng: np.random.Generator,
    location_group: np.ndarray | None = None,
) -> DefectAssignment:
    """Assign defects to ``n`` GPUs.

    Parameters
    ----------
    n:
        Fleet size.
    config:
        Incidence and severity distribution.
    rng:
        Source of randomness.
    location_group:
        Optional integer array of shape ``(n,)`` mapping each GPU to a
        location group (cabinet, or row-column pair).  GPUs in the same
        group share a hazard multiplier, concentrating defects spatially
        the way the paper observed.  ``None`` assigns defects i.i.d.
    """
    if n <= 0:
        raise ValueError(f"fleet size must be positive, got {n}")
    if location_group is not None and location_group.shape != (n,):
        raise ValueError(
            f"location_group must have shape ({n},), got {location_group.shape}"
        )

    if location_group is None or config.total_rate == 0.0:
        hazard = np.ones(n)
    else:
        groups, inverse = np.unique(location_group, return_inverse=True)
        shape = config.spatial_concentration_shape
        group_hazard = rng.gamma(shape, 1.0 / shape, size=groups.shape[0])
        hazard = group_hazard[inverse]

    kind = np.zeros(n, dtype=np.int8)
    power_cap_frac = np.ones(n)
    frequency_cap_frac = np.ones(n)
    efficiency = np.ones(n)
    extra_thermal_resistance = np.ones(n)

    u = rng.random(n)
    # Stacked thresholds: each GPU gets at most one defect; the hazard
    # multiplier scales all three rates for its location group.
    p_pd = np.clip(config.power_delivery_rate * hazard, 0.0, 1.0)
    p_ss = np.clip(config.sick_slow_rate * hazard, 0.0, 1.0)
    p_hr = np.clip(config.hot_runner_rate * hazard, 0.0, 1.0)

    is_pd = u < p_pd
    is_ss = (~is_pd) & (u < p_pd + p_ss)
    is_hr = (~is_pd) & (~is_ss) & (u < p_pd + p_ss + p_hr)

    if np.any(is_pd):
        lo, hi = config.power_delivery_cap_frac
        kind[is_pd] = int(DefectType.POWER_DELIVERY)
        power_cap_frac[is_pd] = rng.uniform(lo, hi, size=int(is_pd.sum()))
    if np.any(is_ss):
        lo, hi = config.sick_slow_frequency_cap
        kind[is_ss] = int(DefectType.SICK_SLOW)
        frequency_cap_frac[is_ss] = rng.uniform(lo, hi, size=int(is_ss.sum()))
    if np.any(is_hr):
        lo, hi = config.hot_runner_resistance
        kind[is_hr] = int(DefectType.HOT_RUNNER)
        extra_thermal_resistance[is_hr] = rng.uniform(lo, hi, size=int(is_hr.sum()))

    return DefectAssignment(
        kind=kind,
        power_cap_frac=power_cap_frac,
        frequency_cap_frac=frequency_cap_frac,
        efficiency=efficiency,
        extra_thermal_resistance=extra_thermal_resistance,
    )
