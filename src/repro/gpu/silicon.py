"""Manufacturing (silicon) variability model.

The paper attributes intra-SKU performance variability to "the manufacturing
process and the chip's power constraints" (Section I).  We model each die as
a sample from a process distribution with four physical knobs:

``voltage_offset``
    Multiplicative offset on the V-f curve.  A die from a slow process
    corner needs more voltage at a given frequency, so it burns more dynamic
    power and — under a fixed TDP — settles at a lower DVFS state.  This is
    the primary driver of the compute-bound variability the paper measures.
``leakage_scale``
    Multiplicative spread of static power.  Leaky dies lose more of their
    power budget to leakage, and because leakage grows exponentially with
    temperature this couples performance to cooling quality (the weak
    perf/temperature correlation on air-cooled clusters, Fig. 3a).
``thermal_resistance_scale``
    Quality of the die-attach / thermal-interface material, scaling the
    junction-to-coolant thermal resistance.  Produces hot runners.
``bandwidth_efficiency``
    Achievable fraction of peak DRAM bandwidth (HBM stack binning).  Tiny
    spread; bounds the variability floor of memory-bound workloads.
``power_sensor_gain``
    Board power-telemetry calibration gain.  GPU boards report power
    through shunt/INA sensors with a few-percent board-to-board gain
    error; two GPUs both pegged at the 300 W cap therefore *report*
    slightly different wattages.  This is what turns the hard power cap
    into the 292-300 W cloud the paper's scatter plots show, and it is
    persistent per board (not per run).

The population is vectorized: one :class:`SiliconPopulation` holds parallel
NumPy arrays for an entire cluster's GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require, require_positive

__all__ = ["SiliconConfig", "SiliconPopulation", "sample_population"]


@dataclass(frozen=True)
class SiliconConfig:
    """Distribution parameters of the manufacturing process for one SKU batch.

    Defaults are calibrated for the NVIDIA V100 batches in the paper's
    clusters; per-SKU presets live in :mod:`repro.cluster.presets`.
    """

    #: Std-dev of the (Gaussian, mean-0) relative voltage offset.
    voltage_offset_sigma: float = 0.010
    #: Hard clip applied to voltage offsets, in sigmas (guards silly tails).
    voltage_offset_clip_sigmas: float = 3.5
    #: Sigma of the log-normal leakage scale (median 1.0).
    leakage_log_sigma: float = 0.15
    #: Sigma of the log-normal thermal-resistance scale (median 1.0).
    thermal_resistance_log_sigma: float = 0.12
    #: Std-dev of DRAM bandwidth efficiency around its mean.
    bandwidth_efficiency_sigma: float = 0.0015
    #: Mean DRAM bandwidth efficiency (fraction of the spec's peak).
    bandwidth_efficiency_mean: float = 0.93
    #: Std-dev of compute efficiency (achieved IPC) around 1.0.
    compute_efficiency_sigma: float = 0.004
    #: Std-dev of the per-board power-telemetry gain around 1.0.
    power_sensor_gain_sigma: float = 0.008

    def __post_init__(self) -> None:
        require(self.voltage_offset_sigma >= 0, "voltage_offset_sigma must be >= 0")
        require(self.leakage_log_sigma >= 0, "leakage_log_sigma must be >= 0")
        require(
            self.thermal_resistance_log_sigma >= 0,
            "thermal_resistance_log_sigma must be >= 0",
        )
        require(0 < self.bandwidth_efficiency_mean <= 1.0,
                "bandwidth_efficiency_mean must be in (0, 1]")
        require_positive(self.voltage_offset_clip_sigmas, "voltage_offset_clip_sigmas")


@dataclass(frozen=True)
class SiliconPopulation:
    """Per-die manufacturing parameters for ``n`` GPUs (parallel arrays).

    All arrays have shape ``(n,)``.  Instances are immutable; defect
    injection layers additional caps on top (see :mod:`repro.gpu.defects`)
    without mutating the silicon sample.
    """

    voltage_offset: np.ndarray          # relative, ~N(0, sigma), clipped
    leakage_scale: np.ndarray           # ~LogNormal, median 1
    thermal_resistance_scale: np.ndarray  # ~LogNormal, median 1
    bandwidth_efficiency: np.ndarray    # fraction of peak DRAM bandwidth
    compute_efficiency: np.ndarray      # achieved-IPC multiplier, ~1
    power_sensor_gain: np.ndarray       # power-telemetry gain, ~1

    def __post_init__(self) -> None:
        n = self.voltage_offset.shape[0]
        for name in (
            "leakage_scale",
            "thermal_resistance_scale",
            "bandwidth_efficiency",
            "compute_efficiency",
            "power_sensor_gain",
        ):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ValueError(
                    f"silicon array {name} has shape {arr.shape}, expected ({n},)"
                )

    @property
    def n(self) -> int:
        """Number of dies in the population."""
        return int(self.voltage_offset.shape[0])

    def take(self, indices: np.ndarray) -> "SiliconPopulation":
        """Sub-population at ``indices`` (fancy-indexing view, copied)."""
        return SiliconPopulation(
            voltage_offset=self.voltage_offset[indices].copy(),
            leakage_scale=self.leakage_scale[indices].copy(),
            thermal_resistance_scale=self.thermal_resistance_scale[indices].copy(),
            bandwidth_efficiency=self.bandwidth_efficiency[indices].copy(),
            compute_efficiency=self.compute_efficiency[indices].copy(),
            power_sensor_gain=self.power_sensor_gain[indices].copy(),
        )


def sample_population(
    n: int,
    config: SiliconConfig,
    rng: np.random.Generator,
) -> SiliconPopulation:
    """Draw ``n`` dies from the process distribution described by ``config``.

    Draw order is fixed (voltage, leakage, thermal, bandwidth, compute,
    sensor gain) so results are reproducible for a given generator state.
    """
    if n <= 0:
        raise ValueError(f"population size must be positive, got {n}")
    clip = config.voltage_offset_sigma * config.voltage_offset_clip_sigmas
    voltage_offset = np.clip(
        rng.normal(0.0, config.voltage_offset_sigma, size=n), -clip, clip
    )
    leakage_scale = rng.lognormal(0.0, config.leakage_log_sigma, size=n)
    thermal_resistance_scale = rng.lognormal(
        0.0, config.thermal_resistance_log_sigma, size=n
    )
    bandwidth_efficiency = np.clip(
        rng.normal(
            config.bandwidth_efficiency_mean,
            config.bandwidth_efficiency_sigma,
            size=n,
        ),
        0.5,
        1.0,
    )
    compute_efficiency = np.clip(
        rng.normal(1.0, config.compute_efficiency_sigma, size=n), 0.9, 1.1
    )
    power_sensor_gain = np.clip(
        rng.normal(1.0, config.power_sensor_gain_sigma, size=n), 0.9, 1.1
    )
    return SiliconPopulation(
        voltage_offset=voltage_offset,
        leakage_scale=leakage_scale,
        thermal_resistance_scale=thermal_resistance_scale,
        bandwidth_efficiency=bandwidth_efficiency,
        compute_efficiency=compute_efficiency,
        power_sensor_gain=power_sensor_gain,
    )
