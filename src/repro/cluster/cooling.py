"""Cooling-plant models: air, water, and mineral oil.

Cooling technology is one of the paper's main axes (Table I).  Its
signature in the data is the *coolant temperature field* each GPU sees:

* **Air** (Longhorn, Corona, CloudLab): wide spatial spread — hot/cold
  aisles (cabinet offsets), per-node placement, and serial preheating of
  air through the chassis (slot gradient).  Junction temperature ranges
  exceed 30 degC (Takeaway 1) and hot GPUs can hit the slowdown threshold
  and thermally throttle (Corona, Section IV-D).
* **Water** (Summit, Vortex): cold plates on a chilled loop — narrow spread
  (Summit 40-62 degC, Vortex Q1-Q3 = 10 degC) but *no* reduction in
  performance or power variability (Takeaway 3).
* **Mineral oil** (Frontera): per-cabinet immersion baths stirred by pumps;
  narrow spread (Q3-Q1 = 4 degC) around a high median (76 degC) —
  "somewhere between air and water-cooling in effectiveness" (Section IV-F).

Each model also accepts :class:`CoolingFault` entries — a degraded pump or
blocked airflow raising the coolant temperature of one cabinet or node —
which is how the Corona ``c115`` hot outlier is injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import require, require_positive
from ..errors import ConfigError
from .topology import Topology

__all__ = [
    "CoolingFault",
    "CoolingEnvironment",
    "AirCooling",
    "WaterCooling",
    "MineralOilCooling",
]


@dataclass(frozen=True)
class CoolingFault:
    """A localized cooling degradation.

    Parameters
    ----------
    scope:
        ``"node"`` or ``"cabinet"``.
    label:
        The node or cabinet label affected (must exist in the topology).
    coolant_delta_c:
        Degrees added to the coolant temperature seen by affected GPUs.
    """

    scope: str
    label: str
    coolant_delta_c: float

    def __post_init__(self) -> None:
        require(self.scope in ("node", "cabinet"),
                f"fault scope must be 'node' or 'cabinet', got {self.scope!r}")
        require(self.coolant_delta_c > 0, "coolant_delta_c must be positive")


@dataclass(frozen=True)
class CoolingEnvironment:
    """Realized per-GPU thermal environment (parallel arrays)."""

    r_theta_base_c_per_w: np.ndarray
    coolant_c: np.ndarray

    @property
    def n(self) -> int:
        """Number of GPUs covered."""
        return int(self.coolant_c.shape[0])


def _apply_faults(
    coolant: np.ndarray, topology: Topology, faults: tuple[CoolingFault, ...]
) -> None:
    for fault in faults:
        if fault.scope == "node":
            node = topology.node_index(fault.label)
            coolant[topology.gpus_of_node(node)] += fault.coolant_delta_c
        else:
            try:
                cab = topology.cabinet_labels.index(fault.label)
            except ValueError:
                raise ConfigError(
                    f"unknown cabinet label {fault.label!r} in cooling fault"
                ) from None
            coolant[topology.cabinet_of_gpu == cab] += fault.coolant_delta_c


@dataclass(frozen=True)
class AirCooling:
    """Forced-air cooling with hot/cold-aisle and chassis-position spread."""

    inlet_c: float = 22.0
    cabinet_sigma_c: float = 3.0
    node_sigma_c: float = 1.5
    slot_gradient_c: float = 1.6
    r_theta_base_c_per_w: float = 0.145
    daily_sigma_c: float = 1.2
    faults: tuple[CoolingFault, ...] = ()

    kind = "air"

    def __post_init__(self) -> None:
        require_positive(self.r_theta_base_c_per_w, "r_theta_base_c_per_w")
        require(self.cabinet_sigma_c >= 0, "cabinet_sigma_c must be >= 0")
        require(self.node_sigma_c >= 0, "node_sigma_c must be >= 0")

    def environment(
        self, topology: Topology, rng: np.random.Generator
    ) -> CoolingEnvironment:
        """Sample the static thermal environment for every GPU."""
        cab_offset = rng.normal(0.0, self.cabinet_sigma_c, size=topology.n_cabinets)
        node_offset = rng.normal(0.0, self.node_sigma_c, size=topology.n_nodes)
        coolant = (
            self.inlet_c
            + cab_offset[topology.cabinet_of_gpu]
            + node_offset[topology.node_of_gpu]
            + self.slot_gradient_c * topology.slot_of_gpu
        )
        _apply_faults(coolant, topology, self.faults)
        r_base = np.full(topology.n_gpus, self.r_theta_base_c_per_w)
        return CoolingEnvironment(r_theta_base_c_per_w=r_base, coolant_c=coolant)


@dataclass(frozen=True)
class WaterCooling:
    """Cold-plate water cooling on a facility chilled loop."""

    loop_c: float = 25.0
    node_sigma_c: float = 1.2
    r_theta_base_c_per_w: float = 0.09
    daily_sigma_c: float = 0.4
    faults: tuple[CoolingFault, ...] = ()

    kind = "water"

    def __post_init__(self) -> None:
        require_positive(self.r_theta_base_c_per_w, "r_theta_base_c_per_w")
        require(self.node_sigma_c >= 0, "node_sigma_c must be >= 0")

    def environment(
        self, topology: Topology, rng: np.random.Generator
    ) -> CoolingEnvironment:
        """Sample the static thermal environment for every GPU."""
        node_offset = rng.normal(0.0, self.node_sigma_c, size=topology.n_nodes)
        coolant = self.loop_c + node_offset[topology.node_of_gpu]
        _apply_faults(coolant, topology, self.faults)
        r_base = np.full(topology.n_gpus, self.r_theta_base_c_per_w)
        return CoolingEnvironment(r_theta_base_c_per_w=r_base, coolant_c=coolant)


@dataclass(frozen=True)
class MineralOilCooling:
    """Per-cabinet mineral-oil immersion baths with circulation pumps."""

    bath_c: float = 48.0
    cabinet_sigma_c: float = 1.0
    r_theta_base_c_per_w: float = 0.12
    daily_sigma_c: float = 0.6
    faults: tuple[CoolingFault, ...] = ()

    kind = "oil"

    def __post_init__(self) -> None:
        require_positive(self.r_theta_base_c_per_w, "r_theta_base_c_per_w")
        require(self.cabinet_sigma_c >= 0, "cabinet_sigma_c must be >= 0")

    def environment(
        self, topology: Topology, rng: np.random.Generator
    ) -> CoolingEnvironment:
        """Sample the static thermal environment for every GPU."""
        cab_offset = rng.normal(0.0, self.cabinet_sigma_c, size=topology.n_cabinets)
        coolant = self.bath_c + cab_offset[topology.cabinet_of_gpu]
        _apply_faults(coolant, topology, self.faults)
        r_base = np.full(topology.n_gpus, self.r_theta_base_c_per_w)
        return CoolingEnvironment(r_theta_base_c_per_w=r_base, coolant_c=coolant)
