"""Job allocation: exclusive nodes, the way the paper's experiments ran.

Section III: "we ensured there was no timesharing of our allocated nodes or
GPUs during data collection" — every job gets whole nodes.  The allocator
supports the two access patterns the study needs:

* **sweep**: enumerate (nearly) every node, for the >90%-coverage
  characterization campaigns;
* **random**: draw nodes the way a batch scheduler would assign an
  unsuspecting user, for the user-impact analysis of Section VII
  ("40%-50% of the time they will be assigned a slower GPU").

:class:`FreeListAllocator` extends the model for the dynamic batch-queue
simulator (:mod:`repro.sched`): it keeps a per-node free list so jobs can
*share* nodes (partial-node allocations), span several nodes (gang
allocations wider than one chassis), and return capacity with
:meth:`~FreeListAllocator.free` when they complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import AllocationError
from .topology import Topology

__all__ = [
    "Allocation",
    "ExclusiveNodeAllocator",
    "GangAllocation",
    "FreeListAllocator",
]


def _require_int(value, what: str) -> int:
    """Validate a GPU count: a genuine integer (no bools, no floats)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise AllocationError(f"{what} must be an integer, got {value!r}")
    return int(value)


@dataclass(frozen=True)
class Allocation:
    """GPUs granted to one job.

    ``node_index`` identifies the (single) node; ``gpu_indices`` are global
    GPU indices within the cluster.
    """

    node_index: int
    gpu_indices: np.ndarray

    @property
    def n_gpus(self) -> int:
        """Number of GPUs in the allocation."""
        return int(self.gpu_indices.shape[0])


class ExclusiveNodeAllocator:
    """Grants exclusive single-node allocations on a topology."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def allocate_node(self, node_index: int, n_gpus: int | None = None) -> Allocation:
        """All (or the first ``n_gpus``) GPUs of a specific node.

        ``n_gpus`` is validated against the node's actual GPU count —
        over-asking raises :class:`~repro.errors.AllocationError` rather
        than truncating or indexing past the chassis.
        """
        gpus = self.topology.gpus_of_node(node_index)
        if n_gpus is not None:
            n_gpus = _require_int(n_gpus, "n_gpus")
            if not 1 <= n_gpus <= gpus.shape[0]:
                raise AllocationError(
                    f"requested {n_gpus} GPUs but node has {gpus.shape[0]}"
                )
            gpus = gpus[:n_gpus]
        return Allocation(node_index=node_index, gpu_indices=gpus)

    def sweep(
        self,
        n_gpus: int | None = None,
        coverage: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> list[Allocation]:
        """One allocation per node, optionally covering a random subset.

        ``coverage`` < 1 models shared-cluster reality: the study could not
        always get every node (Vortex: 184 of 216 GPUs; Summit queue
        placement varies by day).  Requires ``rng`` when < 1.
        """
        if not 0 < coverage <= 1:
            raise AllocationError(f"coverage must be in (0, 1], got {coverage}")
        nodes = np.arange(self.topology.n_nodes)
        if coverage < 1.0:
            if rng is None:
                raise AllocationError("coverage < 1 requires an rng")
            keep = max(1, int(round(self.topology.n_nodes * coverage)))
            nodes = np.sort(rng.choice(nodes, size=keep, replace=False))
        return [self.allocate_node(int(n), n_gpus) for n in nodes]

    def random_assignment(
        self, n_gpus: int, rng: np.random.Generator
    ) -> Allocation:
        """What a batch scheduler would hand an arbitrary user job."""
        n_gpus = _require_int(n_gpus, "n_gpus")
        if not 1 <= n_gpus <= self.topology.gpus_per_node:
            raise AllocationError(
                f"jobs span one node; requested {n_gpus} GPUs but nodes have "
                f"{self.topology.gpus_per_node}"
            )
        node = int(rng.integers(0, self.topology.n_nodes))
        gpus = self.topology.gpus_of_node(node)
        if n_gpus < gpus.shape[0]:
            picked = rng.choice(gpus, size=n_gpus, replace=False)
            gpus = np.sort(picked)
        return Allocation(node_index=node, gpu_indices=gpus)


@dataclass(frozen=True)
class GangAllocation:
    """GPUs granted to one (possibly multi-node) gang job.

    ``node_indices`` lists every node the gang touches, ascending;
    ``gpu_indices`` are global GPU indices, ascending.  Single-node jobs
    are the one-element special case.
    """

    node_indices: np.ndarray
    gpu_indices: np.ndarray

    @property
    def n_gpus(self) -> int:
        """Number of GPUs in the allocation."""
        return int(self.gpu_indices.shape[0])

    @property
    def n_nodes(self) -> int:
        """Number of distinct nodes the gang spans."""
        return int(self.node_indices.shape[0])


class FreeListAllocator:
    """Stateful allocator with per-node free lists and a ``free()`` path.

    The queue engine's bookkeeping: jobs may take a *part* of a node
    (several small jobs share a chassis), or *several* nodes (gangs wider
    than one chassis), and every grant is returned via :meth:`free` when
    the job completes.  All grants take the lowest free GPU indices of
    each node, so allocation state — and everything derived from it — is a
    pure function of the grant/free call sequence.

    Counts are maintained *incrementally*: the per-node free-count array,
    the machine-wide total, and a free-count bucket index ("how many nodes
    have at least ``k`` free GPUs") are updated in O(delta) on every
    allocate/free instead of being rebuilt per query, so the scheduler's
    fit checks are O(1) at any fleet size.  External order-keyed indexes
    (:class:`repro.sched.index.OrderedFreeIndex`) can subscribe to count
    changes via :meth:`add_listener`.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._free = [
            set(topology.gpus_of_node(n).tolist())
            for n in range(topology.n_nodes)
        ]
        per_node = topology.gpus_per_node
        self._counts = np.full(topology.n_nodes, per_node, dtype=np.int64)
        self._n_free = int(topology.n_gpus)
        # _ge[k] = number of nodes with >= k free GPUs, k in 0..gpus_per_node
        self._ge = np.zeros(per_node + 1, dtype=np.int64)
        self._ge[0] = topology.n_nodes
        self._ge[1:] = topology.n_nodes
        self._listeners: list = []
        # Node of each GPU, snapshotted once (topology caches it too; the
        # local alias keeps free() from attribute-chasing per call).
        self._node_of_gpu = topology.node_of_gpu

    def add_listener(self, callback) -> None:
        """Subscribe ``callback(node_index, new_count)`` to count changes."""
        self._listeners.append(callback)

    def _set_count(self, node: int, new: int) -> None:
        old = int(self._counts[node])
        if new == old:
            return
        self._counts[node] = new
        self._n_free += new - old
        if new > old:
            self._ge[old + 1 : new + 1] += 1
        else:
            self._ge[new + 1 : old + 1] -= 1
        for callback in self._listeners:
            callback(node, new)

    @property
    def n_free(self) -> int:
        """Free GPUs across the whole machine."""
        return self._n_free

    @property
    def n_busy(self) -> int:
        """Allocated GPUs across the whole machine."""
        return self.topology.n_gpus - self._n_free

    def free_counts(self) -> np.ndarray:
        """Free-GPU count per node (ascending node index)."""
        return self._counts.copy()

    def free_counts_view(self) -> np.ndarray:
        """Internal free-count array (live view — do not mutate)."""
        return self._counts

    def n_nodes_with_at_least(self, k: int) -> int:
        """Number of nodes holding at least ``k`` free GPUs, O(1)."""
        if k <= 0:
            return self.topology.n_nodes
        if k > self.topology.gpus_per_node:
            return 0
        return int(self._ge[k])

    def free_gpus_of_node(self, node_index: int) -> np.ndarray:
        """Free GPU indices of one node, ascending."""
        if not 0 <= node_index < self.topology.n_nodes:
            raise AllocationError(f"node index {node_index} out of range")
        return np.asarray(sorted(self._free[node_index]), dtype=np.int64)

    def allocate(
        self, requests: Sequence[tuple[int, int]]
    ) -> GangAllocation:
        """Grant ``count`` GPUs from each ``(node_index, count)`` request.

        Requests are validated in full before anything is taken, so a
        failing call never leaks capacity.  Each node contributes its
        lowest free GPU indices.
        """
        if not requests:
            raise AllocationError("allocation needs at least one request")
        seen: set[int] = set()
        for node_index, count in requests:
            node_index = _require_int(node_index, "node_index")
            count = _require_int(count, "count")
            if not 0 <= node_index < self.topology.n_nodes:
                raise AllocationError(f"node index {node_index} out of range")
            if node_index in seen:
                raise AllocationError(
                    f"node {node_index} appears twice in one allocation"
                )
            seen.add(node_index)
            if count < 1:
                raise AllocationError(f"count must be >= 1, got {count}")
            if count > len(self._free[node_index]):
                raise AllocationError(
                    f"node {node_index} has {len(self._free[node_index])} "
                    f"free GPUs, requested {count}"
                )
        nodes: list[int] = []
        gpus: list[int] = []
        for node_index, count in requests:
            node_index = int(node_index)
            taken = sorted(self._free[node_index])[: int(count)]
            self._free[node_index].difference_update(taken)
            self._set_count(node_index, len(self._free[node_index]))
            nodes.append(node_index)
            gpus.extend(taken)
        return GangAllocation(
            node_indices=np.asarray(sorted(nodes), dtype=np.int64),
            gpu_indices=np.asarray(sorted(gpus), dtype=np.int64),
        )

    def free(self, allocation: GangAllocation) -> None:
        """Return an allocation's GPUs; double-freeing raises."""
        node_of_gpu = self._node_of_gpu
        for gpu in allocation.gpu_indices.tolist():
            node = int(node_of_gpu[gpu])
            if gpu in self._free[node]:
                raise AllocationError(f"GPU {gpu} is already free")
        touched: set[int] = set()
        for gpu in allocation.gpu_indices.tolist():
            node = int(node_of_gpu[gpu])
            self._free[node].add(int(gpu))
            touched.add(node)
        for node in sorted(touched):
            self._set_count(node, len(self._free[node]))
