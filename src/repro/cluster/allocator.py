"""Job allocation: exclusive nodes, the way the paper's experiments ran.

Section III: "we ensured there was no timesharing of our allocated nodes or
GPUs during data collection" — every job gets whole nodes.  The allocator
supports the two access patterns the study needs:

* **sweep**: enumerate (nearly) every node, for the >90%-coverage
  characterization campaigns;
* **random**: draw nodes the way a batch scheduler would assign an
  unsuspecting user, for the user-impact analysis of Section VII
  ("40%-50% of the time they will be assigned a slower GPU").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AllocationError
from .topology import Topology

__all__ = ["Allocation", "ExclusiveNodeAllocator"]


@dataclass(frozen=True)
class Allocation:
    """GPUs granted to one job.

    ``node_index`` identifies the (single) node; ``gpu_indices`` are global
    GPU indices within the cluster.
    """

    node_index: int
    gpu_indices: np.ndarray

    @property
    def n_gpus(self) -> int:
        """Number of GPUs in the allocation."""
        return int(self.gpu_indices.shape[0])


class ExclusiveNodeAllocator:
    """Grants exclusive single-node allocations on a topology."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def allocate_node(self, node_index: int, n_gpus: int | None = None) -> Allocation:
        """All (or the first ``n_gpus``) GPUs of a specific node."""
        gpus = self.topology.gpus_of_node(node_index)
        if n_gpus is not None:
            if not 1 <= n_gpus <= gpus.shape[0]:
                raise AllocationError(
                    f"requested {n_gpus} GPUs but node has {gpus.shape[0]}"
                )
            gpus = gpus[:n_gpus]
        return Allocation(node_index=node_index, gpu_indices=gpus)

    def sweep(
        self,
        n_gpus: int | None = None,
        coverage: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> list[Allocation]:
        """One allocation per node, optionally covering a random subset.

        ``coverage`` < 1 models shared-cluster reality: the study could not
        always get every node (Vortex: 184 of 216 GPUs; Summit queue
        placement varies by day).  Requires ``rng`` when < 1.
        """
        if not 0 < coverage <= 1:
            raise AllocationError(f"coverage must be in (0, 1], got {coverage}")
        nodes = np.arange(self.topology.n_nodes)
        if coverage < 1.0:
            if rng is None:
                raise AllocationError("coverage < 1 requires an rng")
            keep = max(1, int(round(self.topology.n_nodes * coverage)))
            nodes = np.sort(rng.choice(nodes, size=keep, replace=False))
        return [self.allocate_node(int(n), n_gpus) for n in nodes]

    def random_assignment(
        self, n_gpus: int, rng: np.random.Generator
    ) -> Allocation:
        """What a batch scheduler would hand an arbitrary user job."""
        if not 1 <= n_gpus <= self.topology.gpus_per_node:
            raise AllocationError(
                f"jobs span one node; requested {n_gpus} GPUs but nodes have "
                f"{self.topology.gpus_per_node}"
            )
        node = int(rng.integers(0, self.topology.n_nodes))
        gpus = self.topology.gpus_of_node(node)
        if n_gpus < gpus.shape[0]:
            picked = rng.choice(gpus, size=n_gpus, replace=False)
            gpus = np.sort(picked)
        return Allocation(node_index=node, gpu_indices=gpus)
