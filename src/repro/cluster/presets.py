"""Preset builders for the six clusters studied in the paper (Table I).

========== ========= ======== ======= ============ ======================
cluster    GPU       # GPUs   # nodes cooling      notable outliers
========== ========= ======== ======= ============ ======================
CloudLab   V100      12       3       air          (admin access)
Longhorn   V100      416      104     air          c002 ML stragglers
Frontera   RTX 5000  360      90      mineral oil  c197 pump cabinet
Vortex     V100      216      54      water        —
Summit     V100      27648    4608    water        row H power outliers
Corona     MI60      328      82      air          c115 hot node
========== ========= ======== ======= ============ ======================

Each preset is deterministic in its seed and pins the paper's *named*
outliers at their published locations (via :class:`ForcedDefect` and
:class:`CoolingFault`) on top of a random defect background whose incidence
is spatially concentrated the way the paper observed.

All presets accept ``scale`` in (0, 1] which shrinks the node count
proportionally (minimum one cabinet) — handy for fast tests; forced defects
whose location falls outside a scaled topology are dropped.
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from ..gpu.defects import DefectConfig, DefectType
from ..gpu.silicon import SiliconConfig
from ..gpu.specs import MI60, RTX5000, V100
from .cluster import Cluster, ForcedDefect
from .cooling import AirCooling, CoolingFault, MineralOilCooling, WaterCooling
from .facility import FacilityModel
from .topology import cabinet_topology, row_column_topology

__all__ = [
    "longhorn",
    "summit",
    "frontera",
    "vortex",
    "corona",
    "cloudlab",
    "get_preset",
    "list_presets",
    "PAPER_CLUSTERS",
]


def _scaled_nodes(n_nodes: int, scale: float, per_group: int) -> int:
    if not 0 < scale <= 1:
        raise ConfigError(f"scale must be in (0, 1], got {scale}")
    if scale == 1.0:
        return n_nodes  # exact Table I node counts at full scale
    nodes = max(per_group, int(round(n_nodes * scale)))
    # Round to whole location groups so labels stay regular.
    return max(per_group, (nodes // per_group) * per_group)


def _keep_known_locations(cluster_kwargs: dict, topology) -> dict:
    """Drop forced defects / cooling faults whose labels fell off a scaled topology."""
    node_labels = set(topology.node_labels)
    cab_labels = set(topology.cabinet_labels)
    gpu_labels = None
    forced = []
    for fd in cluster_kwargs.get("forced_defects", ()):
        if fd.scope == "node" and fd.label not in node_labels:
            continue
        if fd.scope == "cabinet" and fd.label not in cab_labels:
            continue
        if fd.scope == "gpu":
            if gpu_labels is None:
                gpu_labels = set(topology.gpu_labels)
            if fd.label not in gpu_labels:
                continue
        forced.append(fd)
    cluster_kwargs["forced_defects"] = tuple(forced)
    return cluster_kwargs


def _filter_faults(cooling, topology):
    node_labels = set(topology.node_labels)
    cab_labels = set(topology.cabinet_labels)
    kept = tuple(
        f
        for f in cooling.faults
        if (f.scope == "node" and f.label in node_labels)
        or (f.scope == "cabinet" and f.label in cab_labels)
    )
    if kept == cooling.faults:
        return cooling
    import dataclasses

    return dataclasses.replace(cooling, faults=kept)


# ---------------------------------------------------------------------------
# TACC Longhorn: 104 nodes x 4 V100, air cooled.
# ---------------------------------------------------------------------------

def longhorn(seed: int = 0, scale: float = 1.0) -> Cluster:
    """TACC's Longhorn cluster (Section IV-B): 416 air-cooled V100s.

    The cabinet-c002 SICK_SLOW GPUs reproduce the recurring ML stragglers
    of Figs. 14/15/17 (and they surface as SGEMM tail outliers too,
    Takeaway 5/6: "8 of the 10 worst-performing GPUs for SGEMM were also
    outliers for ResNet").
    """
    n_nodes = _scaled_nodes(104, scale, per_group=3)
    topology = cabinet_topology("Longhorn", n_nodes, gpus_per_node=4,
                                nodes_per_cabinet=3)
    cooling = AirCooling(
        inlet_c=22.0,
        cabinet_sigma_c=3.2,
        node_sigma_c=1.6,
        slot_gradient_c=1.7,
        r_theta_base_c_per_w=0.145,
        daily_sigma_c=1.2,
    )
    kwargs = dict(
        name="Longhorn",
        spec=V100,
        topology=topology,
        cooling=_filter_faults(cooling, topology),
        silicon_config=SiliconConfig(voltage_offset_sigma=0.007),
        defect_config=DefectConfig(
            power_delivery_rate=0.0005,
            sick_slow_rate=0.0025,
            sick_slow_frequency_cap=(0.70, 0.88),
            hot_runner_rate=0.010,
            hot_runner_resistance=(1.25, 1.75),
        ),
        facility=FacilityModel(),
        run_noise_sigma=0.0008,
        forced_defects=(
            ForcedDefect("cabinet", "c002", DefectType.SICK_SLOW,
                         severity=0.70, count=2),
            ForcedDefect("gpu", "c002-003-1", DefectType.SICK_SLOW,
                         severity=0.80),
        ),
        seed=seed,
    )
    return Cluster(**_keep_known_locations(kwargs, topology))


# ---------------------------------------------------------------------------
# ORNL Summit: 8 rows x 36 columns x 16 nodes x 6 V100, water cooled.
# ---------------------------------------------------------------------------

def summit(seed: int = 0, scale: float = 1.0) -> Cluster:
    """ORNL's Summit supercomputer (Section IV-C): 27,648 water-cooled V100s.

    The row-H / column-36 POWER_DELIVERY defects reproduce Appendix B: a
    string of sub-290 W power outliers all completing near 2510 ms, plus a
    temperature-only HOT_RUNNER on node 2 of the same column.  Additional
    power-delivery defects are seeded across rows A/D/F/H columns 13, 14,
    28, 33 to reproduce the concentrated-outlier columns of Fig. 23.
    """
    # 8 rows x 36 cols x 16 nodes = 4608 nodes; scale shrinks nodes/column.
    nodes_per_column = max(1, int(round(16 * scale)))
    n_rows, n_cols = (8, 36) if scale >= 0.05 else (4, 9)
    topology = row_column_topology(
        "Summit", n_rows=n_rows, n_columns=n_cols,
        nodes_per_column=nodes_per_column, gpus_per_node=6,
    )
    cooling = WaterCooling(
        loop_c=25.0,
        node_sigma_c=1.2,
        r_theta_base_c_per_w=0.09,
        daily_sigma_c=0.4,
    )

    def pd(node: str, slot: int, cap: float) -> ForcedDefect:
        return ForcedDefect("gpu", f"{node}-{slot}", DefectType.POWER_DELIVERY,
                            severity=cap)

    forced = (
        # Row H, column 36 (Appendix B-B): 7 nodes with power outliers.
        pd("rowh-col36-n02", 1, 0.94),
        pd("rowh-col36-n06", 4, 0.92),
        pd("rowh-col36-n08", 0, 0.90),
        pd("rowh-col36-n10", 2, 0.85),
        pd("rowh-col36-n11", 3, 0.87),
        pd("rowh-col36-n13", 5, 0.93),
        pd("rowh-col36-n14", 2, 0.91),
        pd("rowh-col36-n18", 0, 0.895),
        # Temperature-only outlier node (Appendix B-B).
        ForcedDefect("node", "rowh-col36-n02", DefectType.HOT_RUNNER,
                     severity=1.7, count=2),
        # Other concentrated row-H columns (Fig. 23).
        pd("rowh-col13-n04", 1, 0.90),
        pd("rowh-col14-n18", 0, 0.88),
        pd("rowh-col28-n13", 2, 0.89),
        pd("rowh-col33-n07", 3, 0.86),
        # Rows D and F carry the most performance outliers (Fig. 4a);
        # on Summit these follow the frequency trend (Fig. 5a), so they are
        # power-delivery limited rather than throughput-sick.
        ForcedDefect("node", "rowd-col09-n05", DefectType.POWER_DELIVERY,
                     severity=0.82, count=2),
        ForcedDefect("node", "rowf-col21-n11", DefectType.POWER_DELIVERY,
                     severity=0.84, count=2),
        # Rows A and H have extra sub-290 W GPUs (Fig. 4c).
        pd("rowa-col05-n03", 4, 0.93),
        pd("rowa-col17-n09", 2, 0.91),
    )
    kwargs = dict(
        name="Summit",
        spec=V100,
        topology=topology,
        cooling=_filter_faults(cooling, topology),
        silicon_config=SiliconConfig(),
        defect_config=DefectConfig(
            power_delivery_rate=0.0035,
            sick_slow_rate=0.0002,
            hot_runner_rate=0.003,
            hot_runner_resistance=(1.4, 1.8),
            spatial_concentration_shape=0.25,
        ),
        facility=FacilityModel(daily_sigma_c=0.3),
        run_noise_sigma=0.0004,
        forced_defects=forced,
        seed=seed,
    )
    return Cluster(**_keep_known_locations(kwargs, topology))


# ---------------------------------------------------------------------------
# TACC Frontera (GPU subsystem): 90 nodes x 4 RTX 5000, mineral oil.
# ---------------------------------------------------------------------------

def frontera(seed: int = 0, scale: float = 1.0) -> Cluster:
    """TACC's Frontera RTX-5000 subsystem (Section IV-F): mineral-oil baths.

    Cabinet c197 holds the two sick GPUs that ran 1100-1600 ms slower,
    16 degC cooler, and 59 W below the median — the pump-flagged cabinet.
    """
    n_nodes = _scaled_nodes(90, scale, per_group=3)
    n_cabinets = n_nodes // 3
    topology = cabinet_topology(
        "Frontera", n_nodes, gpus_per_node=4, nodes_per_cabinet=3,
        cabinet_numbers=tuple(range(180, 180 + n_cabinets)),
    )
    cooling = MineralOilCooling(
        bath_c=48.0,
        cabinet_sigma_c=1.0,
        r_theta_base_c_per_w=0.12,
        daily_sigma_c=0.6,
    )
    kwargs = dict(
        name="Frontera",
        spec=RTX5000,
        topology=topology,
        cooling=_filter_faults(cooling, topology),
        silicon_config=SiliconConfig(voltage_offset_sigma=0.007),
        defect_config=DefectConfig(
            power_delivery_rate=0.002,
            sick_slow_rate=0.0,  # the two sick GPUs are pinned below
            hot_runner_rate=0.003,
        ),
        facility=FacilityModel(daily_sigma_c=0.5),
        run_noise_sigma=0.0008,
        forced_defects=(
            ForcedDefect("cabinet", "c197", DefectType.SICK_SLOW,
                         severity=0.68, count=2),
        ),
        seed=seed,
    )
    return Cluster(**_keep_known_locations(kwargs, topology))


# ---------------------------------------------------------------------------
# SNL Vortex: 54 nodes x 4 V100, water cooled.
# ---------------------------------------------------------------------------

def vortex(seed: int = 0, scale: float = 1.0) -> Cluster:
    """SNL's Vortex cluster (Section IV-E): 216 water-cooled V100s.

    No named outliers; the paper observed all GPUs within 5 W of the TDP
    with frequencies spanning 1330-1442 MHz.
    """
    n_nodes = _scaled_nodes(54, scale, per_group=3)
    topology = cabinet_topology("Vortex", n_nodes, gpus_per_node=4,
                                nodes_per_cabinet=3)
    cooling = WaterCooling(
        loop_c=25.0,
        node_sigma_c=2.0,
        r_theta_base_c_per_w=0.070,
        daily_sigma_c=0.4,
    )
    kwargs = dict(
        name="Vortex",
        spec=V100,
        topology=topology,
        cooling=_filter_faults(cooling, topology),
        silicon_config=SiliconConfig(voltage_offset_sigma=0.013),
        defect_config=DefectConfig(
            power_delivery_rate=0.0,
            sick_slow_rate=0.0,
            hot_runner_rate=0.002,
        ),
        facility=FacilityModel(daily_sigma_c=0.4),
        run_noise_sigma=0.0010,
        forced_defects=(),
        seed=seed,
    )
    return Cluster(**_keep_known_locations(kwargs, topology))


# ---------------------------------------------------------------------------
# LLNL Corona: 82 nodes x 4 MI60, air cooled (hot room).
# ---------------------------------------------------------------------------

def corona(seed: int = 0, scale: float = 1.0) -> Cluster:
    """LLNL's Corona cluster (Section IV-D): 328 air-cooled AMD MI60s.

    Corona runs hot: junction temperatures approach the 100 degC slowdown
    threshold, so the DVFS controller thermally throttles and the fleet
    never reaches the 300 W TDP.  Group c115 carries a cooling fault that
    turns it into the 165 W hot-and-slow outlier of Figs. 6/7.
    """
    n_nodes = _scaled_nodes(82, scale, per_group=3)
    n_cabinets = -(-n_nodes // 3)
    topology = cabinet_topology(
        "Corona", n_nodes, gpus_per_node=4, nodes_per_cabinet=3,
        cabinet_numbers=tuple(range(100, 100 + n_cabinets)),
    )
    cooling = AirCooling(
        inlet_c=28.5,
        cabinet_sigma_c=0.8,
        node_sigma_c=0.7,
        slot_gradient_c=0.6,
        r_theta_base_c_per_w=0.19,
        daily_sigma_c=1.2,
        faults=(CoolingFault("cabinet", "c115", coolant_delta_c=30.0),),
    )
    kwargs = dict(
        name="Corona",
        spec=MI60,
        topology=topology,
        cooling=_filter_faults(cooling, topology),
        silicon_config=SiliconConfig(voltage_offset_sigma=0.010,
                                     thermal_resistance_log_sigma=0.05),
        defect_config=DefectConfig(
            power_delivery_rate=0.0,
            sick_slow_rate=0.002,
            sick_slow_frequency_cap=(0.70, 0.88),
            hot_runner_rate=0.004,
            hot_runner_resistance=(1.2, 1.5),
        ),
        facility=FacilityModel(daily_sigma_c=1.0),
        run_noise_sigma=0.022,
        forced_defects=(),
        seed=seed,
    )
    return Cluster(**_keep_known_locations(kwargs, topology))


# ---------------------------------------------------------------------------
# NSF CloudLab: 3 nodes x 4 V100, air cooled, admin access.
# ---------------------------------------------------------------------------

def cloudlab(seed: int = 0, scale: float = 1.0) -> Cluster:
    """The small CloudLab testbed (Section VI-B): 12 V100s, root access.

    Used for the power-limit sweep (Fig. 22) because administrative
    privileges allow ``nvidia-smi``-style power caps.
    """
    del scale  # already minimal
    topology = cabinet_topology("CloudLab", 3, gpus_per_node=4,
                                nodes_per_cabinet=3)
    cooling = AirCooling(
        inlet_c=23.0,
        cabinet_sigma_c=1.0,
        node_sigma_c=1.2,
        slot_gradient_c=1.5,
        r_theta_base_c_per_w=0.15,
        daily_sigma_c=0.8,
    )
    return Cluster(
        name="CloudLab",
        spec=V100,
        topology=topology,
        cooling=cooling,
        silicon_config=SiliconConfig(),
        defect_config=DefectConfig.none(),
        facility=FacilityModel(daily_sigma_c=0.6),
        run_noise_sigma=0.0012,
        admin_access=True,
        seed=seed,
    )


#: Builders for the five production clusters of the main study (Fig. 1)
#: plus CloudLab.
PAPER_CLUSTERS = {
    "Longhorn": longhorn,
    "Summit": summit,
    "Frontera": frontera,
    "Vortex": vortex,
    "Corona": corona,
    "CloudLab": cloudlab,
}


def get_preset(name: str, seed: int = 0, scale: float = 1.0) -> Cluster:
    """Build a preset cluster by name (case-insensitive)."""
    for key, builder in PAPER_CLUSTERS.items():
        if key.lower() == name.lower():
            return builder(seed=seed, scale=scale)
    raise ConfigError(f"unknown cluster preset {name!r}; known: {sorted(PAPER_CLUSTERS)}")


def list_presets() -> list[str]:
    """Names of the available cluster presets."""
    return sorted(PAPER_CLUSTERS)
