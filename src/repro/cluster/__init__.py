"""Cluster substrate: machine-room topology, cooling plants, facilities.

This subpackage turns a GPU population into a *cluster*: nodes with labels
matching the paper's plots (``c002-010``, ``rowh-col36-n10``), cabinet /
row-column grouping used for the per-group box plots, cooling technologies
with their spatial temperature fields, facility-level day-to-day conditions,
and the exclusive-node job allocator the paper's methodology relies on.
"""

from .topology import Topology, cabinet_topology, row_column_topology
from .cooling import (
    AirCooling,
    CoolingEnvironment,
    CoolingFault,
    MineralOilCooling,
    WaterCooling,
)
from .facility import FacilityModel
from .cluster import Cluster, ClusterConfig
from .presets import (
    cloudlab,
    corona,
    frontera,
    get_preset,
    list_presets,
    longhorn,
    summit,
    vortex,
)
from .allocator import (
    Allocation,
    ExclusiveNodeAllocator,
    FreeListAllocator,
    GangAllocation,
)

__all__ = [
    "Topology",
    "cabinet_topology",
    "row_column_topology",
    "AirCooling",
    "WaterCooling",
    "MineralOilCooling",
    "CoolingEnvironment",
    "CoolingFault",
    "FacilityModel",
    "Cluster",
    "ClusterConfig",
    "cloudlab",
    "corona",
    "frontera",
    "longhorn",
    "summit",
    "vortex",
    "get_preset",
    "list_presets",
    "Allocation",
    "ExclusiveNodeAllocator",
    "FreeListAllocator",
    "GangAllocation",
]
