"""Machine-room topology: nodes, cabinets, and Summit-style row/column grids.

The paper groups measurements two ways:

* **cabinets of 12 GPUs** (3 nodes x 4 GPUs) on Longhorn, Frontera, Vortex,
  and Corona — node labels look like ``c002-010``;
* **rows and columns** on Summit (Figs. 4, 23-26) — labels look like
  ``rowh-col36-n10-3`` (row H, column 36, node 10, GPU slot 3).

A :class:`Topology` stores the node-level layout plus derived per-GPU index
arrays so analysis code can group any metric by node, cabinet, row, or
column with plain NumPy fancy indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..config import require
from ..errors import ConfigError

__all__ = ["Topology", "cabinet_topology", "row_column_topology"]


@dataclass(frozen=True)
class Topology:
    """Immutable description of where every node (and GPU) sits.

    Attributes
    ----------
    cluster_name:
        Human-readable cluster name.
    gpus_per_node:
        GPUs in each node (4 on the TACC/SNL/LLNL clusters, 6 on Summit).
    node_labels:
        One label per node, e.g. ``c002-010`` or ``rowh-col36-n10``.
    cabinet_of_node:
        Integer cabinet (location-group) index per node.
    cabinet_labels:
        One label per cabinet.
    row_of_node, column_of_node:
        Optional row / column indices per node (Summit-style grids);
        ``None`` elsewhere.
    row_labels:
        Labels for row indices when a grid is present.
    """

    cluster_name: str
    gpus_per_node: int
    node_labels: tuple[str, ...]
    cabinet_of_node: np.ndarray
    cabinet_labels: tuple[str, ...]
    row_of_node: np.ndarray | None = None
    column_of_node: np.ndarray | None = None
    row_labels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        n = len(self.node_labels)
        require(n > 0, "topology needs at least one node")
        require(self.gpus_per_node > 0, "gpus_per_node must be positive")
        if self.cabinet_of_node.shape != (n,):
            raise ConfigError(
                f"cabinet_of_node must have shape ({n},), got "
                f"{self.cabinet_of_node.shape}"
            )
        if self.cabinet_of_node.max(initial=-1) >= len(self.cabinet_labels):
            raise ConfigError("cabinet index exceeds cabinet_labels")
        has_grid = self.row_of_node is not None
        if has_grid != (self.column_of_node is not None) or (
            has_grid != (self.row_labels is not None)
        ):
            raise ConfigError(
                "row_of_node, column_of_node, and row_labels must be given together"
            )
        if has_grid and self.row_of_node.shape != (n,):
            raise ConfigError("row_of_node must have one entry per node")

    # -- sizes ---------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.node_labels)

    @property
    def n_gpus(self) -> int:
        """Number of GPUs."""
        return self.n_nodes * self.gpus_per_node

    @property
    def n_cabinets(self) -> int:
        """Number of cabinets (location groups)."""
        return len(self.cabinet_labels)

    @property
    def has_grid(self) -> bool:
        """Whether this topology has a Summit-style row/column grid."""
        return self.row_of_node is not None

    # -- per-GPU derived arrays ------------------------------------------------

    @cached_property
    def node_of_gpu(self) -> np.ndarray:
        """Node index of each GPU (GPUs are laid out node-major)."""
        return np.repeat(np.arange(self.n_nodes), self.gpus_per_node)

    @cached_property
    def slot_of_gpu(self) -> np.ndarray:
        """Slot (position within the node chassis) of each GPU."""
        return np.tile(np.arange(self.gpus_per_node), self.n_nodes)

    @cached_property
    def cabinet_of_gpu(self) -> np.ndarray:
        """Cabinet index of each GPU."""
        return self.cabinet_of_node[self.node_of_gpu]

    @cached_property
    def row_of_gpu(self) -> np.ndarray | None:
        """Row index of each GPU, or None without a grid."""
        if self.row_of_node is None:
            return None
        return self.row_of_node[self.node_of_gpu]

    @cached_property
    def column_of_gpu(self) -> np.ndarray | None:
        """Column index of each GPU, or None without a grid."""
        if self.column_of_node is None:
            return None
        return self.column_of_node[self.node_of_gpu]

    @cached_property
    def gpu_labels(self) -> tuple[str, ...]:
        """Per-GPU labels, ``<node_label>-<slot>``."""
        return tuple(
            f"{self.node_labels[node]}-{slot}"
            for node, slot in zip(self.node_of_gpu, self.slot_of_gpu)
        )

    def location_group_of_gpu(self) -> np.ndarray:
        """Integer location-group per GPU, for spatial defect correlation.

        Row/column pairs on grid topologies (the paper's Summit outliers
        cluster by column), cabinets elsewhere.
        """
        if self.has_grid:
            n_cols = int(self.column_of_node.max()) + 1
            group = self.row_of_node * n_cols + self.column_of_node
            return group[self.node_of_gpu]
        return self.cabinet_of_gpu

    def gpus_of_node(self, node_index: int) -> np.ndarray:
        """GPU indices belonging to ``node_index``."""
        if not 0 <= node_index < self.n_nodes:
            raise IndexError(f"node index {node_index} out of range")
        start = node_index * self.gpus_per_node
        return np.arange(start, start + self.gpus_per_node)

    def node_index(self, label: str) -> int:
        """Node index for a node label."""
        try:
            return self.node_labels.index(label)
        except ValueError:
            raise KeyError(f"unknown node label {label!r}") from None


def cabinet_topology(
    cluster_name: str,
    n_nodes: int,
    gpus_per_node: int,
    nodes_per_cabinet: int = 3,
    cabinet_numbers: tuple[int, ...] | None = None,
) -> Topology:
    """Build a flat cabinet-grouped topology (Longhorn/Frontera/Vortex/Corona).

    Node labels follow the TACC convention ``c<cabinet>-<node-in-cabinet>``.
    ``cabinet_numbers`` overrides the cabinet numbering (Frontera cabinets
    carry numbers like 197); by default cabinets are numbered from 1.
    """
    require(n_nodes > 0, "n_nodes must be positive")
    require(nodes_per_cabinet > 0, "nodes_per_cabinet must be positive")
    n_cabinets = -(-n_nodes // nodes_per_cabinet)  # ceil division
    if cabinet_numbers is None:
        cabinet_numbers = tuple(range(1, n_cabinets + 1))
    if len(cabinet_numbers) < n_cabinets:
        raise ConfigError(
            f"need at least {n_cabinets} cabinet numbers, got {len(cabinet_numbers)}"
        )
    cabinet_of_node = np.arange(n_nodes) // nodes_per_cabinet
    cabinet_labels = tuple(f"c{num:03d}" for num in cabinet_numbers[:n_cabinets])
    node_labels = tuple(
        f"{cabinet_labels[cab]}-{(i % nodes_per_cabinet) + 1:03d}"
        for i, cab in enumerate(cabinet_of_node)
    )
    return Topology(
        cluster_name=cluster_name,
        gpus_per_node=gpus_per_node,
        node_labels=node_labels,
        cabinet_of_node=cabinet_of_node,
        cabinet_labels=cabinet_labels,
    )


def row_column_topology(
    cluster_name: str,
    n_rows: int,
    n_columns: int,
    nodes_per_column: int,
    gpus_per_node: int,
) -> Topology:
    """Build a Summit-style row/column grid topology.

    Rows are labelled ``a`` .. (as on Summit's floor plan); node labels are
    ``row<r>-col<c>-n<k>``.  Each (row, column) pair is one cabinet for
    grouping purposes.
    """
    require(n_rows > 0 and n_columns > 0, "grid dimensions must be positive")
    require(nodes_per_column > 0, "nodes_per_column must be positive")
    if n_rows > 26:
        raise ConfigError("row labels support at most 26 rows")
    row_labels = tuple(chr(ord("a") + r) for r in range(n_rows))

    n_nodes = n_rows * n_columns * nodes_per_column
    node_idx = np.arange(n_nodes)
    row_of_node = node_idx // (n_columns * nodes_per_column)
    column_of_node = (node_idx // nodes_per_column) % n_columns
    node_in_column = node_idx % nodes_per_column

    node_labels = tuple(
        f"row{row_labels[r]}-col{c + 1:02d}-n{k + 1:02d}"
        for r, c, k in zip(row_of_node, column_of_node, node_in_column)
    )
    cabinet_of_node = row_of_node * n_columns + column_of_node
    cabinet_labels = tuple(
        f"row{row_labels[r]}-col{c + 1:02d}"
        for r in range(n_rows)
        for c in range(n_columns)
    )
    return Topology(
        cluster_name=cluster_name,
        gpus_per_node=gpus_per_node,
        node_labels=node_labels,
        cabinet_of_node=cabinet_of_node,
        cabinet_labels=cabinet_labels,
        row_of_node=row_of_node,
        column_of_node=column_of_node,
        row_labels=row_labels,
    )
