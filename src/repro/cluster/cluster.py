"""The :class:`Cluster` — a named, fully-materialized GPU installation.

A cluster ties together a SKU, a topology, a cooling plant, a facility
model, a silicon process batch, and a defect assignment into a ready-to-run
:class:`~repro.gpu.device.GPUFleet`.  Construction is deterministic in the
seed, so a preset like ``longhorn(seed=1)`` is the *same machine* every time
— the property that lets the paper's cross-application findings ("BERT's and
ResNet-50's outlier nodes are the same", Takeaway 6) reproduce here.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

import numpy as np

from ..config import require
from ..errors import ConfigError
from ..gpu.defects import DefectAssignment, DefectConfig, DefectType, assign_defects
from ..gpu.device import GPUFleet
from ..gpu.silicon import SiliconConfig, sample_population
from ..gpu.specs import GPUSpec
from ..obs.tracer import active_tracer
from ..rng import RngFactory
from .cooling import AirCooling, MineralOilCooling, WaterCooling
from .facility import FacilityModel
from .topology import Topology

__all__ = ["ForcedDefect", "Cluster", "ClusterConfig"]

CoolingModel = AirCooling | WaterCooling | MineralOilCooling

#: Upper bound on cached fleets (per-day and per-(day, shard) entries each).
#: Campaign executors touch (days x shards-per-day) distinct keys — dozens —
#: so the bound only matters for pathological callers; eviction is FIFO.
_FLEET_CACHE_MAX = 128


def active_fault_plan(cluster: "Cluster"):
    """The chaos fault plan injected on ``cluster``, or ``None``.

    The chaos hook mirrors the tracer/timeline protocol: hot paths call
    this once per site and pay a single attribute read plus a ``None``
    branch when injection is off (``benchmarks/bench_chaos_overhead.py``
    bounds that cost).  Plans attach via :meth:`Cluster.set_fault_plan`
    and, being a plain pickled attribute, follow the cluster into
    campaign worker processes unchanged.
    """
    return getattr(cluster, "fault_plan", None)


@dataclass(frozen=True)
class ForcedDefect:
    """Deterministically place a defect at a named location.

    Used by presets to pin the paper's *specific* outliers — the two sick
    Frontera c197 GPUs, the Longhorn c002 stragglers, the Summit
    rowh-col36 power-delivery cluster — at their published locations, on
    top of the random defect background.

    Parameters
    ----------
    scope:
        ``"gpu"``, ``"node"``, or ``"cabinet"``.
    label:
        GPU / node / cabinet label in the cluster topology.
    kind:
        Defect type to force.
    count:
        How many GPUs inside the scope to affect (lowest indices first);
        ``None`` affects all of them.
    severity:
        Defect parameter: power-cap fraction for POWER_DELIVERY,
        throughput multiplier for SICK_SLOW, thermal-resistance multiplier
        for HOT_RUNNER.
    """

    scope: str
    label: str
    kind: DefectType
    severity: float
    count: int | None = None

    def __post_init__(self) -> None:
        require(self.scope in ("gpu", "node", "cabinet"),
                f"scope must be gpu/node/cabinet, got {self.scope!r}")
        require(self.kind != DefectType.NONE, "cannot force DefectType.NONE")
        require(self.severity > 0, "severity must be positive")
        if self.kind in (DefectType.POWER_DELIVERY, DefectType.SICK_SLOW):
            require(self.severity <= 1.0,
                    f"{self.kind.name} severity is a fraction of nominal "
                    "and must be <= 1")
        elif self.kind == DefectType.HOT_RUNNER:
            require(self.severity >= 1.0,
                    "HOT_RUNNER severity multiplies thermal resistance "
                    "and must be >= 1")
        if self.count is not None:
            require(self.count > 0, "count must be positive when given")


@dataclass(frozen=True)
class ClusterConfig:
    """Serializable scalar description of a cluster (Table I row)."""

    name: str
    gpu_name: str
    n_gpus: int
    n_nodes: int
    gpus_per_node: int
    cooling: str
    admin_access: bool
    run_noise_sigma: float


class Cluster:
    """A named GPU installation, deterministically built from a seed.

    Parameters
    ----------
    name:
        Cluster name (``"Longhorn"``, ...).
    spec:
        GPU SKU.
    topology:
        Machine-room layout.
    cooling:
        Cooling-plant model.
    silicon_config, defect_config:
        Process-batch and defect-incidence distributions.
    facility:
        Day-to-day environmental drift model.
    run_noise_sigma:
        Std-dev of the multiplicative per-run duration noise (launch
        jitter, neighbour interference).  Calibrated per cluster against
        Fig. 8's per-GPU repeatability medians.
    admin_access:
        Whether the experimenter can pin clocks / power limits (only
        CloudLab in the paper, Section VI-B).
    forced_defects:
        Deterministic outlier placements applied after random assignment.
    seed:
        Master seed; everything stochastic in the build derives from it.
    """

    def __init__(
        self,
        name: str,
        spec: GPUSpec,
        topology: Topology,
        cooling: CoolingModel,
        silicon_config: SiliconConfig,
        defect_config: DefectConfig,
        facility: FacilityModel | None = None,
        run_noise_sigma: float = 0.002,
        admin_access: bool = False,
        forced_defects: tuple[ForcedDefect, ...] = (),
        seed: int = 0,
    ) -> None:
        require(run_noise_sigma >= 0, "run_noise_sigma must be >= 0")
        self.name = name
        self.spec = spec
        self.topology = topology
        self.cooling = cooling
        self.silicon_config = silicon_config
        self.defect_config = defect_config
        self.facility = facility if facility is not None else FacilityModel()
        self.run_noise_sigma = run_noise_sigma
        self.admin_access = admin_access
        self.forced_defects = forced_defects
        self.seed = seed

        self.rng_factory = RngFactory(seed).child(f"cluster-{name}")
        n = topology.n_gpus
        self.silicon = sample_population(
            n, silicon_config, self.rng_factory.generator("silicon")
        )
        defects = assign_defects(
            n,
            defect_config,
            self.rng_factory.generator("defects"),
            location_group=topology.location_group_of_gpu(),
        )
        self.defects = self._apply_forced_defects(defects)
        self.environment = cooling.environment(
            topology, self.rng_factory.generator("cooling")
        )
        self._base_fleet = GPUFleet(
            spec=spec,
            silicon=self.silicon,
            defects=self.defects,
            r_theta_base_c_per_w=self.environment.r_theta_base_c_per_w,
            coolant_c=self.environment.coolant_c,
        )
        #: Chaos injection plan (:class:`repro.chaos.plan.ChaosPlan`), or
        #: ``None``.  Attach with :meth:`set_fault_plan`.
        self.fault_plan = None
        self._init_fleet_caches()

    def set_fault_plan(self, plan) -> None:
        """Attach (or clear, with ``None``) a chaos fault-injection plan.

        The plan must be compiled for this cluster's topology
        (:func:`repro.chaos.plan.compile_plan`).  Cached day fleets are
        dropped so a plan attached after use still takes effect.
        """
        if plan is not None:
            require(
                getattr(plan, "n_gpus", None) == self.n_gpus,
                f"fault plan was compiled for {getattr(plan, 'n_gpus', '?')} "
                f"GPUs, cluster has {self.n_gpus}",
            )
        self.fault_plan = plan
        self._init_fleet_caches()

    def _init_fleet_caches(self) -> None:
        self._fleet_day_cache: dict[int, GPUFleet] = {}
        self._fleet_slice_cache: dict[tuple, GPUFleet] = {}
        self._fleet_cache_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks cannot pickle and caches should not travel to workers (each
        # worker repopulates deterministically on first use).
        state = self.__dict__.copy()
        del state["_fleet_day_cache"]
        del state["_fleet_slice_cache"]
        del state["_fleet_cache_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._init_fleet_caches()

    # ------------------------------------------------------------------

    @property
    def n_gpus(self) -> int:
        """Total GPUs in the cluster."""
        return self.topology.n_gpus

    @property
    def n_nodes(self) -> int:
        """Total nodes in the cluster."""
        return self.topology.n_nodes

    @property
    def fleet(self) -> GPUFleet:
        """The fleet under nominal (day-independent) facility conditions."""
        return self._base_fleet

    def fleet_for_day(self, day_index: int) -> GPUFleet:
        """The fleet under the facility conditions of campaign day ``day_index``.

        Memoized per day: the facility offset is a pure function of
        (day, master seed), so the day fleet is computed once and shared by
        every run and shard of that day instead of being rebuilt per run.
        Returned fleets are immutable views — never mutate their arrays.
        """
        with self._fleet_cache_lock:
            fleet = self._fleet_day_cache.get(day_index)
        tracer = active_tracer()
        if fleet is not None:
            if tracer is not None:
                tracer.add("cache.fleet_day.hit")
            return fleet
        if tracer is not None:
            tracer.add("cache.fleet_day.miss")
        offset = self.facility.coolant_offset_c(day_index, self.rng_factory)
        plan = active_fault_plan(self)
        if plan is not None and plan.affects(day_index):
            fleet = self._faulted_fleet(day_index, offset, plan)
        elif offset == 0.0:
            fleet = self._base_fleet
        else:
            fleet = self._base_fleet.with_coolant(
                self.environment.coolant_c + offset
            )
        with self._fleet_cache_lock:
            if len(self._fleet_day_cache) >= _FLEET_CACHE_MAX:
                self._fleet_day_cache.pop(next(iter(self._fleet_day_cache)))
            self._fleet_day_cache[day_index] = fleet
        return fleet

    def _faulted_fleet(self, day_index: int, offset: float, plan) -> GPUFleet:
        """The day fleet under an active chaos plan.

        Effects are pure functions of the day, so the per-day cache in
        :meth:`fleet_for_day` stays valid.  Coolant faults stack on the
        facility offset as per-GPU deltas; cap faults scale the defect
        arrays into a new :class:`DefectAssignment`.  The silicon
        population is untouched, so the base fleet's power model — with
        its cached per-die solver parameters — is reused.
        """
        coolant = self.environment.coolant_c + offset
        delta = plan.coolant_delta_c(day_index)
        if delta is not None:
            coolant = coolant + delta
        multipliers = plan.defect_multipliers(day_index)
        if multipliers is None:
            return self._base_fleet.with_coolant(coolant)
        power_mult, freq_mult = multipliers
        base = self._base_fleet.defects
        defects = DefectAssignment(
            kind=base.kind,
            power_cap_frac=base.power_cap_frac * power_mult,
            frequency_cap_frac=base.frequency_cap_frac * freq_mult,
            efficiency=base.efficiency,
            extra_thermal_resistance=base.extra_thermal_resistance,
        )
        return GPUFleet(
            spec=self.spec,
            silicon=self.silicon,
            defects=defects,
            r_theta_base_c_per_w=self.environment.r_theta_base_c_per_w,
            coolant_c=coolant,
            policy=self._base_fleet.policy,
            power_model=self._base_fleet.power_model,
        )

    def fleet_slice(self, day_index: int, gpu_indices: np.ndarray) -> GPUFleet:
        """The day fleet restricted to ``gpu_indices``, memoized per (day, shard).

        Campaign executors call this once per run; the silicon/defect/
        thermal re-slicing is identical for every run of the same (day,
        shard) pair, so it is cached under a digest of the index array.
        Returned fleets are immutable views — never mutate their arrays.
        """
        gpu_indices = np.asarray(gpu_indices)
        digest = hashlib.blake2b(
            gpu_indices.tobytes(), digest_size=16
        ).digest()
        key = (day_index, gpu_indices.dtype.str, gpu_indices.shape[0], digest)
        with self._fleet_cache_lock:
            fleet = self._fleet_slice_cache.get(key)
        tracer = active_tracer()
        if fleet is not None:
            if tracer is not None:
                tracer.add("cache.fleet_slice.hit")
            return fleet
        if tracer is not None:
            tracer.add("cache.fleet_slice.miss")
        fleet = self.fleet_for_day(day_index).take(gpu_indices)
        with self._fleet_cache_lock:
            if len(self._fleet_slice_cache) >= _FLEET_CACHE_MAX:
                self._fleet_slice_cache.pop(next(iter(self._fleet_slice_cache)))
            self._fleet_slice_cache[key] = fleet
        return fleet

    def config(self) -> ClusterConfig:
        """Scalar summary of this cluster (a Table I row)."""
        return ClusterConfig(
            name=self.name,
            gpu_name=self.spec.name,
            n_gpus=self.n_gpus,
            n_nodes=self.n_nodes,
            gpus_per_node=self.topology.gpus_per_node,
            cooling=self.cooling.kind,
            admin_access=self.admin_access,
            run_noise_sigma=self.run_noise_sigma,
        )

    # ------------------------------------------------------------------

    def _resolve_scope_gpus(self, scope: str, label: str) -> np.ndarray:
        topo = self.topology
        if scope == "gpu":
            try:
                return np.asarray([topo.gpu_labels.index(label)])
            except ValueError:
                raise ConfigError(f"unknown GPU label {label!r}") from None
        if scope == "node":
            return topo.gpus_of_node(topo.node_index(label))
        try:
            cab = topo.cabinet_labels.index(label)
        except ValueError:
            raise ConfigError(f"unknown cabinet label {label!r}") from None
        return np.flatnonzero(topo.cabinet_of_gpu == cab)

    def _apply_forced_defects(self, defects: DefectAssignment) -> DefectAssignment:
        if not self.forced_defects:
            return defects
        kind = defects.kind.copy()
        cap = defects.power_cap_frac.copy()
        fcap = defects.frequency_cap_frac.copy()
        eff = defects.efficiency.copy()
        res = defects.extra_thermal_resistance.copy()
        for forced in self.forced_defects:
            gpus = self._resolve_scope_gpus(forced.scope, forced.label)
            if forced.count is not None:
                gpus = gpus[: forced.count]
            kind[gpus] = int(forced.kind)
            # Reset any randomly-assigned parameters for these GPUs first.
            cap[gpus] = 1.0
            fcap[gpus] = 1.0
            eff[gpus] = 1.0
            res[gpus] = 1.0
            if forced.kind == DefectType.POWER_DELIVERY:
                cap[gpus] = forced.severity
            elif forced.kind == DefectType.SICK_SLOW:
                fcap[gpus] = forced.severity
            elif forced.kind == DefectType.HOT_RUNNER:
                res[gpus] = forced.severity
        return DefectAssignment(
            kind=kind,
            power_cap_frac=cap,
            frequency_cap_frac=fcap,
            efficiency=eff,
            extra_thermal_resistance=res,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster({self.name!r}, gpu={self.spec.name}, n_gpus={self.n_gpus}, "
            f"cooling={self.cooling.kind})"
        )
