"""Facility-level, time-varying conditions.

The paper checks that variability is *not transient* by repeating runs over
days and weeks (Section VI-A).  Real machine rooms drift: facility thermal
load follows the work week, chiller setpoints wander, and shared access
means a study samples different node subsets on different days.  The
:class:`FacilityModel` captures the first two as a deterministic weekday
pattern plus a seeded daily perturbation of the coolant temperature; the
third is handled by the campaign scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require
from ..rng import RngFactory

__all__ = ["FacilityModel", "WEEKDAY_NAMES"]

WEEKDAY_NAMES = (
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
)


@dataclass(frozen=True)
class FacilityModel:
    """Day-to-day environmental drift of a computing facility.

    Parameters
    ----------
    weekday_offsets_c:
        Deterministic coolant-temperature offset per weekday
        (Monday-first, 7 entries).  Working days run slightly warmer.
    daily_sigma_c:
        Std-dev of the random facility-wide offset drawn each day.
    """

    weekday_offsets_c: tuple[float, ...] = (0.8, 0.9, 0.8, 0.9, 0.7, -0.5, -0.6)
    daily_sigma_c: float = 0.8

    def __post_init__(self) -> None:
        require(
            len(self.weekday_offsets_c) == 7,
            "weekday_offsets_c needs exactly 7 entries (Monday-first)",
        )
        require(self.daily_sigma_c >= 0, "daily_sigma_c must be >= 0")

    @staticmethod
    def weekday_of(day_index: int) -> int:
        """Weekday index (0 = Monday) of campaign day ``day_index``."""
        return day_index % 7

    @staticmethod
    def weekday_name(day_index: int) -> str:
        """Weekday name of campaign day ``day_index``."""
        return WEEKDAY_NAMES[day_index % 7]

    def coolant_offset_c(self, day_index: int, rng_factory: RngFactory) -> float:
        """Facility-wide coolant offset for a campaign day.

        Deterministic in (day, master seed): the same day always replays
        the same conditions, which is what makes campaign results exactly
        reproducible.
        """
        if day_index < 0:
            raise ValueError(f"day_index must be >= 0, got {day_index}")
        base = self.weekday_offsets_c[self.weekday_of(day_index)]
        jitter = rng_factory.generator(f"facility-day-{day_index}").normal(
            0.0, self.daily_sigma_c
        )
        return float(base + jitter)

    @classmethod
    def steady(cls) -> "FacilityModel":
        """A facility with no day-to-day drift (for controlled experiments)."""
        return cls(weekday_offsets_c=(0.0,) * 7, daily_sigma_c=0.0)
