"""repro.service — the long-lived fleet characterization service.

The ROADMAP's north star is a production-scale system, and this package
is its serving artery: a stdlib-``asyncio`` HTTP server exposing the five
facade verbs (``characterize``, ``screen``, ``sweep``, ``schedule``,
``monitor``) over the typed request objects of
:mod:`repro.api.requests`, with the three mechanisms a deterministic
workload makes unusually effective:

* **coalescing** — concurrent identical requests (same
  :func:`~repro.api.requests.request_digest`) share one campaign
  (:mod:`repro.service.coalesce`);
* **response caching** — canonical bodies in a bounded FIFO keyed by
  digest, byte-identical on every hit;
* **backpressure** — a bounded worker pool reusing
  :func:`repro.sim.parallel.make_executor`; saturation is HTTP 429, not
  an unbounded queue (:mod:`repro.service.pool`).

Start one in-process (tests, :mod:`repro.loadgen` self-host mode)::

    from repro.service import FleetService, ServiceConfig

    service = FleetService(ServiceConfig(port=0))
    await service.start()        # service.port is the bound port

or from the shell: ``python -m repro serve --port 8642``.  See
docs/SERVICE.md for the wire schema and docs/OBSERVABILITY.md for the
``service_*`` metrics.
"""

from .coalesce import BrokerReply, CoalescingBroker, ResponseCache
from .pool import WorkerPool
from .server import FleetService, ServiceConfig, default_runner
from .wire import (
    WIRE_SCHEMA_VERSION,
    build_response,
    decode_response,
    encode_response,
    validate_response,
)

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "BrokerReply",
    "CoalescingBroker",
    "FleetService",
    "ResponseCache",
    "ServiceConfig",
    "WorkerPool",
    "build_response",
    "decode_response",
    "default_runner",
    "encode_response",
    "validate_response",
]
