"""Wire format of the fleet service — canonical JSON responses per verb.

One rule makes the whole caching/coalescing design sound: **a response is
canonical bytes, a pure function of the request digest.**  Payload dicts
are encoded with sorted keys and compact separators, so the same request
produces byte-identical bodies whether it was computed fresh, joined onto
an in-flight campaign, or served from the response cache — transport
status (hit/miss/coalesced) travels in HTTP headers, never in the body.

The ``characterize`` payload carries the campaign dataset as the exact
CSV text the offline CLI writes (``repro.telemetry.dataset_to_csv_text``),
which is what lets CI ``cmp`` the service path against the offline path.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from ..api.requests import REQUEST_KINDS
from ..errors import ServiceError
from ..telemetry.io import dataset_to_csv_text

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "build_response",
    "encode_response",
    "decode_response",
    "validate_response",
]

#: Version stamp of the response payload schema.  Bump on any change to the
#: per-kind payload keys below; clients reject mismatches.
WIRE_SCHEMA_VERSION = 1

#: Keys every response payload must carry, before per-kind additions.
_COMMON_KEYS = ("kind", "schema_version", "request")

#: Per-kind payload keys beyond the common ones.
_KIND_KEYS: dict[str, tuple[str, ...]] = {
    "characterize": ("csv", "report_text", "performance_variation", "n_rows"),
    "monitor": ("csv", "health", "report_text", "n_rows"),
    "screen": ("screens", "confirmed", "min_confirmations"),
    "sweep": ("cluster", "workload", "runs_per_limit", "points"),
    "schedule": ("schedule",),
    "chaos": ("scorecard",),
}


def build_response(request: Any, result: Any) -> dict:
    """Assemble the JSON payload dict for a facade result.

    ``request`` is one of the :mod:`repro.api.requests` objects and
    ``result`` the value the matching facade verb returned for it.  The
    payload embeds the request's own canonical dict so a response is
    self-describing (auditable without the original call site).
    """
    kind = getattr(request, "kind", None)
    if kind not in REQUEST_KINDS:
        raise ServiceError(f"cannot build a response for kind {kind!r}")
    payload: dict = {
        "kind": kind,
        "schema_version": WIRE_SCHEMA_VERSION,
        "request": request.to_dict(),
    }
    if kind == "characterize":
        payload["csv"] = dataset_to_csv_text(result.dataset)
        payload["report_text"] = result.report.render()
        payload["performance_variation"] = float(
            result.report.performance_variation
        )
        payload["n_rows"] = int(result.dataset.n_rows)
    elif kind == "monitor":
        payload["csv"] = dataset_to_csv_text(result.dataset)
        payload["health"] = result.report.to_dict()
        payload["report_text"] = result.report.render()
        payload["n_rows"] = int(result.dataset.n_rows)
    elif kind == "screen":
        payload["screens"] = [
            dataclasses.asdict(screen) for screen in result.screens
        ]
        payload["confirmed"] = list(result.confirmed)
        payload["min_confirmations"] = int(result.min_confirmations)
    elif kind == "sweep":
        payload["cluster"] = result.cluster
        payload["workload"] = result.workload
        payload["runs_per_limit"] = int(result.runs_per_limit)
        payload["points"] = [
            dataclasses.asdict(point) for point in result.points
        ]
    elif kind == "chaos":
        payload["scorecard"] = result.scorecard
    else:  # schedule
        payload["schedule"] = result.report.to_dict()
    return payload


def encode_response(payload: dict) -> bytes:
    """Canonical UTF-8 JSON bytes: sorted keys, compact separators.

    This is the byte representation that the response cache stores and
    the coalescing broker hands to every waiter — canonicalizing here is
    what makes "cache hits are byte-identical" trivially true.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_response(data: bytes) -> dict:
    """Parse response bytes back into the payload dict (inverse of encode)."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"response body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError(
            f"response body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def validate_response(payload: dict) -> str:
    """Check a payload against the wire schema; return its kind.

    Raises :class:`~repro.errors.ServiceError` on a schema-version
    mismatch, an unknown kind, or missing per-kind keys — the checks the
    load generator and CI run on every body they receive.
    """
    version = payload.get("schema_version")
    if version != WIRE_SCHEMA_VERSION:
        raise ServiceError(
            f"response schema_version {version!r} != "
            f"supported {WIRE_SCHEMA_VERSION}"
        )
    kind = payload.get("kind")
    if kind not in _KIND_KEYS:
        raise ServiceError(f"response kind {kind!r} is not a service verb")
    missing = [
        key
        for key in _COMMON_KEYS + _KIND_KEYS[kind]
        if key not in payload
    ]
    if missing:
        raise ServiceError(
            f"{kind} response is missing keys: {', '.join(missing)}"
        )
    if not isinstance(payload["request"], dict):
        raise ServiceError("response 'request' must be the request dict")
    return kind
