"""The long-lived fleet service: stdlib-asyncio HTTP over ``repro.api``.

One process serves the paper's whole characterization surface:

* ``POST /v1/characterize|screen|sweep|schedule|monitor`` — body is the
  canonical JSON of the matching :mod:`repro.api.requests` object (the
  path fixes ``kind``; a mismatching body ``kind`` is a 400);
* ``GET /v1/healthz`` — liveness + queue depth;
* ``GET /metrics`` — Prometheus text exposition of the ``service_*``
  counters and latency histogram, the solver/engine work counters the
  runner reports per executed campaign (``repro_solver_solves_total``,
  ``repro_engine_clamp_reevaluations_total``, ...), and a
  ``service_uptime_seconds`` gauge.

Request flow: parse → deserialize to the exact request object the Python
facade takes → :class:`~repro.service.coalesce.CoalescingBroker` (cache →
join in-flight → execute on the bounded
:class:`~repro.service.pool.WorkerPool`).  Transport status rides in
headers (``X-Repro-Cache: hit|miss|coalesced``, ``X-Repro-Digest``, and —
with ``--timeline`` — ``X-Repro-Timeline``, the request's admission event
id on the flight-recorder timeline), so response *bodies* stay
byte-identical for one digest no matter how they were produced.
Saturation maps to 429, expired deadlines to 503, bad requests to 400 —
all with canonical JSON error bodies.

HTTP/1.1 is hand-rolled on :func:`asyncio.start_server` (no third-party
web framework, per the repo's stdlib-only constraint): one request per
connection, ``Connection: close``, bounded header and body sizes.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

import numpy as np

from ..api import execute_request
from ..api.requests import REQUEST_KINDS, request_digest, request_from_dict
from ..config import require
from ..errors import (
    ConfigError,
    DeadlineExceeded,
    ReproError,
    ServiceError,
    ServiceSaturated,
)
from ..obs.metrics import MetricsRegistry, render_prometheus
from ..obs.timeline import TimelineRecorder
from ..obs.tracer import Tracer, activate
from .coalesce import CoalescingBroker, ResponseCache
from .pool import WorkerPool
from .wire import build_response, encode_response

__all__ = ["ServiceConfig", "FleetService", "default_runner"]

#: Upper bound on request head (request line + headers) we will buffer.
_MAX_HEAD_BYTES = 16 * 1024
#: Upper bound on request body size.
_MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


#: Counter prefixes (tracer dotted names) the runner reports per campaign.
#: Deterministic work totals only — wall-clock-free, so ``GET /metrics``
#: stays reproducible for a given request history.
_RUNNER_COUNTER_PREFIXES = ("solver.", "engine.", "sched.")


def default_runner(request) -> tuple[bytes, dict[str, int | float]]:
    """Execute a request through the facade; canonical body + work counters.

    This is the unit of work the broker submits to the pool — the same
    :func:`repro.api.execute_request` path Python callers use, then the
    same canonical encoding the cache stores.  The campaign runs under a
    private :class:`~repro.obs.tracer.Tracer` whose deterministic
    solver/engine counters ride back with the body; the broker folds them
    into the service registry once per execution.
    """
    tracer = Tracer()
    with activate(tracer):
        result = execute_request(request)
    body = encode_response(build_response(request, result))
    counters = {
        name: value
        for name, value in tracer.deterministic_counters().items()
        if name.startswith(_RUNNER_COUNTER_PREFIXES)
    }
    return body, counters


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`FleetService` instance.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`FleetService.port` after :meth:`FleetService.start` — the test
    and in-process loadgen path).  ``max_pending`` and ``cache_entries``
    bound the two queues that make the service safe to leave running.
    ``timeline_path`` streams one flight-recorder admission event per
    request to a JSON Lines file (inspect with ``repro replay``).
    """

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2
    backend: str = "thread"
    max_pending: int = 8
    cache_entries: int = 64
    timeline_path: str | None = None

    def __post_init__(self) -> None:
        require(0 <= self.port <= 65535, f"port out of range: {self.port}")
        require(self.workers >= 1, f"workers must be >= 1, got {self.workers}")


class FleetService:
    """The asyncio HTTP server wiring parser → broker → pool → metrics.

    ``runner`` defaults to :func:`default_runner` (real campaigns); tests
    inject stubs to probe coalescing, backpressure, and deadline handling
    without simulating physics.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        runner=None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = MetricsRegistry()
        self.pool = WorkerPool(
            workers=self.config.workers,
            max_pending=self.config.max_pending,
            backend=self.config.backend,
        )
        self.cache = ResponseCache(max_entries=self.config.cache_entries)
        self.broker = CoalescingBroker(
            runner if runner is not None else default_runner,
            self.pool,
            self.cache,
            self.metrics,
        )
        self._server: asyncio.AbstractServer | None = None
        self.timeline: TimelineRecorder | None = None
        self._timeline_stream = None
        self._started_monotonic: float | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The actual bound port (resolves ``port=0`` after ``start``)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        if self.config.timeline_path is not None and self.timeline is None:
            # Long-lived process: stream events as they happen rather
            # than buffering an unbounded in-memory timeline.
            self._timeline_stream = open(
                self.config.timeline_path, "w", encoding="utf-8"
            )
            self.timeline = TimelineRecorder(stream=self._timeline_stream)
            self.timeline.record(
                "service", "service_start", self.config.host,
                workers=self.config.workers,
                backend=self.config.backend,
                max_pending=self.config.max_pending,
                cache_entries=self.config.cache_entries,
            )
            self.broker.timeline = self.timeline
        self._started_monotonic = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        """Stop accepting connections and shut the worker pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.shutdown(wait=False)
        if self._timeline_stream is not None:
            self.broker.timeline = None
            self.timeline = None
            self._timeline_stream.close()
            self._timeline_stream = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled — the CLI entry."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve exactly one HTTP request, then close the connection."""
        started = time.perf_counter()
        try:
            method, path, headers, body = await _read_request(reader)
        except ServiceError as exc:
            await _write_response(
                writer, 400, _error_body("bad_request", str(exc))
            )
            return
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        status, body_bytes, extra_headers = await self._dispatch(
            method, path, body
        )
        self.metrics.observe(
            "service_request_latency_s",
            np.array([time.perf_counter() - started]),
            help="wall-clock seconds from request head to response write",
        )
        await _write_response(
            writer, status, body_bytes, extra_headers=extra_headers
        )

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes, dict[str, str]]:
        """Route one parsed request to a handler; map errors to statuses."""
        if path == "/v1/healthz":
            if method != "GET":
                return 405, _error_body("method", "healthz is GET-only"), {}
            payload = {
                "status": "ok",
                "pending": self.pool.pending,
                "cache_entries": len(self.cache),
            }
            return 200, encode_response(payload), {}
        if path == "/metrics":
            if method != "GET":
                return 405, _error_body("method", "metrics is GET-only"), {}
            if self._started_monotonic is not None:
                self.metrics.set_gauge(
                    "service_uptime_seconds",
                    time.monotonic() - self._started_monotonic,
                    help="seconds since the service started accepting "
                         "connections",
                )
            text = render_prometheus(self.metrics)
            return 200, text.encode("utf-8"), {
                "Content-Type": "text/plain; version=0.0.4"
            }
        if path.startswith("/v1/"):
            kind = path[len("/v1/"):]
            if kind in REQUEST_KINDS:
                if method != "POST":
                    return 405, _error_body(
                        "method", f"/v1/{kind} is POST-only"
                    ), {}
                return await self._handle_verb(kind, body)
        return 404, _error_body("not_found", f"no route for {path!r}"), {}

    async def _handle_verb(
        self, kind: str, body: bytes
    ) -> tuple[int, bytes, dict[str, str]]:
        """Deserialize, run through the broker, map service errors."""
        try:
            data = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _error_body("bad_json", str(exc)), {}
        if not isinstance(data, dict):
            return 400, _error_body("bad_json", "body must be a JSON object"), {}
        data.setdefault("kind", kind)
        try:
            request = request_from_dict(data)
            if request.kind != kind:
                raise ConfigError(
                    f"body kind {request.kind!r} does not match /v1/{kind}"
                )
            digest = request_digest(request)
            reply = await self.broker.submit(request, digest)
        except ServiceSaturated as exc:
            return 429, _error_body("saturated", str(exc)), {
                "Retry-After": "1"
            }
        except DeadlineExceeded as exc:
            return 503, _error_body("deadline", str(exc)), {}
        except ConfigError as exc:
            return 400, _error_body("bad_request", str(exc)), {}
        except ReproError as exc:
            return 500, _error_body("error", str(exc)), {}
        headers = {
            "X-Repro-Cache": reply.status,
            "X-Repro-Digest": reply.digest,
        }
        if reply.timeline_id is not None:
            headers["X-Repro-Timeline"] = str(reply.timeline_id)
        return 200, reply.body, headers


def _error_body(code: str, message: str) -> bytes:
    """Canonical JSON error body shared by every non-200 response."""
    return encode_response({"error": {"code": code, "message": message}})


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes]:
    """Parse one HTTP/1.x request: (method, path, headers, body).

    Raises :class:`~repro.errors.ServiceError` on malformed heads and
    oversized heads/bodies; connection-level EOF errors propagate.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError as exc:
        raise ServiceError("request head too large") from exc
    if len(head) > _MAX_HEAD_BYTES:
        raise ServiceError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise ServiceError(f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    path = target.split("?", 1)[0]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ServiceError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ServiceError(
            f"bad Content-Length: {length_text!r}"
        ) from None
    if length < 0 or length > _MAX_BODY_BYTES:
        raise ServiceError(f"body size out of bounds: {length}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    extra_headers: dict[str, str] | None = None,
) -> None:
    """Write one HTTP/1.1 response and close the connection."""
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    head = f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
    head += "".join(f"{name}: {value}\r\n" for name, value in headers.items())
    head += "\r\n"
    try:
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
    except ConnectionError:
        pass
    finally:
        writer.close()
