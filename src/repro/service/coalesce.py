"""Request coalescing and response caching for the fleet service.

The paper's campaigns are deterministic: a request's outputs are a pure
function of its :func:`~repro.api.requests.request_digest` (seed, preset,
scale, campaign shape — with execution-only knobs excluded).  That turns
the classic serving problem on its head: *N identical in-flight requests
are one unit of work*, not N.  The broker here exploits it twice:

1. **Coalescing** — concurrent requests with the same digest share one
   future; only the first admission costs a campaign.
2. **Response cache** — completed canonical bodies are kept in a bounded
   FIFO keyed by digest, so repeats after completion cost a dict lookup.

Deadlines never poison either layer: a waiter that times out abandons the
*shared* future via :func:`asyncio.shield`, the campaign still completes,
and its result still lands in the cache for the next caller.  Failures
propagate to every waiter and are deliberately **not** cached, so a
transient error doesn't become a sticky one.

All counters land in a :class:`~repro.obs.metrics.MetricsRegistry` under
``service_*`` names (see docs/OBSERVABILITY.md).  Runners may return
``(body, counters)`` instead of plain bytes; the counters — deterministic
campaign work totals such as ``solver.solves`` — are folded into the same
registry exactly once per execution (names mapped ``.`` → ``_``), so
``GET /metrics`` exposes solver/engine work alongside the ``service_*``
transport counters.

With a :class:`~repro.obs.timeline.TimelineRecorder` attached, the broker
appends one ``service``-layer admission event per submitted request
(entity = request digest; status ``hit`` / ``coalesced`` / ``miss`` /
``saturated``) and hands the event's sequence number back on the
:class:`BrokerReply` as ``timeline_id`` — the value the server surfaces
in the ``X-Repro-Timeline`` response header.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Awaitable, Callable

from ..config import require
from ..errors import DeadlineExceeded, ServiceSaturated
from ..obs.metrics import MetricsRegistry
from ..obs.timeline import TimelineRecorder
from .pool import WorkerPool

__all__ = ["ResponseCache", "CoalescingBroker", "BrokerReply"]


class ResponseCache:
    """Bounded FIFO of canonical response bodies, keyed by request digest.

    FIFO (not LRU) on purpose: eviction order is then a pure function of
    *insertion* order, which keeps replayed load-generator runs
    deterministic — a cache probe never reorders anything.
    """

    def __init__(self, max_entries: int = 64) -> None:
        require(max_entries >= 0, f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()

    def __len__(self) -> int:
        """Number of cached bodies."""
        return len(self._entries)

    def get(self, digest: str) -> bytes | None:
        """The cached body for ``digest``, or ``None`` (no LRU reordering)."""
        return self._entries.get(digest)

    def put(self, digest: str, body: bytes) -> None:
        """Insert a body, evicting the oldest entries past the bound."""
        if self.max_entries == 0:
            return
        if digest not in self._entries:
            self._entries[digest] = body
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached entry."""
        self._entries.clear()


class BrokerReply:
    """What the broker hands back per request: body bytes + transport status.

    ``status`` is one of ``"hit"`` (response cache), ``"coalesced"``
    (joined an in-flight execution), or ``"miss"`` (this request paid for
    the execution).  It describes transport only — ``body`` is
    byte-identical across all three for the same digest.  ``timeline_id``
    is the admission event's sequence number on the service timeline, or
    ``None`` when no recorder is attached.
    """

    __slots__ = ("body", "status", "digest", "timeline_id")

    def __init__(
        self,
        body: bytes,
        status: str,
        digest: str,
        timeline_id: int | None = None,
    ) -> None:
        self.body = body
        self.status = status
        self.digest = digest
        self.timeline_id = timeline_id


class CoalescingBroker:
    """Single-flight request execution over a bounded worker pool.

    Parameters
    ----------
    runner:
        Synchronous callable executed on a pool worker, returning either
        the *canonical* response body (``bytes``) or ``(bytes, counters)``
        where ``counters`` maps deterministic work-counter names to
        totals.  Injectable so tests drive the broker with stub work.
    pool:
        The :class:`~repro.service.pool.WorkerPool` bounding admissions.
    cache:
        The :class:`ResponseCache` for completed bodies.
    metrics:
        Registry receiving the ``service_*`` (and runner work) counters.
    timeline:
        Optional streaming :class:`~repro.obs.timeline.TimelineRecorder`
        receiving one ``service``-layer admission event per request.

    Must be used from a single asyncio event loop: the in-flight map is
    loop-confined state (no locks needed), while the runner itself runs on
    pool workers.
    """

    def __init__(
        self,
        runner: Callable[[Any], Any],
        pool: WorkerPool,
        cache: ResponseCache,
        metrics: MetricsRegistry,
        timeline: TimelineRecorder | None = None,
    ) -> None:
        self.runner = runner
        self.pool = pool
        self.cache = cache
        self.metrics = metrics
        self.timeline = timeline
        self._inflight: dict[str, asyncio.Future] = {}

    def _admit(self, request: Any, digest: str, status: str) -> int | None:
        """Record the admission on the service timeline (if attached)."""
        if self.timeline is None:
            return None
        return self.timeline.record(
            "service", "admit", digest,
            verb=getattr(request, "kind", type(request).__name__),
            status=status,
        )

    def submit(
        self, request: Any, digest: str, deadline_s: float | None = None
    ) -> Awaitable[BrokerReply]:
        """Resolve a request to its canonical body (cache → join → execute).

        Returns an awaitable producing a :class:`BrokerReply`.  Raises
        :class:`~repro.errors.ServiceSaturated` synchronously if fresh
        work is needed but the pool is full, and the awaitable raises
        :class:`~repro.errors.DeadlineExceeded` if ``deadline_s`` (or the
        request's own ``deadline_s`` field) expires first — without
        cancelling the shared execution.
        """
        self.metrics.inc("service_requests_total")
        if deadline_s is None:
            deadline_s = getattr(request, "deadline_s", None)

        cached = self.cache.get(digest)
        if cached is not None:
            self.metrics.inc("service_cache_hits")
            timeline_id = self._admit(request, digest, "hit")
            return _immediate(BrokerReply(cached, "hit", digest, timeline_id))
        self.metrics.inc("service_cache_misses")

        shared = self._inflight.get(digest)
        if shared is not None:
            self.metrics.inc("service_coalesced_requests")
            timeline_id = self._admit(request, digest, "coalesced")
            return self._await_shared(
                shared, "coalesced", digest, deadline_s, timeline_id
            )

        # First requester for this digest: pay for the execution.  The
        # pool may refuse (ServiceSaturated) — propagated synchronously,
        # before any in-flight registration.
        loop = asyncio.get_running_loop()
        try:
            pool_future = self.pool.try_submit(self.runner, request)
        except ServiceSaturated:
            self.metrics.inc("service_rejected_saturated")
            self._admit(request, digest, "saturated")
            raise
        self.metrics.inc("service_campaigns_executed")
        timeline_id = self._admit(request, digest, "miss")
        shared = asyncio.wrap_future(pool_future, loop=loop)
        self._inflight[digest] = shared
        shared.add_done_callback(lambda fut: self._settle(digest, fut))
        return self._await_shared(shared, "miss", digest, deadline_s,
                                  timeline_id)

    def _settle(self, digest: str, future: asyncio.Future) -> None:
        """Completion hook: deregister, merge counters, cache successes.

        Runner work counters are folded into the registry here — once per
        *execution*, no matter how many waiters shared the future.
        """
        self._inflight.pop(digest, None)
        if future.cancelled() or future.exception() is not None:
            return
        body, counters = _split_result(future.result())
        for name, value in sorted(counters.items()):
            self.metrics.inc(name.replace(".", "_"), value)
        self.cache.put(digest, body)

    async def _await_shared(
        self,
        shared: asyncio.Future,
        status: str,
        digest: str,
        deadline_s: float | None,
        timeline_id: int | None = None,
    ) -> BrokerReply:
        """Wait on the shared future, shielded so timeouts don't cancel it."""
        try:
            result = await asyncio.wait_for(asyncio.shield(shared), deadline_s)
        except asyncio.TimeoutError:
            self.metrics.inc("service_deadline_expired")
            raise DeadlineExceeded(
                f"request {digest} missed its {deadline_s}s deadline "
                "(the shared execution continues and will populate the cache)"
            ) from None
        body, _ = _split_result(result)
        return BrokerReply(body, status, digest, timeline_id)


def _split_result(result: Any) -> tuple[bytes, dict[str, int | float]]:
    """Normalize a runner result to ``(body, counters)``."""
    if isinstance(result, tuple):
        body, counters = result
        return body, counters
    return result, {}


async def _immediate(reply: BrokerReply) -> BrokerReply:
    """Wrap an already-available reply in an awaitable."""
    return reply
