"""Bounded worker pool for the fleet service — backpressure at admission.

Wraps the exact executor construction the campaign engine uses
(:func:`repro.sim.parallel.make_executor`) with one addition a long-lived
service needs: a hard bound on admitted-but-unfinished work.  Past the
bound, :meth:`WorkerPool.try_submit` raises
:class:`~repro.errors.ServiceSaturated` instead of queueing — the server
turns that into HTTP 429 so load sheds at the edge rather than growing an
unbounded backlog of multi-second campaigns.

The default backend is ``"thread"``: campaign physics is NumPy-heavy and
releases the GIL, service results must flow back to the asyncio loop
cheaply, and each admitted campaign may still fan out its *own* process
workers via ``ParallelConfig`` — the pool bounds admissions, not the
per-campaign parallelism.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor, Future
from typing import Any, Callable

from ..config import require
from ..errors import ServiceSaturated
from ..sim.parallel import make_executor

__all__ = ["WorkerPool"]


class WorkerPool:
    """A :mod:`concurrent.futures` pool with a bounded admission count.

    Parameters
    ----------
    workers:
        Executor worker count (concurrent campaigns actually running).
    max_pending:
        Hard bound on admitted-but-unfinished tasks, *including* the ones
        currently running.  ``try_submit`` beyond this raises
        :class:`~repro.errors.ServiceSaturated`.
    backend:
        ``"thread"`` (default, see module docstring) or ``"process"``.
    """

    def __init__(
        self,
        workers: int = 2,
        max_pending: int = 8,
        backend: str = "thread",
    ) -> None:
        require(workers >= 1, f"workers must be >= 1, got {workers}")
        require(
            max_pending >= workers,
            f"max_pending ({max_pending}) must be >= workers ({workers})",
        )
        self.workers = workers
        self.max_pending = max_pending
        self.backend = backend
        self._executor: Executor = make_executor(backend, workers)
        self._lock = threading.Lock()
        self._pending = 0

    @property
    def pending(self) -> int:
        """Admitted-but-unfinished task count (running + queued)."""
        with self._lock:
            return self._pending

    def try_submit(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Future:
        """Submit work if the pool has room, else raise ``ServiceSaturated``.

        The pending count is decremented by a done-callback, so slots free
        exactly when tasks finish regardless of which thread observes it.
        """
        with self._lock:
            if self._pending >= self.max_pending:
                raise ServiceSaturated(
                    f"worker pool saturated: {self._pending} pending >= "
                    f"max_pending {self.max_pending}"
                )
            self._pending += 1
        try:
            future = self._executor.submit(fn, *args, **kwargs)
        except BaseException:
            with self._lock:
                self._pending -= 1
            raise
        future.add_done_callback(self._release)
        return future

    def _release(self, _future: Future) -> None:
        """Done-callback: return the finished task's admission slot."""
        with self._lock:
            self._pending -= 1

    def shutdown(self, wait: bool = True) -> None:
        """Shut the underlying executor down (idempotent)."""
        self._executor.shutdown(wait=wait, cancel_futures=True)
