"""Operator workflow: continuous fleet-health monitoring with typed events.

The paper's characterization is offline: run a campaign, then analyze the
CSV.  Its operational punchline (Section VII) — "identify and perform
targeted maintenance on problematic nodes" — wants the *online* form: a
monitor that watches the fleet as it runs and raises events the moment a
GPU degrades, with enough hysteresis that one noisy run never pages
anyone.  This example is that monitor, aimed at a fleet with two known
plants:

1. build a 48-GPU fleet with a deliberately defective pair — one
   SICK_SLOW die (chronically slow silicon) and one HOT_RUNNER (degraded
   thermal interface),
2. run a week-long SGEMM campaign under a ``FleetMonitor`` — the
   measurement CSV stays byte-identical to an unmonitored run,
3. let the streaming health tracker grade every GPU and emit typed
   events (THERMAL_RUNAWAY, CHRONIC_SLOW_OUTLIER, ...),
4. archive the graded report (JSON), the event log (JSONL), and a
   Prometheus-style metrics exposition for a real scrape endpoint.

Run:  python examples/fleet_health_monitoring.py
"""

from pathlib import Path

from repro import api
from repro.cluster.cluster import Cluster, ForcedDefect
from repro.cluster.cooling import AirCooling
from repro.cluster.topology import cabinet_topology
from repro.gpu.defects import DefectConfig, DefectType
from repro.gpu.silicon import SiliconConfig
from repro.gpu.specs import V100

SICK_GPU = "c001-002-1"  # chronically slow silicon
HOT_GPU = "c003-001-2"   # degraded thermal interface


def build_fleet() -> Cluster:
    """48 V100s in 12 nodes, healthy except the two planted defects."""
    return Cluster(
        name="Sickbay",
        spec=V100,
        topology=cabinet_topology("Sickbay", n_nodes=12, gpus_per_node=4),
        cooling=AirCooling(),
        silicon_config=SiliconConfig(),
        defect_config=DefectConfig.none(),
        forced_defects=(
            ForcedDefect("gpu", SICK_GPU, DefectType.SICK_SLOW, severity=0.70),
            ForcedDefect("gpu", HOT_GPU, DefectType.HOT_RUNNER, severity=2.5),
        ),
        seed=7,
    )


def main() -> None:
    cluster = build_fleet()
    print(f"Monitoring {cluster.name} ({cluster.n_gpus} GPUs) with planted "
          f"defects on {SICK_GPU} (sick-slow) and {HOT_GPU} (hot-runner)...")

    result = api.monitor_fleet(
        cluster=cluster,
        workload=api.load_workload("sgemm"),
        config=api.CampaignConfig(days=7, runs_per_day=2),
    )

    print()
    print(result.report.render())

    print("\nHealth event stream (first occurrence per GPU/kind):")
    seen = set()
    for event in result.events:
        key = (event.gpu_label, event.kind)
        if key in seen:
            continue
        seen.add(key)
        planted = ""
        if event.gpu_label == SICK_GPU:
            planted = " <- planted sick-slow"
        elif event.gpu_label == HOT_GPU:
            planted = " <- planted hot-runner"
        print(f"  day {event.day} run {event.run_index}: "
              f"{event.kind.value:<21} {event.gpu_label}{planted}")

    report_path = Path("sickbay_health.json")
    result.report.write_json(report_path)
    events_path = Path("sickbay_events.jsonl")
    api.write_health_events(result.events, events_path)
    metrics_path = Path("sickbay_metrics.prom")
    metrics_path.write_text(api.render_prometheus(result.monitor))

    registry = result.monitor.registry
    print(f"\nGraded report in {report_path}, event log in {events_path}, "
          f"{len(registry.metric_names())} metrics exposed in {metrics_path} "
          f"({registry.counter('monitor_gpu_samples_total')} GPU samples "
          f"across {result.monitor.n_runs} runs).")


if __name__ == "__main__":
    main()
