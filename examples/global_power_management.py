"""Global power management: the system-design mitigation of Section VII.

Today every GPU polices its own TDP, so a facility budget of n x TDP still
buys an 8-9% performance spread.  A global manager instead holds the whole
fleet at one clock and gives each die exactly the power *it* needs — fast
silicon donates headroom to slow silicon.  This demo sweeps the facility
budget and compares the two policies on Longhorn.

Run:  python examples/global_power_management.py
"""

import numpy as np

from repro import api
from repro.mitigation import (
    allocate_equal_frequency,
    allocate_uniform,
    evaluate_allocation,
)


def main() -> None:
    cluster = api.load_preset("longhorn", seed=7)
    fleet = cluster.fleet
    workload = api.load_workload("sgemm")
    print(f"Fleet: {cluster.name}, {fleet.n} x {fleet.spec.name} "
          f"(TDP {fleet.spec.tdp_w:.0f} W)\n")

    header = (f"{'budget/GPU':>11} | {'uniform caps':^24} | "
              f"{'global manager':^31}")
    sub = (f"{'':>11} | {'variation':>10} {'median':>10}   | "
           f"{'variation':>10} {'median':>10} {'target':>8}")
    print(header)
    print(sub)
    print("-" * len(sub))

    for per_gpu in (300.0, 290.0, 280.0, 260.0, 240.0):
        budget = fleet.n * per_gpu
        uniform = evaluate_allocation(
            fleet, workload, allocate_uniform(fleet, budget),
            rng=np.random.default_rng(0),
        )
        alloc = allocate_equal_frequency(fleet, workload, budget)
        managed = evaluate_allocation(
            fleet, workload, alloc, rng=np.random.default_rng(0)
        )
        print(f"{per_gpu:>9.0f} W | {uniform['variation']:>9.1%} "
              f"{uniform['median_ms']:>8.0f} ms | "
              f"{managed['variation']:>9.1%} {managed['median_ms']:>8.0f} ms "
              f"{alloc.target_frequency_mhz:>5.0f} MHz")

    print("\nBelow n x TDP, the global manager removes most of the")
    print("performance variability at the same median runtime and the same")
    print("facility power — the co-design opportunity Section VII calls for.")


if __name__ == "__main__":
    main()
