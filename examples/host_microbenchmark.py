"""Run the analysis suite on *real* measurements from this machine.

No GPUs required: the host harness runs genuine NumPy/SciPy kernels (dense
GEMM, irregular SpMV, STREAM triad), times them with perf counters, and
feeds the identical analysis pipeline the simulated campaigns use — the
zero-hardware analogue of the paper's artifact.

Run:  python examples/host_microbenchmark.py
"""

import numpy as np

from repro.core import metric_boxstats, per_gpu_repeatability
from repro.hostbench import KERNELS, HostBenchConfig, run_host_benchmark
from repro.telemetry.sample import METRIC_PERFORMANCE


def main() -> None:
    config = HostBenchConfig(blocks=6, reps_per_block=9, warmup_reps=3)
    print(f"Host microbenchmarks: {config.blocks} blocks x "
          f"{config.reps_per_block} reps (+{config.warmup_reps} warmup)\n")

    header = (f"{'kernel':<8} {'median':>10} {'variation':>10} "
              f"{'repeat var':>11} {'GFLOP/s':>9} {'GB/s':>8}")
    print(header)
    print("-" * len(header))

    for name in sorted(KERNELS):
        dataset = run_host_benchmark(name, config)
        stats = metric_boxstats(dataset, METRIC_PERFORMANCE)
        repeat = per_gpu_repeatability(dataset)
        print(
            f"{name:<8} {stats.median:>8.2f} ms {stats.variation:>9.1%} "
            f"{np.median(repeat['repeat_variation']):>10.1%} "
            f"{np.median(dataset['achieved_gflops']):>9.2f} "
            f"{np.median(dataset['achieved_gbs']):>8.2f}"
        )

    print("\nEven on one host, repeated identical kernels vary — the same")
    print("statistics that characterize a 27,648-GPU fleet apply directly")
    print("to any measurement table with (device, run, duration) columns.")


if __name__ == "__main__":
    main()
