"""Power-limit study (Section VI-B / Fig. 22) on the CloudLab testbed.

With administrative access, sweep the GPU power limit from 300 W down to
100 W and watch both runtime and *variability* grow — the paper's evidence
that DVFS is less optimized at low budgets, and a preview of life under the
power-constrained exascale budgets of the future.

Run:  python examples/power_limit_study.py
"""

import numpy as np

from repro import api
from repro.sim import simulate_run


def main() -> None:
    cluster = api.load_preset("cloudlab", seed=7)
    assert cluster.admin_access, "power limits need root (Section VI-B)"
    print(f"Sweeping power limits on {cluster.name} "
          f"({cluster.n_gpus} x {cluster.spec.name})\n")

    header = (f"{'limit':>7} {'median':>10} {'variation':>10} "
              f"{'outliers':>9} {'median freq':>12}")
    print(header)
    print("-" * len(header))

    reference = None
    for limit in (300.0, 250.0, 200.0, 150.0, 100.0):
        perf = []
        freq = []
        for run_index in range(8):
            result = simulate_run(
                cluster, api.load_workload("sgemm"), day=0,
                run_index=run_index, power_limit_w=limit,
            )
            perf.append(result.performance_ms)
            freq.append(result.true_frequency_mhz)
        perf = np.concatenate(perf)
        stats = api.BoxStats.from_values(perf)
        if reference is None:
            reference = stats.median
        print(f"{limit:>5.0f} W {stats.median:>8.0f} ms "
              f"{stats.variation:>9.1%} {stats.n_outliers:>9d} "
              f"{np.median(np.concatenate(freq)):>9.0f} MHz")

    print("\nAs the cap drops, the voltage/frequency curve flattens: the")
    print("same silicon spread costs proportionally more frequency, so")
    print("variability roughly doubles between 300 W and 150 W (Fig. 22).")


if __name__ == "__main__":
    main()
