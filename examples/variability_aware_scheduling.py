"""Variability-aware placement: the mitigation the paper proposes.

Section VII: classify applications from profiler counters and place
compute-intense work on low-variability nodes while memory-bound work
absorbs the bad ones.  This example quantifies the user impact first (how
often a naive scheduler hands you a slow GPU) and then builds the plan.

Run:  python examples/variability_aware_scheduling.py
"""

from repro import api


def main() -> None:
    cluster = api.load_preset("longhorn", seed=7)
    print(f"Profiling {cluster.name} with SGEMM...")
    dataset = api.run_campaign(
        cluster=cluster,
        workload=api.load_workload("sgemm"),
        config=api.CampaignConfig(days=3, runs_per_day=2),
    )

    print("\n-- User impact of naive scheduling (Section VII) --")
    for n_gpus in (1, 2, 4):
        prob = api.slow_assignment_probability(dataset=dataset, n_gpus=n_gpus)
        print(f"  {n_gpus}-GPU job: {prob:.0%} chance of drawing a GPU "
              f">6% slower than the fastest")

    print("\n-- Application classification (from profiler counters) --")
    workloads = [api.load_workload(name) for name in
                 ("sgemm", "resnet50", "bert", "lammps", "pagerank")]
    for wl in workloads:
        print(f"  {wl.name:<18} FU={wl.fu_utilization:>4.1f}/10  "
              f"stalls={wl.mem_stall_frac:.0%}  "
              f"-> {api.classify_workload(wl).value}")

    print("\n-- Node variability scores (worst member / fleet median) --")
    scores = api.node_variability_scores(dataset=dataset)
    ranked = sorted(scores.items(), key=lambda kv: kv[1])
    for node, score in ranked[:3]:
        print(f"  best : {node:<14} {score:.3f}")
    for node, score in ranked[-3:]:
        print(f"  worst: {node:<14} {score:.3f}")

    print("\n-- Placement plan --")
    plan = api.plan_placements(dataset=dataset, workloads=workloads)
    for name, node in plan.assignments.items():
        print(f"  {name:<18} -> {node:<14} "
              f"expected {plan.expected_slowdowns[name]:.3f}x "
              f"(random placement: {plan.baseline_slowdowns[name]:.3f}x)")

    saved = sum(
        plan.baseline_slowdowns[n] - plan.expected_slowdowns[n]
        for n in plan.assignments
    )
    print(f"\nAggregate expected slowdown avoided: {saved:.3f}x-equivalents "
          f"across {len(workloads)} workloads")


if __name__ == "__main__":
    main()
