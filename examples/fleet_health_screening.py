"""Operator workflow: periodic fleet screening and maintenance triage.

Section VII: the paper's benchmarking "helped TACC's operators identify and
perform targeted maintenance on problematic nodes" and motivates periodic
automated screening.  This example is that tool:

1. run a short SGEMM screening campaign plus an ML canary (ResNet),
2. flag outlier GPUs per metric,
3. cross-reference the two applications — GPUs bad in *both* are hardware
   problems, not software flukes,
4. emit a ranked maintenance ticket list and archive the raw measurements.

Run:  python examples/fleet_health_screening.py
"""

from pathlib import Path

from repro import api
from repro.core import (
    flag_outlier_gpus,
    node_outlier_counts,
    persistent_outliers,
    worst_performers,
)
from repro.telemetry import write_csv
from repro.telemetry.sample import METRIC_PERFORMANCE, METRIC_POWER


def main() -> None:
    cluster = api.load_preset("longhorn", seed=7)
    config = api.CampaignConfig(days=3, runs_per_day=2)
    manifest = api.Manifest()

    print(f"Screening {cluster.name} ({cluster.n_gpus} GPUs)...")
    sgemm_data = api.run_campaign(
        cluster=cluster, workload=api.load_workload("sgemm"),
        config=config, manifest=manifest,
    )
    resnet_data = api.run_campaign(
        cluster=cluster, workload=api.load_workload("resnet50"),
        config=config, manifest=manifest,
    )

    sgemm_report = flag_outlier_gpus(sgemm_data, METRIC_PERFORMANCE)
    resnet_report = flag_outlier_gpus(resnet_data, METRIC_PERFORMANCE)
    power_report = flag_outlier_gpus(sgemm_data, METRIC_POWER)

    print(f"\nSGEMM performance outliers : {sgemm_report.n_outlier_gpus} GPUs "
          f"on {len(sgemm_report.node_labels)} nodes")
    print(f"ResNet performance outliers: {resnet_report.n_outlier_gpus} GPUs")
    print(f"Power outliers             : {power_report.n_outlier_gpus} GPUs")

    confirmed = persistent_outliers([sgemm_report, resnet_report])
    print(f"\nConfirmed (flagged by both applications): "
          f"{sorted(confirmed) or 'none'}")

    print("\nPer-node outlier census (any metric):")
    for node, metrics in list(node_outlier_counts(sgemm_data).items())[:8]:
        detail = ", ".join(f"{m.split('_')[0]}:{c}" for m, c in metrics.items())
        print(f"  {node:<14} {detail}")

    print("\nMaintenance tickets (worst SGEMM performers):")
    for rank, (gpu, median_ms) in enumerate(
        worst_performers(sgemm_data, k=5), start=1
    ):
        tag = " <- confirmed by ML canary" if gpu in confirmed else ""
        print(f"  #{rank} {gpu:<16} median {median_ms:.0f} ms{tag}")

    out = Path("screening_longhorn.csv.gz")
    write_csv(sgemm_data, out)
    audit = Path("screening_longhorn.manifest.json")
    manifest.write(audit)
    print(f"\nRaw measurements archived to {out} "
          f"({sgemm_data.n_rows} rows); campaign audit manifest "
          f"(config digest, RNG roots, result digest) in {audit}")


if __name__ == "__main__":
    main()
