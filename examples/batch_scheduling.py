"""Batch-queue scheduling on a variable fleet: policy shoot-out.

Section VII end to end: the same seeded job trace (Poisson arrivals,
1/2/4/8-GPU gangs over the five paper applications) runs through the
discrete-event queue engine under the naive random policy and under
variability-aware placement.  Because every job's intrinsic draws are keyed
by job id, the two runs differ *only* in where jobs land — the comparison
isolates the placement decision.

Run:  python examples/batch_scheduling.py
"""

from repro import api


def main() -> None:
    cluster = api.load_preset("longhorn", seed=2022, scale=0.5)
    trace = api.TraceConfig(n_jobs=80, arrival_rate_per_hour=600.0, seed=11)
    print(f"Scheduling {trace.n_jobs} jobs on {cluster.name} "
          f"({cluster.topology.n_gpus} GPUs)...\n")

    results = {}
    for policy in ("fifo", "backfill", "variability-aware"):
        results[policy] = api.schedule(
            cluster=cluster,
            policy=policy,
            trace=trace,
            profile_config=api.CampaignConfig(days=2),
        )
        print(results[policy].report.render())
        print()

    naive = results["fifo"].report.metrics
    aware = results["variability-aware"].report.metrics
    print("-- naive vs variability-aware --")
    print(f"  p95 JCT          : {naive['jct_p95_s']:8.1f}s -> "
          f"{aware['jct_p95_s']:8.1f}s")
    print(f"  slow assignments : {naive['slow_assignment_rate']:8.3f} -> "
          f"{aware['slow_assignment_rate']:8.3f}")
    print(f"  utilization      : {naive['utilization']:8.3f} -> "
          f"{aware['utilization']:8.3f}")

    # Same seed + same policy = byte-identical outputs; prove it.
    again = api.schedule(cluster=cluster, policy="fifo", trace=trace)
    assert again.report.to_json() == results["fifo"].report.to_json()
    print("\nDeterminism check: repeated fifo run is byte-identical.")


if __name__ == "__main__":
    main()
