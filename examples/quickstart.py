"""Quickstart: characterize a GPU cluster's variability in ~20 lines.

Builds the paper's Longhorn cluster (416 air-cooled V100s), runs a one-week
SGEMM measurement campaign, and prints the full variability report — fleet
box statistics, metric correlations, outlier nodes, user-impact odds, and
the statistical-coverage check.

Run:  python examples/quickstart.py
"""

from repro import api


def main() -> None:
    cluster = api.load_preset("longhorn", seed=7)
    print(f"Built {cluster.name}: {cluster.n_gpus} x {cluster.spec.name}, "
          f"{cluster.cooling.kind}-cooled\n")

    result = api.characterize(
        cluster=cluster,
        workload=api.load_workload("sgemm"),
        config=api.CampaignConfig(days=7, runs_per_day=2),
    )
    report = result.report

    print(report.render())
    print()
    print(f"Headline: {report.performance_variation:.1%} performance "
          f"variation across identical, identically-configured GPUs — "
          f"the paper measured 9% on the real Longhorn.")


if __name__ == "__main__":
    main()
