"""DVFS steady-state solver: ladder search vs dense grid vs fleet batch.

The campaign hot path is ``DvfsController.solve_steady``; the ladder
search must beat the dense (n, k) scan by at least ``MIN_SOLVER_SPEEDUP``x
on a Summit-scale fleet (27,648 GPUs x 187 p-states), and the fleet-wide
vectorized solve must beat the ladder by ``MIN_FLEET_SPEEDUP``x on a
full-Summit campaign day — all *while producing the bit-identical*
:class:`SteadyOperatingPoint`.  The equality assertions run
unconditionally; the timing assertions are skipped under
``REPRO_BENCH_CHECK_ONLY=1`` (the CI perf-smoke job, which runs on noisy
shared runners).

Timings are also written to ``BENCH_solver.json`` so the solver's perf
trajectory is machine-readable across commits.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from _bench_util import emit
from repro.cluster import longhorn
from repro.gpu.dvfs import SOLVER_FLEET, SOLVER_GRID, SOLVER_LADDER
from repro.sim import CampaignConfig, run_campaign
from repro.workloads import sgemm

#: Skip timing assertions (equality always asserts) — for CI smoke runs.
CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY") == "1"

#: Acceptance floor for the micro benchmark (dense / ladder wall clock).
MIN_SOLVER_SPEEDUP = 5.0

#: Acceptance floor for the end-to-end serial campaign comparison.
MIN_CAMPAIGN_SPEEDUP = 1.5

#: Acceptance floor for the fleet-wide vectorized solve over the ladder
#: search on a full-Summit campaign day.
MIN_FLEET_SPEEDUP = 3.0

OUTPUT_PATH = pathlib.Path("BENCH_solver.json")

#: SGEMM-like stationary operating point for the micro benchmark.
ACTIVITY, DRAM_UTIL = 1.0, 0.35


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _write_json(payload: dict) -> None:
    existing = {}
    if OUTPUT_PATH.exists():
        existing = json.loads(OUTPUT_PATH.read_text())
    existing.update(payload)
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_solve_steady_ladder_vs_dense_summit(summit_cluster):
    fleet = summit_cluster.fleet
    ctl = fleet.controller
    eff = fleet.throughput_efficiency()
    cap = fleet.power_cap_w()
    f_cap = fleet.frequency_cap_mhz()
    kwargs = dict(power_cap_w=cap, f_cap_mhz=f_cap)

    def solve(solver):
        return ctl.solve_steady(ACTIVITY, DRAM_UTIL, eff,
                                solver=solver, **kwargs)

    # Warm both paths (allocates workspaces, float32 parameter caches).
    op_ladder, op_grid = solve(SOLVER_LADDER), solve(SOLVER_GRID)
    for field in ("pstate_index", "f_effective_mhz", "f_reported_mhz",
                  "power_w", "temperature_c", "power_capped",
                  "thermally_capped"):
        assert np.array_equal(
            getattr(op_ladder, field), getattr(op_grid, field)
        ), f"solvers disagree on {field}"

    ctl.stats = type(ctl.stats)()  # count the timed solves only
    ladder_s = _best_of(lambda: solve(SOLVER_LADDER), repeats=3)
    stats = ctl.stats.copy()
    grid_s = _best_of(lambda: solve(SOLVER_GRID), repeats=3)
    speedup = grid_s / ladder_s

    emit(None, "solve_steady: ladder vs dense grid (Summit, 27648 GPUs)", [
        ("dense grid best-of-3", "-", f"{grid_s * 1e3:.1f} ms"),
        ("ladder best-of-3", "-", f"{ladder_s * 1e3:.1f} ms"),
        ("speedup", f">= {MIN_SOLVER_SPEEDUP:.0f}x", f"{speedup:.1f}x"),
        ("dense cells avoided", "-",
         f"{stats.dense_fraction_avoided:.1%}"),
    ])
    _write_json({"solve_steady_summit": {
        "n_gpus": fleet.n,
        "n_pstates": int(fleet.spec.n_pstates),
        "grid_s": grid_s,
        "ladder_s": ladder_s,
        "speedup": speedup,
        "dense_fraction_avoided": stats.dense_fraction_avoided,
        "check_only": CHECK_ONLY,
    }})

    if not CHECK_ONLY:
        assert speedup >= MIN_SOLVER_SPEEDUP, (
            f"ladder solver only {speedup:.1f}x faster than the dense scan "
            f"(floor {MIN_SOLVER_SPEEDUP:.0f}x)"
        )


def test_solve_steady_fleet_vs_ladder_campaign_day(summit_cluster):
    # One campaign day at full Summit scale: every run is a fleet-wide
    # solve at a slightly different operating point (facility drift,
    # per-run activity jitter), which is exactly the workload the
    # fleet-vectorized solver batches.
    fleet = summit_cluster.fleet
    ctl = fleet.controller
    eff = fleet.throughput_efficiency()
    cap = fleet.power_cap_w()
    f_cap = fleet.frequency_cap_mhz()
    rng = np.random.default_rng(7)
    runs = [
        dict(activity=float(a), dram=float(d))
        for a, d in zip(rng.uniform(0.92, 1.0, 4), rng.uniform(0.3, 0.4, 4))
    ]

    def solve_day(solver):
        return [
            ctl.solve_steady(run["activity"], run["dram"], eff,
                             power_cap_w=cap, f_cap_mhz=f_cap,
                             solver=solver)
            for run in runs
        ]

    # Equality asserts unconditionally (and warms both paths' caches).
    for op_l, op_f in zip(solve_day(SOLVER_LADDER), solve_day(SOLVER_FLEET)):
        for field in ("pstate_index", "f_effective_mhz", "f_reported_mhz",
                      "power_w", "temperature_c", "power_capped",
                      "thermally_capped"):
            assert np.array_equal(
                getattr(op_l, field), getattr(op_f, field)
            ), f"fleet solver disagrees with ladder on {field}"

    ctl.stats = type(ctl.stats)()  # count the timed solves only
    ladder_s = _best_of(lambda: solve_day(SOLVER_LADDER), repeats=3)
    fleet_s = _best_of(lambda: solve_day(SOLVER_FLEET), repeats=3)
    stats = ctl.stats.copy()
    speedup = ladder_s / fleet_s

    emit(None, "solve_steady: fleet vs ladder (Summit campaign day)", [
        ("runs in the day", "-", f"{len(runs)}"),
        ("ladder best-of-3", "-", f"{ladder_s * 1e3:.1f} ms"),
        ("fleet best-of-3", "-", f"{fleet_s * 1e3:.1f} ms"),
        ("speedup", f">= {MIN_FLEET_SPEEDUP:.0f}x", f"{speedup:.2f}x"),
    ])
    _write_json({"fleet_campaign_day_summit": {
        "n_gpus": fleet.n,
        "n_pstates": int(fleet.spec.n_pstates),
        "runs_per_day": len(runs),
        "ladder_s": ladder_s,
        "fleet_s": fleet_s,
        "speedup": speedup,
        "check_only": CHECK_ONLY,
    }})

    if not CHECK_ONLY:
        assert speedup >= MIN_FLEET_SPEEDUP, (
            f"fleet solver only {speedup:.2f}x faster than the ladder "
            f"search (floor {MIN_FLEET_SPEEDUP:.0f}x)"
        )


def test_campaign_end_to_end_serial_speedup():
    # Fresh clusters per solver: the per-(day, shard) fleet cache pins each
    # fleet's controller to the solver default active when it was built.
    config = CampaignConfig(days=3, runs_per_day=2)

    def run_with(solver):
        os.environ["REPRO_DVFS_SOLVER"] = solver
        try:
            cluster = longhorn(seed=2022)
            started = time.perf_counter()
            dataset = run_campaign(cluster, sgemm(), config, workers=1)
            return dataset, time.perf_counter() - started
        finally:
            del os.environ["REPRO_DVFS_SOLVER"]

    grid_ds, grid_s = run_with(SOLVER_GRID)
    ladder_ds, ladder_s = run_with(SOLVER_LADDER)
    speedup = grid_s / ladder_s

    assert grid_ds.column_names == ladder_ds.column_names
    for name in grid_ds.column_names:
        assert np.array_equal(grid_ds[name], ladder_ds[name]), name

    emit(None, "Serial campaign: ladder vs dense solver (Longhorn, 3d x 2)", [
        ("dense-solver wall clock", "-", f"{grid_s:.2f} s"),
        ("ladder wall clock", "-", f"{ladder_s:.2f} s"),
        ("speedup", f">= {MIN_CAMPAIGN_SPEEDUP:.1f}x", f"{speedup:.2f}x"),
    ])
    _write_json({"campaign_serial_longhorn": {
        "days": config.days,
        "runs_per_day": config.runs_per_day,
        "grid_s": grid_s,
        "ladder_s": ladder_s,
        "speedup": speedup,
        "check_only": CHECK_ONLY,
    }})

    if not CHECK_ONLY:
        assert speedup >= MIN_CAMPAIGN_SPEEDUP, (
            f"end-to-end campaign speedup {speedup:.2f}x below the "
            f"{MIN_CAMPAIGN_SPEEDUP:.1f}x floor"
        )
