"""Fleet service latency and coalescing economics under seeded load.

Self-hosts the service (ephemeral port, real campaign runner) and drives
the seeded load generator at a duplicate-heavy mix.  Two properties are
asserted *unconditionally* (they are correctness, not speed):

- coalescing economics — the server executes at least 2x fewer campaigns
  than the number of requests it answered, and
- parity — the service's characterize CSV is byte-identical to the
  offline facade's for the same (preset, day, seed).

The latency percentiles (p50/p95/p99) carry no assertion floor — shared
CI runners make wall-clock promises meaningless — but they are printed
and written to ``BENCH_service.json`` so the service's latency
trajectory is machine-readable across commits.  ``REPRO_BENCH_CHECK_ONLY=1``
additionally skips the saturation sweep to keep the CI smoke short.
"""

from __future__ import annotations

import json
import os
import pathlib

from _bench_util import emit
from repro import api
from repro.loadgen import LoadGenConfig, run_selfhosted, validate_latency_report
from repro.service import decode_response, default_runner
from repro.telemetry.io import dataset_to_csv_text

#: Skip the saturation sweep (economics and parity always assert).
CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY") == "1"

#: Acceptance floor: campaigns executed * 2 <= requests answered.
MIN_COALESCING_FACTOR = 2.0

OUTPUT_PATH = pathlib.Path("BENCH_service.json")


def _write_json(payload: dict) -> None:
    existing = {}
    if OUTPUT_PATH.exists():
        existing = json.loads(OUTPUT_PATH.read_text())
    existing.update(payload)
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_service_latency_under_duplicate_heavy_load():
    config = LoadGenConfig(
        mode="closed",
        n_requests=24,
        concurrency=6,
        seed=0,
        duplicate_fraction=0.75,
        distinct=3,
        cluster="cloudlab",
        scale=0.5,
        days=1,
    )
    sweep = () if CHECK_ONLY else (1, 2, 4, 8)
    report = run_selfhosted(config, sweep_concurrencies=sweep)
    validate_latency_report(report)

    assert report["ok_requests"] == config.n_requests, (
        f"only {report['ok_requests']}/{config.n_requests} requests "
        f"succeeded: {report['status_counts']}"
    )
    campaigns = report["server"]["service_campaigns_executed"]
    factor = report["ok_requests"] / max(campaigns, 1)
    latency = report["latency_ms"]
    coalescing = report["coalescing"]

    emit(None, "Fleet service: duplicate-heavy closed loop (CloudLab 0.5x)", [
        ("requests answered", "-", f"{report['ok_requests']}"),
        ("campaigns executed", "-", f"{campaigns}"),
        ("coalescing factor", f">= {MIN_COALESCING_FACTOR:.0f}x",
         f"{factor:.1f}x"),
        ("duplicate hit rate", "-", f"{coalescing['hit_rate']:.1%}"),
        ("p50 latency", "-", f"{latency['p50']:.1f} ms"),
        ("p95 latency", "-", f"{latency['p95']:.1f} ms"),
        ("p99 latency", "-", f"{latency['p99']:.1f} ms"),
        ("throughput", "-", f"{report['throughput_rps']:.1f} req/s"),
    ])
    _write_json({"service_duplicate_heavy_cloudlab": {
        "n_requests": report["n_requests"],
        "ok_requests": report["ok_requests"],
        "campaigns_executed": campaigns,
        "coalescing_factor": factor,
        "hit_rate": coalescing["hit_rate"],
        "latency_ms": latency,
        "throughput_rps": report["throughput_rps"],
        "saturation": report["saturation"],
        "check_only": CHECK_ONLY,
    }})

    # Correctness, not speed: asserted even under CHECK_ONLY.
    assert campaigns * MIN_COALESCING_FACTOR <= report["ok_requests"], (
        f"coalescing executed {campaigns} campaigns for "
        f"{report['ok_requests']} requests — below the "
        f"{MIN_COALESCING_FACTOR:.0f}x floor"
    )
    assert coalescing["hit_rate"] > 0.0


def test_service_csv_byte_identical_to_offline_facade():
    request = api.CharacterizeRequest(
        cluster="cloudlab", scale=0.5, days=1, seed=3
    )
    served = decode_response(default_runner(request))
    offline = api.characterize(request=request)
    identical = served["csv"].encode("utf-8") == dataset_to_csv_text(
        offline.dataset
    ).encode("utf-8")

    emit(None, "Service vs offline facade: characterize CSV parity", [
        ("rows served", "-", f"{served['n_rows']}"),
        ("byte-identical CSV", "yes", "yes" if identical else "NO"),
    ])
    _write_json({"service_offline_parity_cloudlab": {
        "n_rows": served["n_rows"],
        "byte_identical": identical,
        "check_only": CHECK_ONLY,
    }})
    assert identical, "service CSV diverged from the offline facade"
