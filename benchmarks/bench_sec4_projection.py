"""Section IV-D: scaled-normal projection of Longhorn to Summit size.

Paper: fitting a normal to Longhorn's performance and projecting to a
Summit-sized sample predicts 9.4% variability; actual Summit measurements
show 8% — suggesting cluster size affects the observed severity.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import metric_boxstats, project_variation
from repro.telemetry.sample import METRIC_PERFORMANCE


def test_sec4_longhorn_to_summit_projection(
    benchmark, longhorn_sgemm, summit_sgemm, summit_cluster
):
    med = longhorn_sgemm.per_gpu_median(METRIC_PERFORMANCE)
    values = med[METRIC_PERFORMANCE]

    projected = benchmark(
        project_variation, values, summit_cluster.n_gpus
    )
    measured_longhorn = metric_boxstats(
        longhorn_sgemm, METRIC_PERFORMANCE
    ).variation
    measured_summit = metric_boxstats(
        summit_sgemm, METRIC_PERFORMANCE
    ).variation

    rows = [
        ("Longhorn measured variation", "9%", pct(measured_longhorn)),
        ("projected at Summit size (27648)", "9.4%", pct(projected)),
        ("Summit measured variation", "8%", pct(measured_summit)),
    ]
    emit(None, "Sec. IV-D: scaled-normal projection", rows)

    # The projection exceeds the small-cluster measurement (larger samples
    # reach further into the tails)...
    assert projected > measured_longhorn * 0.98
    # ...and stays in the same band as the real Summit measurement.
    assert 0.5 * measured_summit < projected < 2.0 * measured_summit


def test_sec4_montecarlo_agrees(benchmark, longhorn_sgemm):
    values = longhorn_sgemm.per_gpu_median(
        METRIC_PERFORMANCE
    )[METRIC_PERFORMANCE]

    analytic = project_variation(values, 27648, method="analytic")
    mc = benchmark.pedantic(
        project_variation, args=(values, 27648),
        kwargs={"method": "montecarlo", "mc_trials": 60,
                "rng": np.random.default_rng(0)},
        rounds=1, iterations=1,
    )
    emit(None, "Sec. IV-D: projection methods",
         [("analytic", "--", pct(analytic)), ("Monte Carlo", "--", pct(mc))])
    assert mc == __import__("pytest").approx(analytic, rel=0.2)
