"""Fig. 14: multi-GPU ResNet-50 on Longhorn.

Paper: the largest performance variation of the study (22%) with frequency
pinned at 1530 MHz for most nodes — plus enormous power variability (104%)
from the varied kernel mix.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import metric_boxstats
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
)


def test_fig14_resnet_multigpu(benchmark, longhorn_resnet):
    # ML variability is run-level (Section V-A), matching the paper's
    # iteration-duration box plots.
    perf = metric_boxstats(longhorn_resnet, METRIC_PERFORMANCE,
                           per_gpu_median=False)
    power = metric_boxstats(longhorn_resnet, METRIC_POWER,
                            per_gpu_median=False)
    freq = longhorn_resnet[METRIC_FREQUENCY]

    rows = [
        ("iteration-duration variation", "22%", pct(perf.variation)),
        ("power variation", "104%", pct(power.variation)),
        ("runs at the 1530 MHz boost", "most", pct((freq == 1530.0).mean())),
        ("worst straggler vs median", "3.5x",
         f"{longhorn_resnet[METRIC_PERFORMANCE].max() / perf.median:.2f}x"),
    ]
    emit(benchmark, "Fig. 14: multi-GPU ResNet-50 on Longhorn", rows)

    assert 0.12 < perf.variation < 0.32
    assert power.variation > 0.5
    assert (freq == 1530.0).mean() > 0.75
    # Stragglers are dramatic but bounded.
    worst = longhorn_resnet[METRIC_PERFORMANCE].max() / perf.median
    assert 1.3 < worst < 4.0

    benchmark(lambda: metric_boxstats(
        longhorn_resnet, METRIC_PERFORMANCE, per_gpu_median=False
    ))


def test_fig14_resnet_vs_sgemm_variability(
    benchmark, longhorn_resnet, longhorn_sgemm
):
    """Takeaway 5: ResNet's variation exceeds SGEMM's on the same machine."""
    def variations():
        resnet = metric_boxstats(longhorn_resnet, METRIC_PERFORMANCE,
                                 per_gpu_median=False).variation
        sg = metric_boxstats(longhorn_sgemm, METRIC_PERFORMANCE,
                             per_gpu_median=False).variation
        return resnet, sg

    v_resnet, v_sgemm = benchmark(variations)
    emit(None, "Takeaway 5: application-specific variability",
         [("ResNet-50 variation", "22%", pct(v_resnet)),
          ("SGEMM variation", "9%", pct(v_sgemm))])
    assert v_resnet > 1.4 * v_sgemm
