"""Fig. 25 (Appendix B-B): time series of a power-capped row-H GPU.

Paper: GPU rowh-col36-n10-3 never exceeds ~259 W and holds a *flat*
1312 MHz across entire runs while instantaneous power rises and falls with
the kernels — the signature of a board power-delivery limit rather than
reactive DVFS.
"""

import numpy as np

from _bench_util import emit
from repro.gpu.defects import DefectType
from repro.sim import simulate_timeseries
from repro.sim.engine import EngineConfig
from repro.workloads import sgemm


def test_fig25_power_capped_gpu_trace(benchmark, summit_cluster):
    # The preset pins a POWER_DELIVERY defect at rowh-col36-n10 slot 2.
    label = "rowh-col36-n10-2"
    gpu = summit_cluster.topology.gpu_labels.index(label)
    assert summit_cluster.defects.kind[gpu] == int(DefectType.POWER_DELIVERY)
    healthy = summit_cluster.topology.gpu_labels.index("rowh-col36-n12-0")

    def traces():
        return simulate_timeseries(
            summit_cluster,
            sgemm(),
            np.array([gpu, healthy]),
            duration_s=25.0,
            sample_interval_s=0.1,
            engine_config=EngineConfig(thermal_time_scale=12.0),
        )

    capped_trace, healthy_trace = benchmark.pedantic(
        traces, rounds=1, iterations=1
    )

    # Skip the boot transient; the paper's runs are hours into steady state.
    steady = capped_trace.window(5.0, capped_trace.time_s[-1])
    p_max = float(steady.power_w.max())
    settled = capped_trace.frequency_mhz[-60:]
    f_spread = float(np.ptp(settled))
    rows = [
        ("capped GPU max power", "<=259 W", f"{p_max:.0f} W"),
        ("capped GPU settled frequency", "flat ~1312 MHz",
         f"{np.median(settled):.0f} MHz (ptp {f_spread:.0f})"),
        ("healthy neighbour max power", "~300 W",
         f"{healthy_trace.power_w.max():.0f} W"),
    ]
    emit(None, "Fig. 25: board power-delivery cap", rows)

    cap = summit_cluster.fleet.power_cap_w()[gpu]
    assert p_max <= cap + 15.0           # sensor noise + one control step
    assert p_max < 280.0
    assert f_spread <= 30.0              # near-flat clock at the cap
    assert np.median(settled) < np.median(healthy_trace.frequency_mhz[-60:])
    assert healthy_trace.power_w.max() > 290.0

    print("\ncapped GPU power trace:")
    print(capped_trace.ascii_plot("power_w", width=70, height=8))
