"""Helpers shared by the figure-reproduction benchmarks."""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.core import BoxStats, metric_boxstats
from repro.core.report import ascii_box_row, format_boxstats_table
from repro.sim import run_campaign as _run_campaign
from repro.sim.parallel import default_worker_count
from repro.telemetry.dataset import MeasurementDataset
from repro.telemetry.sample import PAPER_METRICS

#: Campaign fan-out for the whole benchmark session.  Parallel execution is
#: bit-identical to serial (tests/sim/test_parallel_equivalence.py), so the
#: reproduced figures do not depend on this — only the wall clock does.
#: Override with REPRO_BENCH_WORKERS=1 to force the serial path.
BENCH_WORKERS = int(
    os.environ.get("REPRO_BENCH_WORKERS", default_worker_count())
)


def run_campaign(cluster, workload, config):
    """The session's campaign runner: run_campaign with the bench fan-out."""
    return _run_campaign(cluster, workload, config, workers=BENCH_WORKERS)


#: Column labels for a paper-vs-measured comparison table.
_HEADER = f"{'quantity':<44} {'paper':>12} {'measured':>12}"


def comparison_table(title: str, rows: list[tuple[str, str, str]]) -> str:
    """Render a paper-vs-measured comparison table."""
    lines = [f"--- {title} ---", _HEADER, "-" * len(_HEADER)]
    for name, paper, measured in rows:
        lines.append(f"{name:<44} {paper:>12} {measured:>12}")
    return "\n".join(lines)


def emit(benchmark, title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print the comparison table and attach it to the benchmark record."""
    table = comparison_table(title, rows)
    print("\n" + table)
    if benchmark is not None:
        benchmark.extra_info["comparison"] = rows


def pct(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{value:.1%}"


def metric_summary_lines(
    dataset: MeasurementDataset,
    per_gpu_median: bool = True,
) -> str:
    """The four-metric box table for one figure's dataset."""
    stats = {
        metric: metric_boxstats(dataset, metric, per_gpu_median)
        for metric in PAPER_METRICS
        if metric in dataset
    }
    return format_boxstats_table(stats, label_header="metric")


def grouped_box_art(
    grouped: dict[Any, BoxStats],
    width: int = 44,
    max_rows: int = 12,
) -> str:
    """ASCII box plots per group, on a shared axis (a text 'figure')."""
    lo = min(s.whisker_lo for s in grouped.values())
    hi = max(s.whisker_hi for s in grouped.values())
    if hi <= lo:
        hi = lo + 1.0
    lines = [f"axis: {lo:.1f} .. {hi:.1f}"]
    for label, stats in list(grouped.items())[:max_rows]:
        lines.append(f"{str(label):<14} {ascii_box_row(stats, lo, hi, width)}")
    if len(grouped) > max_rows:
        lines.append(f"... ({len(grouped) - max_rows} more groups)")
    return "\n".join(lines)


def boxvar(values: np.ndarray) -> float:
    """The paper's variation statistic of a raw sample."""
    return BoxStats.from_values(values).variation
