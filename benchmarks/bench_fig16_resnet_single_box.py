"""Fig. 16: single-GPU ResNet-50 (batch scaled to 16).

Paper: all GPUs at the 1530 MHz boost with power well within TDP; iteration
durations lower than multi-GPU; still 14% performance variation and 24%
power variation; the bulk-synchronous amplification is gone, so the c002
stragglers hurt less than in the 4-GPU runs.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import metric_boxstats
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
)


def test_fig16_single_gpu_resnet(benchmark, longhorn_resnet_single,
                                 longhorn_resnet):
    perf = metric_boxstats(longhorn_resnet_single, METRIC_PERFORMANCE,
                           per_gpu_median=False)
    power = metric_boxstats(longhorn_resnet_single, METRIC_POWER,
                            per_gpu_median=False)
    freq = longhorn_resnet_single[METRIC_FREQUENCY]
    multi_perf = metric_boxstats(longhorn_resnet, METRIC_PERFORMANCE,
                                 per_gpu_median=False)

    rows = [
        ("iteration-duration variation", "14%", pct(perf.variation)),
        ("power variation", "24%", pct(power.variation)),
        ("runs at the 1530 MHz boost", "~all", pct((freq == 1530.0).mean())),
        ("iteration duration vs multi-GPU", "lower",
         f"{perf.median:.0f} vs {multi_perf.median:.0f} ms"),
    ]
    emit(benchmark, "Fig. 16: single-GPU ResNet-50", rows)

    assert 0.07 < perf.variation < 0.25
    assert 0.1 < power.variation < 0.6
    assert (freq == 1530.0).mean() > 0.9
    assert perf.median < multi_perf.median

    benchmark(lambda: metric_boxstats(
        longhorn_resnet_single, METRIC_PERFORMANCE, per_gpu_median=False
    ))


def test_fig16_bulk_sync_amplification(
    benchmark, longhorn_resnet, longhorn_resnet_single
):
    """Multi-GPU jobs 'run as fast as the slowest GPU' (Section V-A):
    the 4-GPU variation exceeds the single-GPU variation."""
    def variations():
        multi = metric_boxstats(longhorn_resnet, METRIC_PERFORMANCE,
                                per_gpu_median=False).variation
        single = metric_boxstats(longhorn_resnet_single, METRIC_PERFORMANCE,
                                 per_gpu_median=False).variation
        return multi, single

    multi, single = benchmark(variations)
    emit(None, "Fig. 16 vs 14: bulk-synchronous amplification",
         [("multi-GPU variation", "22%", pct(multi)),
          ("single-GPU variation", "14%", pct(single))])
    assert multi > single
