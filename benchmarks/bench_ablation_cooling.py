"""Ablation: cooling technology on an otherwise identical fleet.

Tests Takeaway 3 causally: swap only the cooling model (air / water /
mineral oil) under the same silicon batch and defects, and compare.
Better cooling must shrink the temperature spread but leave performance
variability essentially unchanged.
"""

import numpy as np

from _bench_util import boxvar, emit, pct
from repro.cluster.cluster import Cluster
from repro.cluster.cooling import AirCooling, MineralOilCooling, WaterCooling
from repro.cluster.topology import cabinet_topology
from repro.gpu.defects import DefectConfig
from repro.gpu.silicon import SiliconConfig
from repro.gpu.specs import V100
from repro.sim import simulate_run
from repro.workloads import sgemm

COOLING_MODELS = {
    "air": AirCooling(inlet_c=22.0, r_theta_base_c_per_w=0.145),
    # A V100-appropriate bath temperature: Frontera ran 48 C baths but
    # with 93 C-slowdown Turing parts; a 87 C-slowdown V100 needs ~40 C
    # to stay clear of thermal capping.
    "oil": MineralOilCooling(bath_c=40.0, r_theta_base_c_per_w=0.12),
    "water": WaterCooling(loop_c=25.0, r_theta_base_c_per_w=0.09),
}


def _cluster(cooling):
    return Cluster(
        name=f"ablation-{cooling.kind}",
        spec=V100,
        topology=cabinet_topology("ablation", 60, 4, 3),
        cooling=cooling,
        silicon_config=SiliconConfig(),
        defect_config=DefectConfig.none(),
        run_noise_sigma=0.001,
        seed=99,  # identical silicon for every cooling variant
    )


def test_ablation_cooling_technology(benchmark):
    results = {}
    for name, cooling in COOLING_MODELS.items():
        run = simulate_run(_cluster(cooling), sgemm())
        results[name] = (
            float(np.subtract(*np.percentile(run.temperature_c, [75, 25]))),
            boxvar(run.performance_ms),
        )

    rows = [
        (f"{name}: temp IQR / perf variation",
         "narrower with liquid / ~same",
         f"{results[name][0]:.1f} C / {pct(results[name][1])}")
        for name in ("air", "oil", "water")
    ]
    emit(benchmark, "Ablation: cooling technology (same silicon)", rows)

    # Temperature spread shrinks with better cooling...
    assert results["air"][0] > results["oil"][0] >= results["water"][0] * 0.8
    assert results["air"][0] > results["water"][0]
    # ...but performance variability does not collapse (Takeaway 3).
    perf_vars = [v for _, v in results.values()]
    assert max(perf_vars) < 2.0 * min(perf_vars)
    assert min(perf_vars) > 0.03

    benchmark(lambda: simulate_run(_cluster(COOLING_MODELS["water"]), sgemm()))
