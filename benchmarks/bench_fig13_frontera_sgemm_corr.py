"""Fig. 13: Frontera SGEMM scatter correlations.

Paper: duration-power strongly negative (rho = -0.96) even with the c197
outliers present; power-temperature almost uncorrelated (-0.1) — in oil, as
in water, temperature decouples from the other metrics.
"""

from _bench_util import emit
from repro.core.correlation import paper_correlation_pairs


def test_fig13_correlations(benchmark, frontera_sgemm):
    pairs = benchmark(paper_correlation_pairs, frontera_sgemm)
    rows = [
        ("perf_vs_power", "-0.96", f"{pairs['perf_vs_power'].rho:+.2f}"),
        ("perf_vs_frequency", "strong negative",
         f"{pairs['perf_vs_frequency'].rho:+.2f}"),
        ("power_vs_temperature", "-0.10",
         f"{pairs['power_vs_temperature'].rho:+.2f}"),
    ]
    emit(benchmark, "Fig. 13: SGEMM correlations on Frontera", rows)

    assert pairs["perf_vs_power"].rho < -0.7
    assert pairs["perf_vs_frequency"].rho < -0.9
    assert abs(pairs["power_vs_temperature"].rho) < 0.4
