"""Table II: summary of applications studied, plus their classification.

Verifies the workload inventory (inputs, GPUs per job, performance metric)
and the profiler characterization that drives Section VII's classification.
"""

from _bench_util import emit
from repro.core.classify import classify_workload
from repro.gpu.specs import V100
from repro.workloads import get_workload, list_workloads

#: workload -> (n_gpus, units, metric, expected class) from Table II + Sec V.
PAPER_TABLE_2 = {
    "sgemm": (1, 100, "kernel_ms", "compute-bound"),
    "resnet50": (4, 500, "iteration_ms", "compute-bound"),
    "bert": (4, 250, "iteration_ms", "balanced"),
    "lammps": (1, 12, "aggregate_ms", "memory-bandwidth-bound"),
    "pagerank": (1, 100, "kernel_ms", "memory-latency-bound"),
}


def test_table2_inventory(benchmark):
    rows = []
    for name, (n_gpus, units, metric, app_class) in PAPER_TABLE_2.items():
        wl = get_workload(name)
        measured_class = classify_workload(wl).value
        rows.append((
            f"{wl.name}: GPUs/units/metric/class",
            f"{n_gpus}/{units}/{metric.split('_')[0]}/{app_class}",
            f"{wl.n_gpus}/{wl.units_per_run}/"
            f"{wl.performance_metric.split('_')[0]}/{measured_class}",
        ))
        assert wl.n_gpus == n_gpus
        assert wl.performance_metric == metric
        assert measured_class == app_class
    emit(benchmark, "Table II: applications studied", rows)

    benchmark(lambda: [get_workload(n) for n in list_workloads()])


def test_table2_profiler_counters(benchmark):
    """FU-utilization and stall numbers quoted in Sections V-A..V-D."""
    sgemm = get_workload("sgemm")
    resnet = get_workload("resnet50")
    lammps = get_workload("lammps")
    pagerank = get_workload("pagerank")

    rows = [
        ("SGEMM FU utilization (0-10)", "10", f"{sgemm.fu_utilization:.0f}"),
        ("ResNet-50 FU utilization", "5.4", f"{resnet.fu_utilization:.1f}"),
        ("ResNet/LAMMPS FU ratio", "4.3x",
         f"{resnet.fu_utilization / lammps.fu_utilization:.1f}x"),
        ("PageRank memory stalls", "61%", f"{pagerank.mem_stall_frac:.0%}"),
        ("LAMMPS memory stalls", "7%", f"{lammps.mem_stall_frac:.0%}"),
        ("SGEMM memory stalls", "3%", f"{sgemm.mem_stall_frac:.0%}"),
        ("LAMMPS/PageRank DRAM-util ratio", "4.24x",
         f"{lammps.dram_utilization_profile / pagerank.dram_utilization_profile:.1f}x"),
    ]
    emit(benchmark, "Table II: profiler characterization", rows)
    assert 3.5 < resnet.fu_utilization / lammps.fu_utilization < 5.0

    benchmark(
        lambda: get_workload("sgemm").steady_load(
            V100.f_max_mhz, V100.compute_throughput, V100.mem_bandwidth_gbs
        )
    )
